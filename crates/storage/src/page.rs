//! Fixed-size pages and the simulated disk beneath them.
//!
//! The paper's cost outlook counts granules — "tuples or disk pages"
//! (§2.2) — and names "the disk-blocks, being the slowest granularity in
//! the system" as the natural cracking cut-off (§3.4.2). This module
//! supplies that granularity as a real substrate instead of a unit in a
//! formula: [`PageBuf`] is one fixed-size block of packed 64-bit values
//! with a small header, and [`PageStore`] / [`MemDisk`] is the block
//! device it lives on, with read/write counters standing in for the IO
//! the paper's numbers are "linear in" (§2.1).
//!
//! A [`MemDisk`] is deliberately a simulation — byte buffers plus
//! counters — per the workspace's substitution rule: the experiments
//! compare *IO counts*, which the simulation reproduces exactly, not
//! device latencies, which it cannot.

use crate::error::{StorageError, StorageResult};

/// Identifier of a page on a [`PageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// Default page size in bytes (8 KiB, a common DBMS block size).
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// Bytes reserved at the start of every page: a little-endian `u32`
/// tuple count plus padding to the 8-byte value alignment.
pub const PAGE_HEADER: usize = 8;

/// Number of 64-bit values a page of `page_size` bytes can hold.
pub fn page_capacity(page_size: usize) -> usize {
    (page_size - PAGE_HEADER) / 8
}

/// One in-memory page image: header plus packed `i64` slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageBuf {
    data: Vec<u8>,
}

impl PageBuf {
    /// An empty page of `page_size` bytes.
    ///
    /// # Panics
    /// Panics if `page_size` cannot hold the header plus one value.
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size >= PAGE_HEADER + 8,
            "page size {page_size} cannot hold a single value"
        );
        PageBuf {
            data: vec![0; page_size],
        }
    }

    /// Total size in bytes.
    pub fn page_size(&self) -> usize {
        self.data.len()
    }

    /// Number of values currently stored.
    pub fn len(&self) -> usize {
        // lint: allow(unwrap) — 4-byte slice into a 4-byte array is infallible
        u32::from_le_bytes(self.data[0..4].try_into().expect("header")) as usize
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of values this page can hold.
    pub fn capacity(&self) -> usize {
        page_capacity(self.data.len())
    }

    fn set_len(&mut self, n: usize) {
        debug_assert!(n <= self.capacity());
        self.data[0..4].copy_from_slice(&(n as u32).to_le_bytes());
    }

    fn slot_range(&self, slot: usize) -> StorageResult<usize> {
        if slot >= self.len() {
            return Err(StorageError::OutOfBounds {
                index: slot,
                len: self.len(),
            });
        }
        Ok(PAGE_HEADER + slot * 8)
    }

    /// Read the value at `slot`.
    pub fn get(&self, slot: usize) -> StorageResult<i64> {
        let off = self.slot_range(slot)?;
        Ok(i64::from_le_bytes(
            // lint: allow(unwrap) — 8-byte slice into an 8-byte array is infallible
            self.data[off..off + 8].try_into().expect("aligned"),
        ))
    }

    /// Overwrite the value at `slot`.
    pub fn set(&mut self, slot: usize, v: i64) -> StorageResult<()> {
        let off = self.slot_range(slot)?;
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Append a value; returns `false` when the page is full.
    pub fn push(&mut self, v: i64) -> bool {
        let n = self.len();
        if n >= self.capacity() {
            return false;
        }
        let off = PAGE_HEADER + n * 8;
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
        self.set_len(n + 1);
        true
    }

    /// All stored values, decoded (test/debug surface, not a hot path).
    pub fn values(&self) -> Vec<i64> {
        (0..self.len())
            .map(|s| self.get(s).expect("slot < len")) // lint: allow(unwrap) — range bounded by len()
            .collect()
    }

    /// The raw page image.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Replace the page image (used when reading from a store).
    ///
    /// # Panics
    /// Panics if the image size differs from the page size.
    pub fn load_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(bytes.len(), self.data.len(), "page size mismatch");
        self.data.copy_from_slice(bytes);
    }

    /// Reset to an empty page.
    pub fn clear(&mut self) {
        self.set_len(0);
    }
}

/// IO counters of a page store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read from the store.
    pub reads: u64,
    /// Pages written to the store.
    pub writes: u64,
}

/// A block device holding pages — the layer whose traffic the paper's
/// disk-IO arguments are about.
pub trait PageStore {
    /// Page size in bytes, uniform across the store.
    fn page_size(&self) -> usize;
    /// Allocate a fresh zeroed page.
    fn allocate(&mut self) -> PageId;
    /// Read a page image into `buf`.
    fn read(&mut self, id: PageId, buf: &mut PageBuf) -> StorageResult<()>;
    /// Write a page image from `buf`.
    fn write(&mut self, id: PageId, buf: &PageBuf) -> StorageResult<()>;
    /// Number of allocated pages.
    fn page_count(&self) -> usize;
    /// Accumulated IO counters.
    fn io_stats(&self) -> IoStats;
}

/// An in-memory simulated disk.
#[derive(Debug, Default)]
pub struct MemDisk {
    page_size: usize,
    pages: Vec<Vec<u8>>,
    stats: IoStats,
}

impl MemDisk {
    /// A disk with the default page size.
    pub fn new() -> Self {
        Self::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// A disk with an explicit page size (useful for tests: tiny pages
    /// make page boundaries easy to hit).
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(page_size >= PAGE_HEADER + 8);
        MemDisk {
            page_size,
            pages: Vec::new(),
            stats: IoStats::default(),
        }
    }
}

impl PageStore for MemDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&mut self) -> PageId {
        let id = PageId(self.pages.len() as u32);
        self.pages.push(vec![0; self.page_size]);
        id
    }

    fn read(&mut self, id: PageId, buf: &mut PageBuf) -> StorageResult<()> {
        let img = self
            .pages
            .get(id.0 as usize)
            .ok_or(StorageError::UnknownPage(id.0))?;
        buf.load_bytes(img);
        self.stats.reads += 1;
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &PageBuf) -> StorageResult<()> {
        let img = self
            .pages
            .get_mut(id.0 as usize)
            .ok_or(StorageError::UnknownPage(id.0))?;
        img.copy_from_slice(buf.bytes());
        self.stats.writes += 1;
        Ok(())
    }

    fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn io_stats(&self) -> IoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_roundtrip_and_capacity() {
        let mut p = PageBuf::new(64); // 8 header + 7 values
        assert_eq!(p.capacity(), 7);
        assert!(p.is_empty());
        for v in 0..7 {
            assert!(p.push(v * 11));
        }
        assert!(!p.push(99), "eighth value must not fit");
        assert_eq!(p.len(), 7);
        assert_eq!(p.get(3).unwrap(), 33);
        p.set(3, -5).unwrap();
        assert_eq!(p.get(3).unwrap(), -5);
        assert_eq!(p.values(), vec![0, 11, 22, -5, 44, 55, 66]);
    }

    #[test]
    fn out_of_bounds_slots_error() {
        let mut p = PageBuf::new(64);
        p.push(1);
        assert!(matches!(
            p.get(1),
            Err(StorageError::OutOfBounds { index: 1, len: 1 })
        ));
        assert!(p.set(9, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn tiny_pages_are_rejected() {
        PageBuf::new(8);
    }

    #[test]
    fn negative_values_survive_the_byte_roundtrip() {
        let mut p = PageBuf::new(64);
        p.push(i64::MIN);
        p.push(-1);
        p.push(i64::MAX);
        assert_eq!(p.get(0).unwrap(), i64::MIN);
        assert_eq!(p.get(1).unwrap(), -1);
        assert_eq!(p.get(2).unwrap(), i64::MAX);
    }

    #[test]
    fn memdisk_allocates_reads_writes_and_counts() {
        let mut d = MemDisk::with_page_size(64);
        let a = d.allocate();
        let b = d.allocate();
        assert_eq!((a, b), (PageId(0), PageId(1)));
        assert_eq!(d.page_count(), 2);

        let mut buf = PageBuf::new(64);
        buf.push(42);
        d.write(a, &buf).unwrap();

        let mut back = PageBuf::new(64);
        d.read(a, &mut back).unwrap();
        assert_eq!(back.values(), vec![42]);
        // Page b is still zeroed/empty.
        d.read(b, &mut back).unwrap();
        assert!(back.is_empty());

        assert_eq!(
            d.io_stats(),
            IoStats {
                reads: 2,
                writes: 1
            }
        );
    }

    #[test]
    fn unknown_pages_error() {
        let mut d = MemDisk::with_page_size(64);
        let mut buf = PageBuf::new(64);
        assert!(matches!(
            d.read(PageId(7), &mut buf),
            Err(StorageError::UnknownPage(7))
        ));
        assert!(d.write(PageId(7), &buf).is_err());
    }

    #[test]
    fn clear_resets_length_only() {
        let mut p = PageBuf::new(64);
        p.push(5);
        p.clear();
        assert!(p.is_empty());
        assert!(p.push(6));
        assert_eq!(p.get(0).unwrap(), 6);
    }

    #[test]
    fn default_page_capacity() {
        assert_eq!(page_capacity(DEFAULT_PAGE_SIZE), 1023);
    }
}
