//! Transactional shadow versioning for BATs.
//!
//! The MonetDB kernel the paper builds on guarantees that in-place
//! reorganization is safe: "the shuffling takes place in the original
//! storage area, relying on the transaction manager to not overwrite the
//! original until commit" (§3.4.2), with "the memory management unit of
//! the system ... used to guarantee transaction isolation" (copy-on-write
//! pages). [`VersionedBat`] is the equivalent discipline in safe Rust:
//! readers always see the last committed snapshot (cheap `Arc` clone);
//! a writer works on a private shadow copy that becomes the committed
//! version atomically on commit, or vanishes on rollback.

use crate::bat::Bat;
use crate::error::{StorageError, StorageResult};
// storage sits below cracker_core in the dependency graph, so the
// instrumented facade is out of reach here. lint: allow(raw-sync)
use parking_lot::Mutex;
use std::sync::Arc;

/// A BAT with snapshot-isolated, single-writer transactions.
#[derive(Debug)]
pub struct VersionedBat {
    committed: Mutex<Arc<Bat>>,
    /// The writer's shadow copy, present while a transaction is open.
    working: Mutex<Option<Bat>>,
}

impl VersionedBat {
    /// Wrap a BAT as its first committed version.
    pub fn new(bat: Bat) -> Self {
        VersionedBat {
            committed: Mutex::new(Arc::new(bat)),
            working: Mutex::new(None),
        }
    }

    /// The current committed snapshot. Never blocks on writers; the
    /// returned handle stays consistent for as long as it is held.
    pub fn read(&self) -> Arc<Bat> {
        Arc::clone(&self.committed.lock())
    }

    /// Begin a transaction: creates the shadow copy. Errors if one is
    /// already open (single-writer discipline).
    pub fn begin(&self) -> StorageResult<()> {
        let mut working = self.working.lock();
        if working.is_some() {
            return Err(StorageError::SharedMutation(self.read().name().to_owned()));
        }
        *working = Some((*self.read()).clone());
        Ok(())
    }

    /// Mutate the shadow copy inside an open transaction.
    pub fn with_working<R>(&self, f: impl FnOnce(&mut Bat) -> R) -> StorageResult<R> {
        let mut working = self.working.lock();
        match working.as_mut() {
            Some(bat) => Ok(f(bat)),
            None => Err(StorageError::UnknownBat("no open transaction".to_owned())),
        }
    }

    /// Atomically publish the shadow copy as the committed version.
    pub fn commit(&self) -> StorageResult<()> {
        let mut working = self.working.lock();
        match working.take() {
            Some(bat) => {
                *self.committed.lock() = Arc::new(bat);
                Ok(())
            }
            None => Err(StorageError::UnknownBat("no open transaction".to_owned())),
        }
    }

    /// Discard the shadow copy; the committed version is untouched.
    pub fn rollback(&self) -> StorageResult<()> {
        let mut working = self.working.lock();
        match working.take() {
            Some(_) => Ok(()),
            None => Err(StorageError::UnknownBat("no open transaction".to_owned())),
        }
    }

    /// Is a transaction currently open?
    pub fn in_transaction(&self) -> bool {
        self.working.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Atom;

    fn vb() -> VersionedBat {
        VersionedBat::new(Bat::from_ints("r_a", vec![1, 2, 3]))
    }

    #[test]
    fn readers_see_committed_snapshot_during_transaction() {
        let v = vb();
        let before = v.read();
        v.begin().unwrap();
        v.with_working(|b| b.append(Atom::Int(4)).map(|_| ()))
            .unwrap()
            .unwrap();
        // The reader's snapshot and fresh reads are both unchanged.
        assert_eq!(before.len(), 3);
        assert_eq!(v.read().len(), 3, "isolation until commit");
        v.commit().unwrap();
        assert_eq!(v.read().len(), 4);
        assert_eq!(before.len(), 3, "old snapshot handles stay stable");
    }

    #[test]
    fn rollback_discards_the_shadow() {
        let v = vb();
        v.begin().unwrap();
        v.with_working(|b| b.delete_oid(0)).unwrap();
        v.rollback().unwrap();
        assert_eq!(v.read().len(), 3);
        assert!(!v.in_transaction());
    }

    #[test]
    fn single_writer_discipline() {
        let v = vb();
        v.begin().unwrap();
        assert!(matches!(v.begin(), Err(StorageError::SharedMutation(_))));
        v.commit().unwrap();
        v.begin().unwrap();
        v.rollback().unwrap();
    }

    #[test]
    fn operations_without_transaction_error() {
        let v = vb();
        assert!(v.commit().is_err());
        assert!(v.rollback().is_err());
        assert!(v.with_working(|_| ()).is_err());
    }

    #[test]
    fn shuffle_in_place_then_commit_models_the_cracker_protocol() {
        // The §3.4.2 protocol: shuffle in the "original storage area"
        // (here: the shadow), commit atomically.
        let v = VersionedBat::new(Bat::from_ints("r_a", (0..100).rev().collect()));
        let reader = v.read();
        v.begin().unwrap();
        v.with_working(|b| {
            // Reorganize: replace with a partitioned incarnation.
            let mut vals = b.ints().unwrap().to_vec();
            vals.sort_unstable();
            *b = Bat::from_ints("r_a", vals);
        })
        .unwrap();
        v.commit().unwrap();
        assert_eq!(v.read().ints().unwrap()[0], 0);
        assert_eq!(reader.ints().unwrap()[0], 99, "pre-commit reader intact");
    }

    #[test]
    fn concurrent_readers_during_commit() {
        let v = Arc::new(VersionedBat::new(Bat::from_ints(
            "r_a",
            (0..1000).collect(),
        )));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let v = Arc::clone(&v);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let snap = v.read();
                    // Snapshots are always internally consistent.
                    assert!(snap.len() == 1000 || snap.len() == 1001);
                }
            }));
        }
        {
            let v = Arc::clone(&v);
            handles.push(std::thread::spawn(move || {
                v.begin().unwrap();
                v.with_working(|b| b.append(Atom::Int(-1)).map(|_| ()))
                    .unwrap()
                    .unwrap();
                v.commit().unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.read().len(), 1001);
    }
}
