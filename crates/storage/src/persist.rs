//! Snapshot persistence for catalogs.
//!
//! Experiments over long multi-query sequences benefit from checkpointing:
//! generate a tapestry table once, snapshot it, reload per run. The format
//! is a single JSON document (`serde_json` is used only here and for
//! machine-readable experiment output — never on a query hot path).
//!
//! Note the paper's cracker indices "are not saved between sessions. They
//! are pure auxiliary datastructures" (§5.2) — accordingly, accelerators and
//! stats are *not* serialized; they are rebuilt lazily after load.

use crate::bat::Bat;
use crate::catalog::StoreCatalog;
use crate::error::{StorageError, StorageResult};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// On-disk snapshot format.
#[derive(Debug, Serialize, Deserialize)]
struct Snapshot {
    /// Format version for forward compatibility.
    version: u32,
    /// All BATs, keyed by catalog name.
    bats: Vec<Bat>,
}

const SNAPSHOT_VERSION: u32 = 1;

/// Write every BAT in `catalog` to `path` as JSON.
pub fn save_catalog(catalog: &StoreCatalog, path: impl AsRef<Path>) -> StorageResult<()> {
    let bats = catalog
        .snapshot()
        .into_iter()
        .map(|(_, b)| (*b).clone())
        .collect();
    let snap = Snapshot {
        version: SNAPSHOT_VERSION,
        bats,
    };
    let file = File::create(path).map_err(|e| StorageError::Persist(e.to_string()))?;
    serde_json::to_writer(BufWriter::new(file), &snap)
        .map_err(|e| StorageError::Persist(e.to_string()))
}

/// Load a snapshot written by [`save_catalog`] into a fresh catalog.
pub fn load_catalog(path: impl AsRef<Path>) -> StorageResult<StoreCatalog> {
    let file = File::open(path).map_err(|e| StorageError::Persist(e.to_string()))?;
    let snap: Snapshot = serde_json::from_reader(BufReader::new(file))
        .map_err(|e| StorageError::Persist(e.to_string()))?;
    if snap.version != SNAPSHOT_VERSION {
        return Err(StorageError::Persist(format!(
            "unsupported snapshot version {}",
            snap.version
        )));
    }
    let catalog = StoreCatalog::new();
    for bat in snap.bats {
        catalog.register(bat)?;
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Atom;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dbcracker-persist-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn save_and_load_round_trip() {
        let cat = StoreCatalog::new();
        cat.register(Bat::from_ints("r_a", vec![5, 3, 9])).unwrap();
        cat.register(Bat::from_strs("r_s", ["x", "y"])).unwrap();
        let path = tmp("roundtrip");
        save_catalog(&cat, &path).unwrap();
        let back = load_catalog(&path).unwrap();
        assert_eq!(back.names(), vec!["r_a".to_string(), "r_s".to_string()]);
        assert_eq!(back.get("r_a").unwrap().ints().unwrap(), &[5, 3, 9]);
        assert_eq!(back.get("r_s").unwrap().str_at(1).unwrap(), "y");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn accelerators_are_rebuilt_after_load() {
        let cat = StoreCatalog::new();
        cat.register(Bat::from_ints("r_a", vec![2, 1])).unwrap();
        let path = tmp("accel");
        save_catalog(&cat, &path).unwrap();
        let back = load_catalog(&path).unwrap();
        // Clone out of the Arc to get a mutable BAT, then build lazily.
        let mut bat = (*back.get("r_a").unwrap()).clone();
        assert_eq!(bat.sorted_permutation(), &[1, 0]);
        assert_eq!(bat.hash_lookup(&Atom::Int(2)), vec![0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn loading_missing_file_is_an_error() {
        let err = load_catalog("/nonexistent/dir/snap.json").unwrap_err();
        assert!(matches!(err, StorageError::Persist(_)));
    }

    #[test]
    fn corrupt_snapshot_is_an_error() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"not json at all").unwrap();
        let err = load_catalog(&path).unwrap_err();
        assert!(matches!(err, StorageError::Persist(_)));
        std::fs::remove_file(path).ok();
    }
}
