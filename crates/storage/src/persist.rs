//! Snapshot persistence for catalogs.
//!
//! Experiments over long multi-query sequences benefit from checkpointing:
//! generate a tapestry table once, snapshot it, reload per run. The format
//! is a single JSON document (`serde_json` is used only here and for
//! machine-readable experiment output — never on a query hot path).
//!
//! Writes are **atomic**: the snapshot is serialized to a sibling temp
//! file, fsync'd, and renamed over the target, so a crash mid-save leaves
//! the previous snapshot intact (see `PERSISTENCE.md` at the repository
//! root; [`crate::checkpoint`] builds its incremental checkpoints on the
//! same primitive). Loads distinguish environment failures
//! ([`StorageError::PersistIo`]) from malformed artifacts
//! ([`StorageError::PersistFormat`]) and re-check every BAT's structural
//! invariants before registration.
//!
//! Note the paper's cracker indices "are not saved between sessions. They
//! are pure auxiliary datastructures" (§5.2) — accordingly, accelerators and
//! stats are *not* serialized; they are rebuilt lazily after load. (The
//! durability layer that *does* keep crack state warm across restarts is
//! [`crate::checkpoint`] + [`crate::wal`].)

use crate::bat::Bat;
use crate::catalog::StoreCatalog;
use crate::error::{StorageError, StorageResult};
use crate::fault::write_atomic;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// On-disk snapshot format.
#[derive(Debug, Serialize, Deserialize)]
struct Snapshot {
    /// Format version for forward compatibility.
    version: u32,
    /// All BATs, keyed by catalog name.
    bats: Vec<Bat>,
}

const SNAPSHOT_VERSION: u32 = 1;

/// Write every BAT in `catalog` to `path` as JSON, atomically: the
/// document lands in a sibling temp file first and is renamed over `path`
/// only after an fsync, so an interrupted save never destroys the
/// previous snapshot.
pub fn save_catalog(catalog: &StoreCatalog, path: impl AsRef<Path>) -> StorageResult<()> {
    let bats = catalog
        .snapshot()
        .into_iter()
        .map(|(_, b)| (*b).clone())
        .collect();
    let snap = Snapshot {
        version: SNAPSHOT_VERSION,
        bats,
    };
    let doc = serde_json::to_string(&snap).map_err(|e| StorageError::Persist(e.to_string()))?;
    write_atomic(path.as_ref(), doc.as_bytes())
}

/// Load a snapshot written by [`save_catalog`] into a fresh catalog.
///
/// I/O failures surface as [`StorageError::PersistIo`]; malformed content
/// (bad JSON, unsupported version, a BAT violating its structural
/// invariants) as [`StorageError::PersistFormat`] — a malformed BAT is
/// rejected here rather than registered.
pub fn load_catalog(path: impl AsRef<Path>) -> StorageResult<StoreCatalog> {
    let doc = crate::fault::read_to_string("snapshot", path.as_ref())?;
    let snap: Snapshot =
        serde_json::from_str(&doc).map_err(|e| StorageError::PersistFormat(e.to_string()))?;
    if snap.version != SNAPSHOT_VERSION {
        return Err(StorageError::PersistFormat(format!(
            "unsupported snapshot version {}",
            snap.version
        )));
    }
    let catalog = StoreCatalog::new();
    for bat in snap.bats {
        bat.check_invariants()?;
        catalog.register(bat)?;
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::TailData;
    use crate::value::Atom;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dbcracker-persist-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn save_and_load_round_trip() {
        let cat = StoreCatalog::new();
        cat.register(Bat::from_ints("r_a", vec![5, 3, 9])).unwrap();
        cat.register(Bat::from_strs("r_s", ["x", "y"])).unwrap();
        let path = tmp("roundtrip");
        save_catalog(&cat, &path).unwrap();
        let back = load_catalog(&path).unwrap();
        assert_eq!(back.names(), vec!["r_a".to_string(), "r_s".to_string()]);
        assert_eq!(back.get("r_a").unwrap().ints().unwrap(), &[5, 3, 9]);
        assert_eq!(back.get("r_s").unwrap().str_at(1).unwrap(), "y");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn accelerators_are_rebuilt_after_load() {
        let cat = StoreCatalog::new();
        cat.register(Bat::from_ints("r_a", vec![2, 1])).unwrap();
        let path = tmp("accel");
        save_catalog(&cat, &path).unwrap();
        let back = load_catalog(&path).unwrap();
        // Clone out of the Arc to get a mutable BAT, then build lazily.
        let mut bat = (*back.get("r_a").unwrap()).clone();
        assert_eq!(bat.sorted_permutation(), &[1, 0]);
        assert_eq!(bat.hash_lookup(&Atom::Int(2)), vec![0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn loaded_bat_answers_like_a_never_persisted_one_after_mutation() {
        // Stale-cache regression: `accel`/`stats` are #[serde(skip)], so a
        // loaded BAT must behave exactly like a fresh one through a full
        // save → load → mutate → query sequence — in particular the
        // accelerators built *before* the save must not leak stale
        // answers afterwards.
        let mut fresh = Bat::from_ints("r_a", vec![30, 10, 20, 25]);
        let mut original = Bat::from_ints("r_a", vec![30, 10, 20, 25]);
        // Populate every lazy cache on the original before saving.
        let _ = original.sorted_permutation();
        let _ = original.hash_lookup(&Atom::Int(10));
        let _ = original.stats();
        let cat = StoreCatalog::new();
        cat.register(original).unwrap();
        let path = tmp("stale-cache");
        save_catalog(&cat, &path).unwrap();
        let back = load_catalog(&path).unwrap();
        let mut loaded = (*back.get("r_a").unwrap()).clone();
        // Mutate both the same way, then compare every cached query path.
        loaded.append(Atom::Int(5)).unwrap();
        fresh.append(Atom::Int(5)).unwrap();
        assert!(loaded.delete_oid(1));
        assert!(fresh.delete_oid(1));
        assert_eq!(loaded.sorted_permutation(), fresh.sorted_permutation());
        assert_eq!(
            loaded.hash_lookup(&Atom::Int(5)),
            fresh.hash_lookup(&Atom::Int(5))
        );
        assert_eq!(
            loaded.hash_lookup(&Atom::Int(10)),
            fresh.hash_lookup(&Atom::Int(10)),
            "pre-save hash accelerator must not survive the round trip"
        );
        assert_eq!(loaded.compute_stats(), fresh.compute_stats());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn interrupted_save_leaves_previous_snapshot_loadable() {
        // Regression for the truncate-in-place bug: `save_catalog` used to
        // `File::create(path)` before serializing, so a crash mid-write
        // destroyed the last good snapshot. With atomic writes the target
        // is only ever replaced by a complete, fsync'd temp file.
        let cat = StoreCatalog::new();
        cat.register(Bat::from_ints("r_a", vec![1, 2, 3])).unwrap();
        let path = tmp("interrupted");
        save_catalog(&cat, &path).unwrap();
        // Simulate a crash mid-save: a partial temp file next to the
        // target (exactly what an interrupted `write_atomic` leaves).
        let tmp_path = crate::fault::sibling_tmp_path(&path);
        std::fs::write(&tmp_path, b"{\"version\":1,\"bats\":[{\"nam").unwrap();
        let back = load_catalog(&path).unwrap();
        assert_eq!(back.get("r_a").unwrap().ints().unwrap(), &[1, 2, 3]);
        // A subsequent save replaces both cleanly.
        let cat2 = StoreCatalog::new();
        cat2.register(Bat::from_ints("r_a", vec![7])).unwrap();
        save_catalog(&cat2, &path).unwrap();
        assert!(!tmp_path.exists(), "temp file must not outlive the save");
        let back = load_catalog(&path).unwrap();
        assert_eq!(back.get("r_a").unwrap().ints().unwrap(), &[7]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn loading_missing_file_is_an_io_error() {
        let err = load_catalog("/nonexistent/dir/snap.json").unwrap_err();
        assert!(matches!(err, StorageError::PersistIo(_)), "{err}");
    }

    #[test]
    fn corrupt_snapshot_is_a_format_error() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"not json at all").unwrap();
        let err = load_catalog(&path).unwrap_err();
        assert!(matches!(err, StorageError::PersistFormat(_)), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unsupported_version_is_a_format_error() {
        let path = tmp("version");
        std::fs::write(&path, b"{\"version\":99,\"bats\":[]}").unwrap();
        let err = load_catalog(&path).unwrap_err();
        assert!(matches!(err, StorageError::PersistFormat(_)), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn misaligned_bat_in_snapshot_is_rejected() {
        // Serde rebuilds head and tail independently, so a tampered
        // snapshot can encode a head/tail length mismatch no constructor
        // allows. Build a valid snapshot, then shrink one tail in the
        // JSON text.
        let cat = StoreCatalog::new();
        cat.register(
            Bat::with_explicit_head("r_a", vec![10, 11, 12], TailData::Int(vec![5, 6, 7])).unwrap(),
        )
        .unwrap();
        let path = tmp("misaligned");
        save_catalog(&cat, &path).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        let tampered = doc.replace("[5,6,7]", "[5,6]");
        assert_ne!(doc, tampered, "fixture must actually change the tail");
        std::fs::write(&path, tampered).unwrap();
        let err = load_catalog(&path).unwrap_err();
        assert!(matches!(err, StorageError::PersistFormat(_)), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn dangling_heap_ref_in_snapshot_is_rejected() {
        let cat = StoreCatalog::new();
        cat.register(Bat::from_strs("r_s", ["aa", "bb"])).unwrap();
        let path = tmp("dangling");
        save_catalog(&cat, &path).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        // Point the second BUN at a heap entry that doesn't exist.
        let tampered = doc.replace("\"refs\":[0,1]", "\"refs\":[0,9]");
        assert_ne!(doc, tampered, "fixture must actually change the refs");
        std::fs::write(&path, tampered).unwrap();
        let err = load_catalog(&path).unwrap_err();
        assert!(matches!(err, StorageError::PersistFormat(_)), "{err}");
        std::fs::remove_file(path).ok();
    }
}
