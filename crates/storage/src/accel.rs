//! Automatically maintained search accelerators.
//!
//! The BAT descriptor in the paper's Figure 7 reserves slots for a hash
//! table and a (binary search) tree index per column. MonetDB builds these
//! lazily — the first operator that would profit constructs them, mutation
//! drops them. We mirror that protocol: [`Accelerators`] starts empty,
//! `ensure_*` builds on demand, and [`Accelerators::clear`] is called by the
//! owning [`Bat`](crate::bat::Bat) on every mutation.

use crate::bat::TailData;
use crate::value::Atom;
use std::collections::HashMap;

/// Lazily built per-BAT accelerator set.
#[derive(Debug, Clone, Default)]
pub struct Accelerators {
    /// Hash index: tail value -> positions.
    hash: Option<HashMap<Atom, Vec<usize>>>,
    /// Order index: permutation of positions sorted by tail value.
    sorted: Option<Vec<u32>>,
}

impl Accelerators {
    /// Drop all built accelerators (called on mutation).
    pub fn clear(&mut self) {
        self.hash = None;
        self.sorted = None;
    }

    /// True when a hash index has been built.
    pub fn has_hash(&self) -> bool {
        self.hash.is_some()
    }

    /// True when an order index has been built.
    pub fn has_sorted(&self) -> bool {
        self.sorted.is_some()
    }

    /// Build the hash index over `tail` unless already present.
    pub fn ensure_hash(&mut self, tail: &TailData) {
        if self.hash.is_some() {
            return;
        }
        let mut map: HashMap<Atom, Vec<usize>> = HashMap::new();
        for pos in 0..tail.len() {
            map.entry(tail.atom_at(pos)).or_default().push(pos);
        }
        self.hash = Some(map);
    }

    /// Positions whose tail equals `atom`. Empty when the value is absent
    /// or the index has not been built.
    pub fn hash_positions(&self, atom: &Atom) -> Vec<usize> {
        self.hash
            .as_ref()
            .and_then(|m| m.get(atom).cloned())
            .unwrap_or_default()
    }

    /// Build the order index over `tail` unless already present.
    ///
    /// The permutation is *stable*: equal values keep their physical order,
    /// so repeated builds are deterministic.
    pub fn ensure_sorted(&mut self, tail: &TailData) {
        if self.sorted.is_some() {
            return;
        }
        let mut perm: Vec<u32> = (0..tail.len() as u32).collect();
        match tail {
            TailData::Int(v) => perm.sort_by_key(|&p| v[p as usize]),
            TailData::Float(v) => perm.sort_by(|&a, &b| v[a as usize].total_cmp(&v[b as usize])),
            TailData::Oid(v) => perm.sort_by_key(|&p| v[p as usize]),
            TailData::Str { refs, heap } => {
                perm.sort_by(|&a, &b| heap.get(refs[a as usize]).cmp(heap.get(refs[b as usize])))
            }
        }
        self.sorted = Some(perm);
    }

    /// The sorted permutation (empty slice when not built).
    pub fn sorted_permutation(&self) -> &[u32] {
        self.sorted.as_deref().unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_tail(v: Vec<i64>) -> TailData {
        TailData::Int(v)
    }

    #[test]
    fn hash_index_is_built_once_and_queried() {
        let tail = int_tail(vec![5, 5, 7]);
        let mut acc = Accelerators::default();
        assert!(!acc.has_hash());
        acc.ensure_hash(&tail);
        assert!(acc.has_hash());
        assert_eq!(acc.hash_positions(&Atom::Int(5)), vec![0, 1]);
        assert_eq!(acc.hash_positions(&Atom::Int(7)), vec![2]);
        assert!(acc.hash_positions(&Atom::Int(9)).is_empty());
    }

    #[test]
    fn query_without_build_returns_empty() {
        let acc = Accelerators::default();
        assert!(acc.hash_positions(&Atom::Int(1)).is_empty());
        assert!(acc.sorted_permutation().is_empty());
    }

    #[test]
    fn sorted_permutation_is_stable_for_duplicates() {
        let tail = int_tail(vec![2, 1, 2, 0]);
        let mut acc = Accelerators::default();
        acc.ensure_sorted(&tail);
        assert_eq!(acc.sorted_permutation(), &[3, 1, 0, 2]);
    }

    #[test]
    fn sorted_permutation_handles_floats_with_total_order() {
        let tail = TailData::Float(vec![f64::NAN, 1.0, -1.0]);
        let mut acc = Accelerators::default();
        acc.ensure_sorted(&tail);
        // NaN sorts last under total_cmp.
        assert_eq!(acc.sorted_permutation(), &[2, 1, 0]);
    }

    #[test]
    fn sorted_permutation_orders_strings() {
        let mut heap = crate::heap::StrHeap::new();
        let refs = ["pear", "apple", "mango"]
            .iter()
            .map(|s| heap.intern(s))
            .collect();
        let tail = TailData::Str { refs, heap };
        let mut acc = Accelerators::default();
        acc.ensure_sorted(&tail);
        assert_eq!(acc.sorted_permutation(), &[1, 2, 0]);
    }

    #[test]
    fn clear_drops_both_indices() {
        let tail = int_tail(vec![1, 2]);
        let mut acc = Accelerators::default();
        acc.ensure_hash(&tail);
        acc.ensure_sorted(&tail);
        acc.clear();
        assert!(!acc.has_hash());
        assert!(!acc.has_sorted());
    }
}
