//! A disk-resident integer column over the buffer pool.
//!
//! [`PagedColumn`] is the paged counterpart of a BAT tail: `n` values
//! packed into fixed-size pages, every access routed through a
//! [`BufferPool`] so page traffic is observable. This is the substrate
//! for the paged cracking experiments — Figure 1's "for large tables it
//! becomes linear in the number of disk IOs" made concrete, and the
//! place where §3.4.2's disk-block cut-off stops being a configuration
//! knob and becomes the physical block boundary.

use crate::error::StorageResult;
use crate::page::{page_capacity, PageId, PageStore};
use crate::pool::BufferPool;

/// An integer column stored across fixed-size pages.
#[derive(Debug, Clone)]
pub struct PagedColumn {
    pages: Vec<PageId>,
    len: usize,
    per_page: usize,
}

impl PagedColumn {
    /// Materialize `vals` onto the pool's store, filling pages densely.
    pub fn create<S: PageStore>(pool: &mut BufferPool<S>, vals: &[i64]) -> StorageResult<Self> {
        let per_page = page_capacity(pool.page_size());
        let mut pages = Vec::with_capacity(vals.len().div_ceil(per_page.max(1)));
        for chunk in vals.chunks(per_page.max(1)) {
            let id = pool.allocate();
            pool.with_page_mut(id, |page| {
                for &v in chunk {
                    let fit = page.push(v);
                    debug_assert!(fit, "chunk sized to capacity");
                }
            })?;
            pages.push(id);
        }
        Ok(PagedColumn {
            pages,
            len: vals.len(),
            per_page,
        })
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages the column occupies.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Values per (full) page.
    pub fn per_page(&self) -> usize {
        self.per_page
    }

    /// The page holding position `i`.
    pub fn page_of(&self, i: usize) -> PageId {
        self.pages[i / self.per_page]
    }

    /// Read the value at position `i`.
    pub fn get<S: PageStore>(&self, pool: &mut BufferPool<S>, i: usize) -> StorageResult<i64> {
        pool.read_value(self.pages[i / self.per_page], i % self.per_page)
    }

    /// Overwrite the value at position `i`.
    pub fn set<S: PageStore>(
        &self,
        pool: &mut BufferPool<S>,
        i: usize,
        v: i64,
    ) -> StorageResult<()> {
        pool.write_value(self.pages[i / self.per_page], i % self.per_page, v)
    }

    /// Swap positions `a` and `b` (through the pool: up to two pages
    /// touched).
    pub fn swap<S: PageStore>(
        &self,
        pool: &mut BufferPool<S>,
        a: usize,
        b: usize,
    ) -> StorageResult<()> {
        if a == b {
            return Ok(());
        }
        let va = self.get(pool, a)?;
        let vb = self.get(pool, b)?;
        self.set(pool, a, vb)?;
        self.set(pool, b, va)
    }

    /// Fold over `positions ∈ [lo, hi)` page by page — the sequential
    /// scan primitive (one pool access per page, not per value).
    pub fn fold_range<S: PageStore, A>(
        &self,
        pool: &mut BufferPool<S>,
        lo: usize,
        hi: usize,
        mut acc: A,
        mut f: impl FnMut(A, i64) -> A,
    ) -> StorageResult<A> {
        let hi = hi.min(self.len);
        if lo >= hi {
            return Ok(acc);
        }
        let (first_page, last_page) = (lo / self.per_page, (hi - 1) / self.per_page);
        for p in first_page..=last_page {
            let page_lo = if p == first_page {
                lo % self.per_page
            } else {
                0
            };
            let page_hi = if p == last_page {
                (hi - 1) % self.per_page + 1
            } else {
                self.per_page
            };
            acc = pool.with_page(self.pages[p], |page| {
                let mut a = acc;
                for s in page_lo..page_hi {
                    // lint: allow(unwrap) — page_hi is clamped to the page's len
                    a = f(a, page.get(s).expect("slot within page len"));
                }
                a
            })?;
        }
        Ok(acc)
    }

    /// Count the values in `[lo, hi)` matching `pred` by sequential scan.
    pub fn count_matching<S: PageStore>(
        &self,
        pool: &mut BufferPool<S>,
        pred: impl Fn(i64) -> bool,
    ) -> StorageResult<usize> {
        self.fold_range(pool, 0, self.len, 0usize, |n, v| n + usize::from(pred(v)))
    }

    /// Read the whole column back (test/debug surface).
    pub fn to_vec<S: PageStore>(&self, pool: &mut BufferPool<S>) -> StorageResult<Vec<i64>> {
        self.fold_range(
            pool,
            0,
            self.len,
            Vec::with_capacity(self.len),
            |mut v, x| {
                v.push(x);
                v
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::MemDisk;

    fn tiny_pool(frames: usize) -> BufferPool<MemDisk> {
        // 64-byte pages hold 7 values: page boundaries everywhere.
        BufferPool::new(MemDisk::with_page_size(64), frames)
    }

    #[test]
    fn create_and_read_back() {
        let mut pool = tiny_pool(4);
        let vals: Vec<i64> = (0..20).map(|i| i * 3).collect();
        let col = PagedColumn::create(&mut pool, &vals).unwrap();
        assert_eq!(col.len(), 20);
        assert_eq!(col.page_count(), 3, "20 values over 7-value pages");
        assert_eq!(col.to_vec(&mut pool).unwrap(), vals);
        assert_eq!(col.get(&mut pool, 13).unwrap(), 39);
    }

    #[test]
    fn set_and_swap_across_page_boundaries() {
        let mut pool = tiny_pool(4);
        let vals: Vec<i64> = (0..15).collect();
        let col = PagedColumn::create(&mut pool, &vals).unwrap();
        col.set(&mut pool, 0, 100).unwrap();
        // Positions 0 (page 0) and 14 (page 2): a cross-page swap.
        col.swap(&mut pool, 0, 14).unwrap();
        assert_eq!(col.get(&mut pool, 0).unwrap(), 14);
        assert_eq!(col.get(&mut pool, 14).unwrap(), 100);
        // Self-swap is a no-op.
        col.swap(&mut pool, 3, 3).unwrap();
        assert_eq!(col.get(&mut pool, 3).unwrap(), 3);
    }

    #[test]
    fn fold_range_respects_bounds() {
        let mut pool = tiny_pool(4);
        let vals: Vec<i64> = (0..30).collect();
        let col = PagedColumn::create(&mut pool, &vals).unwrap();
        let sum = col
            .fold_range(&mut pool, 5, 12, 0i64, |a, v| a + v)
            .unwrap();
        assert_eq!(sum, (5..12).sum::<i64>());
        // Empty and clamped ranges.
        assert_eq!(col.fold_range(&mut pool, 9, 9, 0, |a, _| a + 1).unwrap(), 0);
        let n = col
            .fold_range(&mut pool, 25, 1000, 0, |a, _| a + 1)
            .unwrap();
        assert_eq!(n, 5, "hi clamps to len");
    }

    #[test]
    fn scan_costs_one_read_per_page_not_per_value() {
        let mut pool = tiny_pool(2);
        let vals: Vec<i64> = (0..70).collect(); // 10 pages
        let col = PagedColumn::create(&mut pool, &vals).unwrap();
        pool.flush().unwrap();
        let reads_before = pool.io_stats().reads;
        let count = col.count_matching(&mut pool, |v| v % 2 == 0).unwrap();
        assert_eq!(count, 35);
        let reads = pool.io_stats().reads - reads_before;
        assert!(
            reads <= 10,
            "a scan through a thrashing pool reads each page once ({reads})"
        );
    }

    #[test]
    fn empty_column() {
        let mut pool = tiny_pool(2);
        let col = PagedColumn::create(&mut pool, &[]).unwrap();
        assert!(col.is_empty());
        assert_eq!(col.page_count(), 0);
        assert_eq!(col.to_vec(&mut pool).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn column_survives_pool_pressure() {
        // A single-frame pool forces every cross-page access through the
        // store; data must still round-trip exactly.
        let mut pool = tiny_pool(1);
        let vals: Vec<i64> = (0..50).rev().collect();
        let col = PagedColumn::create(&mut pool, &vals).unwrap();
        // Reverse the column via pairwise swaps (heavy eviction traffic).
        for i in 0..25 {
            col.swap(&mut pool, i, 49 - i).unwrap();
        }
        let got = col.to_vec(&mut pool).unwrap();
        let want: Vec<i64> = (0..50).collect();
        assert_eq!(got, want);
        assert!(pool.stats().evictions > 0, "the tiny pool really thrashed");
    }
}
