//! Per-BAT statistics.
//!
//! The cracker index of the paper "keeps track of the (min,max) bounds of
//! the (range) attributes, its size, and its location in the database"
//! (§3.2). The bounds and sortedness computed here are exactly that raw
//! material; `cracker-core` copies them into its piece descriptors, and the
//! engine's cost model uses the cardinalities.

use crate::bat::TailData;
use crate::value::Atom;
use serde::{Deserialize, Serialize};

/// Summary statistics of one BAT tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatStats {
    /// Number of BUNs.
    pub count: usize,
    /// Smallest tail value (None for empty BATs).
    pub min: Option<Atom>,
    /// Largest tail value (None for empty BATs).
    pub max: Option<Atom>,
    /// True when tail values are non-decreasing in physical order.
    pub sorted: bool,
    /// Number of distinct tail values.
    pub distinct: usize,
}

impl BatStats {
    /// Compute statistics over a tail column in one pass (plus a hash set
    /// for the distinct count).
    pub fn compute(tail: &TailData) -> Self {
        let n = tail.len();
        if n == 0 {
            return BatStats {
                count: 0,
                min: None,
                max: None,
                sorted: true,
                distinct: 0,
            };
        }
        let mut min = tail.atom_at(0);
        let mut max = tail.atom_at(0);
        let mut sorted = true;
        let mut prev = tail.atom_at(0);
        let mut seen = std::collections::HashSet::with_capacity(n.min(1 << 16));
        seen.insert(prev.clone());
        for pos in 1..n {
            let a = tail.atom_at(pos);
            if a < min {
                min = a.clone();
            }
            if a > max {
                max = a.clone();
            }
            if a < prev {
                sorted = false;
            }
            seen.insert(a.clone());
            prev = a;
        }
        BatStats {
            count: n,
            min: Some(min),
            max: Some(max),
            sorted,
            distinct: seen.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tail_stats() {
        let s = BatStats::compute(&TailData::Int(vec![]));
        assert_eq!(s.count, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert!(s.sorted, "empty column is vacuously sorted");
        assert_eq!(s.distinct, 0);
    }

    #[test]
    fn min_max_and_distinct() {
        let s = BatStats::compute(&TailData::Int(vec![4, -1, 4, 9]));
        assert_eq!(s.min, Some(Atom::Int(-1)));
        assert_eq!(s.max, Some(Atom::Int(9)));
        assert_eq!(s.count, 4);
        assert_eq!(s.distinct, 3);
        assert!(!s.sorted);
    }

    #[test]
    fn sortedness_detection() {
        assert!(BatStats::compute(&TailData::Int(vec![1, 2, 2, 3])).sorted);
        assert!(!BatStats::compute(&TailData::Int(vec![1, 3, 2])).sorted);
        assert!(BatStats::compute(&TailData::Int(vec![7])).sorted);
    }

    #[test]
    fn float_stats_use_total_order() {
        let s = BatStats::compute(&TailData::Float(vec![1.5, -2.0, 0.0]));
        assert_eq!(s.min, Some(Atom::Float(-2.0)));
        assert_eq!(s.max, Some(Atom::Float(1.5)));
    }

    #[test]
    fn string_stats() {
        let mut heap = crate::heap::StrHeap::new();
        let refs = ["b", "a", "c", "a"]
            .iter()
            .map(|s| heap.intern(s))
            .collect();
        let s = BatStats::compute(&TailData::Str { refs, heap });
        assert_eq!(s.min, Some(Atom::from("a")));
        assert_eq!(s.max, Some(Atom::from("c")));
        assert_eq!(s.distinct, 3);
    }
}
