//! BAT views: zero-copy slices of a BAT.
//!
//! "A BAT view appears to the user as an independent binary table, but its
//! physical location is determined by a range of tuples in another BAT.
//! Consequently, the overhead incurred by catalog management is less severe"
//! (§3.4.2). Cracked pieces are exactly such ranges: after the cracker has
//! clustered tuples, every piece is a consecutive slot range, and a
//! [`BatView`] represents it without copying a single BUN.

use crate::bat::{Bat, TailData};
use crate::error::{StorageError, StorageResult};
use crate::stats::BatStats;
use crate::value::{Atom, AtomType, Oid};
use std::ops::Range;
use std::sync::Arc;

/// A read-only window `[start, end)` over a shared BAT.
#[derive(Debug, Clone)]
pub struct BatView {
    parent: Arc<Bat>,
    range: Range<usize>,
}

impl BatView {
    /// View the whole of `parent`.
    pub fn whole(parent: Arc<Bat>) -> Self {
        let range = 0..parent.len();
        BatView { parent, range }
    }

    /// View the BUN range `range` of `parent`.
    pub fn slice(parent: Arc<Bat>, range: Range<usize>) -> StorageResult<Self> {
        if range.end > parent.len() || range.start > range.end {
            return Err(StorageError::OutOfBounds {
                index: range.end,
                len: parent.len(),
            });
        }
        Ok(BatView { parent, range })
    }

    /// Narrow this view to a sub-range (relative to the view).
    pub fn narrow(&self, sub: Range<usize>) -> StorageResult<Self> {
        if sub.end > self.len() || sub.start > sub.end {
            return Err(StorageError::OutOfBounds {
                index: sub.end,
                len: self.len(),
            });
        }
        Ok(BatView {
            parent: Arc::clone(&self.parent),
            range: self.range.start + sub.start..self.range.start + sub.end,
        })
    }

    /// The underlying BAT.
    pub fn parent(&self) -> &Arc<Bat> {
        &self.parent
    }

    /// Physical BUN range inside the parent.
    pub fn bun_range(&self) -> Range<usize> {
        self.range.clone()
    }

    /// Number of BUNs visible through the view.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// True when the view covers no BUNs.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Tail atom type of the underlying BAT.
    pub fn tail_type(&self) -> AtomType {
        self.parent.tail_type()
    }

    /// OID of the view-relative position `pos`.
    pub fn oid_at(&self, pos: usize) -> StorageResult<Oid> {
        self.check(pos)?;
        self.parent.oid_at(self.range.start + pos)
    }

    /// Tail atom at view-relative position `pos`.
    pub fn atom_at(&self, pos: usize) -> StorageResult<Atom> {
        self.check(pos)?;
        self.parent.atom_at(self.range.start + pos)
    }

    /// Borrow the visible tail slice as `&[i64]`.
    pub fn ints(&self) -> StorageResult<&[i64]> {
        Ok(&self.parent.ints()?[self.range.clone()])
    }

    /// Borrow the visible tail slice as `&[f64]`.
    pub fn floats(&self) -> StorageResult<&[f64]> {
        Ok(&self.parent.floats()?[self.range.clone()])
    }

    /// Borrow the visible tail slice as `&[Oid]`.
    pub fn oids(&self) -> StorageResult<&[Oid]> {
        Ok(&self.parent.oids()?[self.range.clone()])
    }

    /// Iterate `(oid, atom)` pairs visible through the view.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, Atom)> + '_ {
        self.range
            .clone()
            .map(move |p| (self.parent.head().oid_at(p), self.parent.tail().atom_at(p)))
    }

    /// Statistics of the visible window (computed fresh; views are cheap
    /// and transient, so no caching).
    pub fn stats(&self) -> BatStats {
        // Build a borrowed-window computation without copying the tail.
        match self.parent.tail() {
            TailData::Int(v) => BatStats::compute(&TailData::Int(v[self.range.clone()].to_vec())),
            TailData::Float(v) => {
                BatStats::compute(&TailData::Float(v[self.range.clone()].to_vec()))
            }
            TailData::Oid(v) => BatStats::compute(&TailData::Oid(v[self.range.clone()].to_vec())),
            TailData::Str { refs, heap } => BatStats::compute(&TailData::Str {
                refs: refs[self.range.clone()].to_vec(),
                heap: heap.clone(),
            }),
        }
    }

    /// Copy the view out into an independent BAT with an explicit head.
    pub fn materialize(&self, name: impl Into<String>) -> StorageResult<Bat> {
        let oids: Vec<Oid> = self
            .range
            .clone()
            .map(|p| self.parent.head().oid_at(p))
            .collect();
        let tail = match self.parent.tail() {
            TailData::Int(v) => TailData::Int(v[self.range.clone()].to_vec()),
            TailData::Float(v) => TailData::Float(v[self.range.clone()].to_vec()),
            TailData::Oid(v) => TailData::Oid(v[self.range.clone()].to_vec()),
            TailData::Str { refs, heap } => {
                let mut new_heap = crate::heap::StrHeap::new();
                let new_refs = refs[self.range.clone()]
                    .iter()
                    .map(|&r| new_heap.intern(heap.get(r)))
                    .collect();
                TailData::Str {
                    refs: new_refs,
                    heap: new_heap,
                }
            }
        };
        Bat::with_explicit_head(name, oids, tail)
    }

    fn check(&self, pos: usize) -> StorageResult<()> {
        if pos < self.len() {
            Ok(())
        } else {
            Err(StorageError::OutOfBounds {
                index: pos,
                len: self.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Arc<Bat> {
        Arc::new(Bat::from_ints("r_a", vec![10, 20, 30, 40, 50]))
    }

    #[test]
    fn whole_view_covers_everything() {
        let v = BatView::whole(sample());
        assert_eq!(v.len(), 5);
        assert_eq!(v.atom_at(4).unwrap(), Atom::Int(50));
    }

    #[test]
    fn slice_offsets_positions_and_oids() {
        let v = BatView::slice(sample(), 1..4).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v.atom_at(0).unwrap(), Atom::Int(20));
        assert_eq!(v.oid_at(0).unwrap(), 1);
        assert_eq!(v.ints().unwrap(), &[20, 30, 40]);
    }

    #[test]
    fn out_of_range_slice_is_rejected() {
        assert!(BatView::slice(sample(), 3..6).is_err());
        let v = BatView::whole(sample());
        assert!(v.atom_at(5).is_err());
    }

    #[test]
    fn narrow_composes_ranges() {
        let v = BatView::slice(sample(), 1..5).unwrap();
        let w = v.narrow(1..3).unwrap();
        assert_eq!(w.ints().unwrap(), &[30, 40]);
        assert_eq!(w.bun_range(), 2..4);
        assert!(v.narrow(2..9).is_err());
    }

    #[test]
    fn empty_view_is_fine() {
        let v = BatView::slice(sample(), 2..2).unwrap();
        assert!(v.is_empty());
        assert_eq!(v.stats().count, 0);
    }

    #[test]
    fn view_stats_reflect_window_only() {
        let v = BatView::slice(sample(), 1..3).unwrap();
        let s = v.stats();
        assert_eq!(s.min, Some(Atom::Int(20)));
        assert_eq!(s.max, Some(Atom::Int(30)));
        assert_eq!(s.count, 2);
    }

    #[test]
    fn materialize_copies_with_explicit_head() {
        let v = BatView::slice(sample(), 3..5).unwrap();
        let b = v.materialize("piece").unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.oid_at(0).unwrap(), 3);
        assert_eq!(b.ints().unwrap(), &[40, 50]);
        assert!(!b.head().is_dense());
    }

    #[test]
    fn materialize_string_view_rebuilds_heap() {
        let b = Arc::new(Bat::from_strs("s", ["x", "y", "z"]));
        let v = BatView::slice(b, 1..3).unwrap();
        let m = v.materialize("piece").unwrap();
        assert_eq!(m.str_at(0).unwrap(), "y");
        assert_eq!(m.str_at(1).unwrap(), "z");
    }

    #[test]
    fn iter_visible_pairs() {
        let v = BatView::slice(sample(), 0..2).unwrap();
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(pairs, vec![(0, Atom::Int(10)), (1, Atom::Int(20))]);
    }
}
