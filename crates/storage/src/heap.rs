//! Variable-sized atom heap.
//!
//! The BAT layout in the paper's Figure 7 keeps fixed-length BUNs in the
//! record area; variable-length atoms (strings) are appended to a separate
//! heap and the BUN tail stores a byte offset. We reproduce that split:
//! [`StrHeap`] owns one contiguous byte buffer, appends return stable
//! offsets, and an optional dictionary makes repeated values share storage
//! (MonetDB's "double elimination").

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Offset of a string inside a [`StrHeap`].
pub type HeapRef = u32;

/// A grow-only heap of UTF-8 strings.
///
/// Each entry is stored as the string bytes preceded by nothing — lengths
/// live in a parallel table inside the heap so that a `HeapRef` alone
/// resolves a value. Entries are never moved, so offsets handed out remain
/// valid for the lifetime of the heap (BAT views depend on this stability).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StrHeap {
    /// Concatenated string bytes.
    bytes: Vec<u8>,
    /// `entries[i] = (offset, len)` for the i-th interned string.
    /// `HeapRef` indexes into this table.
    entries: Vec<(u32, u32)>,
    /// Dictionary for double elimination: string -> existing HeapRef.
    #[serde(skip)]
    dedup: HashMap<String, HeapRef>,
    /// Whether double elimination is active.
    dedup_enabled: bool,
}

impl StrHeap {
    /// Create an empty heap with double elimination enabled.
    pub fn new() -> Self {
        StrHeap {
            bytes: Vec::new(),
            entries: Vec::new(),
            dedup: HashMap::new(),
            dedup_enabled: true,
        }
    }

    /// Create an empty heap without value deduplication (faster appends for
    /// unique-heavy data like the tapestry tables).
    pub fn without_dedup() -> Self {
        StrHeap {
            dedup_enabled: false,
            ..Self::new()
        }
    }

    /// Intern `s`, returning a stable reference. With dedup enabled, equal
    /// strings return the same reference.
    pub fn intern(&mut self, s: &str) -> HeapRef {
        if self.dedup_enabled {
            if let Some(&r) = self.dedup.get(s) {
                return r;
            }
        }
        let offset = self.bytes.len() as u32;
        self.bytes.extend_from_slice(s.as_bytes());
        let r = self.entries.len() as HeapRef;
        self.entries.push((offset, s.len() as u32));
        if self.dedup_enabled {
            self.dedup.insert(s.to_owned(), r);
        }
        r
    }

    /// Resolve a reference to its string slice.
    ///
    /// # Panics
    /// Panics if `r` was not produced by this heap.
    pub fn get(&self, r: HeapRef) -> &str {
        let (off, len) = self.entries[r as usize];
        let slice = &self.bytes[off as usize..(off + len) as usize];
        // Safety of contents: only ever filled from &str in `intern`.
        // lint: allow(unwrap) — bytes come exclusively from &str input
        std::str::from_utf8(slice).expect("heap contains valid UTF-8 by construction")
    }

    /// Number of distinct interned entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes held by the heap buffer.
    pub fn heap_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Verify heap integrity — used on snapshots, where a hand-edited or
    /// truncated file could hold entries [`get`](Self::get) would panic
    /// on: every entry's byte range must lie inside the buffer and hold
    /// valid UTF-8.
    pub fn check(&self) -> Result<(), String> {
        for (i, &(off, len)) in self.entries.iter().enumerate() {
            let end = off as usize + len as usize;
            if end > self.bytes.len() {
                return Err(format!(
                    "heap entry {i} spans {off}..{end} but the buffer has {} bytes",
                    self.bytes.len()
                ));
            }
            if std::str::from_utf8(&self.bytes[off as usize..end]).is_err() {
                return Err(format!("heap entry {i} is not valid UTF-8"));
            }
        }
        Ok(())
    }

    /// Rebuild the (non-serialized) dedup dictionary after deserialization.
    pub fn rebuild_dedup(&mut self) {
        if !self.dedup_enabled {
            return;
        }
        self.dedup.clear();
        for i in 0..self.entries.len() {
            let s = self.get(i as HeapRef).to_owned();
            self.dedup.entry(s).or_insert(i as HeapRef);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_get_round_trip() {
        let mut h = StrHeap::new();
        let a = h.intern("hello");
        let b = h.intern("world");
        assert_eq!(h.get(a), "hello");
        assert_eq!(h.get(b), "world");
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn dedup_returns_same_ref_for_equal_strings() {
        let mut h = StrHeap::new();
        let a = h.intern("dup");
        let b = h.intern("dup");
        assert_eq!(a, b);
        assert_eq!(h.len(), 1);
        assert_eq!(h.heap_bytes(), 3);
    }

    #[test]
    fn without_dedup_stores_duplicates_separately() {
        let mut h = StrHeap::without_dedup();
        let a = h.intern("dup");
        let b = h.intern("dup");
        assert_ne!(a, b);
        assert_eq!(h.len(), 2);
        assert_eq!(h.heap_bytes(), 6);
    }

    #[test]
    fn empty_string_is_representable() {
        let mut h = StrHeap::new();
        let r = h.intern("");
        assert_eq!(h.get(r), "");
        assert!(!h.is_empty());
    }

    #[test]
    fn refs_stay_stable_across_growth() {
        let mut h = StrHeap::without_dedup();
        let first = h.intern("first");
        for i in 0..1000 {
            h.intern(&format!("filler-{i}"));
        }
        assert_eq!(h.get(first), "first");
    }

    #[test]
    fn rebuild_dedup_restores_sharing_after_serde() {
        let mut h = StrHeap::new();
        h.intern("x");
        let json = serde_json::to_string(&h).unwrap();
        let mut back: StrHeap = serde_json::from_str(&json).unwrap();
        back.rebuild_dedup();
        let r = back.intern("x");
        assert_eq!(back.len(), 1, "dedup must be effective after rebuild");
        assert_eq!(back.get(r), "x");
    }

    #[test]
    fn unicode_round_trips() {
        let mut h = StrHeap::new();
        let r = h.intern("héllo → wörld ✓");
        assert_eq!(h.get(r), "héllo → wörld ✓");
    }
}
