//! Binary Association Tables.
//!
//! A [`Bat`] is the unit of storage: a sequence of BUNs (binary units), each
//! a `(head, tail)` pair. The head is an [`Oid`]; for freshly loaded columns
//! it is *dense* (`base + position`), which MonetDB exploits to avoid
//! materializing it at all. The tail is a typed column; strings are offsets
//! into a [`StrHeap`].
//!
//! N-ary relational tables are mapped, exactly as the paper describes for
//! MonetDB's SQL front-end, "into a series \[of\] binary tables with
//! attributes head and tail of type `bat[oid, type]`, where `oid` is the
//! surrogate key and `type` the type of the corresponding attribute"
//! (§3.4.2). The `engine` crate performs that mapping; this module only
//! knows about single BATs.

use crate::accel::Accelerators;
use crate::error::{StorageError, StorageResult};
use crate::heap::{HeapRef, StrHeap};
use crate::stats::BatStats;
use crate::value::{Atom, AtomType, Oid};
use serde::{Deserialize, Serialize};

/// The head column of a BAT.
///
/// Dense heads are the common case: the i-th BUN has OID `base + i`, and no
/// storage is spent on the head at all. Cracking *shuffles* tuples, after
/// which the head must become explicit so the surrogate key still identifies
/// the original tuple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeadColumn {
    /// Virtual head: BUN `i` has OID `base + i`.
    Dense {
        /// OID of the first BUN.
        base: Oid,
    },
    /// Materialized head: BUN `i` has OID `oids[i]`.
    Explicit(Vec<Oid>),
}

impl HeadColumn {
    /// OID of the BUN at `pos`.
    pub fn oid_at(&self, pos: usize) -> Oid {
        match self {
            HeadColumn::Dense { base } => base + pos as Oid,
            HeadColumn::Explicit(v) => v[pos],
        }
    }

    /// True when the head is virtual/dense.
    pub fn is_dense(&self) -> bool {
        matches!(self, HeadColumn::Dense { .. })
    }

    /// Materialize the head as an explicit vector of length `len`.
    pub fn materialize(&self, len: usize) -> Vec<Oid> {
        match self {
            HeadColumn::Dense { base } => (0..len as Oid).map(|i| base + i).collect(),
            HeadColumn::Explicit(v) => v.clone(),
        }
    }
}

/// The typed tail column of a BAT.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TailData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Strings: per-BUN heap references plus the backing heap.
    Str {
        /// Per-BUN reference into `heap`.
        refs: Vec<HeapRef>,
        /// The variable-sized atom heap.
        heap: StrHeap,
    },
    /// OIDs (used for join columns and Ψ-cracking surrogates).
    Oid(Vec<Oid>),
}

impl TailData {
    /// Type of the atoms in this tail.
    pub fn atom_type(&self) -> AtomType {
        match self {
            TailData::Int(_) => AtomType::Int,
            TailData::Float(_) => AtomType::Float,
            TailData::Str { .. } => AtomType::Str,
            TailData::Oid(_) => AtomType::Oid,
        }
    }

    /// Number of BUNs.
    pub fn len(&self) -> usize {
        match self {
            TailData::Int(v) => v.len(),
            TailData::Float(v) => v.len(),
            TailData::Str { refs, .. } => refs.len(),
            TailData::Oid(v) => v.len(),
        }
    }

    /// True when the tail holds no BUNs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The atom at `pos` (owned).
    pub fn atom_at(&self, pos: usize) -> Atom {
        match self {
            TailData::Int(v) => Atom::Int(v[pos]),
            TailData::Float(v) => Atom::Float(v[pos]),
            TailData::Str { refs, heap } => Atom::Str(heap.get(refs[pos]).to_owned()),
            TailData::Oid(v) => Atom::Oid(v[pos]),
        }
    }
}

/// A Binary Association Table: `(head oid, tail value)` pairs plus lazily
/// maintained accelerators and statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bat {
    name: String,
    head: HeadColumn,
    tail: TailData,
    /// Lazily built search accelerators; cleared on mutation.
    #[serde(skip)]
    accel: Accelerators,
    /// Cached statistics; cleared on mutation.
    #[serde(skip)]
    stats: Option<BatStats>,
}

impl Bat {
    /// Create an empty BAT with a dense head starting at OID 0.
    pub fn new(name: impl Into<String>, tail_type: AtomType) -> Self {
        let tail = match tail_type {
            AtomType::Int => TailData::Int(Vec::new()),
            AtomType::Float => TailData::Float(Vec::new()),
            AtomType::Str => TailData::Str {
                refs: Vec::new(),
                heap: StrHeap::new(),
            },
            AtomType::Oid => TailData::Oid(Vec::new()),
        };
        Bat {
            name: name.into(),
            head: HeadColumn::Dense { base: 0 },
            tail,
            accel: Accelerators::default(),
            stats: None,
        }
    }

    /// Build an integer BAT from a vector, with a dense head from OID 0.
    pub fn from_ints(name: impl Into<String>, values: Vec<i64>) -> Self {
        Bat {
            name: name.into(),
            head: HeadColumn::Dense { base: 0 },
            tail: TailData::Int(values),
            accel: Accelerators::default(),
            stats: None,
        }
    }

    /// Build a float BAT from a vector, with a dense head from OID 0.
    pub fn from_floats(name: impl Into<String>, values: Vec<f64>) -> Self {
        Bat {
            name: name.into(),
            head: HeadColumn::Dense { base: 0 },
            tail: TailData::Float(values),
            accel: Accelerators::default(),
            stats: None,
        }
    }

    /// Build an OID-tail BAT (e.g. a join index) with a dense head.
    pub fn from_oids(name: impl Into<String>, values: Vec<Oid>) -> Self {
        Bat {
            name: name.into(),
            head: HeadColumn::Dense { base: 0 },
            tail: TailData::Oid(values),
            accel: Accelerators::default(),
            stats: None,
        }
    }

    /// Build a string BAT from an iterator of `&str`.
    pub fn from_strs<'a>(
        name: impl Into<String>,
        values: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        let mut heap = StrHeap::new();
        let refs = values.into_iter().map(|s| heap.intern(s)).collect();
        Bat {
            name: name.into(),
            head: HeadColumn::Dense { base: 0 },
            tail: TailData::Str { refs, heap },
            accel: Accelerators::default(),
            stats: None,
        }
    }

    /// Build a BAT with an explicit head (after reorganization the head can
    /// no longer be dense).
    pub fn with_explicit_head(
        name: impl Into<String>,
        oids: Vec<Oid>,
        tail: TailData,
    ) -> StorageResult<Self> {
        if oids.len() != tail.len() {
            return Err(StorageError::Misaligned {
                left: oids.len(),
                right: tail.len(),
            });
        }
        Ok(Bat {
            name: name.into(),
            head: HeadColumn::Explicit(oids),
            tail,
            accel: Accelerators::default(),
            stats: None,
        })
    }

    /// The BAT's name (catalog key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the BAT (used when registering cracked pieces).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of BUNs.
    pub fn len(&self) -> usize {
        self.tail.len()
    }

    /// True when the BAT holds no BUNs.
    pub fn is_empty(&self) -> bool {
        self.tail.is_empty()
    }

    /// Tail atom type.
    pub fn tail_type(&self) -> AtomType {
        self.tail.atom_type()
    }

    /// Borrow the head column.
    pub fn head(&self) -> &HeadColumn {
        &self.head
    }

    /// Borrow the tail column.
    pub fn tail(&self) -> &TailData {
        &self.tail
    }

    /// OID of the BUN at `pos`.
    pub fn oid_at(&self, pos: usize) -> StorageResult<Oid> {
        self.check(pos)?;
        Ok(self.head.oid_at(pos))
    }

    /// Tail atom at `pos` (owned).
    pub fn atom_at(&self, pos: usize) -> StorageResult<Atom> {
        self.check(pos)?;
        Ok(self.tail.atom_at(pos))
    }

    /// Borrow the tail as `&[i64]`, if it is an integer column.
    pub fn ints(&self) -> StorageResult<&[i64]> {
        match &self.tail {
            TailData::Int(v) => Ok(v),
            other => Err(StorageError::TypeMismatch {
                expected: AtomType::Int,
                found: other.atom_type(),
            }),
        }
    }

    /// Borrow the tail as `&[f64]`, if it is a float column.
    pub fn floats(&self) -> StorageResult<&[f64]> {
        match &self.tail {
            TailData::Float(v) => Ok(v),
            other => Err(StorageError::TypeMismatch {
                expected: AtomType::Float,
                found: other.atom_type(),
            }),
        }
    }

    /// Borrow the tail as `&[Oid]`, if it is an OID column.
    pub fn oids(&self) -> StorageResult<&[Oid]> {
        match &self.tail {
            TailData::Oid(v) => Ok(v),
            other => Err(StorageError::TypeMismatch {
                expected: AtomType::Oid,
                found: other.atom_type(),
            }),
        }
    }

    /// String at `pos`, if the tail is a string column.
    pub fn str_at(&self, pos: usize) -> StorageResult<&str> {
        self.check(pos)?;
        match &self.tail {
            TailData::Str { refs, heap } => Ok(heap.get(refs[pos])),
            other => Err(StorageError::TypeMismatch {
                expected: AtomType::Str,
                found: other.atom_type(),
            }),
        }
    }

    /// Append an atom, assigning the next dense OID (or pushing onto the
    /// explicit head). New elements are appended at the end, as in the
    /// paper's BAT description ("new elements are appended").
    pub fn append(&mut self, atom: Atom) -> StorageResult<Oid> {
        let next_oid = match &self.head {
            HeadColumn::Dense { base } => base + self.len() as Oid,
            HeadColumn::Explicit(v) => v.iter().copied().max().map_or(0, |m| m + 1),
        };
        self.append_with_oid(next_oid, atom)?;
        Ok(next_oid)
    }

    /// Append an atom under an explicit OID.
    pub fn append_with_oid(&mut self, oid: Oid, atom: Atom) -> StorageResult<()> {
        let expected = self.tail.atom_type();
        if atom.atom_type() != expected {
            return Err(StorageError::TypeMismatch {
                expected,
                found: atom.atom_type(),
            });
        }
        // Keep a dense head dense when the OID continues the run.
        let keeps_dense = match &self.head {
            HeadColumn::Dense { base } => oid == base + self.len() as Oid,
            HeadColumn::Explicit(_) => false,
        };
        if !keeps_dense && self.head.is_dense() {
            self.head = HeadColumn::Explicit(self.head.materialize(self.len()));
        }
        if let HeadColumn::Explicit(v) = &mut self.head {
            v.push(oid);
        }
        match (&mut self.tail, atom) {
            (TailData::Int(v), Atom::Int(x)) => v.push(x),
            (TailData::Float(v), Atom::Float(x)) => v.push(x),
            (TailData::Str { refs, heap }, Atom::Str(s)) => {
                let r = heap.intern(&s);
                refs.push(r);
            }
            (TailData::Oid(v), Atom::Oid(o)) => v.push(o),
            _ => unreachable!("type checked above"),
        }
        self.invalidate();
        Ok(())
    }

    /// Delete the BUN whose head is `oid`. Returns `true` when a BUN was
    /// removed. The paper's layout moves deleted BUNs to the front until
    /// commit; we compact eagerly, which is equivalent after commit.
    pub fn delete_oid(&mut self, oid: Oid) -> bool {
        let pos = (0..self.len()).find(|&p| self.head.oid_at(p) == oid);
        match pos {
            Some(p) => {
                self.remove_position(p);
                true
            }
            None => false,
        }
    }

    /// Remove the BUN at a physical position, shifting later BUNs down.
    fn remove_position(&mut self, pos: usize) {
        if self.head.is_dense() {
            self.head = HeadColumn::Explicit(self.head.materialize(self.len()));
        }
        if let HeadColumn::Explicit(v) = &mut self.head {
            v.remove(pos);
        }
        match &mut self.tail {
            TailData::Int(v) => {
                v.remove(pos);
            }
            TailData::Float(v) => {
                v.remove(pos);
            }
            TailData::Str { refs, .. } => {
                refs.remove(pos);
            }
            TailData::Oid(v) => {
                v.remove(pos);
            }
        }
        self.invalidate();
    }

    /// Iterate `(oid, atom)` pairs in physical order.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, Atom)> + '_ {
        (0..self.len()).map(move |p| (self.head.oid_at(p), self.tail.atom_at(p)))
    }

    /// Statistics ((min,max), sortedness, cardinality), computed on first
    /// use and cached until the next mutation.
    pub fn stats(&mut self) -> &BatStats {
        let tail = &self.tail;
        self.stats.get_or_insert_with(|| BatStats::compute(tail))
    }

    /// Statistics without caching (for immutable contexts such as views).
    pub fn compute_stats(&self) -> BatStats {
        self.stats
            .clone()
            .unwrap_or_else(|| BatStats::compute(&self.tail))
    }

    /// Access (building if necessary) the accelerator set.
    pub fn accelerators(&mut self) -> &mut Accelerators {
        &mut self.accel
    }

    /// Positions whose tail equals `atom`, via the hash accelerator.
    pub fn hash_lookup(&mut self, atom: &Atom) -> Vec<usize> {
        // Split borrows: build the accelerator from the tail, then query.
        self.accel.ensure_hash(&self.tail);
        self.accel.hash_positions(atom)
    }

    /// Sorted permutation of positions by tail value (building the order
    /// accelerator if necessary).
    pub fn sorted_permutation(&mut self) -> &[u32] {
        self.accel.ensure_sorted(&self.tail);
        self.accel.sorted_permutation()
    }

    /// Verify the structural invariants deserialization cannot enforce
    /// (serde rebuilds head and tail independently, so a tampered or
    /// truncated snapshot can produce a BAT the constructors would have
    /// rejected): an explicit head must align with the tail, and a string
    /// tail's references must resolve inside its heap. Called by
    /// `persist::load_catalog` before a deserialized BAT is registered.
    pub fn check_invariants(&self) -> StorageResult<()> {
        if let HeadColumn::Explicit(oids) = &self.head {
            if oids.len() != self.tail.len() {
                return Err(StorageError::PersistFormat(format!(
                    "BAT {:?}: explicit head has {} OIDs but tail has {} BUNs",
                    self.name,
                    oids.len(),
                    self.tail.len()
                )));
            }
        }
        if let TailData::Str { refs, heap } = &self.tail {
            heap.check()
                .map_err(|e| StorageError::PersistFormat(format!("BAT {:?}: {e}", self.name)))?;
            for &r in refs {
                if r as usize >= heap.len() {
                    return Err(StorageError::PersistFormat(format!(
                        "BAT {:?}: tail ref {r} beyond heap of {} entries",
                        self.name,
                        heap.len()
                    )));
                }
            }
        }
        Ok(())
    }

    fn check(&self, pos: usize) -> StorageResult<()> {
        if pos < self.len() {
            Ok(())
        } else {
            Err(StorageError::OutOfBounds {
                index: pos,
                len: self.len(),
            })
        }
    }

    fn invalidate(&mut self) {
        self.accel.clear();
        self.stats = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_head_assigns_sequential_oids() {
        let b = Bat::from_ints("r_a", vec![30, 10, 20]);
        assert!(b.head().is_dense());
        assert_eq!(b.oid_at(0).unwrap(), 0);
        assert_eq!(b.oid_at(2).unwrap(), 2);
        assert_eq!(b.atom_at(1).unwrap(), Atom::Int(10));
    }

    #[test]
    fn append_keeps_dense_head_dense() {
        let mut b = Bat::from_ints("r_a", vec![1, 2]);
        let oid = b.append(Atom::Int(3)).unwrap();
        assert_eq!(oid, 2);
        assert!(b.head().is_dense());
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn append_with_gap_materializes_head() {
        let mut b = Bat::from_ints("r_a", vec![1, 2]);
        b.append_with_oid(40, Atom::Int(3)).unwrap();
        assert!(!b.head().is_dense());
        assert_eq!(b.oid_at(2).unwrap(), 40);
        // Next anonymous append continues past the max OID.
        let oid = b.append(Atom::Int(4)).unwrap();
        assert_eq!(oid, 41);
    }

    #[test]
    fn append_type_mismatch_is_rejected() {
        let mut b = Bat::from_ints("r_a", vec![]);
        let err = b.append(Atom::Float(1.0)).unwrap_err();
        assert_eq!(
            err,
            StorageError::TypeMismatch {
                expected: AtomType::Int,
                found: AtomType::Float
            }
        );
    }

    #[test]
    fn delete_by_oid_compacts_and_preserves_identity() {
        let mut b = Bat::from_ints("r_a", vec![10, 20, 30]);
        assert!(b.delete_oid(1));
        assert_eq!(b.len(), 2);
        assert_eq!(b.oid_at(0).unwrap(), 0);
        assert_eq!(b.oid_at(1).unwrap(), 2);
        assert_eq!(b.atom_at(1).unwrap(), Atom::Int(30));
        assert!(!b.delete_oid(1), "already deleted");
    }

    #[test]
    fn string_bat_round_trips_through_heap() {
        let b = Bat::from_strs("names", ["ada", "bob", "ada"]);
        assert_eq!(b.str_at(0).unwrap(), "ada");
        assert_eq!(b.str_at(2).unwrap(), "ada");
        assert_eq!(b.atom_at(1).unwrap(), Atom::from("bob"));
    }

    #[test]
    fn typed_slice_access_checks_type() {
        let b = Bat::from_floats("f", vec![1.5, 2.5]);
        assert_eq!(b.floats().unwrap(), &[1.5, 2.5]);
        assert!(b.ints().is_err());
    }

    #[test]
    fn out_of_bounds_access_is_an_error() {
        let b = Bat::from_ints("r_a", vec![1]);
        assert_eq!(
            b.atom_at(1).unwrap_err(),
            StorageError::OutOfBounds { index: 1, len: 1 }
        );
    }

    #[test]
    fn explicit_head_requires_alignment() {
        let err = Bat::with_explicit_head("x", vec![1, 2, 3], TailData::Int(vec![1])).unwrap_err();
        assert_eq!(err, StorageError::Misaligned { left: 3, right: 1 });
    }

    #[test]
    fn iter_yields_oid_atom_pairs() {
        let b = Bat::from_ints("r_a", vec![5, 6]);
        let pairs: Vec<_> = b.iter().collect();
        assert_eq!(pairs, vec![(0, Atom::Int(5)), (1, Atom::Int(6))]);
    }

    #[test]
    fn hash_lookup_finds_all_positions() {
        let mut b = Bat::from_ints("r_a", vec![7, 3, 7, 9]);
        let mut pos = b.hash_lookup(&Atom::Int(7));
        pos.sort_unstable();
        assert_eq!(pos, vec![0, 2]);
        assert!(b.hash_lookup(&Atom::Int(100)).is_empty());
    }

    #[test]
    fn sorted_permutation_orders_tail() {
        let mut b = Bat::from_ints("r_a", vec![30, 10, 20]);
        assert_eq!(b.sorted_permutation(), &[1, 2, 0]);
    }

    #[test]
    fn mutation_invalidates_accelerators() {
        let mut b = Bat::from_ints("r_a", vec![2, 1]);
        assert_eq!(b.sorted_permutation(), &[1, 0]);
        b.append(Atom::Int(0)).unwrap();
        assert_eq!(b.sorted_permutation(), &[2, 1, 0]);
    }
}
