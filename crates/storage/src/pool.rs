//! The buffer pool: a bounded page cache over a [`PageStore`].
//!
//! The paper's Figure 1 observes that for large tables response time
//! "becomes linear in the number of disk IOs" — which is to say, the
//! unit that matters below the tuple counters is *page traffic through
//! the buffer pool*. [`BufferPool`] supplies that layer: a fixed number
//! of frames over a simulated disk, CLOCK (second-chance) eviction with
//! write-back of dirty frames, and hit/miss/eviction counters. The
//! paged experiments run scans and cracked accesses through it to show
//! the cracked store's shrinking page footprint.
//!
//! The pool is a single-owner (`&mut self`) structure: every access is
//! one call, frames are only reclaimed between calls, so no pinning
//! protocol is needed. That matches its role here — an instrumented
//! substrate for the experiments, not a concurrent server component
//! (the concurrency story lives in `cracker_core::concurrent` and
//! `storage::txn`).

use crate::error::{StorageError, StorageResult};
use crate::page::{IoStats, PageBuf, PageId, PageStore};
use std::collections::HashMap;

/// Buffer-pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Accesses served from a resident frame.
    pub hits: u64,
    /// Accesses that had to read the page from the store.
    pub misses: u64,
    /// Frames reclaimed to make room.
    pub evictions: u64,
    /// Dirty frames written back on eviction or flush.
    pub writebacks: u64,
}

impl PoolStats {
    /// Hit ratio in `[0, 1]` (1.0 for an untouched pool).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Frame {
    id: PageId,
    buf: PageBuf,
    dirty: bool,
    /// CLOCK reference bit: set on access, cleared as the hand sweeps.
    referenced: bool,
}

/// A bounded cache of pages with CLOCK eviction.
#[derive(Debug)]
pub struct BufferPool<S: PageStore> {
    store: S,
    frames: Vec<Frame>,
    /// Resident map: page id → frame slot.
    map: HashMap<PageId, usize>,
    capacity: usize,
    clock: usize,
    stats: PoolStats,
}

impl<S: PageStore> BufferPool<S> {
    /// A pool of `capacity` frames over `store`.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(store: S, capacity: usize) -> Self {
        assert!(capacity >= 1, "a pool needs at least one frame");
        BufferPool {
            store,
            frames: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            capacity,
            clock: 0,
            stats: PoolStats::default(),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pool counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Disk counters of the underlying store.
    pub fn io_stats(&self) -> IoStats {
        self.store.io_stats()
    }

    /// Reset the pool counters (the disk's counters are its own).
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
    }

    /// The underlying store (e.g. to allocate pages).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Allocate a fresh page on the store.
    pub fn allocate(&mut self) -> PageId {
        self.store.allocate()
    }

    /// Page size of the store.
    pub fn page_size(&self) -> usize {
        self.store.page_size()
    }

    /// Number of currently resident pages.
    pub fn resident(&self) -> usize {
        self.map.len()
    }

    /// True when `id` is resident (no side effects, no counter changes).
    pub fn is_resident(&self, id: PageId) -> bool {
        self.map.contains_key(&id)
    }

    /// Read the value at `slot` of page `id`.
    pub fn read_value(&mut self, id: PageId, slot: usize) -> StorageResult<i64> {
        let f = self.frame_for(id)?;
        self.frames[f].buf.get(slot)
    }

    /// Write the value at `slot` of page `id`, marking the frame dirty.
    pub fn write_value(&mut self, id: PageId, slot: usize, v: i64) -> StorageResult<()> {
        let f = self.frame_for(id)?;
        self.frames[f].buf.set(slot, v)?;
        self.frames[f].dirty = true;
        Ok(())
    }

    /// Append a value to page `id`; returns `false` when the page is
    /// full (the caller allocates the next page).
    pub fn append_value(&mut self, id: PageId, v: i64) -> StorageResult<bool> {
        let f = self.frame_for(id)?;
        let fit = self.frames[f].buf.push(v);
        if fit {
            self.frames[f].dirty = true;
        }
        Ok(fit)
    }

    /// Number of values on page `id`.
    pub fn page_len(&mut self, id: PageId) -> StorageResult<usize> {
        let f = self.frame_for(id)?;
        Ok(self.frames[f].buf.len())
    }

    /// Run a closure over the (read-only) page image — the one-page scan
    /// primitive.
    pub fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&PageBuf) -> R) -> StorageResult<R> {
        let slot = self.frame_for(id)?;
        Ok(f(&self.frames[slot].buf))
    }

    /// Run a closure over the mutable page image, marking it dirty.
    pub fn with_page_mut<R>(
        &mut self,
        id: PageId,
        f: impl FnOnce(&mut PageBuf) -> R,
    ) -> StorageResult<R> {
        let slot = self.frame_for(id)?;
        self.frames[slot].dirty = true;
        Ok(f(&mut self.frames[slot].buf))
    }

    /// Write every dirty frame back to the store.
    pub fn flush(&mut self) -> StorageResult<()> {
        for f in &mut self.frames {
            if f.dirty {
                self.store.write(f.id, &f.buf)?;
                f.dirty = false;
                self.stats.writebacks += 1;
            }
        }
        Ok(())
    }

    /// Locate (or load) the frame holding `id`.
    fn frame_for(&mut self, id: PageId) -> StorageResult<usize> {
        if let Some(&slot) = self.map.get(&id) {
            self.stats.hits += 1;
            self.frames[slot].referenced = true;
            return Ok(slot);
        }
        self.stats.misses += 1;
        let slot = if self.frames.len() < self.capacity {
            // Cold pool: take a fresh frame.
            self.frames.push(Frame {
                id,
                buf: PageBuf::new(self.store.page_size()),
                dirty: false,
                referenced: true,
            });
            self.frames.len() - 1
        } else {
            self.evict()?
        };
        self.store.read(id, &mut self.frames[slot].buf)?;
        self.frames[slot].id = id;
        self.frames[slot].dirty = false;
        self.frames[slot].referenced = true;
        self.map.insert(id, slot);
        Ok(slot)
    }

    /// CLOCK sweep: clear reference bits until an unreferenced frame is
    /// found; write it back if dirty and hand its slot to the caller.
    fn evict(&mut self) -> StorageResult<usize> {
        // Two full sweeps suffice: the first clears every reference bit,
        // the second must find a victim.
        for _ in 0..self.frames.len() * 2 {
            let slot = self.clock;
            self.clock = (self.clock + 1) % self.frames.len();
            if self.frames[slot].referenced {
                self.frames[slot].referenced = false;
                continue;
            }
            let victim = &mut self.frames[slot];
            if victim.dirty {
                self.store.write(victim.id, &victim.buf)?;
                victim.dirty = false;
                self.stats.writebacks += 1;
            }
            self.map.remove(&victim.id);
            self.stats.evictions += 1;
            return Ok(slot);
        }
        Err(StorageError::PoolExhausted {
            capacity: self.capacity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::MemDisk;

    /// A pool of `frames` tiny (7-value) pages with `pages` allocated.
    fn pool(frames: usize, pages: usize) -> (BufferPool<MemDisk>, Vec<PageId>) {
        let mut p = BufferPool::new(MemDisk::with_page_size(64), frames);
        let ids: Vec<PageId> = (0..pages).map(|_| p.allocate()).collect();
        (p, ids)
    }

    #[test]
    fn values_roundtrip_through_the_pool() {
        let (mut p, ids) = pool(2, 1);
        assert!(p.append_value(ids[0], 10).unwrap());
        assert!(p.append_value(ids[0], 20).unwrap());
        assert_eq!(p.read_value(ids[0], 1).unwrap(), 20);
        p.write_value(ids[0], 0, -7).unwrap();
        assert_eq!(p.read_value(ids[0], 0).unwrap(), -7);
        assert_eq!(p.page_len(ids[0]).unwrap(), 2);
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (mut p, ids) = pool(2, 2);
        p.page_len(ids[0]).unwrap(); // miss
        p.page_len(ids[0]).unwrap(); // hit
        p.page_len(ids[1]).unwrap(); // miss
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 2);
        assert!((p.stats().hit_ratio() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn eviction_writes_back_dirty_frames() {
        let (mut p, ids) = pool(1, 3);
        assert!(p.append_value(ids[0], 42).unwrap());
        // Touching other pages forces page 0 out of the single frame.
        p.page_len(ids[1]).unwrap();
        p.page_len(ids[2]).unwrap();
        assert!(p.stats().evictions >= 2);
        assert!(p.stats().writebacks >= 1, "dirty page 0 was written back");
        // The value survives the round trip through the store.
        assert_eq!(p.read_value(ids[0], 0).unwrap(), 42);
        assert_eq!(p.resident(), 1);
    }

    #[test]
    fn clean_evictions_do_not_write() {
        let (mut p, ids) = pool(1, 3);
        p.page_len(ids[0]).unwrap();
        p.page_len(ids[1]).unwrap();
        p.page_len(ids[2]).unwrap();
        assert_eq!(p.stats().writebacks, 0, "read-only traffic writes nothing");
        assert_eq!(p.io_stats().writes, 0);
    }

    #[test]
    fn clock_gives_a_second_chance() {
        let (mut p, ids) = pool(2, 3);
        p.page_len(ids[0]).unwrap();
        p.page_len(ids[1]).unwrap();
        // Fault page 2: the sweep clears both reference bits and evicts
        // the first unreferenced frame (page 0).
        p.page_len(ids[2]).unwrap();
        assert!(!p.is_resident(ids[0]));
        assert!(p.is_resident(ids[1]));
        // Re-reference page 2; its bit protects it from the next fault,
        // which must victimize the un-referenced page 1 instead.
        p.page_len(ids[2]).unwrap();
        p.page_len(ids[0]).unwrap();
        assert!(
            p.is_resident(ids[2]),
            "referenced frame got its second chance"
        );
        assert!(!p.is_resident(ids[1]), "unreferenced frame was the victim");
    }

    #[test]
    fn flush_persists_everything_dirty() {
        let (mut p, ids) = pool(4, 2);
        p.append_value(ids[0], 1).unwrap();
        p.append_value(ids[1], 2).unwrap();
        p.flush().unwrap();
        assert_eq!(p.stats().writebacks, 2);
        // A fresh pool over the same store sees the data.
        let store = std::mem::replace(p.store_mut(), MemDisk::with_page_size(64));
        let mut p2 = BufferPool::new(store, 2);
        assert_eq!(p2.read_value(ids[0], 0).unwrap(), 1);
        assert_eq!(p2.read_value(ids[1], 0).unwrap(), 2);
    }

    #[test]
    fn flush_is_idempotent() {
        let (mut p, ids) = pool(2, 1);
        p.append_value(ids[0], 5).unwrap();
        p.flush().unwrap();
        p.flush().unwrap();
        assert_eq!(p.stats().writebacks, 1, "second flush writes nothing");
    }

    #[test]
    fn larger_pools_trade_memory_for_io() {
        // Scan 8 pages twice with pool sizes 2 and 8: the large pool
        // serves the second sweep from memory.
        let run = |frames: usize| {
            let (mut p, ids) = pool(frames, 8);
            for _ in 0..2 {
                for &id in &ids {
                    p.page_len(id).unwrap();
                }
            }
            (p.stats().hits, p.io_stats().reads)
        };
        let (hits_small, reads_small) = run(2);
        let (hits_big, reads_big) = run(8);
        assert_eq!(hits_small, 0, "2 frames thrash under an 8-page loop");
        assert_eq!(hits_big, 8, "8 frames cache the whole working set");
        assert!(reads_big < reads_small);
    }

    #[test]
    fn unknown_page_and_zero_capacity() {
        let (mut p, _) = pool(2, 0);
        assert!(matches!(
            p.read_value(PageId(5), 0),
            Err(StorageError::UnknownPage(5))
        ));
        let r = std::panic::catch_unwind(|| BufferPool::new(MemDisk::with_page_size(64), 0));
        assert!(r.is_err(), "zero-frame pools are rejected");
    }

    #[test]
    fn with_page_closures() {
        let (mut p, ids) = pool(2, 1);
        p.with_page_mut(ids[0], |page| {
            page.push(7);
            page.push(8);
        })
        .unwrap();
        let sum: i64 = p
            .with_page(ids[0], |page| page.values().iter().sum())
            .unwrap();
        assert_eq!(sum, 15);
    }
}
