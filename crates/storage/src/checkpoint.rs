//! Atomic incremental checkpoints — the durable half of the crash-safety
//! story (`PERSISTENCE.md` at the repository root documents the format;
//! [`crate::wal`] is the other half).
//!
//! A [`CheckpointStore`] owns a directory. Each checkpoint writes one
//! payload file per logical key plus a `MANIFEST.json` naming them; the
//! manifest is the *only* commit point. Every file lands via the same
//! protocol: serialize to a sibling temp file, fsync, rename into place,
//! fsync the directory — so at any crash instant the directory contains
//! either the previous complete checkpoint or the new one, never a torn
//! mixture. Payloads are written under epoch-stamped names and the old
//! manifest keeps referencing the old epoch's files until the new
//! manifest's rename lands, which is what makes the rename atomic *and*
//! incremental at once.
//!
//! **Dirty tracking:** callers pass an opaque fingerprint with each
//! payload. When the previous manifest recorded the same fingerprint for
//! the same key, the old payload file is carried forward by reference and
//! the payload is not re-serialized — a warm column whose crack state
//! didn't change between checkpoints costs one string compare, not an
//! `O(n)` rewrite.
//!
//! **Log rotation:** committing a checkpoint creates a fresh, empty
//! redo-log file for the new epoch and records its name in the manifest.
//! Recovery replays only the log the manifest names, so a crash *before*
//! the manifest rename leaves the old manifest + old log pair intact
//! (updates since the attempted checkpoint replay from the old log), and
//! a crash *after* it leaves the new pair (the old log's records are
//! already folded into the new payloads). Orphaned files from either
//! outcome are garbage-collected on the next successful commit.
//!
//! **Crash injection:** [`CheckpointStore::set_crash_after`] arms a
//! countdown over the writer's durable operations (payload writes,
//! renames, log creation, the manifest write and rename). When it fires,
//! the writer aborts exactly as a dying process would — leaving a torn
//! temp file behind — so tests can probe every write boundary
//! (`tests/recovery_oracle.rs` does, exhaustively).

use crate::error::{StorageError, StorageResult};
use serde::{de::DeserializeOwned, Deserialize, Serialize};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Name of the manifest file inside a checkpoint directory.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

/// Manifest format version.
const MANIFEST_VERSION: u32 = 1;

/// The sibling temp path `write_atomic` stages through: `<file>.tmp` in
/// the same directory (same filesystem, so the rename is atomic).
pub(crate) fn sibling_tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fsync a directory so a just-renamed entry is durable (no-op off Unix,
/// where opening a directory for sync is not portable).
fn sync_dir(dir: &Path) -> StorageResult<()> {
    #[cfg(unix)]
    {
        let d = File::open(dir).map_err(|e| StorageError::PersistIo(e.to_string()))?;
        d.sync_all()
            .map_err(|e| StorageError::PersistIo(e.to_string()))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Write `bytes` to `path` atomically: sibling temp file, fsync, rename,
/// directory fsync. A crash at any point leaves the previous content of
/// `path` (or its absence) intact.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> StorageResult<()> {
    let tmp = sibling_tmp_path(path);
    let io = |e: std::io::Error| StorageError::PersistIo(e.to_string());
    let mut file = File::create(&tmp).map_err(io)?;
    file.write_all(bytes).map_err(io)?;
    file.sync_all().map_err(io)?;
    drop(file);
    fs::rename(&tmp, path).map_err(io)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            sync_dir(parent)?;
        }
    }
    Ok(())
}

/// FNV-1a over a string — stable, dependency-free file-name salt.
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Key sanitized for use in a file name (alphanumerics kept, everything
/// else `_`, truncated) plus an FNV salt so distinct keys never collide.
fn payload_file_name(key: &str, epoch: u64) -> String {
    let mut clean: String = key
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    clean.truncate(48);
    format!("{clean}-{:016x}.{epoch}.json", fnv(key))
}

/// True when `name` matches one of the store's own file-name patterns:
/// `MANIFEST.json`, a payload `<key>-<16 hex>.<epoch>.json`, a redo log
/// `wal.<epoch>.log`, or any of their `.tmp` staging siblings. GC only
/// ever touches these — a foreign file a caller colocates in the
/// checkpoint directory (e.g. a `persist` catalog snapshot, also
/// `.json`) is never the store's to delete.
fn is_store_artifact(name: &str) -> bool {
    let base = name.strip_suffix(".tmp").unwrap_or(name);
    if base == MANIFEST_NAME {
        return true;
    }
    let all_digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    if let Some(epoch) = base
        .strip_prefix("wal.")
        .and_then(|rest| rest.strip_suffix(".log"))
    {
        return all_digits(epoch);
    }
    if let Some(rest) = base.strip_suffix(".json") {
        // `<sanitized key>-<16 hex FNV>.<epoch>` (see `payload_file_name`).
        let Some((head, epoch)) = rest.rsplit_once('.') else {
            return false;
        };
        let Some((key, hash)) = head.rsplit_once('-') else {
            return false;
        };
        return all_digits(epoch)
            && hash.len() == 16
            && hash.bytes().all(|b| b.is_ascii_hexdigit())
            && key.len() <= 48
            && key.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
    false
}

/// One payload recorded in a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Logical key (e.g. `cracker/scenario/v`).
    pub key: String,
    /// Payload file name inside the checkpoint directory.
    pub file: String,
    /// Caller-supplied dirty-tracking fingerprint.
    pub fingerprint: String,
}

/// The commit record of one checkpoint epoch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest format version.
    pub version: u32,
    /// Checkpoint epoch (monotonically increasing).
    pub epoch: u64,
    /// All payloads of this epoch, in `put` order.
    pub entries: Vec<ManifestEntry>,
    /// Redo-log file (inside the directory) for updates after this epoch.
    pub log: String,
}

impl Manifest {
    /// The entry for `key`, if present.
    pub fn entry(&self, key: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A directory of atomic incremental checkpoints. The directory is owned
/// by the store: files not referenced by the current manifest are
/// reclaimed on commit.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    /// Crash-injection countdown over durable writer operations.
    crash_after: Option<u32>,
}

impl CheckpointStore {
    /// Open (creating if necessary) a checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> StorageResult<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StorageError::PersistIo(e.to_string()))?;
        Ok(CheckpointStore {
            dir,
            crash_after: None,
        })
    }

    /// The directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arm the crash-injection countdown: the writer's `n`-th next durable
    /// operation fails exactly as a dying process would (leaving torn temp
    /// artifacts). `n = 0` fails the first operation. Test hook.
    pub fn set_crash_after(&mut self, n: u32) {
        self.crash_after = Some(n);
    }

    /// Disarm crash injection.
    pub fn clear_crash_after(&mut self) {
        self.crash_after = None;
    }

    /// True when the armed crash countdown should fire now (consuming one
    /// operation otherwise).
    fn crash_now(&mut self) -> bool {
        match self.crash_after.as_mut() {
            None => false,
            Some(0) => true,
            Some(n) => {
                *n -= 1;
                false
            }
        }
    }

    /// The current manifest, or `None` when no checkpoint has committed
    /// yet. A present-but-unreadable manifest is a loud error, never
    /// silently treated as empty.
    pub fn manifest(&self) -> StorageResult<Option<Manifest>> {
        let path = self.dir.join(MANIFEST_NAME);
        let doc = match fs::read_to_string(&path) {
            Ok(doc) => doc,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StorageError::PersistIo(e.to_string())),
        };
        let manifest: Manifest =
            serde_json::from_str(&doc).map_err(|e| StorageError::PersistFormat(e.to_string()))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(StorageError::PersistFormat(format!(
                "unsupported manifest version {}",
                manifest.version
            )));
        }
        Ok(Some(manifest))
    }

    /// Deserialize the payload a manifest entry points at.
    pub fn read_payload<T: DeserializeOwned>(&self, entry: &ManifestEntry) -> StorageResult<T> {
        let doc = fs::read_to_string(self.dir.join(&entry.file))
            .map_err(|e| StorageError::PersistIo(format!("payload {:?}: {e}", entry.key)))?;
        serde_json::from_str(&doc)
            .map_err(|e| StorageError::PersistFormat(format!("payload {:?}: {e}", entry.key)))
    }

    /// Absolute path of the redo log a manifest names.
    pub fn log_path(&self, manifest: &Manifest) -> PathBuf {
        self.dir.join(&manifest.log)
    }

    /// Start a new checkpoint epoch. Nothing becomes durable until
    /// [`CheckpointWriter::commit`].
    pub fn begin(&mut self) -> StorageResult<CheckpointWriter<'_>> {
        let prev = self.manifest()?;
        let epoch = prev.as_ref().map_or(1, |m| m.epoch + 1);
        Ok(CheckpointWriter {
            store: self,
            prev,
            epoch,
            entries: Vec::new(),
            reused: 0,
        })
    }
}

/// An in-progress checkpoint. Dropping it without [`commit`] aborts the
/// epoch: the previous manifest stays authoritative and any payload files
/// already written are reclaimed by the next successful commit.
///
/// [`commit`]: CheckpointWriter::commit
#[derive(Debug)]
pub struct CheckpointWriter<'a> {
    store: &'a mut CheckpointStore,
    prev: Option<Manifest>,
    epoch: u64,
    entries: Vec<ManifestEntry>,
    reused: usize,
}

impl CheckpointWriter<'_> {
    /// The epoch this writer will commit.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of payloads carried forward unchanged so far.
    pub fn reused(&self) -> usize {
        self.reused
    }

    /// Stage `payload` under `key`. Returns `true` when the payload was
    /// actually (re-)serialized, `false` when the previous epoch's file
    /// was carried forward because `fingerprint` is unchanged.
    pub fn put<T: Serialize>(
        &mut self,
        key: &str,
        fingerprint: &str,
        payload: &T,
    ) -> StorageResult<bool> {
        if let Some(prev) = self
            .prev
            .as_ref()
            .and_then(|m| m.entry(key))
            .filter(|e| e.fingerprint == fingerprint)
        {
            if self.store.dir.join(&prev.file).exists() {
                self.entries.push(ManifestEntry {
                    key: key.to_string(),
                    file: prev.file.clone(),
                    fingerprint: fingerprint.to_string(),
                });
                self.reused += 1;
                return Ok(false);
            }
        }
        let file = payload_file_name(key, self.epoch);
        let doc =
            serde_json::to_string(payload).map_err(|e| StorageError::Persist(e.to_string()))?;
        self.write_with_injection(&file, doc.as_bytes())?;
        self.entries.push(ManifestEntry {
            key: key.to_string(),
            file,
            fingerprint: fingerprint.to_string(),
        });
        Ok(true)
    }

    /// Atomically publish this epoch: create its empty redo log, then
    /// rename the new manifest into place (the commit point), then
    /// garbage-collect files no longer referenced. Consumes the writer.
    pub fn commit(self) -> StorageResult<Manifest> {
        let log = format!("wal.{}.log", self.epoch);
        let io = |e: std::io::Error| StorageError::PersistIo(e.to_string());
        // The new epoch's (empty) log must be durable before any manifest
        // names it.
        if self.store.crash_now() {
            return Err(StorageError::Persist(
                "injected crash before log creation".to_string(),
            ));
        }
        let log_file = File::create(self.store.dir.join(&log)).map_err(io)?;
        log_file.sync_all().map_err(io)?;
        drop(log_file);
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            epoch: self.epoch,
            entries: self.entries,
            log,
        };
        let doc =
            serde_json::to_string(&manifest).map_err(|e| StorageError::Persist(e.to_string()))?;
        let manifest_path = self.store.dir.join(MANIFEST_NAME);
        let tmp = sibling_tmp_path(&manifest_path);
        if self.store.crash_now() {
            // Die mid-write: a torn manifest temp file, target untouched.
            let _ = fs::write(&tmp, &doc.as_bytes()[..doc.len() / 2]);
            return Err(StorageError::Persist(
                "injected crash during manifest write".to_string(),
            ));
        }
        let mut file = File::create(&tmp).map_err(io)?;
        file.write_all(doc.as_bytes()).map_err(io)?;
        file.sync_all().map_err(io)?;
        drop(file);
        if self.store.crash_now() {
            return Err(StorageError::Persist(
                "injected crash before manifest rename".to_string(),
            ));
        }
        fs::rename(&tmp, &manifest_path).map_err(io)?;
        sync_dir(&self.store.dir)?;
        // Commit point passed: reclaim the store's *own* files the new
        // manifest no longer references — only names matching the store's
        // patterns (`is_store_artifact`); a foreign file colocated in the
        // directory is never deleted. Best-effort — an orphan costs disk,
        // not correctness, and the next commit retries.
        let mut keep: Vec<&str> = vec![MANIFEST_NAME, &manifest.log];
        keep.extend(manifest.entries.iter().map(|e| e.file.as_str()));
        if let Ok(dir) = fs::read_dir(&self.store.dir) {
            for entry in dir.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if is_store_artifact(&name) && !keep.iter().any(|k| *k == name) {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        Ok(manifest)
    }

    /// Write one payload file through the temp-fsync-rename protocol with
    /// the crash countdown applied at both durable boundaries.
    fn write_with_injection(&mut self, file: &str, bytes: &[u8]) -> StorageResult<()> {
        let target = self.store.dir.join(file);
        let tmp = sibling_tmp_path(&target);
        let io = |e: std::io::Error| StorageError::PersistIo(e.to_string());
        if self.store.crash_now() {
            // Die mid-write, leaving a torn temp file.
            let _ = fs::write(&tmp, &bytes[..bytes.len() / 2]);
            return Err(StorageError::Persist(
                "injected crash during payload write".to_string(),
            ));
        }
        let mut f = File::create(&tmp).map_err(io)?;
        f.write_all(bytes).map_err(io)?;
        f.sync_all().map_err(io)?;
        drop(f);
        if self.store.crash_now() {
            return Err(StorageError::Persist(
                "injected crash before payload rename".to_string(),
            ));
        }
        fs::rename(&tmp, &target).map_err(io)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dbcracker-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn checkpoint_roundtrip_and_manifest() {
        let dir = tmp_dir("roundtrip");
        let mut store = CheckpointStore::open(&dir).unwrap();
        assert!(store.manifest().unwrap().is_none());
        let mut w = store.begin().unwrap();
        assert_eq!(w.epoch(), 1);
        assert!(w.put("col/a", "f1", &vec![1i64, 2, 3]).unwrap());
        assert!(w.put("col/b", "f9", &vec![9i64]).unwrap());
        let m = w.commit().unwrap();
        assert_eq!(m.epoch, 1);
        assert_eq!(m.log, "wal.1.log");
        assert!(store.log_path(&m).exists());
        let m2 = store.manifest().unwrap().unwrap();
        assert_eq!(m, m2);
        let a: Vec<i64> = store.read_payload(m2.entry("col/a").unwrap()).unwrap();
        assert_eq!(a, vec![1, 2, 3]);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unchanged_fingerprint_reuses_payload_file() {
        let dir = tmp_dir("reuse");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut w = store.begin().unwrap();
        w.put("col/a", "f1", &vec![1i64, 2]).unwrap();
        w.put("col/b", "f1", &vec![5i64]).unwrap();
        let m1 = w.commit().unwrap();
        let file_a = m1.entry("col/a").unwrap().file.clone();

        let mut w = store.begin().unwrap();
        assert!(
            !w.put("col/a", "f1", &vec![1i64, 2]).unwrap(),
            "clean: reused"
        );
        assert!(
            w.put("col/b", "f2", &vec![6i64]).unwrap(),
            "dirty: rewritten"
        );
        assert_eq!(w.reused(), 1);
        let m2 = w.commit().unwrap();
        assert_eq!(m2.epoch, 2);
        assert_eq!(m2.entry("col/a").unwrap().file, file_a, "same file carried");
        assert_ne!(
            m2.entry("col/b").unwrap().file,
            m1.entry("col/b").unwrap().file
        );
        // Old epoch's b-payload and log were garbage-collected.
        assert!(!dir.join(&m1.entry("col/b").unwrap().file).exists());
        assert!(!dir.join(&m1.log).exists());
        let b: Vec<i64> = store.read_payload(m2.entry("col/b").unwrap()).unwrap();
        assert_eq!(b, vec![6]);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn dropped_keys_vanish_from_the_next_manifest() {
        let dir = tmp_dir("dropped");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut w = store.begin().unwrap();
        w.put("col/a", "f1", &1i64).unwrap();
        w.put("col/b", "f1", &2i64).unwrap();
        w.commit().unwrap();
        let mut w = store.begin().unwrap();
        w.put("col/a", "f1", &1i64).unwrap();
        let m = w.commit().unwrap();
        assert!(m.entry("col/b").is_none());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn gc_reclaims_only_the_stores_own_files() {
        let dir = tmp_dir("gc-foreign");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut w = store.begin().unwrap();
        w.put("col/a", "f1", &vec![1i64]).unwrap();
        let m1 = w.commit().unwrap();
        // Foreign files a caller colocates in the directory — including
        // .json/.log/.tmp names that the old suffix-based GC destroyed.
        let foreign = ["catalog.json", "notes.log", "scratch.tmp", "wal.x.log"];
        for f in &foreign {
            fs::write(dir.join(f), b"not ours").unwrap();
        }
        // Dirty payload forces a rewrite, making epoch 1's file stale.
        let mut w = store.begin().unwrap();
        w.put("col/a", "f2", &vec![2i64]).unwrap();
        let m2 = w.commit().unwrap();
        for f in &foreign {
            assert!(dir.join(f).exists(), "GC must not delete foreign {f}");
        }
        // The store's own stale artifacts are still reclaimed.
        assert!(!dir.join(&m1.entry("col/a").unwrap().file).exists());
        assert!(!dir.join(&m1.log).exists());
        assert!(dir.join(&m2.entry("col/a").unwrap().file).exists());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn store_artifact_pattern_matches_exactly_the_stores_names() {
        assert!(is_store_artifact(MANIFEST_NAME));
        assert!(is_store_artifact("MANIFEST.json.tmp"));
        assert!(is_store_artifact("wal.12.log"));
        assert!(is_store_artifact("wal.12.log.tmp"));
        assert!(is_store_artifact(&payload_file_name("cracker/t/v", 3)));
        assert!(is_store_artifact(&format!(
            "{}.tmp",
            payload_file_name("cracker/t/v", 3)
        )));
        for foreign in [
            "catalog.json",
            "notes.log",
            "scratch.tmp",
            "wal.x.log",
            "wal..log",
            "data-abc.3.json",             // hash not 16 hex chars
            "key-0123456789abcdef.x.json", // epoch not numeric
            "README.md",
        ] {
            assert!(!is_store_artifact(foreign), "{foreign} must be foreign");
        }
    }

    #[test]
    fn crash_at_every_boundary_preserves_the_previous_checkpoint() {
        // Arm the countdown at every successive durable operation of a
        // two-payload checkpoint; whichever boundary dies, the previous
        // manifest and its payloads must stay fully loadable.
        let dir = tmp_dir("crash");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut w = store.begin().unwrap();
        w.put("col/a", "v1", &vec![1i64]).unwrap();
        let m1 = w.commit().unwrap();
        for k in 0..32 {
            store.set_crash_after(k);
            let attempt = (|| -> StorageResult<Manifest> {
                let mut w = store.begin()?;
                w.put("col/a", "v2", &vec![2i64])?;
                w.put("col/c", "v1", &vec![3i64])?;
                w.commit()
            })();
            store.clear_crash_after();
            match attempt {
                Err(_) => {
                    // Crashed: epoch 1 must still be the durable state.
                    let m = store.manifest().unwrap().unwrap();
                    assert_eq!(m, m1, "crash at op {k} corrupted the manifest");
                    let a: Vec<i64> = store.read_payload(m.entry("col/a").unwrap()).unwrap();
                    assert_eq!(a, vec![1], "crash at op {k} corrupted a payload");
                    assert!(store.log_path(&m).exists(), "crash at op {k} lost the log");
                }
                Ok(m) => {
                    // The countdown outlived the commit: fully durable.
                    let a: Vec<i64> = store.read_payload(m.entry("col/a").unwrap()).unwrap();
                    assert_eq!(a, vec![2]);
                    assert!(k >= 7, "a full 2-payload commit takes at least 8 ops");
                    break;
                }
            }
        }
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_manifest_is_a_loud_error() {
        let dir = tmp_dir("torn");
        let store = CheckpointStore::open(&dir).unwrap();
        fs::write(dir.join(MANIFEST_NAME), b"{\"version\":1,\"epo").unwrap();
        assert!(matches!(
            store.manifest().unwrap_err(),
            StorageError::PersistFormat(_)
        ));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_payload_is_an_io_error() {
        let dir = tmp_dir("missing");
        let store = CheckpointStore::open(&dir).unwrap();
        let entry = ManifestEntry {
            key: "col/a".into(),
            file: "nope.json".into(),
            fingerprint: "f".into(),
        };
        assert!(matches!(
            store.read_payload::<Vec<i64>>(&entry).unwrap_err(),
            StorageError::PersistIo(_)
        ));
        fs::remove_dir_all(dir).ok();
    }
}
