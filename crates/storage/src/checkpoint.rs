//! Atomic incremental checkpoints — the durable half of the crash-safety
//! story (`PERSISTENCE.md` at the repository root documents the format;
//! [`crate::wal`] is the other half).
//!
//! A [`CheckpointStore`] owns a directory. Each checkpoint writes one
//! payload file per logical key plus a `MANIFEST.json` naming them; the
//! manifest is the *only* commit point. Every file lands via the same
//! protocol: serialize to a sibling temp file, fsync, rename into place,
//! fsync the directory — so at any crash instant the directory contains
//! either the previous complete checkpoint or the new one, never a torn
//! mixture. Payloads are written under epoch-stamped names and the old
//! manifest keeps referencing the old epoch's files until the new
//! manifest's rename lands, which is what makes the rename atomic *and*
//! incremental at once.
//!
//! **Dirty tracking:** callers pass an opaque fingerprint with each
//! payload. When the previous manifest recorded the same fingerprint for
//! the same key, the old payload file is carried forward by reference and
//! the payload is not re-serialized — a warm column whose crack state
//! didn't change between checkpoints costs one string compare, not an
//! `O(n)` rewrite.
//!
//! **Log rotation:** committing a checkpoint creates a fresh, empty
//! redo-log file for the new epoch and records its name in the manifest.
//! Recovery replays only the log the manifest names, so a crash *before*
//! the manifest rename leaves the old manifest + old log pair intact
//! (updates since the attempted checkpoint replay from the old log), and
//! a crash *after* it leaves the new pair (the old log's records are
//! already folded into the new payloads). Orphaned files from either
//! outcome are garbage-collected on the next successful commit.
//!
//! **Crash injection:** [`CheckpointStore::set_crash_after`] arms a
//! countdown over the writer's durable operations (payload writes,
//! renames, log creation, the manifest write and rename). When it fires,
//! the writer aborts exactly as a dying process would — leaving a torn
//! temp file behind — so tests can probe every write boundary
//! (`tests/recovery_oracle.rs` does, exhaustively).
//!
//! **Fault injection and retry:** every file operation flows through the
//! [`crate::fault`] facade, so tests can also arm *non-fatal* faults
//! (EIO / ENOSPC / short-write / failed-fsync) at the store's named
//! boundaries. Transient faults are retried under the store's
//! [`RetryPolicy`]; each retry restarts the enclosing durable sequence
//! from scratch (the temp file is recreated, rewritten and re-fsynced),
//! which is why even a failed fsync is safe to retry *here* — unlike in
//! the WAL, no byte of a checkpoint file is ever trusted durable until
//! the whole sequence, including a fresh fsync of fresh bytes, has
//! succeeded. Hard faults (ENOSPC, corruption) propagate typed on first
//! occurrence and the previous epoch stays authoritative.

use crate::error::{StorageError, StorageResult};
use crate::fault::{self, sibling_tmp_path, FaultInjector, RetryPolicy};
use serde::{de::DeserializeOwned, Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// Name of the manifest file inside a checkpoint directory.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

/// Manifest format version.
const MANIFEST_VERSION: u32 = 1;

/// FNV-1a over a string — stable, dependency-free file-name salt.
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Key sanitized for use in a file name (alphanumerics kept, everything
/// else `_`, truncated) plus an FNV salt so distinct keys never collide.
fn payload_file_name(key: &str, epoch: u64) -> String {
    let mut clean: String = key
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    clean.truncate(48);
    format!("{clean}-{:016x}.{epoch}.json", fnv(key))
}

/// True when `name` matches one of the store's own file-name patterns:
/// `MANIFEST.json`, a payload `<key>-<16 hex>.<epoch>.json`, a redo log
/// `wal.<epoch>.log`, or any of their `.tmp` staging siblings. GC only
/// ever touches these — a foreign file a caller colocates in the
/// checkpoint directory (e.g. a `persist` catalog snapshot, also
/// `.json`) is never the store's to delete.
fn is_store_artifact(name: &str) -> bool {
    let base = name.strip_suffix(".tmp").unwrap_or(name);
    if base == MANIFEST_NAME {
        return true;
    }
    let all_digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    if let Some(epoch) = base
        .strip_prefix("wal.")
        .and_then(|rest| rest.strip_suffix(".log"))
    {
        return all_digits(epoch);
    }
    if let Some(rest) = base.strip_suffix(".json") {
        // `<sanitized key>-<16 hex FNV>.<epoch>` (see `payload_file_name`).
        let Some((head, epoch)) = rest.rsplit_once('.') else {
            return false;
        };
        let Some((key, hash)) = head.rsplit_once('-') else {
            return false;
        };
        return all_digits(epoch)
            && hash.len() == 16
            && hash.bytes().all(|b| b.is_ascii_hexdigit())
            && key.len() <= 48
            && key.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
    false
}

/// One payload recorded in a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Logical key (e.g. `cracker/scenario/v`).
    pub key: String,
    /// Payload file name inside the checkpoint directory.
    pub file: String,
    /// Caller-supplied dirty-tracking fingerprint.
    pub fingerprint: String,
}

/// The commit record of one checkpoint epoch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest format version.
    pub version: u32,
    /// Checkpoint epoch (monotonically increasing).
    pub epoch: u64,
    /// All payloads of this epoch, in `put` order.
    pub entries: Vec<ManifestEntry>,
    /// Redo-log file (inside the directory) for updates after this epoch.
    pub log: String,
}

impl Manifest {
    /// The entry for `key`, if present.
    pub fn entry(&self, key: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A directory of atomic incremental checkpoints. The directory is owned
/// by the store: files not referenced by the current manifest are
/// reclaimed on commit.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    /// Crash-injection countdown over durable writer operations.
    crash_after: Option<u32>,
    /// Deterministic I/O fault injection at the store's named boundaries.
    injector: FaultInjector,
    /// Retry policy for transient faults (each retry restarts the
    /// enclosing durable sequence from scratch).
    retry: RetryPolicy,
}

impl CheckpointStore {
    /// Open (creating if necessary) a checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> StorageResult<Self> {
        let dir = dir.into();
        fault::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            crash_after: None,
            injector: FaultInjector::new(),
            retry: RetryPolicy::default(),
        })
    }

    /// The directory this store owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fault injector every file operation of this store flows
    /// through — arm error points here (see [`crate::fault`]).
    pub fn injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.injector
    }

    /// Total faults injected into this store so far.
    pub fn faults_injected(&self) -> u64 {
        self.injector.injected()
    }

    /// Replace the retry policy for transient faults.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Arm the crash-injection countdown: the writer's `n`-th next durable
    /// operation fails exactly as a dying process would (leaving torn temp
    /// artifacts). `n = 0` fails the first operation. Test hook.
    pub fn set_crash_after(&mut self, n: u32) {
        self.crash_after = Some(n);
    }

    /// Disarm crash injection.
    pub fn clear_crash_after(&mut self) {
        self.crash_after = None;
    }

    /// True when the armed crash countdown should fire now (consuming one
    /// operation otherwise).
    fn crash_now(&mut self) -> bool {
        match self.crash_after.as_mut() {
            None => false,
            Some(0) => true,
            Some(n) => {
                *n -= 1;
                false
            }
        }
    }

    /// The current manifest, or `None` when no checkpoint has committed
    /// yet. A present-but-unreadable manifest is a loud error, never
    /// silently treated as empty.
    pub fn manifest(&self) -> StorageResult<Option<Manifest>> {
        let path = self.dir.join(MANIFEST_NAME);
        let Some(doc) = fault::read_to_string_opt(&path)? else {
            return Ok(None);
        };
        let manifest: Manifest =
            serde_json::from_str(&doc).map_err(|e| StorageError::PersistFormat(e.to_string()))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(StorageError::PersistFormat(format!(
                "unsupported manifest version {}",
                manifest.version
            )));
        }
        Ok(Some(manifest))
    }

    /// Deserialize the payload a manifest entry points at.
    pub fn read_payload<T: DeserializeOwned>(&self, entry: &ManifestEntry) -> StorageResult<T> {
        let doc = fault::read_to_string(
            &format!("payload {:?}", entry.key),
            &self.dir.join(&entry.file),
        )?;
        serde_json::from_str(&doc)
            .map_err(|e| StorageError::PersistFormat(format!("payload {:?}: {e}", entry.key)))
    }

    /// Absolute path of the redo log a manifest names.
    pub fn log_path(&self, manifest: &Manifest) -> PathBuf {
        self.dir.join(&manifest.log)
    }

    /// Start a new checkpoint epoch. Nothing becomes durable until
    /// [`CheckpointWriter::commit`].
    pub fn begin(&mut self) -> StorageResult<CheckpointWriter<'_>> {
        let prev = self.manifest()?;
        let epoch = prev.as_ref().map_or(1, |m| m.epoch + 1);
        Ok(CheckpointWriter {
            store: self,
            prev,
            epoch,
            entries: Vec::new(),
            reused: 0,
        })
    }
}

/// An in-progress checkpoint. Dropping it without [`commit`] aborts the
/// epoch: the previous manifest stays authoritative and any payload files
/// already written are reclaimed by the next successful commit.
///
/// [`commit`]: CheckpointWriter::commit
#[derive(Debug)]
pub struct CheckpointWriter<'a> {
    store: &'a mut CheckpointStore,
    prev: Option<Manifest>,
    epoch: u64,
    entries: Vec<ManifestEntry>,
    reused: usize,
}

impl CheckpointWriter<'_> {
    /// The epoch this writer will commit.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of payloads carried forward unchanged so far.
    pub fn reused(&self) -> usize {
        self.reused
    }

    /// Stage `payload` under `key`. Returns `true` when the payload was
    /// actually (re-)serialized, `false` when the previous epoch's file
    /// was carried forward because `fingerprint` is unchanged.
    pub fn put<T: Serialize>(
        &mut self,
        key: &str,
        fingerprint: &str,
        payload: &T,
    ) -> StorageResult<bool> {
        if let Some(prev) = self
            .prev
            .as_ref()
            .and_then(|m| m.entry(key))
            .filter(|e| e.fingerprint == fingerprint)
        {
            if self.store.dir.join(&prev.file).exists() {
                self.entries.push(ManifestEntry {
                    key: key.to_string(),
                    file: prev.file.clone(),
                    fingerprint: fingerprint.to_string(),
                });
                self.reused += 1;
                return Ok(false);
            }
        }
        let file = payload_file_name(key, self.epoch);
        let doc =
            serde_json::to_string(payload).map_err(|e| StorageError::Persist(e.to_string()))?;
        self.write_with_injection(&file, doc.as_bytes())?;
        self.entries.push(ManifestEntry {
            key: key.to_string(),
            file,
            fingerprint: fingerprint.to_string(),
        });
        Ok(true)
    }

    /// Atomically publish this epoch: create its empty redo log, then
    /// rename the new manifest into place (the commit point), then
    /// garbage-collect files no longer referenced. Consumes the writer.
    ///
    /// Transient faults in any durable sequence are retried under the
    /// store's [`RetryPolicy`] (the sequence restarts from scratch, see
    /// the module doc). A failure *after* the manifest rename (the
    /// directory fsync) is reported — the caller must treat the commit
    /// outcome as ambiguous and re-read the manifest to learn which
    /// epoch is authoritative.
    pub fn commit(self) -> StorageResult<Manifest> {
        let retry = self.store.retry;
        let log = format!("wal.{}.log", self.epoch);
        // The new epoch's (empty) log must be durable before any manifest
        // names it.
        if self.store.crash_now() {
            return Err(StorageError::Persist(
                "injected crash before log creation".to_string(),
            ));
        }
        let log_target = self.store.dir.join(&log);
        let injector = &mut self.store.injector;
        retry.run(fault::CKPT_LOG_CREATE, || {
            let log_file = injector.create(fault::CKPT_LOG_CREATE, &log_target)?;
            injector.sync_file(fault::CKPT_LOG_FSYNC, &log_file)
        })?;
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            epoch: self.epoch,
            entries: self.entries,
            log,
        };
        let doc =
            serde_json::to_string(&manifest).map_err(|e| StorageError::Persist(e.to_string()))?;
        let manifest_path = self.store.dir.join(MANIFEST_NAME);
        let tmp = sibling_tmp_path(&manifest_path);
        if self.store.crash_now() {
            // Die mid-write: a torn manifest temp file, target untouched.
            // lint: allow(durability-io) — crash simulation must bypass the injector
            let _ = fs::write(&tmp, &doc.as_bytes()[..doc.len() / 2]);
            return Err(StorageError::Persist(
                "injected crash during manifest write".to_string(),
            ));
        }
        let injector = &mut self.store.injector;
        retry.run(fault::CKPT_MANIFEST_WRITE, || {
            let mut file = injector.create(fault::CKPT_MANIFEST_CREATE, &tmp)?;
            injector.write_all(fault::CKPT_MANIFEST_WRITE, &mut file, doc.as_bytes())?;
            injector.sync_file(fault::CKPT_MANIFEST_FSYNC, &file)
        })?;
        if self.store.crash_now() {
            return Err(StorageError::Persist(
                "injected crash before manifest rename".to_string(),
            ));
        }
        let injector = &mut self.store.injector;
        retry.run(fault::CKPT_MANIFEST_RENAME, || {
            injector.rename(fault::CKPT_MANIFEST_RENAME, &tmp, &manifest_path)
        })?;
        let dir = self.store.dir.clone();
        let injector = &mut self.store.injector;
        retry.run(fault::CKPT_DIR_FSYNC, || {
            injector.sync_dir(fault::CKPT_DIR_FSYNC, &dir)
        })?;
        // Commit point passed: reclaim the store's *own* files the new
        // manifest no longer references — only names matching the store's
        // patterns (`is_store_artifact`); a foreign file colocated in the
        // directory is never deleted. Best-effort — an orphan costs disk,
        // not correctness, and the next commit retries.
        let mut keep: Vec<&str> = vec![MANIFEST_NAME, &manifest.log];
        keep.extend(manifest.entries.iter().map(|e| e.file.as_str()));
        for (name, path) in fault::dir_entries(&self.store.dir) {
            if is_store_artifact(&name) && !keep.iter().any(|k| *k == name) {
                fault::remove_file_quiet(&path);
            }
        }
        Ok(manifest)
    }

    /// Write one payload file through the temp-fsync-rename protocol,
    /// with the crash countdown applied at both durable boundaries and
    /// the fault injector at every operation. Transient faults restart
    /// the whole sequence (fresh temp file) under the retry policy.
    fn write_with_injection(&mut self, file: &str, bytes: &[u8]) -> StorageResult<()> {
        let target = self.store.dir.join(file);
        let tmp = sibling_tmp_path(&target);
        if self.store.crash_now() {
            // Die mid-write, leaving a torn temp file.
            // lint: allow(durability-io) — crash simulation must bypass the injector
            let _ = fs::write(&tmp, &bytes[..bytes.len() / 2]);
            return Err(StorageError::Persist(
                "injected crash during payload write".to_string(),
            ));
        }
        let crash_before_rename = self.store.crash_now();
        let retry = self.store.retry;
        let injector = &mut self.store.injector;
        retry.run(fault::CKPT_PAYLOAD_WRITE, || {
            let mut f = injector.create(fault::CKPT_PAYLOAD_CREATE, &tmp)?;
            injector.write_all(fault::CKPT_PAYLOAD_WRITE, &mut f, bytes)?;
            injector.sync_file(fault::CKPT_PAYLOAD_FSYNC, &f)
        })?;
        if crash_before_rename {
            return Err(StorageError::Persist(
                "injected crash before payload rename".to_string(),
            ));
        }
        let injector = &mut self.store.injector;
        retry.run(fault::CKPT_PAYLOAD_RENAME, || {
            injector.rename(fault::CKPT_PAYLOAD_RENAME, &tmp, &target)
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dbcracker-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn checkpoint_roundtrip_and_manifest() {
        let dir = tmp_dir("roundtrip");
        let mut store = CheckpointStore::open(&dir).unwrap();
        assert!(store.manifest().unwrap().is_none());
        let mut w = store.begin().unwrap();
        assert_eq!(w.epoch(), 1);
        assert!(w.put("col/a", "f1", &vec![1i64, 2, 3]).unwrap());
        assert!(w.put("col/b", "f9", &vec![9i64]).unwrap());
        let m = w.commit().unwrap();
        assert_eq!(m.epoch, 1);
        assert_eq!(m.log, "wal.1.log");
        assert!(store.log_path(&m).exists());
        let m2 = store.manifest().unwrap().unwrap();
        assert_eq!(m, m2);
        let a: Vec<i64> = store.read_payload(m2.entry("col/a").unwrap()).unwrap();
        assert_eq!(a, vec![1, 2, 3]);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unchanged_fingerprint_reuses_payload_file() {
        let dir = tmp_dir("reuse");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut w = store.begin().unwrap();
        w.put("col/a", "f1", &vec![1i64, 2]).unwrap();
        w.put("col/b", "f1", &vec![5i64]).unwrap();
        let m1 = w.commit().unwrap();
        let file_a = m1.entry("col/a").unwrap().file.clone();

        let mut w = store.begin().unwrap();
        assert!(
            !w.put("col/a", "f1", &vec![1i64, 2]).unwrap(),
            "clean: reused"
        );
        assert!(
            w.put("col/b", "f2", &vec![6i64]).unwrap(),
            "dirty: rewritten"
        );
        assert_eq!(w.reused(), 1);
        let m2 = w.commit().unwrap();
        assert_eq!(m2.epoch, 2);
        assert_eq!(m2.entry("col/a").unwrap().file, file_a, "same file carried");
        assert_ne!(
            m2.entry("col/b").unwrap().file,
            m1.entry("col/b").unwrap().file
        );
        // Old epoch's b-payload and log were garbage-collected.
        assert!(!dir.join(&m1.entry("col/b").unwrap().file).exists());
        assert!(!dir.join(&m1.log).exists());
        let b: Vec<i64> = store.read_payload(m2.entry("col/b").unwrap()).unwrap();
        assert_eq!(b, vec![6]);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn dropped_keys_vanish_from_the_next_manifest() {
        let dir = tmp_dir("dropped");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut w = store.begin().unwrap();
        w.put("col/a", "f1", &1i64).unwrap();
        w.put("col/b", "f1", &2i64).unwrap();
        w.commit().unwrap();
        let mut w = store.begin().unwrap();
        w.put("col/a", "f1", &1i64).unwrap();
        let m = w.commit().unwrap();
        assert!(m.entry("col/b").is_none());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn gc_reclaims_only_the_stores_own_files() {
        let dir = tmp_dir("gc-foreign");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut w = store.begin().unwrap();
        w.put("col/a", "f1", &vec![1i64]).unwrap();
        let m1 = w.commit().unwrap();
        // Foreign files a caller colocates in the directory — including
        // .json/.log/.tmp names that the old suffix-based GC destroyed.
        let foreign = ["catalog.json", "notes.log", "scratch.tmp", "wal.x.log"];
        for f in &foreign {
            fs::write(dir.join(f), b"not ours").unwrap();
        }
        // Dirty payload forces a rewrite, making epoch 1's file stale.
        let mut w = store.begin().unwrap();
        w.put("col/a", "f2", &vec![2i64]).unwrap();
        let m2 = w.commit().unwrap();
        for f in &foreign {
            assert!(dir.join(f).exists(), "GC must not delete foreign {f}");
        }
        // The store's own stale artifacts are still reclaimed.
        assert!(!dir.join(&m1.entry("col/a").unwrap().file).exists());
        assert!(!dir.join(&m1.log).exists());
        assert!(dir.join(&m2.entry("col/a").unwrap().file).exists());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn store_artifact_pattern_matches_exactly_the_stores_names() {
        assert!(is_store_artifact(MANIFEST_NAME));
        assert!(is_store_artifact("MANIFEST.json.tmp"));
        assert!(is_store_artifact("wal.12.log"));
        assert!(is_store_artifact("wal.12.log.tmp"));
        assert!(is_store_artifact(&payload_file_name("cracker/t/v", 3)));
        assert!(is_store_artifact(&format!(
            "{}.tmp",
            payload_file_name("cracker/t/v", 3)
        )));
        for foreign in [
            "catalog.json",
            "notes.log",
            "scratch.tmp",
            "wal.x.log",
            "wal..log",
            "data-abc.3.json",             // hash not 16 hex chars
            "key-0123456789abcdef.x.json", // epoch not numeric
            "README.md",
        ] {
            assert!(!is_store_artifact(foreign), "{foreign} must be foreign");
        }
    }

    #[test]
    fn crash_at_every_boundary_preserves_the_previous_checkpoint() {
        // Arm the countdown at every successive durable operation of a
        // two-payload checkpoint; whichever boundary dies, the previous
        // manifest and its payloads must stay fully loadable.
        let dir = tmp_dir("crash");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut w = store.begin().unwrap();
        w.put("col/a", "v1", &vec![1i64]).unwrap();
        let m1 = w.commit().unwrap();
        for k in 0..32 {
            store.set_crash_after(k);
            let attempt = (|| -> StorageResult<Manifest> {
                let mut w = store.begin()?;
                w.put("col/a", "v2", &vec![2i64])?;
                w.put("col/c", "v1", &vec![3i64])?;
                w.commit()
            })();
            store.clear_crash_after();
            match attempt {
                Err(_) => {
                    // Crashed: epoch 1 must still be the durable state.
                    let m = store.manifest().unwrap().unwrap();
                    assert_eq!(m, m1, "crash at op {k} corrupted the manifest");
                    let a: Vec<i64> = store.read_payload(m.entry("col/a").unwrap()).unwrap();
                    assert_eq!(a, vec![1], "crash at op {k} corrupted a payload");
                    assert!(store.log_path(&m).exists(), "crash at op {k} lost the log");
                }
                Ok(m) => {
                    // The countdown outlived the commit: fully durable.
                    let a: Vec<i64> = store.read_payload(m.entry("col/a").unwrap()).unwrap();
                    assert_eq!(a, vec![2]);
                    assert!(k >= 7, "a full 2-payload commit takes at least 8 ops");
                    break;
                }
            }
        }
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_manifest_is_a_loud_error() {
        let dir = tmp_dir("torn");
        let store = CheckpointStore::open(&dir).unwrap();
        fs::write(dir.join(MANIFEST_NAME), b"{\"version\":1,\"epo").unwrap();
        assert!(matches!(
            store.manifest().unwrap_err(),
            StorageError::PersistFormat(_)
        ));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_payload_is_an_io_error() {
        let dir = tmp_dir("missing");
        let store = CheckpointStore::open(&dir).unwrap();
        let entry = ManifestEntry {
            key: "col/a".into(),
            file: "nope.json".into(),
            fingerprint: "f".into(),
        };
        assert!(matches!(
            store.read_payload::<Vec<i64>>(&entry).unwrap_err(),
            StorageError::PersistIo(_)
        ));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn transient_payload_fault_is_retried_and_the_checkpoint_commits() {
        use crate::fault::FaultKind;
        let dir = tmp_dir("retry-payload");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.set_retry_policy(RetryPolicy::new(3, std::time::Duration::from_micros(1)));
        store
            .injector_mut()
            .arm(fault::CKPT_PAYLOAD_WRITE, 0, FaultKind::Eio, 1);
        let mut w = store.begin().unwrap();
        w.put("col/a", "f1", &vec![7i64, 8]).unwrap();
        let m = w.commit().unwrap();
        assert_eq!(store.faults_injected(), 1, "the armed fault fired");
        let a: Vec<i64> = store.read_payload(m.entry("col/a").unwrap()).unwrap();
        assert_eq!(a, vec![7, 8], "retried write landed the full payload");
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn short_write_fault_retries_to_a_complete_payload() {
        use crate::fault::FaultKind;
        let dir = tmp_dir("retry-short");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.set_retry_policy(RetryPolicy::new(2, std::time::Duration::from_micros(1)));
        store
            .injector_mut()
            .arm(fault::CKPT_PAYLOAD_WRITE, 0, FaultKind::ShortWrite, 1);
        let mut w = store.begin().unwrap();
        w.put("col/a", "f1", &vec![1i64, 2, 3, 4, 5]).unwrap();
        let m = w.commit().unwrap();
        // The retry recreated the temp file from scratch, so the torn
        // half-write cannot have leaked into the durable payload.
        let a: Vec<i64> = store.read_payload(m.entry("col/a").unwrap()).unwrap();
        assert_eq!(a, vec![1, 2, 3, 4, 5]);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn exhausted_retries_surface_transient_error_and_keep_the_old_manifest() {
        use crate::fault::FaultKind;
        let dir = tmp_dir("retry-exhaust");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut w = store.begin().unwrap();
        w.put("col/a", "f1", &vec![1i64]).unwrap();
        let m1 = w.commit().unwrap();
        // Epoch 2: the manifest fsync fails more times than the policy
        // tolerates, so the commit must fail transiently — and epoch 1
        // must remain the authoritative durable state.
        store.set_retry_policy(RetryPolicy::new(1, std::time::Duration::from_micros(1)));
        store
            .injector_mut()
            .arm(fault::CKPT_MANIFEST_FSYNC, 0, FaultKind::FsyncFail, 10);
        let mut w = store.begin().unwrap();
        w.put("col/a", "f2", &vec![2i64]).unwrap();
        let err = w.commit().unwrap_err();
        assert!(err.is_transient(), "{err}");
        store.injector_mut().disarm_all();
        let m = store.manifest().unwrap().unwrap();
        assert_eq!(m, m1, "failed commit must not move the manifest");
        let a: Vec<i64> = store.read_payload(m.entry("col/a").unwrap()).unwrap();
        assert_eq!(a, vec![1]);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn enospc_is_typed_disk_full_and_never_retried() {
        use crate::fault::FaultKind;
        let dir = tmp_dir("enospc");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.set_retry_policy(RetryPolicy::new(5, std::time::Duration::from_micros(1)));
        store
            .injector_mut()
            .arm(fault::CKPT_PAYLOAD_WRITE, 0, FaultKind::Enospc, 1);
        let mut w = store.begin().unwrap();
        let err = w.put("col/a", "f1", &vec![1i64]).unwrap_err();
        assert!(matches!(err, StorageError::DiskFull(_)), "{err}");
        drop(w);
        assert_eq!(
            store.faults_injected(),
            1,
            "a hard fault must not be retried into further injections"
        );
        fs::remove_dir_all(dir).ok();
    }
}
