//! Append-only redo log for the pending-update overlay — the volatile
//! half of the durability story ([`crate::checkpoint`] is the durable
//! half; `PERSISTENCE.md` at the repository root documents the protocol).
//!
//! Staged inserts/deletes are the only crack state that mutates between
//! checkpoints on the query path, so they are the only state worth
//! logging: one line-delimited JSON record per staged update, fsync'd on
//! a **group-commit interval** (every record by default; every N-th for
//! throughput at the cost of the tail). Recovery replays the log on top
//! of the last checkpoint.
//!
//! The log is never truncated in place: a checkpoint *rotates* to a fresh
//! epoch-named file (`wal.<epoch>.log`) and the manifest rename atomically
//! switches which log recovery reads — see [`crate::checkpoint`].
//!
//! **Torn tails.** A crash mid-append leaves a partial final line. Replay
//! tolerates exactly that: an unparseable *last* line is ignored (the
//! record was not durable), while a malformed line anywhere *before* the
//! end means real corruption and fails loudly as
//! [`StorageError::PersistFormat`]. The two tail shapes are
//! distinguished and reported ([`TornTail`]): a final line with **no
//! trailing newline** is unambiguously a torn append, while a
//! **newline-terminated but unparseable** final line is tolerated too
//! (sector writes are not ordered, so the newline can land while the
//! body does not) but is the shape genuine last-record corruption would
//! take — repairing one is announced on stderr and surfaced to callers
//! via [`RedoLog::replay_and_repair_reporting`], never discarded
//! silently.
//!
//! **Faults and poison.** Every file operation flows through the
//! [`crate::fault`] facade, so tests can arm deterministic EIO /
//! ENOSPC / short-write / failed-fsync at the log's named boundaries.
//! A failed *write* is retried under the log's [`RetryPolicy`] after
//! rolling the file back to the last acknowledged length (so a torn
//! half-record never ends up with a fresh record concatenated onto it).
//! A failed group-commit **fsync** is never retried: the kernel may
//! have dropped the dirty pages, so the log **poisons** itself — the
//! un-acknowledged tail is rolled back best-effort, and every later
//! append fails with [`StorageError::WalPoisoned`] until the log
//! [`rotate`](RedoLog::rotate)s to a fresh epoch file (which a
//! checkpoint commit does). Anything else would let appends *after* a
//! failed fsync claim durability the device never promised.

use crate::error::{StorageError, StorageResult};
use crate::fault::{self, FaultInjector, RetryPolicy};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::path::{Path, PathBuf};

/// One redo record: a staged update against a named cracked column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A staged insert of `(oid, value)` into `table.column`.
    Insert {
        /// Table the cracked column belongs to.
        table: String,
        /// Column name.
        column: String,
        /// OID of the inserted tuple.
        oid: u32,
        /// Inserted value.
        value: i64,
    },
    /// A staged delete of `oid` from `table.column`.
    Delete {
        /// Table the cracked column belongs to.
        table: String,
        /// Column name.
        column: String,
        /// OID of the deleted tuple.
        oid: u32,
    },
}

/// A non-durable log tail discarded by replay, described so callers (and
/// operators) can tell *what kind* of tail it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Bytes past the durable prefix (what repair truncates).
    pub bytes: usize,
    /// `false`: the tail had no trailing newline — unambiguously a torn
    /// append, the expected crash artifact. `true`: the tail was a
    /// complete, newline-terminated line whose body did not parse — still
    /// tolerated (an unluckily-ordered torn append looks like this), but
    /// also the shape genuine corruption of the last durable record (bit
    /// rot, truncated value) would take, so it is worth an operator's
    /// attention.
    pub newline_terminated: bool,
    /// Parse error of the discarded line (newline-terminated case only).
    pub detail: String,
}

/// An open, append-only redo log.
#[derive(Debug)]
pub struct RedoLog {
    path: PathBuf,
    file: File,
    /// Fsync once per this many appends (1 = every append durable).
    group_commit: usize,
    /// Appends since the last fsync.
    unsynced: usize,
    /// Total records appended through this handle.
    appended: u64,
    /// Crash-injection countdown over appends (test hook).
    crash_after: Option<u32>,
    /// Bytes acknowledged to callers (append returned `Ok`): the rollback
    /// point when a write or group-commit fsync fails mid-record.
    acked_len: u64,
    /// Set when a group-commit fsync failed: the reason, kept until
    /// [`rotate`](Self::rotate).
    poisoned: Option<String>,
    /// Deterministic I/O fault injection at the log's named boundaries.
    injector: FaultInjector,
    /// Retry policy for transient write faults (never fsync).
    retry: RetryPolicy,
}

impl RedoLog {
    /// Open `path` for appending, creating it if absent — the normal way
    /// to continue the log the current manifest names.
    pub fn open_append(path: impl Into<PathBuf>) -> StorageResult<Self> {
        let path = path.into();
        let mut injector = FaultInjector::new();
        let file = injector.open_append(fault::WAL_OPEN, &path)?;
        let acked_len = file
            .metadata()
            .map_err(|e| StorageError::PersistIo(e.to_string()))?
            .len();
        Ok(RedoLog {
            path,
            file,
            group_commit: 1,
            unsynced: 0,
            appended: 0,
            crash_after: None,
            acked_len,
            poisoned: None,
            injector,
            retry: RetryPolicy::default(),
        })
    }

    /// Set the group-commit interval: `sync` runs after every `every`-th
    /// append instead of every append. `every = 1` (the default) makes
    /// each append durable before returning; larger intervals trade the
    /// unsynced tail for throughput.
    pub fn with_group_commit(mut self, every: usize) -> Self {
        self.group_commit = every.max(1);
        self
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Arm the crash-injection countdown: the `n`-th next append dies
    /// mid-write, leaving a torn final line exactly as a crashing process
    /// would. Test hook.
    pub fn set_crash_after(&mut self, n: u32) {
        self.crash_after = Some(n);
    }

    /// The fault injector every file operation of this log flows
    /// through — arm error points here (see [`crate::fault`]).
    pub fn injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.injector
    }

    /// Total faults injected into this log so far.
    pub fn faults_injected(&self) -> u64 {
        self.injector.injected()
    }

    /// Replace the retry policy for transient append-write faults.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The poison reason, when a failed group-commit fsync has poisoned
    /// the log (cleared only by [`rotate`](Self::rotate)).
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Append one record, fsyncing per the group-commit interval.
    ///
    /// A transient write fault is retried under the log's
    /// [`RetryPolicy`], rolling the file back to the last acknowledged
    /// length first so a retried record never concatenates onto its own
    /// torn half. A failed group-commit fsync is **not** retried: the
    /// un-acknowledged tail is rolled back best-effort and the log is
    /// poisoned until rotation (see the module doc).
    pub fn append(&mut self, rec: &WalRecord) -> StorageResult<()> {
        if let Some(reason) = &self.poisoned {
            return Err(StorageError::WalPoisoned(reason.clone()));
        }
        let mut line =
            serde_json::to_string(rec).map_err(|e| StorageError::Persist(e.to_string()))?;
        line.push('\n');
        if let Some(n) = self.crash_after.as_mut() {
            if *n == 0 {
                // Die mid-write: half the record reaches the file, no
                // newline, no fsync of the rest.
                let half = &line.as_bytes()[..line.len() / 2];
                let _ = self
                    .injector
                    .write_all(fault::WAL_APPEND_WRITE, &mut self.file, half);
                let _ = self.injector.sync_file(fault::WAL_APPEND_FSYNC, &self.file);
                return Err(StorageError::Persist(
                    "injected crash during log append".to_string(),
                ));
            }
            *n -= 1;
        }
        // Each write attempt first rolls the file back to the acked
        // prefix — a short write on attempt N must not leak a torn
        // half-record under attempt N+1's bytes.
        let RedoLog {
            file,
            injector,
            retry,
            acked_len,
            ..
        } = self;
        retry.run(fault::WAL_APPEND_WRITE, || {
            injector.set_len(fault::WAL_APPEND_WRITE, file, *acked_len)?;
            injector.write_all(fault::WAL_APPEND_WRITE, file, line.as_bytes())
        })?;
        self.unsynced += 1;
        if self.unsynced >= self.group_commit {
            if let Err(e) = self.injector.sync_file(fault::WAL_APPEND_FSYNC, &self.file) {
                // fsyncgate: durability of everything since the last
                // successful sync is unknown. Roll back the record we
                // have not acknowledged, refuse the append, and poison
                // the log so no later append can claim durability.
                // lint: allow(durability-io) — the rollback itself must not be injectable
                let _ = self.file.set_len(self.acked_len);
                self.poisoned = Some(e.to_string());
                return Err(e);
            }
            self.unsynced = 0;
        }
        self.acked_len += line.len() as u64;
        self.appended += 1;
        Ok(())
    }

    /// Append a batch of records as one atomic group: all lines are
    /// serialized into a single buffer and land in **one** retried write,
    /// so a failed append acknowledges *none* of the batch — the
    /// write-ahead contract holds for the group exactly as for a single
    /// record. The group-commit fsync counter advances by the batch size
    /// (a batch of N counts as N appends toward the interval); a failed
    /// fsync rolls the whole buffer back and poisons the log. Staging N
    /// rows therefore costs one write syscall plus at most one fsync
    /// instead of N of each.
    pub fn append_batch(&mut self, recs: &[WalRecord]) -> StorageResult<()> {
        if recs.is_empty() {
            return Ok(());
        }
        if let Some(reason) = &self.poisoned {
            return Err(StorageError::WalPoisoned(reason.clone()));
        }
        let mut buf = String::new();
        for rec in recs {
            let line =
                serde_json::to_string(rec).map_err(|e| StorageError::Persist(e.to_string()))?;
            buf.push_str(&line);
            buf.push('\n');
        }
        if let Some(n) = self.crash_after.as_mut() {
            if *n == 0 {
                // Die mid-write: half the batch reaches the file, no
                // newline, no fsync of the rest.
                let half = &buf.as_bytes()[..buf.len() / 2];
                let _ = self
                    .injector
                    .write_all(fault::WAL_APPEND_WRITE, &mut self.file, half);
                let _ = self.injector.sync_file(fault::WAL_APPEND_FSYNC, &self.file);
                return Err(StorageError::Persist(
                    "injected crash during log append".to_string(),
                ));
            }
            *n -= 1;
        }
        // Same torn-half discipline as `append`: every attempt rolls the
        // file back to the acked prefix first, so a short write of the
        // batch never leaks a partial group under a retry's bytes.
        let RedoLog {
            file,
            injector,
            retry,
            acked_len,
            ..
        } = self;
        retry.run(fault::WAL_APPEND_WRITE, || {
            injector.set_len(fault::WAL_APPEND_WRITE, file, *acked_len)?;
            injector.write_all(fault::WAL_APPEND_WRITE, file, buf.as_bytes())
        })?;
        self.unsynced += recs.len();
        if self.unsynced >= self.group_commit {
            if let Err(e) = self.injector.sync_file(fault::WAL_APPEND_FSYNC, &self.file) {
                // fsyncgate, batch edition: none of the group has been
                // acknowledged, so the whole buffer is rolled back and
                // the log poisoned — a failed append stages nothing.
                // lint: allow(durability-io) — the rollback itself must not be injectable
                let _ = self.file.set_len(self.acked_len);
                self.poisoned = Some(e.to_string());
                return Err(e);
            }
            self.unsynced = 0;
        }
        self.acked_len += buf.len() as u64;
        self.appended += recs.len() as u64;
        Ok(())
    }

    /// Force everything appended so far to durable storage. Failure
    /// poisons the log (no rollback: the unsynced records were already
    /// acknowledged under the group-commit contract, so their loss is a
    /// crash-shaped event for recovery, not something to silently undo).
    pub fn sync(&mut self) -> StorageResult<()> {
        if let Some(reason) = &self.poisoned {
            return Err(StorageError::WalPoisoned(reason.clone()));
        }
        if let Err(e) = self.injector.sync_file(fault::WAL_APPEND_FSYNC, &self.file) {
            self.poisoned = Some(e.to_string());
            return Err(e);
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Poison the log explicitly: every later append fails typed
    /// ([`StorageError::WalPoisoned`]) until [`rotate`](Self::rotate)
    /// succeeds. For callers that discover the open handle no longer
    /// matches the authoritative manifest (e.g. a checkpoint committed
    /// but the new epoch's log failed to open) — appending to a stale
    /// path would silently lose the records at recovery.
    pub fn poison(&mut self, reason: &str) {
        self.poisoned = Some(reason.to_owned());
    }

    /// Rotate to a fresh epoch file at `new_path`: open it for append,
    /// reset the acknowledged length, and clear any poison. This is the
    /// only way a poisoned log becomes usable again — the checkpoint
    /// commit that rotates the log has folded the overlay into durable
    /// payloads, so the poisoned epoch's unknown tail no longer matters.
    pub fn rotate(&mut self, new_path: impl Into<PathBuf>) -> StorageResult<()> {
        let path = new_path.into();
        let file = self.injector.open_append(fault::WAL_OPEN, &path)?;
        let acked_len = file
            .metadata()
            .map_err(|e| StorageError::PersistIo(e.to_string()))?
            .len();
        self.path = path;
        self.file = file;
        self.unsynced = 0;
        self.appended = 0;
        self.crash_after = None;
        self.acked_len = acked_len;
        self.poisoned = None;
        Ok(())
    }

    /// Read back every durable record of the log at `path`, in append
    /// order. A missing file is an empty log (the checkpoint that names a
    /// log creates it, but a crash can land between manifest read and log
    /// creation on foreign tools — absence is never corruption). A
    /// partial *final* line (torn append) is skipped; malformed content
    /// anywhere else is a loud [`StorageError::PersistFormat`].
    pub fn replay(path: impl AsRef<Path>) -> StorageResult<Vec<WalRecord>> {
        let Some(doc) = read_log(path.as_ref())? else {
            return Ok(Vec::new());
        };
        Ok(scan(&doc)?.0)
    }

    /// Like [`replay`](Self::replay), but additionally truncate a torn
    /// tail off the file, so a recovered process can safely continue
    /// appending to the same log — without the repair, fresh appends
    /// would concatenate onto the partial line and corrupt the record
    /// *after* the tear. Repairing a newline-terminated-but-unparseable
    /// tail (possible last-record corruption, see [`TornTail`]) is
    /// announced on stderr; use
    /// [`replay_and_repair_reporting`](Self::replay_and_repair_reporting)
    /// to receive the tail description instead.
    pub fn replay_and_repair(path: impl AsRef<Path>) -> StorageResult<Vec<WalRecord>> {
        Ok(Self::replay_and_repair_reporting(path)?.0)
    }

    /// [`replay_and_repair`](Self::replay_and_repair), returning a
    /// description of the discarded tail (if any) alongside the records.
    pub fn replay_and_repair_reporting(
        path: impl AsRef<Path>,
    ) -> StorageResult<(Vec<WalRecord>, Option<TornTail>)> {
        let path = path.as_ref();
        let Some(doc) = read_log(path)? else {
            return Ok((Vec::new(), None));
        };
        let (out, durable_len, tail) = scan(&doc)?;
        if durable_len < doc.len() {
            if let Some(t) = tail.as_ref().filter(|t| t.newline_terminated) {
                eprintln!(
                    "wal: discarding a complete but unparseable final record \
                     ({} bytes) in {path:?}: {} — treated as a torn append, \
                     but if this record was durable it is lost data",
                    t.bytes, t.detail
                );
            }
            fault::truncate_file(path, durable_len as u64)?;
        }
        Ok((out, tail))
    }
}

/// Read a log file, mapping absence to `None` (an empty log).
fn read_log(path: &Path) -> StorageResult<Option<String>> {
    fault::read_to_string_opt(path)
}

/// Parse the durable prefix of a log document: the records, the byte
/// length of the prefix they occupy (everything past it is a discarded
/// tail), and a description of that tail when one exists.
fn scan(doc: &str) -> StorageResult<(Vec<WalRecord>, usize, Option<TornTail>)> {
    let mut out = Vec::new();
    let mut durable_len = 0usize;
    let mut lines = doc.split_inclusive('\n').peekable();
    while let Some(line) = lines.next() {
        let is_last = lines.peek().is_none();
        let body = line.strip_suffix('\n');
        match body {
            None => {
                // No trailing newline: can only legally happen on the
                // final line — a torn append whose record was not durable.
                debug_assert!(is_last);
                let tail = TornTail {
                    bytes: doc.len() - durable_len,
                    newline_terminated: false,
                    detail: String::new(),
                };
                return Ok((out, durable_len, Some(tail)));
            }
            Some(body) => {
                if body.is_empty() {
                    durable_len += line.len();
                    continue;
                }
                match serde_json::from_str::<WalRecord>(body) {
                    Ok(rec) => {
                        out.push(rec);
                        durable_len += line.len();
                    }
                    Err(e) if is_last => {
                        // A complete, newline-terminated but unparseable
                        // final line: tolerated like a torn append (the
                        // newline may have landed while the body did not —
                        // sector writes are not ordered), but reported as
                        // such — this is also what genuine corruption of
                        // the last durable record looks like, and it must
                        // not vanish without a trace.
                        let tail = TornTail {
                            bytes: doc.len() - durable_len,
                            newline_terminated: true,
                            detail: e.to_string(),
                        };
                        return Ok((out, durable_len, Some(tail)));
                    }
                    Err(e) => {
                        return Err(StorageError::PersistFormat(format!(
                            "redo log record {} malformed: {e}",
                            out.len()
                        )));
                    }
                }
            }
        }
    }
    Ok((out, durable_len, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dbcracker-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn rec_i(oid: u32, value: i64) -> WalRecord {
        WalRecord::Insert {
            table: "t".into(),
            column: "v".into(),
            oid,
            value,
        }
    }

    fn rec_d(oid: u32) -> WalRecord {
        WalRecord::Delete {
            table: "t".into(),
            column: "v".into(),
            oid,
        }
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = tmp("roundtrip");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(7, 42)).unwrap();
        log.append(&rec_d(3)).unwrap();
        log.append(&rec_i(8, -5)).unwrap();
        assert_eq!(log.appended(), 3);
        drop(log);
        let got = RedoLog::replay(&path).unwrap();
        assert_eq!(got, vec![rec_i(7, 42), rec_d(3), rec_i(8, -5)]);
        // Re-open appends, not truncates.
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_d(9)).unwrap();
        drop(log);
        assert_eq!(RedoLog::replay(&path).unwrap().len(), 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_log_replays_empty() {
        assert!(RedoLog::replay("/nonexistent/dir/wal.1.log")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn group_commit_interval_still_replays_everything_after_sync() {
        let path = tmp("group");
        let mut log = RedoLog::open_append(&path).unwrap().with_group_commit(8);
        for i in 0..20 {
            log.append(&rec_i(i, i as i64)).unwrap();
        }
        log.sync().unwrap();
        drop(log);
        assert_eq!(RedoLog::replay(&path).unwrap().len(), 20);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_final_line_is_skipped_not_fatal() {
        let path = tmp("torn");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        log.append(&rec_i(2, 20)).unwrap();
        log.set_crash_after(0);
        assert!(log.append(&rec_i(3, 30)).is_err());
        drop(log);
        // The two durable records replay; the torn third is ignored.
        let got = RedoLog::replay(&path).unwrap();
        assert_eq!(got, vec![rec_i(1, 10), rec_i(2, 20)]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn repair_truncates_torn_tail_so_appends_continue_safely() {
        let path = tmp("repair");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        log.set_crash_after(0);
        assert!(log.append(&rec_i(2, 20)).is_err());
        drop(log);
        // Recovery repairs the tear, then appending resumes cleanly.
        let got = RedoLog::replay_and_repair(&path).unwrap();
        assert_eq!(got, vec![rec_i(1, 10)]);
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(3, 30)).unwrap();
        drop(log);
        assert_eq!(
            RedoLog::replay(&path).unwrap(),
            vec![rec_i(1, 10), rec_i(3, 30)],
            "post-repair append must not merge into the torn line"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn crash_countdown_fires_on_the_nth_append() {
        let path = tmp("countdown");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.set_crash_after(2);
        assert!(log.append(&rec_i(1, 1)).is_ok());
        assert!(log.append(&rec_i(2, 2)).is_ok());
        assert!(log.append(&rec_i(3, 3)).is_err());
        drop(log);
        assert_eq!(RedoLog::replay(&path).unwrap().len(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_tail_shapes_are_distinguished_and_reported() {
        // A crash-torn tail has no trailing newline.
        let path = tmp("tail-torn");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        log.set_crash_after(0);
        assert!(log.append(&rec_i(2, 20)).is_err());
        drop(log);
        let (got, tail) = RedoLog::replay_and_repair_reporting(&path).unwrap();
        assert_eq!(got, vec![rec_i(1, 10)]);
        let tail = tail.expect("torn tail must be reported");
        assert!(!tail.newline_terminated);
        assert!(tail.bytes > 0);
        std::fs::remove_file(&path).ok();

        // A newline-terminated but unparseable final line is tolerated
        // too, but reported as the possibly-corrupt shape, with the
        // dropped byte count and the parse error.
        let path = tmp("tail-corrupt");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        drop(log);
        let mut doc = std::fs::read_to_string(&path).unwrap();
        let durable = doc.len();
        doc.push_str("garbage not json\n");
        std::fs::write(&path, &doc).unwrap();
        let (got, tail) = RedoLog::replay_and_repair_reporting(&path).unwrap();
        assert_eq!(got, vec![rec_i(1, 10)]);
        let tail = tail.expect("unparseable final line must be reported");
        assert!(tail.newline_terminated);
        assert_eq!(tail.bytes, "garbage not json\n".len());
        assert!(!tail.detail.is_empty(), "parse error carried in detail");
        // Repair truncated exactly to the durable prefix.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), durable as u64);
        std::fs::remove_file(&path).ok();

        // A fully durable log reports no tail.
        let path = tmp("tail-clean");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        drop(log);
        let (_, tail) = RedoLog::replay_and_repair_reporting(&path).unwrap();
        assert!(tail.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_before_the_end_is_loud() {
        let path = tmp("corrupt");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        drop(log);
        // Splice garbage *between* two valid records.
        let mut doc = std::fs::read_to_string(&path).unwrap();
        doc.push_str("garbage not json\n");
        std::fs::write(&path, &doc).unwrap();
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(2, 20)).unwrap();
        drop(log);
        assert!(matches!(
            RedoLog::replay(&path).unwrap_err(),
            StorageError::PersistFormat(_)
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn failed_group_commit_fsync_poisons_until_rotation() {
        // The satellite regression: append → injected fsync failure →
        // every later append must fail typed until `rotate`, and the
        // un-acknowledged record must not survive in the file.
        let path = tmp("poison");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        log.injector_mut()
            .arm(fault::WAL_APPEND_FSYNC, 0, FaultKind::FsyncFail, 1);
        let err = log.append(&rec_i(2, 20)).unwrap_err();
        assert!(err.is_transient(), "the fsync fault itself is I/O-shaped");
        assert!(log.poisoned().is_some(), "log must be poisoned");
        // Later appends are refused with the typed poison error even
        // though nothing is armed any more.
        let err = log.append(&rec_i(3, 30)).unwrap_err();
        assert!(
            matches!(err, StorageError::WalPoisoned(_)),
            "got {err} instead of WalPoisoned"
        );
        assert!(matches!(
            log.sync().unwrap_err(),
            StorageError::WalPoisoned(_)
        ));
        // Only the acknowledged record is in the file.
        assert_eq!(RedoLog::replay(&path).unwrap(), vec![rec_i(1, 10)]);
        // Rotation to a fresh epoch file clears the poison.
        let path2 = tmp("poison-rotated");
        log.rotate(&path2).unwrap();
        assert!(log.poisoned().is_none());
        log.append(&rec_i(4, 40)).unwrap();
        drop(log);
        assert_eq!(RedoLog::replay(&path2).unwrap(), vec![rec_i(4, 40)]);
        assert_eq!(
            RedoLog::replay(&path).unwrap(),
            vec![rec_i(1, 10)],
            "the poisoned epoch keeps only its acknowledged prefix"
        );
        std::fs::remove_file(path).ok();
        std::fs::remove_file(path2).ok();
    }

    #[test]
    fn transient_write_fault_is_retried_to_success() {
        let path = tmp("retry");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.set_retry_policy(RetryPolicy::new(3, std::time::Duration::ZERO));
        log.append(&rec_i(1, 10)).unwrap();
        // Two consecutive short writes, then the device recovers: the
        // append must succeed and the torn halves must not leak into the
        // record stream.
        log.injector_mut()
            .arm(fault::WAL_APPEND_WRITE, 0, FaultKind::ShortWrite, 2);
        log.append(&rec_i(2, 20)).unwrap();
        assert_eq!(log.faults_injected(), 2);
        drop(log);
        assert_eq!(
            RedoLog::replay(&path).unwrap(),
            vec![rec_i(1, 10), rec_i(2, 20)],
            "retried append must leave a clean record stream"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn exhausted_retries_surface_the_typed_error_and_keep_the_log_clean() {
        let path = tmp("exhaust");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.set_retry_policy(RetryPolicy::new(1, std::time::Duration::ZERO));
        log.append(&rec_i(1, 10)).unwrap();
        log.injector_mut()
            .arm(fault::WAL_APPEND_WRITE, 0, FaultKind::ShortWrite, 5);
        let err = log.append(&rec_i(2, 20)).unwrap_err();
        assert!(err.is_transient());
        assert!(log.poisoned().is_none(), "write faults do not poison");
        log.injector_mut().disarm_all();
        // The failed record's torn half was rolled back on the retry
        // path, so the next append continues a clean stream.
        log.append(&rec_i(3, 30)).unwrap();
        drop(log);
        let got = RedoLog::replay_and_repair(&path).unwrap();
        assert_eq!(got, vec![rec_i(1, 10), rec_i(3, 30)]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn hard_enospc_propagates_without_retry() {
        let path = tmp("enospc");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.set_retry_policy(RetryPolicy::new(5, std::time::Duration::ZERO));
        log.injector_mut()
            .arm(fault::WAL_APPEND_WRITE, 0, FaultKind::Enospc, 1);
        let err = log.append(&rec_i(1, 1)).unwrap_err();
        assert!(matches!(err, StorageError::DiskFull(_)));
        assert_eq!(log.faults_injected(), 1, "hard faults are not retried");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let path = tmp("blank");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        drop(log);
        let mut doc = std::fs::read_to_string(&path).unwrap();
        doc.push('\n');
        std::fs::write(&path, &doc).unwrap();
        assert_eq!(RedoLog::replay(&path).unwrap().len(), 1);
    }
}
