//! Append-only redo log for the pending-update overlay — the volatile
//! half of the durability story ([`crate::checkpoint`] is the durable
//! half; `PERSISTENCE.md` at the repository root documents the protocol).
//!
//! Staged inserts/deletes are the only crack state that mutates between
//! checkpoints on the query path, so they are the only state worth
//! logging: one line-delimited JSON record per staged update, fsync'd on
//! a **group-commit interval** (every record by default; every N-th for
//! throughput at the cost of the tail). Recovery replays the log on top
//! of the last checkpoint.
//!
//! The log is never truncated in place: a checkpoint *rotates* to a fresh
//! epoch-named file (`wal.<epoch>.log`) and the manifest rename atomically
//! switches which log recovery reads — see [`crate::checkpoint`].
//!
//! **Torn tails.** A crash mid-append leaves a partial final line. Replay
//! tolerates exactly that: an unparseable *last* line is ignored (the
//! record was not durable), while a malformed line anywhere *before* the
//! end means real corruption and fails loudly as
//! [`StorageError::PersistFormat`]. The two tail shapes are
//! distinguished and reported ([`TornTail`]): a final line with **no
//! trailing newline** is unambiguously a torn append, while a
//! **newline-terminated but unparseable** final line is tolerated too
//! (sector writes are not ordered, so the newline can land while the
//! body does not) but is the shape genuine last-record corruption would
//! take — repairing one is announced on stderr and surfaced to callers
//! via [`RedoLog::replay_and_repair_reporting`], never discarded
//! silently.

use crate::error::{StorageError, StorageResult};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One redo record: a staged update against a named cracked column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A staged insert of `(oid, value)` into `table.column`.
    Insert {
        /// Table the cracked column belongs to.
        table: String,
        /// Column name.
        column: String,
        /// OID of the inserted tuple.
        oid: u32,
        /// Inserted value.
        value: i64,
    },
    /// A staged delete of `oid` from `table.column`.
    Delete {
        /// Table the cracked column belongs to.
        table: String,
        /// Column name.
        column: String,
        /// OID of the deleted tuple.
        oid: u32,
    },
}

/// A non-durable log tail discarded by replay, described so callers (and
/// operators) can tell *what kind* of tail it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Bytes past the durable prefix (what repair truncates).
    pub bytes: usize,
    /// `false`: the tail had no trailing newline — unambiguously a torn
    /// append, the expected crash artifact. `true`: the tail was a
    /// complete, newline-terminated line whose body did not parse — still
    /// tolerated (an unluckily-ordered torn append looks like this), but
    /// also the shape genuine corruption of the last durable record (bit
    /// rot, truncated value) would take, so it is worth an operator's
    /// attention.
    pub newline_terminated: bool,
    /// Parse error of the discarded line (newline-terminated case only).
    pub detail: String,
}

/// An open, append-only redo log.
#[derive(Debug)]
pub struct RedoLog {
    path: PathBuf,
    file: File,
    /// Fsync once per this many appends (1 = every append durable).
    group_commit: usize,
    /// Appends since the last fsync.
    unsynced: usize,
    /// Total records appended through this handle.
    appended: u64,
    /// Crash-injection countdown over appends (test hook).
    crash_after: Option<u32>,
}

impl RedoLog {
    /// Open `path` for appending, creating it if absent — the normal way
    /// to continue the log the current manifest names.
    pub fn open_append(path: impl Into<PathBuf>) -> StorageResult<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StorageError::PersistIo(e.to_string()))?;
        Ok(RedoLog {
            path,
            file,
            group_commit: 1,
            unsynced: 0,
            appended: 0,
            crash_after: None,
        })
    }

    /// Set the group-commit interval: `sync` runs after every `every`-th
    /// append instead of every append. `every = 1` (the default) makes
    /// each append durable before returning; larger intervals trade the
    /// unsynced tail for throughput.
    pub fn with_group_commit(mut self, every: usize) -> Self {
        self.group_commit = every.max(1);
        self
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Arm the crash-injection countdown: the `n`-th next append dies
    /// mid-write, leaving a torn final line exactly as a crashing process
    /// would. Test hook.
    pub fn set_crash_after(&mut self, n: u32) {
        self.crash_after = Some(n);
    }

    /// Append one record, fsyncing per the group-commit interval.
    pub fn append(&mut self, rec: &WalRecord) -> StorageResult<()> {
        let io = |e: std::io::Error| StorageError::PersistIo(e.to_string());
        let mut line =
            serde_json::to_string(rec).map_err(|e| StorageError::Persist(e.to_string()))?;
        line.push('\n');
        if let Some(n) = self.crash_after.as_mut() {
            if *n == 0 {
                // Die mid-write: half the record reaches the file, no
                // newline, no fsync of the rest.
                let half = &line.as_bytes()[..line.len() / 2];
                let _ = self.file.write_all(half);
                let _ = self.file.sync_all();
                return Err(StorageError::Persist(
                    "injected crash during log append".to_string(),
                ));
            }
            *n -= 1;
        }
        self.file.write_all(line.as_bytes()).map_err(io)?;
        self.appended += 1;
        self.unsynced += 1;
        if self.unsynced >= self.group_commit {
            self.sync()?;
        }
        Ok(())
    }

    /// Force everything appended so far to durable storage.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.file
            .sync_all()
            .map_err(|e| StorageError::PersistIo(e.to_string()))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Read back every durable record of the log at `path`, in append
    /// order. A missing file is an empty log (the checkpoint that names a
    /// log creates it, but a crash can land between manifest read and log
    /// creation on foreign tools — absence is never corruption). A
    /// partial *final* line (torn append) is skipped; malformed content
    /// anywhere else is a loud [`StorageError::PersistFormat`].
    pub fn replay(path: impl AsRef<Path>) -> StorageResult<Vec<WalRecord>> {
        let Some(doc) = read_log(path.as_ref())? else {
            return Ok(Vec::new());
        };
        Ok(scan(&doc)?.0)
    }

    /// Like [`replay`](Self::replay), but additionally truncate a torn
    /// tail off the file, so a recovered process can safely continue
    /// appending to the same log — without the repair, fresh appends
    /// would concatenate onto the partial line and corrupt the record
    /// *after* the tear. Repairing a newline-terminated-but-unparseable
    /// tail (possible last-record corruption, see [`TornTail`]) is
    /// announced on stderr; use
    /// [`replay_and_repair_reporting`](Self::replay_and_repair_reporting)
    /// to receive the tail description instead.
    pub fn replay_and_repair(path: impl AsRef<Path>) -> StorageResult<Vec<WalRecord>> {
        Ok(Self::replay_and_repair_reporting(path)?.0)
    }

    /// [`replay_and_repair`](Self::replay_and_repair), returning a
    /// description of the discarded tail (if any) alongside the records.
    pub fn replay_and_repair_reporting(
        path: impl AsRef<Path>,
    ) -> StorageResult<(Vec<WalRecord>, Option<TornTail>)> {
        let path = path.as_ref();
        let Some(doc) = read_log(path)? else {
            return Ok((Vec::new(), None));
        };
        let (out, durable_len, tail) = scan(&doc)?;
        if durable_len < doc.len() {
            if let Some(t) = tail.as_ref().filter(|t| t.newline_terminated) {
                eprintln!(
                    "wal: discarding a complete but unparseable final record \
                     ({} bytes) in {path:?}: {} — treated as a torn append, \
                     but if this record was durable it is lost data",
                    t.bytes, t.detail
                );
            }
            let io = |e: std::io::Error| StorageError::PersistIo(e.to_string());
            let file = OpenOptions::new().write(true).open(path).map_err(io)?;
            file.set_len(durable_len as u64).map_err(io)?;
            file.sync_all().map_err(io)?;
        }
        Ok((out, tail))
    }
}

/// Read a log file, mapping absence to `None` (an empty log).
fn read_log(path: &Path) -> StorageResult<Option<String>> {
    match std::fs::read_to_string(path) {
        Ok(doc) => Ok(Some(doc)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(StorageError::PersistIo(e.to_string())),
    }
}

/// Parse the durable prefix of a log document: the records, the byte
/// length of the prefix they occupy (everything past it is a discarded
/// tail), and a description of that tail when one exists.
fn scan(doc: &str) -> StorageResult<(Vec<WalRecord>, usize, Option<TornTail>)> {
    let mut out = Vec::new();
    let mut durable_len = 0usize;
    let mut lines = doc.split_inclusive('\n').peekable();
    while let Some(line) = lines.next() {
        let is_last = lines.peek().is_none();
        let body = line.strip_suffix('\n');
        match body {
            None => {
                // No trailing newline: can only legally happen on the
                // final line — a torn append whose record was not durable.
                debug_assert!(is_last);
                let tail = TornTail {
                    bytes: doc.len() - durable_len,
                    newline_terminated: false,
                    detail: String::new(),
                };
                return Ok((out, durable_len, Some(tail)));
            }
            Some(body) => {
                if body.is_empty() {
                    durable_len += line.len();
                    continue;
                }
                match serde_json::from_str::<WalRecord>(body) {
                    Ok(rec) => {
                        out.push(rec);
                        durable_len += line.len();
                    }
                    Err(e) if is_last => {
                        // A complete, newline-terminated but unparseable
                        // final line: tolerated like a torn append (the
                        // newline may have landed while the body did not —
                        // sector writes are not ordered), but reported as
                        // such — this is also what genuine corruption of
                        // the last durable record looks like, and it must
                        // not vanish without a trace.
                        let tail = TornTail {
                            bytes: doc.len() - durable_len,
                            newline_terminated: true,
                            detail: e.to_string(),
                        };
                        return Ok((out, durable_len, Some(tail)));
                    }
                    Err(e) => {
                        return Err(StorageError::PersistFormat(format!(
                            "redo log record {} malformed: {e}",
                            out.len()
                        )));
                    }
                }
            }
        }
    }
    Ok((out, durable_len, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dbcracker-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn rec_i(oid: u32, value: i64) -> WalRecord {
        WalRecord::Insert {
            table: "t".into(),
            column: "v".into(),
            oid,
            value,
        }
    }

    fn rec_d(oid: u32) -> WalRecord {
        WalRecord::Delete {
            table: "t".into(),
            column: "v".into(),
            oid,
        }
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = tmp("roundtrip");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(7, 42)).unwrap();
        log.append(&rec_d(3)).unwrap();
        log.append(&rec_i(8, -5)).unwrap();
        assert_eq!(log.appended(), 3);
        drop(log);
        let got = RedoLog::replay(&path).unwrap();
        assert_eq!(got, vec![rec_i(7, 42), rec_d(3), rec_i(8, -5)]);
        // Re-open appends, not truncates.
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_d(9)).unwrap();
        drop(log);
        assert_eq!(RedoLog::replay(&path).unwrap().len(), 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_log_replays_empty() {
        assert!(RedoLog::replay("/nonexistent/dir/wal.1.log")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn group_commit_interval_still_replays_everything_after_sync() {
        let path = tmp("group");
        let mut log = RedoLog::open_append(&path).unwrap().with_group_commit(8);
        for i in 0..20 {
            log.append(&rec_i(i, i as i64)).unwrap();
        }
        log.sync().unwrap();
        drop(log);
        assert_eq!(RedoLog::replay(&path).unwrap().len(), 20);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_final_line_is_skipped_not_fatal() {
        let path = tmp("torn");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        log.append(&rec_i(2, 20)).unwrap();
        log.set_crash_after(0);
        assert!(log.append(&rec_i(3, 30)).is_err());
        drop(log);
        // The two durable records replay; the torn third is ignored.
        let got = RedoLog::replay(&path).unwrap();
        assert_eq!(got, vec![rec_i(1, 10), rec_i(2, 20)]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn repair_truncates_torn_tail_so_appends_continue_safely() {
        let path = tmp("repair");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        log.set_crash_after(0);
        assert!(log.append(&rec_i(2, 20)).is_err());
        drop(log);
        // Recovery repairs the tear, then appending resumes cleanly.
        let got = RedoLog::replay_and_repair(&path).unwrap();
        assert_eq!(got, vec![rec_i(1, 10)]);
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(3, 30)).unwrap();
        drop(log);
        assert_eq!(
            RedoLog::replay(&path).unwrap(),
            vec![rec_i(1, 10), rec_i(3, 30)],
            "post-repair append must not merge into the torn line"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn crash_countdown_fires_on_the_nth_append() {
        let path = tmp("countdown");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.set_crash_after(2);
        assert!(log.append(&rec_i(1, 1)).is_ok());
        assert!(log.append(&rec_i(2, 2)).is_ok());
        assert!(log.append(&rec_i(3, 3)).is_err());
        drop(log);
        assert_eq!(RedoLog::replay(&path).unwrap().len(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_tail_shapes_are_distinguished_and_reported() {
        // A crash-torn tail has no trailing newline.
        let path = tmp("tail-torn");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        log.set_crash_after(0);
        assert!(log.append(&rec_i(2, 20)).is_err());
        drop(log);
        let (got, tail) = RedoLog::replay_and_repair_reporting(&path).unwrap();
        assert_eq!(got, vec![rec_i(1, 10)]);
        let tail = tail.expect("torn tail must be reported");
        assert!(!tail.newline_terminated);
        assert!(tail.bytes > 0);
        std::fs::remove_file(&path).ok();

        // A newline-terminated but unparseable final line is tolerated
        // too, but reported as the possibly-corrupt shape, with the
        // dropped byte count and the parse error.
        let path = tmp("tail-corrupt");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        drop(log);
        let mut doc = std::fs::read_to_string(&path).unwrap();
        let durable = doc.len();
        doc.push_str("garbage not json\n");
        std::fs::write(&path, &doc).unwrap();
        let (got, tail) = RedoLog::replay_and_repair_reporting(&path).unwrap();
        assert_eq!(got, vec![rec_i(1, 10)]);
        let tail = tail.expect("unparseable final line must be reported");
        assert!(tail.newline_terminated);
        assert_eq!(tail.bytes, "garbage not json\n".len());
        assert!(!tail.detail.is_empty(), "parse error carried in detail");
        // Repair truncated exactly to the durable prefix.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), durable as u64);
        std::fs::remove_file(&path).ok();

        // A fully durable log reports no tail.
        let path = tmp("tail-clean");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        drop(log);
        let (_, tail) = RedoLog::replay_and_repair_reporting(&path).unwrap();
        assert!(tail.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_before_the_end_is_loud() {
        let path = tmp("corrupt");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        drop(log);
        // Splice garbage *between* two valid records.
        let mut doc = std::fs::read_to_string(&path).unwrap();
        doc.push_str("garbage not json\n");
        std::fs::write(&path, &doc).unwrap();
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(2, 20)).unwrap();
        drop(log);
        assert!(matches!(
            RedoLog::replay(&path).unwrap_err(),
            StorageError::PersistFormat(_)
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let path = tmp("blank");
        let mut log = RedoLog::open_append(&path).unwrap();
        log.append(&rec_i(1, 10)).unwrap();
        drop(log);
        let mut doc = std::fs::read_to_string(&path).unwrap();
        doc.push('\n');
        std::fs::write(&path, &doc).unwrap();
        assert_eq!(RedoLog::replay(&path).unwrap().len(), 1);
    }
}
