//! Error types for the storage layer.

use crate::value::AtomType;
use std::fmt;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the BAT store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An operation expected a tail of one type but found another.
    TypeMismatch {
        /// Type the caller expected.
        expected: AtomType,
        /// Type actually stored in the BAT tail.
        found: AtomType,
    },
    /// A positional access was out of the BAT's bounds.
    OutOfBounds {
        /// Requested position.
        index: usize,
        /// Number of live BUNs in the BAT.
        len: usize,
    },
    /// A named BAT was not found in the catalog.
    UnknownBat(String),
    /// A BAT with this name already exists in the catalog.
    DuplicateBat(String),
    /// Two BATs that must be aligned (same length / same head) are not.
    Misaligned {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// Attempt to mutate a BAT that is shared through live views.
    SharedMutation(String),
    /// Persistence (I/O or serialization) failure.
    Persist(String),
    /// Persistence failed at the I/O layer (open/read/write/fsync/rename):
    /// the environment is at fault and a retry may succeed.
    PersistIo(String),
    /// The device is out of space (ENOSPC). Unlike a generic I/O error a
    /// retry cannot help until an operator frees space, so this is typed
    /// apart from [`StorageError::PersistIo`] and never retried.
    DiskFull(String),
    /// The redo log is poisoned: a group-commit fsync failed, so the
    /// durability of everything since the last successful sync is unknown
    /// (the kernel may have dropped the dirty pages — the classic
    /// fsyncgate trap). Every later append is refused with this error
    /// until the log rotates to a fresh epoch file.
    WalPoisoned(String),
    /// A persisted artifact is malformed (bad JSON, wrong version, broken
    /// BAT invariants): retrying cannot help, the file itself is bad.
    PersistFormat(String),
    /// A page id does not exist on the page store.
    UnknownPage(u32),
    /// The buffer pool has no evictable frame left.
    PoolExhausted {
        /// Number of frames in the pool.
        capacity: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            StorageError::OutOfBounds { index, len } => {
                write!(f, "position {index} out of bounds for BAT of length {len}")
            }
            StorageError::UnknownBat(name) => write!(f, "unknown BAT {name:?}"),
            StorageError::DuplicateBat(name) => write!(f, "BAT {name:?} already exists"),
            StorageError::Misaligned { left, right } => {
                write!(
                    f,
                    "misaligned BATs: left has {left} BUNs, right has {right}"
                )
            }
            StorageError::SharedMutation(name) => {
                write!(f, "cannot mutate BAT {name:?}: live views exist")
            }
            StorageError::Persist(msg) => write!(f, "persistence error: {msg}"),
            StorageError::PersistIo(msg) => write!(f, "persistence I/O error: {msg}"),
            StorageError::DiskFull(msg) => write!(f, "device out of space: {msg}"),
            StorageError::WalPoisoned(msg) => {
                write!(f, "redo log poisoned until rotation: {msg}")
            }
            StorageError::PersistFormat(msg) => write!(f, "persisted data malformed: {msg}"),
            StorageError::UnknownPage(id) => write!(f, "unknown page {id}"),
            StorageError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames in use")
            }
        }
    }
}

impl StorageError {
    /// True when the fault is environmental and a bounded retry of the
    /// *same* operation may succeed (the class
    /// [`crate::fault::RetryPolicy`] retries). Exactly the I/O-layer
    /// failures: a flaky device, a transient EIO, an interrupted write.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::PersistIo(_))
    }

    /// True when durable state itself is damaged (malformed artifact):
    /// retrying cannot help and recovery/repair is required.
    pub fn is_corruption(&self) -> bool {
        matches!(self, StorageError::PersistFormat(_))
    }

    /// True when the failure is a capacity/overload signal — the request
    /// was refused to protect the system, and backing off (or shedding
    /// load) is the right response rather than retrying immediately.
    pub fn is_overload(&self) -> bool {
        matches!(self, StorageError::PoolExhausted { .. })
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = StorageError::TypeMismatch {
            expected: AtomType::Int,
            found: AtomType::Str,
        };
        assert_eq!(e.to_string(), "type mismatch: expected int, found str");
        assert_eq!(
            StorageError::UnknownBat("r_a".into()).to_string(),
            "unknown BAT \"r_a\""
        );
        assert_eq!(
            StorageError::OutOfBounds { index: 9, len: 3 }.to_string(),
            "position 9 out of bounds for BAT of length 3"
        );
        assert_eq!(
            StorageError::PersistIo("disk gone".into()).to_string(),
            "persistence I/O error: disk gone"
        );
        assert_eq!(
            StorageError::PersistFormat("bad json".into()).to_string(),
            "persisted data malformed: bad json"
        );
    }

    #[test]
    fn every_variant_has_a_pinned_classification() {
        // One row per variant: (error, transient, corruption, overload).
        // Adding a variant without deciding its class should fail here.
        let table: Vec<(StorageError, bool, bool, bool)> = vec![
            (
                StorageError::TypeMismatch {
                    expected: AtomType::Int,
                    found: AtomType::Str,
                },
                false,
                false,
                false,
            ),
            (
                StorageError::OutOfBounds { index: 1, len: 0 },
                false,
                false,
                false,
            ),
            (StorageError::UnknownBat("b".into()), false, false, false),
            (StorageError::DuplicateBat("b".into()), false, false, false),
            (
                StorageError::Misaligned { left: 1, right: 2 },
                false,
                false,
                false,
            ),
            (
                StorageError::SharedMutation("b".into()),
                false,
                false,
                false,
            ),
            (StorageError::Persist("p".into()), false, false, false),
            (StorageError::PersistIo("io".into()), true, false, false),
            (StorageError::DiskFull("full".into()), false, false, false),
            (StorageError::WalPoisoned("f".into()), false, false, false),
            (
                StorageError::PersistFormat("bad".into()),
                false,
                true,
                false,
            ),
            (StorageError::UnknownPage(3), false, false, false),
            (
                StorageError::PoolExhausted { capacity: 4 },
                false,
                false,
                true,
            ),
        ];
        for (e, transient, corruption, overload) in table {
            assert_eq!(e.is_transient(), transient, "{e}: transient");
            assert_eq!(e.is_corruption(), corruption, "{e}: corruption");
            assert_eq!(e.is_overload(), overload, "{e}: overload");
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            StorageError::DuplicateBat("x".into()),
            StorageError::DuplicateBat("x".into())
        );
        assert_ne!(
            StorageError::UnknownBat("x".into()),
            StorageError::UnknownBat("y".into())
        );
    }
}
