//! Error types for the storage layer.

use crate::value::AtomType;
use std::fmt;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the BAT store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An operation expected a tail of one type but found another.
    TypeMismatch {
        /// Type the caller expected.
        expected: AtomType,
        /// Type actually stored in the BAT tail.
        found: AtomType,
    },
    /// A positional access was out of the BAT's bounds.
    OutOfBounds {
        /// Requested position.
        index: usize,
        /// Number of live BUNs in the BAT.
        len: usize,
    },
    /// A named BAT was not found in the catalog.
    UnknownBat(String),
    /// A BAT with this name already exists in the catalog.
    DuplicateBat(String),
    /// Two BATs that must be aligned (same length / same head) are not.
    Misaligned {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// Attempt to mutate a BAT that is shared through live views.
    SharedMutation(String),
    /// Persistence (I/O or serialization) failure.
    Persist(String),
    /// Persistence failed at the I/O layer (open/read/write/fsync/rename):
    /// the environment is at fault and a retry may succeed.
    PersistIo(String),
    /// A persisted artifact is malformed (bad JSON, wrong version, broken
    /// BAT invariants): retrying cannot help, the file itself is bad.
    PersistFormat(String),
    /// A page id does not exist on the page store.
    UnknownPage(u32),
    /// The buffer pool has no evictable frame left.
    PoolExhausted {
        /// Number of frames in the pool.
        capacity: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            StorageError::OutOfBounds { index, len } => {
                write!(f, "position {index} out of bounds for BAT of length {len}")
            }
            StorageError::UnknownBat(name) => write!(f, "unknown BAT {name:?}"),
            StorageError::DuplicateBat(name) => write!(f, "BAT {name:?} already exists"),
            StorageError::Misaligned { left, right } => {
                write!(
                    f,
                    "misaligned BATs: left has {left} BUNs, right has {right}"
                )
            }
            StorageError::SharedMutation(name) => {
                write!(f, "cannot mutate BAT {name:?}: live views exist")
            }
            StorageError::Persist(msg) => write!(f, "persistence error: {msg}"),
            StorageError::PersistIo(msg) => write!(f, "persistence I/O error: {msg}"),
            StorageError::PersistFormat(msg) => write!(f, "persisted data malformed: {msg}"),
            StorageError::UnknownPage(id) => write!(f, "unknown page {id}"),
            StorageError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames in use")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = StorageError::TypeMismatch {
            expected: AtomType::Int,
            found: AtomType::Str,
        };
        assert_eq!(e.to_string(), "type mismatch: expected int, found str");
        assert_eq!(
            StorageError::UnknownBat("r_a".into()).to_string(),
            "unknown BAT \"r_a\""
        );
        assert_eq!(
            StorageError::OutOfBounds { index: 9, len: 3 }.to_string(),
            "position 9 out of bounds for BAT of length 3"
        );
        assert_eq!(
            StorageError::PersistIo("disk gone".into()).to_string(),
            "persistence I/O error: disk gone"
        );
        assert_eq!(
            StorageError::PersistFormat("bad json".into()).to_string(),
            "persisted data malformed: bad json"
        );
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            StorageError::DuplicateBat("x".into()),
            StorageError::DuplicateBat("x".into())
        );
        assert_ne!(
            StorageError::UnknownBat("x".into()),
            StorageError::UnknownBat("y".into())
        );
    }
}
