//! Atomic values and their types.
//!
//! MonetDB calls the cell values of a BAT *atoms*. We support the four atom
//! types the paper's experiments need: 64-bit integers (the tapestry tables
//! are `R[int,int]`), 64-bit floats (the scientific-database motivation of
//! §4 talks of "multi-million rows of floating point numbers"), strings
//! (variable-sized atoms kept in a heap), and OIDs (the surrogate keys that
//! make Ψ-cracking loss-less).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A surrogate object identifier. MonetDB heads are OIDs; SQL tables are
/// decomposed into `bat[oid, type]` columns sharing the same dense OID range.
pub type Oid = u64;

/// The type of an atom stored in a BAT tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float, ordered by `f64::total_cmp` (NaN sorts last).
    Float,
    /// Variable-sized string, stored in a [`crate::heap::StrHeap`].
    Str,
    /// Surrogate object identifier.
    Oid,
}

impl fmt::Display for AtomType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomType::Int => write!(f, "int"),
            AtomType::Float => write!(f, "float"),
            AtomType::Str => write!(f, "str"),
            AtomType::Oid => write!(f, "oid"),
        }
    }
}

/// A single atomic value.
///
/// `Atom` implements a **total order** (`Ord`): floats are ordered with
/// [`f64::total_cmp`], so atoms can be used as boundary keys in the cracker
/// index without any partial-ordering escape hatches. Comparing atoms of
/// different types orders them by type tag first; well-typed code never
/// relies on that, but it keeps the order total and the invariants simple.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Atom {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Owned string value.
    Str(String),
    /// Surrogate object identifier.
    Oid(Oid),
}

impl Atom {
    /// The [`AtomType`] of this value.
    pub fn atom_type(&self) -> AtomType {
        match self {
            Atom::Int(_) => AtomType::Int,
            Atom::Float(_) => AtomType::Float,
            Atom::Str(_) => AtomType::Str,
            Atom::Oid(_) => AtomType::Oid,
        }
    }

    /// Interpret as `i64`, if the atom is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Atom::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as `f64`, if the atom is a float.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Atom::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret as `&str`, if the atom is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Atom::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret as [`Oid`], if the atom is an OID.
    pub fn as_oid(&self) -> Option<Oid> {
        match self {
            Atom::Oid(o) => Some(*o),
            _ => None,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Atom::Int(_) => 0,
            Atom::Float(_) => 1,
            Atom::Str(_) => 2,
            Atom::Oid(_) => 3,
        }
    }
}

impl PartialEq for Atom {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Atom {}

impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Atom {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Atom::Int(a), Atom::Int(b)) => a.cmp(b),
            (Atom::Float(a), Atom::Float(b)) => a.total_cmp(b),
            (Atom::Str(a), Atom::Str(b)) => a.cmp(b),
            (Atom::Oid(a), Atom::Oid(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Atom {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Atom::Int(v) => v.hash(state),
            // Hash the bit pattern; consistent with total_cmp-based Eq.
            Atom::Float(v) => v.to_bits().hash(state),
            Atom::Str(s) => s.hash(state),
            Atom::Oid(o) => o.hash(state),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Int(v) => write!(f, "{v}"),
            Atom::Float(v) => write!(f, "{v}"),
            Atom::Str(s) => write!(f, "{s:?}"),
            Atom::Oid(o) => write!(f, "@{o}"),
        }
    }
}

impl From<i64> for Atom {
    fn from(v: i64) -> Self {
        Atom::Int(v)
    }
}

impl From<f64> for Atom {
    fn from(v: f64) -> Self {
        Atom::Float(v)
    }
}

impl From<&str> for Atom {
    fn from(v: &str) -> Self {
        Atom::Str(v.to_owned())
    }
}

impl From<String> for Atom {
    fn from(v: String) -> Self {
        Atom::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(a: &Atom) -> u64 {
        let mut h = DefaultHasher::new();
        a.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_ordering_is_numeric() {
        assert!(Atom::Int(-5) < Atom::Int(0));
        assert!(Atom::Int(10) < Atom::Int(11));
        assert_eq!(Atom::Int(7), Atom::Int(7));
    }

    #[test]
    fn float_ordering_is_total_and_handles_nan() {
        assert!(Atom::Float(1.0) < Atom::Float(2.0));
        // total_cmp: NaN sorts after +inf, so comparisons never panic.
        assert!(Atom::Float(f64::INFINITY) < Atom::Float(f64::NAN));
        assert_eq!(Atom::Float(f64::NAN), Atom::Float(f64::NAN));
        // -0.0 < +0.0 under total order.
        assert!(Atom::Float(-0.0) < Atom::Float(0.0));
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert!(Atom::from("abc") < Atom::from("abd"));
        assert!(Atom::from("ab") < Atom::from("abc"));
    }

    #[test]
    fn cross_type_ordering_is_by_type_rank() {
        assert!(Atom::Int(i64::MAX) < Atom::Float(f64::NEG_INFINITY));
        assert!(Atom::Float(f64::INFINITY) < Atom::Str(String::new()));
        assert!(Atom::Str("zzz".into()) < Atom::Oid(0));
    }

    #[test]
    fn hash_agrees_with_eq_for_floats() {
        let a = Atom::Float(3.25);
        let b = Atom::Float(3.25);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn atom_type_reporting() {
        assert_eq!(Atom::Int(1).atom_type(), AtomType::Int);
        assert_eq!(Atom::Float(1.0).atom_type(), AtomType::Float);
        assert_eq!(Atom::from("x").atom_type(), AtomType::Str);
        assert_eq!(Atom::Oid(1).atom_type(), AtomType::Oid);
    }

    #[test]
    fn accessors_return_expected_variants() {
        assert_eq!(Atom::Int(4).as_int(), Some(4));
        assert_eq!(Atom::Int(4).as_float(), None);
        assert_eq!(Atom::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Atom::from("hi").as_str(), Some("hi"));
        assert_eq!(Atom::Oid(9).as_oid(), Some(9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Atom::Int(-3).to_string(), "-3");
        assert_eq!(Atom::Oid(8).to_string(), "@8");
        assert_eq!(Atom::from("a").to_string(), "\"a\"");
    }
}
