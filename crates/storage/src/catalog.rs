//! In-memory store catalog.
//!
//! The paper is emphatic that piece administration must *not* go through the
//! persistent system catalog: "each creation or removal of a partition is a
//! change to the table's schema and catalog entries. It requires locking a
//! critical resource and may force recompilation of cached queries" (§3.2).
//! [`StoreCatalog`] is the proposed alternative: a main-memory structure
//! mapping names to shared BATs, cheap to update on every crack.

use crate::bat::Bat;
use crate::error::{StorageError, StorageResult};
use crate::view::BatView;
// storage sits below cracker_core in the dependency graph, so the
// instrumented facade is out of reach here. lint: allow(raw-sync)
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A thread-safe, in-memory catalog of named BATs.
///
/// BATs are stored behind `Arc`; registering a view or handing out a handle
/// never copies tuple data. Mutation is copy-on-write at BAT granularity:
/// [`StoreCatalog::replace`] swaps a whole BAT, which is how cracked
/// incarnations of a column supersede the original.
#[derive(Debug, Default)]
pub struct StoreCatalog {
    bats: RwLock<BTreeMap<String, Arc<Bat>>>,
}

impl StoreCatalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a BAT under its own name. Errors if the name is taken.
    pub fn register(&self, bat: Bat) -> StorageResult<Arc<Bat>> {
        let name = bat.name().to_owned();
        let mut guard = self.bats.write();
        if guard.contains_key(&name) {
            return Err(StorageError::DuplicateBat(name));
        }
        let arc = Arc::new(bat);
        guard.insert(name, Arc::clone(&arc));
        Ok(arc)
    }

    /// Replace (or insert) the BAT stored under `name`, returning the
    /// previous incarnation if any.
    pub fn replace(&self, name: &str, bat: Bat) -> Option<Arc<Bat>> {
        let mut guard = self.bats.write();
        guard.insert(name.to_owned(), Arc::new(bat))
    }

    /// Fetch a shared handle by name.
    pub fn get(&self, name: &str) -> StorageResult<Arc<Bat>> {
        self.bats
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::UnknownBat(name.to_owned()))
    }

    /// A whole-BAT view by name.
    pub fn view(&self, name: &str) -> StorageResult<BatView> {
        Ok(BatView::whole(self.get(name)?))
    }

    /// Remove a BAT; returns it if present.
    pub fn drop_bat(&self, name: &str) -> StorageResult<Arc<Bat>> {
        self.bats
            .write()
            .remove(name)
            .ok_or_else(|| StorageError::UnknownBat(name.to_owned()))
    }

    /// True when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.bats.read().contains_key(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.bats.read().keys().cloned().collect()
    }

    /// Number of registered BATs.
    pub fn len(&self) -> usize {
        self.bats.read().len()
    }

    /// True when no BATs are registered.
    pub fn is_empty(&self) -> bool {
        self.bats.read().is_empty()
    }

    /// Snapshot of all `(name, bat)` entries (handles, not copies).
    pub fn snapshot(&self) -> Vec<(String, Arc<Bat>)> {
        self.bats
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_get() {
        let cat = StoreCatalog::new();
        cat.register(Bat::from_ints("r_a", vec![1, 2])).unwrap();
        let b = cat.get("r_a").unwrap();
        assert_eq!(b.len(), 2);
        assert!(cat.contains("r_a"));
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let cat = StoreCatalog::new();
        cat.register(Bat::from_ints("r_a", vec![])).unwrap();
        let err = cat.register(Bat::from_ints("r_a", vec![])).unwrap_err();
        assert_eq!(err, StorageError::DuplicateBat("r_a".into()));
    }

    #[test]
    fn unknown_lookup_is_an_error() {
        let cat = StoreCatalog::new();
        assert_eq!(
            cat.get("nope").unwrap_err(),
            StorageError::UnknownBat("nope".into())
        );
    }

    #[test]
    fn replace_swaps_incarnations_and_old_handles_survive() {
        let cat = StoreCatalog::new();
        let old = cat.register(Bat::from_ints("r_a", vec![1])).unwrap();
        let prev = cat.replace("r_a", Bat::from_ints("r_a", vec![9, 9]));
        assert!(prev.is_some());
        assert_eq!(cat.get("r_a").unwrap().len(), 2);
        // A reader holding the old Arc still sees consistent data.
        assert_eq!(old.len(), 1);
    }

    #[test]
    fn drop_removes_entry() {
        let cat = StoreCatalog::new();
        cat.register(Bat::from_ints("r_a", vec![1])).unwrap();
        cat.drop_bat("r_a").unwrap();
        assert!(!cat.contains("r_a"));
        assert!(cat.drop_bat("r_a").is_err());
    }

    #[test]
    fn names_are_sorted() {
        let cat = StoreCatalog::new();
        cat.register(Bat::from_ints("z", vec![])).unwrap();
        cat.register(Bat::from_ints("a", vec![])).unwrap();
        assert_eq!(cat.names(), vec!["a".to_string(), "z".to_string()]);
    }

    #[test]
    fn view_through_catalog() {
        let cat = StoreCatalog::new();
        cat.register(Bat::from_ints("r_a", vec![3, 1])).unwrap();
        let v = cat.view("r_a").unwrap();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn catalog_is_sharable_across_threads() {
        let cat = Arc::new(StoreCatalog::new());
        cat.register(Bat::from_ints("r_a", (0..100).collect()))
            .unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = Arc::clone(&cat);
            handles.push(std::thread::spawn(move || {
                let b = c.get("r_a").unwrap();
                assert_eq!(b.len(), 100);
                c.replace(&format!("t{t}"), Bat::from_ints(format!("t{t}"), vec![t]));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cat.len(), 5);
    }
}
