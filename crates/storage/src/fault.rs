//! Deterministic I/O fault injection and retry for the durability layer
//! (`ROBUSTNESS.md` at the repository root documents the fault model).
//!
//! Every file operation [`crate::checkpoint`] and [`crate::wal`] perform
//! flows through this module — either through a [`FaultInjector`] method
//! naming the **fault point** being crossed, or through one of the plain
//! helpers below for the read/recovery side. Centralizing the I/O buys
//! two things at once:
//!
//! * **Error-point arming.** PR 8's crash countdown proved recovery by
//!   killing the process at every write boundary. The injector extends
//!   that idiom to *non-fatal* faults: at any named point a test can arm
//!   an EIO, an ENOSPC, a short write (a prefix lands, then the write
//!   fails) or a failed fsync — deterministically, with a countdown and
//!   a fire budget, so a "transient" fault that fails twice and then
//!   succeeds is one `arm` call. An `analysis` lint rule keeps the
//!   facade mandatory: direct `std::fs` use in the durability modules is
//!   a lint error (see `crates/analysis/src/lint.rs`, rule
//!   `durability-io`).
//!
//! * **One retry policy.** [`RetryPolicy`] retries *transient* failures
//!   ([`StorageError::is_transient`]) with bounded exponential backoff
//!   and seeded jitter, and propagates hard ones (ENOSPC, corruption,
//!   poison) untouched. Callers retry whole idempotent sequences — e.g.
//!   a checkpoint payload recreates its temp file from scratch on every
//!   attempt — never a bare fsync, whose failure semantics (dirty pages
//!   possibly dropped) make blind retry a lie; see
//!   [`crate::wal::RedoLog`]'s poison-until-rotation rule.
//!
//! Injected faults are indistinguishable from real ones to the caller:
//! they surface as the same [`StorageError`] variants real I/O maps to
//! (EIO/short write → [`StorageError::PersistIo`], ENOSPC →
//! [`StorageError::DiskFull`]), so every retry/poison/propagation path
//! tested under injection is the path a real fault takes.

use crate::error::{StorageError, StorageResult};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// Checkpoint payload: temp-file creation.
pub const CKPT_PAYLOAD_CREATE: &str = "ckpt.payload.create";
/// Checkpoint payload: writing the serialized bytes.
pub const CKPT_PAYLOAD_WRITE: &str = "ckpt.payload.write";
/// Checkpoint payload: fsync of the temp file.
pub const CKPT_PAYLOAD_FSYNC: &str = "ckpt.payload.fsync";
/// Checkpoint payload: rename of temp file into place.
pub const CKPT_PAYLOAD_RENAME: &str = "ckpt.payload.rename";
/// Checkpoint commit: creation of the new epoch's empty redo log.
pub const CKPT_LOG_CREATE: &str = "ckpt.log.create";
/// Checkpoint commit: fsync of the new epoch's redo log.
pub const CKPT_LOG_FSYNC: &str = "ckpt.log.fsync";
/// Checkpoint commit: manifest temp-file creation.
pub const CKPT_MANIFEST_CREATE: &str = "ckpt.manifest.create";
/// Checkpoint commit: writing the manifest bytes.
pub const CKPT_MANIFEST_WRITE: &str = "ckpt.manifest.write";
/// Checkpoint commit: fsync of the manifest temp file.
pub const CKPT_MANIFEST_FSYNC: &str = "ckpt.manifest.fsync";
/// Checkpoint commit: the manifest rename — the commit point itself.
pub const CKPT_MANIFEST_RENAME: &str = "ckpt.manifest.rename";
/// Checkpoint commit: directory fsync after the manifest rename.
pub const CKPT_DIR_FSYNC: &str = "ckpt.dir.fsync";
/// Redo log: opening the log file for append.
pub const WAL_OPEN: &str = "wal.open";
/// Redo log: writing one appended record.
pub const WAL_APPEND_WRITE: &str = "wal.append.write";
/// Redo log: the group-commit fsync (failure poisons the log).
pub const WAL_APPEND_FSYNC: &str = "wal.append.fsync";

/// Every armable fault point, for exhaustive chaos sweeps
/// (`tests/chaos_oracle.rs` iterates this list).
pub const ALL_POINTS: &[&str] = &[
    CKPT_PAYLOAD_CREATE,
    CKPT_PAYLOAD_WRITE,
    CKPT_PAYLOAD_FSYNC,
    CKPT_PAYLOAD_RENAME,
    CKPT_LOG_CREATE,
    CKPT_LOG_FSYNC,
    CKPT_MANIFEST_CREATE,
    CKPT_MANIFEST_WRITE,
    CKPT_MANIFEST_FSYNC,
    CKPT_MANIFEST_RENAME,
    CKPT_DIR_FSYNC,
    WAL_OPEN,
    WAL_APPEND_WRITE,
    WAL_APPEND_FSYNC,
];

/// The kind of fault an armed point injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A generic I/O error: the operation fails without side effects.
    /// Surfaces as [`StorageError::PersistIo`] — transient, retried.
    Eio,
    /// Out of space: a write lands a prefix (the device filled mid-write)
    /// and fails. Surfaces as [`StorageError::DiskFull`] — hard, never
    /// retried.
    Enospc,
    /// A short write: a prefix of the bytes lands, then the write fails —
    /// the torn-artifact shape. Surfaces as [`StorageError::PersistIo`] —
    /// transient; retrying an idempotent sequence recreates the file.
    ShortWrite,
    /// A failed fsync: the data may or may not be durable (the kernel may
    /// have dropped the dirty pages). Surfaces as
    /// [`StorageError::PersistIo`]; the WAL reacts by poisoning itself
    /// until rotation rather than retrying (fsyncgate).
    FsyncFail,
}

/// One armed fault: fires `fires` consecutive times at `point` after
/// `after` unharmed crossings.
#[derive(Debug, Clone)]
struct Armed {
    point: String,
    after: u32,
    kind: FaultKind,
    fires: u32,
}

/// A deterministic fault injector: a set of armed `(point, countdown,
/// kind, fire budget)` entries consulted at every named boundary. With
/// nothing armed every operation is a plain passthrough to `std::fs`.
#[derive(Debug, Default)]
pub struct FaultInjector {
    armed: Vec<Armed>,
    injected: u64,
}

impl FaultInjector {
    /// An inert injector (nothing armed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm `kind` at `point`: the first `after` crossings of the point
    /// pass unharmed, then the next `fires` crossings fail. `fires > 1`
    /// models a fault that outlasts one retry; an exhausted entry is
    /// dropped, so the `fires + 1`-th crossing succeeds — the transient
    /// shape a [`RetryPolicy`] recovers from.
    pub fn arm(&mut self, point: &str, after: u32, kind: FaultKind, fires: u32) {
        self.armed.push(Armed {
            point: point.to_string(),
            after,
            kind,
            fires: fires.max(1),
        });
    }

    /// Disarm everything.
    pub fn disarm_all(&mut self) {
        self.armed.clear();
    }

    /// Total faults injected through this injector.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// True when at least one entry is still armed.
    pub fn is_armed(&self) -> bool {
        !self.armed.is_empty()
    }

    /// Consult the armed entries for a crossing of `point`.
    fn fault_at(&mut self, point: &str) -> Option<FaultKind> {
        for a in self.armed.iter_mut() {
            if a.point != point {
                continue;
            }
            if a.after > 0 {
                a.after -= 1;
                continue;
            }
            a.fires -= 1;
            let kind = a.kind;
            if a.fires == 0 {
                self.armed.retain(|e| !(e.fires == 0 && e.after == 0));
            }
            self.injected += 1;
            return Some(kind);
        }
        None
    }

    /// Create (truncating) `path`, crossing `point`.
    pub fn create(&mut self, point: &str, path: &Path) -> StorageResult<File> {
        match self.fault_at(point) {
            Some(FaultKind::Enospc) => Err(enospc(point)),
            Some(_) => Err(eio(point)),
            None => File::create(path).map_err(|e| map_io(point, &e)),
        }
    }

    /// Open `path` in create-append mode, crossing `point`.
    pub fn open_append(&mut self, point: &str, path: &Path) -> StorageResult<File> {
        match self.fault_at(point) {
            Some(FaultKind::Enospc) => Err(enospc(point)),
            Some(_) => Err(eio(point)),
            None => OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| map_io(point, &e)),
        }
    }

    /// Write all of `bytes` to `file`, crossing `point`. A short-write or
    /// ENOSPC fault lands the first half of the bytes before failing —
    /// the torn artifact a real mid-write fault leaves.
    pub fn write_all(&mut self, point: &str, file: &mut File, bytes: &[u8]) -> StorageResult<()> {
        match self.fault_at(point) {
            Some(FaultKind::Eio) => Err(eio(point)),
            Some(FaultKind::FsyncFail) => Err(eio(point)),
            Some(FaultKind::ShortWrite) => {
                let _ = file.write_all(&bytes[..bytes.len() / 2]);
                Err(StorageError::PersistIo(format!(
                    "injected short write at {point}"
                )))
            }
            Some(FaultKind::Enospc) => {
                let _ = file.write_all(&bytes[..bytes.len() / 2]);
                Err(enospc(point))
            }
            None => file.write_all(bytes).map_err(|e| map_io(point, &e)),
        }
    }

    /// Fsync `file`, crossing `point`. On an injected fault the fsync is
    /// *skipped* — the data's durability is genuinely unknown, exactly
    /// the state a real failed fsync leaves.
    pub fn sync_file(&mut self, point: &str, file: &File) -> StorageResult<()> {
        match self.fault_at(point) {
            Some(FaultKind::Enospc) => Err(enospc(point)),
            Some(_) => Err(StorageError::PersistIo(format!(
                "injected failed fsync at {point}"
            ))),
            None => file.sync_all().map_err(|e| map_io(point, &e)),
        }
    }

    /// Rename `from` to `to`, crossing `point`.
    pub fn rename(&mut self, point: &str, from: &Path, to: &Path) -> StorageResult<()> {
        match self.fault_at(point) {
            Some(FaultKind::Enospc) => Err(enospc(point)),
            Some(_) => Err(eio(point)),
            None => std::fs::rename(from, to).map_err(|e| map_io(point, &e)),
        }
    }

    /// Fsync directory `dir` so a just-renamed entry is durable (no-op
    /// off Unix), crossing `point`.
    pub fn sync_dir(&mut self, point: &str, dir: &Path) -> StorageResult<()> {
        match self.fault_at(point) {
            Some(FaultKind::Enospc) => Err(enospc(point)),
            Some(_) => Err(StorageError::PersistIo(format!(
                "injected failed fsync at {point}"
            ))),
            None => {
                #[cfg(unix)]
                {
                    let d = File::open(dir).map_err(|e| map_io(point, &e))?;
                    d.sync_all().map_err(|e| map_io(point, &e))?;
                }
                #[cfg(not(unix))]
                let _ = dir;
                Ok(())
            }
        }
    }

    /// Truncate `file` to `len` bytes, crossing `point`.
    pub fn set_len(&mut self, point: &str, file: &File, len: u64) -> StorageResult<()> {
        match self.fault_at(point) {
            Some(FaultKind::Enospc) => Err(enospc(point)),
            Some(_) => Err(eio(point)),
            None => file.set_len(len).map_err(|e| map_io(point, &e)),
        }
    }
}

fn eio(point: &str) -> StorageError {
    StorageError::PersistIo(format!("injected EIO at {point}"))
}

fn enospc(point: &str) -> StorageError {
    StorageError::DiskFull(format!("injected ENOSPC at {point}"))
}

/// Map a real `std::io::Error` at `point` to the taxonomy: ENOSPC is
/// typed [`StorageError::DiskFull`] (hard, never retried), everything
/// else [`StorageError::PersistIo`] (transient, retried).
pub fn map_io(point: &str, e: &std::io::Error) -> StorageError {
    if e.raw_os_error() == Some(libc_enospc()) {
        StorageError::DiskFull(format!("{point}: {e}"))
    } else {
        StorageError::PersistIo(format!("{point}: {e}"))
    }
}

/// ENOSPC without a libc dependency (28 on Linux and every BSD/macOS).
const fn libc_enospc() -> i32 {
    28
}

// ---------------------------------------------------------------------
// Plain helpers: the read/recovery side of the durability layer. Not
// fault points (the chaos suite probes the *write* boundaries), but
// still the single place durability file I/O lives, so the lint facade
// stays airtight.
// ---------------------------------------------------------------------

/// Read `path` to a string, mapping absence to `None`.
pub fn read_to_string_opt(path: &Path) -> StorageResult<Option<String>> {
    match std::fs::read_to_string(path) {
        Ok(doc) => Ok(Some(doc)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(StorageError::PersistIo(e.to_string())),
    }
}

/// Read `path` to a string; absence is an error, described via `what`.
pub fn read_to_string(what: &str, path: &Path) -> StorageResult<String> {
    std::fs::read_to_string(path).map_err(|e| StorageError::PersistIo(format!("{what}: {e}")))
}

/// Create `dir` and any missing parents.
pub fn create_dir_all(dir: &Path) -> StorageResult<()> {
    std::fs::create_dir_all(dir).map_err(|e| map_io("create_dir", &e))
}

/// Remove `path`, ignoring failure (GC is best-effort: an orphan costs
/// disk, not correctness).
pub fn remove_file_quiet(path: &Path) {
    let _ = std::fs::remove_file(path);
}

/// The file names in `dir` with their paths (unreadable dir → empty).
pub fn dir_entries(dir: &Path) -> Vec<(String, std::path::PathBuf)> {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    rd.flatten()
        .map(|e| (e.file_name().to_string_lossy().into_owned(), e.path()))
        .collect()
}

/// Open `path` write-only and truncate it to `len` — the torn-tail
/// repair primitive ([`crate::wal::RedoLog::replay_and_repair`]).
pub fn truncate_file(path: &Path, len: u64) -> StorageResult<()> {
    let io = |e: std::io::Error| StorageError::PersistIo(e.to_string());
    let file = OpenOptions::new().write(true).open(path).map_err(io)?;
    file.set_len(len).map_err(io)?;
    file.sync_all().map_err(io)?;
    Ok(())
}

/// The sibling temp path atomic writes stage through: `<file>.tmp` in
/// the same directory (same filesystem, so the rename is atomic).
pub fn sibling_tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fsync `dir` so a just-renamed entry is durable (no-op off Unix,
/// where opening a directory for sync is not portable). Uninjected
/// twin of [`FaultInjector::sync_dir`].
pub fn sync_dir(dir: &Path) -> StorageResult<()> {
    #[cfg(unix)]
    {
        let d = File::open(dir).map_err(|e| map_io("sync_dir", &e))?;
        d.sync_all().map_err(|e| map_io("sync_dir", &e))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Write `bytes` to `path` atomically — sibling temp file, fsync,
/// rename, directory fsync — without injection, for callers outside the
/// checkpoint/WAL protocol (e.g. [`crate::persist`] catalog snapshots).
/// A crash at any point leaves the previous content of `path` (or its
/// absence) intact.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> StorageResult<()> {
    let tmp = sibling_tmp_path(path);
    let io = |e: std::io::Error| map_io("write_atomic", &e);
    let mut file = File::create(&tmp).map_err(io)?;
    file.write_all(bytes).map_err(io)?;
    file.sync_all().map_err(io)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(io)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            sync_dir(parent)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------

/// Bounded retry with exponential backoff and seeded jitter for
/// *transient* storage faults. Hard faults (ENOSPC, corruption, poison)
/// propagate on first occurrence; transient ones are retried up to
/// `max_retries` times, sleeping `base · 2^attempt + jitter` between
/// attempts, where the jitter is a deterministic hash of `(seed, op,
/// attempt)` — two runs with the same seed back off identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_retries: u32,
    base_backoff: Duration,
    seed: u64,
}

impl RetryPolicy {
    /// No retries: every failure propagates immediately.
    pub const fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::from_millis(0),
            seed: 0,
        }
    }

    /// Retry up to `max_retries` times with `base_backoff` doubling per
    /// attempt (seed 0; see [`with_seed`](Self::with_seed)).
    pub const fn new(max_retries: u32, base_backoff: Duration) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff,
            seed: 0,
        }
    }

    /// Derive the jitter stream from `seed`.
    pub const fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Maximum retry count.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// The backoff before retry number `attempt` (1-based) of `op`:
    /// exponential in the attempt, plus up to one `base_backoff` of
    /// seeded jitter so retry storms decorrelate.
    pub fn backoff(&self, op: &str, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16).saturating_sub(1));
        let base_ns = self.base_backoff.as_nanos() as u64;
        if base_ns == 0 {
            return exp;
        }
        // FNV-1a over (seed, op, attempt): deterministic jitter.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        for b in op.as_bytes().iter().chain(&attempt.to_le_bytes()) {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        exp + Duration::from_nanos(h % base_ns)
    }

    /// Run `f`, retrying transient failures per the policy. `f` must be
    /// idempotent-as-a-sequence: each attempt restarts the operation from
    /// scratch (the durability callers recreate temp files / roll back
    /// torn tails before rewriting). Non-transient errors propagate
    /// untouched on first occurrence.
    pub fn run<T>(&self, op: &str, mut f: impl FnMut() -> StorageResult<T>) -> StorageResult<T> {
        let mut attempt = 0u32;
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < self.max_retries => {
                    attempt += 1;
                    let pause = self.backoff(op, attempt);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Default for RetryPolicy {
    /// Three retries over a sub-millisecond base: enough to absorb a
    /// blip, cheap enough for tests.
    fn default() -> Self {
        RetryPolicy::new(3, Duration::from_micros(200))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dbcracker-fault-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn unarmed_injector_is_a_passthrough() {
        let mut inj = FaultInjector::new();
        let path = tmp("pass");
        let mut f = inj.create("ckpt.payload.create", &path).unwrap();
        inj.write_all("ckpt.payload.write", &mut f, b"hello")
            .unwrap();
        inj.sync_file("ckpt.payload.fsync", &f).unwrap();
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        assert_eq!(inj.injected(), 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn countdown_and_fire_budget_are_honored() {
        let mut inj = FaultInjector::new();
        // Skip 2 crossings, then fail twice, then pass again.
        inj.arm(WAL_APPEND_WRITE, 2, FaultKind::Eio, 2);
        let path = tmp("budget");
        let mut f = inj.create("x", &path).unwrap();
        assert!(inj.write_all(WAL_APPEND_WRITE, &mut f, b"a").is_ok());
        assert!(inj.write_all(WAL_APPEND_WRITE, &mut f, b"b").is_ok());
        let e1 = inj.write_all(WAL_APPEND_WRITE, &mut f, b"c").unwrap_err();
        assert!(e1.is_transient(), "EIO must classify transient: {e1}");
        assert!(inj.write_all(WAL_APPEND_WRITE, &mut f, b"d").is_err());
        assert!(inj.write_all(WAL_APPEND_WRITE, &mut f, b"e").is_ok());
        assert_eq!(inj.injected(), 2);
        assert!(!inj.is_armed(), "exhausted entries are dropped");
        drop(f);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn short_write_lands_a_torn_prefix() {
        let mut inj = FaultInjector::new();
        inj.arm(CKPT_PAYLOAD_WRITE, 0, FaultKind::ShortWrite, 1);
        let path = tmp("short");
        let mut f = inj.create("x", &path).unwrap();
        let err = inj
            .write_all(CKPT_PAYLOAD_WRITE, &mut f, b"0123456789")
            .unwrap_err();
        assert!(err.is_transient());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"01234", "half landed");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn enospc_is_hard_not_transient() {
        let mut inj = FaultInjector::new();
        inj.arm(CKPT_PAYLOAD_WRITE, 0, FaultKind::Enospc, 1);
        let path = tmp("enospc");
        let mut f = inj.create("x", &path).unwrap();
        let err = inj
            .write_all(CKPT_PAYLOAD_WRITE, &mut f, b"xx")
            .unwrap_err();
        assert!(matches!(err, StorageError::DiskFull(_)));
        assert!(!err.is_transient());
        drop(f);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn retry_policy_recovers_transient_and_propagates_hard() {
        let policy = RetryPolicy::new(3, Duration::ZERO).with_seed(7);
        // Fails twice transiently, then succeeds.
        let mut left = 2;
        let got = policy.run("op", || {
            if left > 0 {
                left -= 1;
                Err(StorageError::PersistIo("blip".into()))
            } else {
                Ok(42)
            }
        });
        assert_eq!(got.unwrap(), 42);
        // A hard error propagates on the first attempt.
        let mut calls = 0;
        let got: StorageResult<()> = policy.run("op", || {
            calls += 1;
            Err(StorageError::DiskFull("full".into()))
        });
        assert!(matches!(got.unwrap_err(), StorageError::DiskFull(_)));
        assert_eq!(calls, 1, "hard faults are never retried");
        // A persistent transient fault exhausts the budget.
        let mut calls = 0;
        let got: StorageResult<()> = policy.run("op", || {
            calls += 1;
            Err(StorageError::PersistIo("still down".into()))
        });
        assert!(got.is_err());
        assert_eq!(calls, 4, "initial attempt + 3 retries");
    }

    #[test]
    fn backoff_is_exponential_and_seed_deterministic() {
        let p = RetryPolicy::new(5, Duration::from_micros(100)).with_seed(9);
        let b1 = p.backoff("op", 1);
        let b2 = p.backoff("op", 2);
        let b3 = p.backoff("op", 3);
        assert!(
            b2 > b1 && b3 > b2,
            "backoff must grow: {b1:?} {b2:?} {b3:?}"
        );
        let q = RetryPolicy::new(5, Duration::from_micros(100)).with_seed(9);
        assert_eq!(b2, q.backoff("op", 2), "same seed, same jitter");
        let r = RetryPolicy::new(5, Duration::from_micros(100)).with_seed(10);
        assert_ne!(b2, r.backoff("op", 2), "different seed, different jitter");
    }

    #[test]
    fn every_point_constant_is_listed_once() {
        let mut seen = std::collections::HashSet::new();
        for p in ALL_POINTS {
            assert!(seen.insert(*p), "{p} listed twice");
        }
        assert_eq!(seen.len(), 14);
    }
}
