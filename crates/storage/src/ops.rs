//! Kernel algebra over BATs.
//!
//! MonetDB's kernel evaluates queries as sequences of operators over
//! binary tables; the paper's cracker module works "by overloading the key
//! algebraic operators: `select`, `join`, and `aggregate`" (§3.4.2). This
//! module provides those baseline (non-cracking) operators, so the cracked
//! and uncracked paths share one algebra:
//!
//! * [`select_range`] — σ over the tail, producing a `(head, tail)` result
//!   BAT of qualifying BUNs;
//! * [`join_bats`] — equi-join tails of `L` with heads... in our
//!   simplified model, tail-to-tail equi-join returning OID pairs;
//! * [`aggregate_sum`] / [`aggregate_count`] — γ over a grouping BAT and a
//!   value BAT sharing the OID space;
//! * [`reverse`] — the classic MonetDB `reverse` (swap head/tail), and
//!   [`mirror`] (head = tail = OIDs).

use crate::bat::{Bat, TailData};
use crate::error::{StorageError, StorageResult};
use crate::value::{Atom, Oid};
use std::collections::HashMap;

/// σ: BUNs of `bat` whose integer tail lies in `[low, high]`
/// (inclusive bounds, per the paper's `attr ∈ [low, high]` form).
/// Returns a new BAT with an explicit head carrying the source OIDs.
pub fn select_range(bat: &Bat, low: i64, high: i64) -> StorageResult<Bat> {
    let ints = bat.ints()?;
    let mut oids = Vec::new();
    let mut vals = Vec::new();
    for (pos, &v) in ints.iter().enumerate() {
        if v >= low && v <= high {
            oids.push(bat.head().oid_at(pos));
            vals.push(v);
        }
    }
    Bat::with_explicit_head(format!("{}_select", bat.name()), oids, TailData::Int(vals))
}

/// ⋈: equi-join on integer tails. Returns `(left oid, right oid)` pairs —
/// MonetDB's join result is itself a binary table of surrogates.
pub fn join_bats(left: &Bat, right: &Bat) -> StorageResult<Vec<(Oid, Oid)>> {
    let l = left.ints()?;
    let r = right.ints()?;
    let mut index: HashMap<i64, Vec<Oid>> = HashMap::new();
    for (pos, &v) in l.iter().enumerate() {
        index.entry(v).or_default().push(left.head().oid_at(pos));
    }
    let mut out = Vec::new();
    for (pos, &v) in r.iter().enumerate() {
        if let Some(l_oids) = index.get(&v) {
            let r_oid = right.head().oid_at(pos);
            for &l_oid in l_oids {
                out.push((l_oid, r_oid));
            }
        }
    }
    Ok(out)
}

/// γ count: group by the tail of `groups`, counting BUNs per group value.
/// Result is sorted by group value.
pub fn aggregate_count(groups: &Bat) -> StorageResult<Vec<(Atom, u64)>> {
    let mut counts: HashMap<Atom, u64> = HashMap::new();
    for pos in 0..groups.len() {
        *counts.entry(groups.tail().atom_at(pos)).or_insert(0) += 1;
    }
    let mut out: Vec<(Atom, u64)> = counts.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// γ sum: group by the tail of `groups`, summing the integer tail of
/// `values`; the two BATs must be positionally aligned (same OID space),
/// the invariant MonetDB's SQL front-end maintains for one table's
/// columns.
pub fn aggregate_sum(groups: &Bat, values: &Bat) -> StorageResult<Vec<(Atom, i64)>> {
    if groups.len() != values.len() {
        return Err(StorageError::Misaligned {
            left: groups.len(),
            right: values.len(),
        });
    }
    let vals = values.ints()?;
    let mut sums: HashMap<Atom, i64> = HashMap::new();
    for (pos, &v) in vals.iter().enumerate() {
        *sums.entry(groups.tail().atom_at(pos)).or_insert(0) += v;
    }
    let mut out: Vec<(Atom, i64)> = sums.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// MonetDB `reverse`: swap head and tail. Only defined for OID tails
/// (a `bat[oid, oid]` view of any join index); the result maps tail OIDs
/// back to head OIDs.
pub fn reverse(bat: &Bat) -> StorageResult<Bat> {
    let tails = bat.oids()?.to_vec();
    let heads: Vec<Oid> = (0..bat.len()).map(|p| bat.head().oid_at(p)).collect();
    Bat::with_explicit_head(format!("{}_rev", bat.name()), tails, TailData::Oid(heads))
}

/// MonetDB `mirror`: a BAT whose head and tail are both the head OIDs —
/// the identity mapping used to seed positional joins.
pub fn mirror(bat: &Bat) -> StorageResult<Bat> {
    let heads: Vec<Oid> = (0..bat.len()).map(|p| bat.head().oid_at(p)).collect();
    Bat::with_explicit_head(
        format!("{}_mirror", bat.name()),
        heads.clone(),
        TailData::Oid(heads),
    )
}

/// Positional fetch: `tail[oids]` — project the tail values of `bat` at
/// the given OIDs (dense-head fast path; explicit heads probe linearly).
pub fn fetch(bat: &Bat, oids: &[Oid]) -> StorageResult<Vec<Atom>> {
    let mut out = Vec::with_capacity(oids.len());
    for &oid in oids {
        let pos = if bat.head().is_dense() {
            let base = match bat.head() {
                crate::bat::HeadColumn::Dense { base } => *base,
                _ => unreachable!(),
            };
            let p = oid.checked_sub(base).map(|d| d as usize);
            match p {
                Some(p) if p < bat.len() => p,
                _ => {
                    return Err(StorageError::OutOfBounds {
                        index: oid as usize,
                        len: bat.len(),
                    })
                }
            }
        } else {
            (0..bat.len())
                .find(|&p| bat.head().oid_at(p) == oid)
                .ok_or(StorageError::OutOfBounds {
                    index: oid as usize,
                    len: bat.len(),
                })?
        };
        out.push(bat.tail().atom_at(pos));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_range_keeps_source_oids() {
        let b = Bat::from_ints("r_a", vec![5, 20, 10, 30]);
        let s = select_range(&b, 10, 25).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.oid_at(0).unwrap(), 1);
        assert_eq!(s.oid_at(1).unwrap(), 2);
        assert_eq!(s.ints().unwrap(), &[20, 10]);
    }

    #[test]
    fn select_range_on_wrong_type_errors() {
        let b = Bat::from_floats("f", vec![1.0]);
        assert!(select_range(&b, 0, 1).is_err());
    }

    #[test]
    fn join_bats_matches_all_pairs() {
        let l = Bat::from_ints("l", vec![1, 2, 2]);
        let r = Bat::from_ints("r", vec![2, 3, 1]);
        let mut pairs = join_bats(&l, &r).unwrap();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 2), (1, 0), (2, 0)]);
    }

    #[test]
    fn aggregates_group_and_fold() {
        let g = Bat::from_ints("g", vec![1, 2, 1, 2, 2]);
        let v = Bat::from_ints("v", vec![10, 20, 30, 40, 50]);
        assert_eq!(
            aggregate_count(&g).unwrap(),
            vec![(Atom::Int(1), 2), (Atom::Int(2), 3)]
        );
        assert_eq!(
            aggregate_sum(&g, &v).unwrap(),
            vec![(Atom::Int(1), 40), (Atom::Int(2), 110)]
        );
    }

    #[test]
    fn aggregate_sum_checks_alignment() {
        let g = Bat::from_ints("g", vec![1]);
        let v = Bat::from_ints("v", vec![1, 2]);
        assert!(matches!(
            aggregate_sum(&g, &v),
            Err(StorageError::Misaligned { .. })
        ));
    }

    #[test]
    fn aggregate_count_over_strings() {
        let g = Bat::from_strs("g", ["b", "a", "b"]);
        assert_eq!(
            aggregate_count(&g).unwrap(),
            vec![(Atom::from("a"), 1), (Atom::from("b"), 2)]
        );
    }

    #[test]
    fn reverse_swaps_head_and_tail() {
        let b = Bat::from_oids("idx", vec![7, 9]);
        let r = reverse(&b).unwrap();
        assert_eq!(r.oid_at(0).unwrap(), 7);
        assert_eq!(r.oids().unwrap(), &[0, 1]);
    }

    #[test]
    fn mirror_is_identity_mapping() {
        let b = Bat::from_ints("r", vec![5, 6, 7]);
        let m = mirror(&b).unwrap();
        assert_eq!(m.oids().unwrap(), &[0, 1, 2]);
        assert_eq!(m.oid_at(2).unwrap(), 2);
    }

    #[test]
    fn fetch_dense_and_explicit_heads() {
        let b = Bat::from_ints("r", vec![10, 20, 30]);
        assert_eq!(
            fetch(&b, &[2, 0]).unwrap(),
            vec![Atom::Int(30), Atom::Int(10)]
        );
        assert!(fetch(&b, &[9]).is_err());
        let e = Bat::with_explicit_head("e", vec![5, 9], TailData::Int(vec![50, 90])).unwrap();
        assert_eq!(fetch(&e, &[9]).unwrap(), vec![Atom::Int(90)]);
        assert!(fetch(&e, &[6]).is_err());
    }

    #[test]
    fn join_select_compose_like_a_query_plan() {
        // σ then ⋈ — the shape of the paper's second example query.
        let r_a = Bat::from_ints("r_a", vec![3, 8, 1, 9]);
        let r_k = Bat::from_ints("r_k", vec![100, 200, 300, 400]);
        let s_k = Bat::from_ints("s_k", vec![300, 100, 500]);
        // select * from R where R.a < 5 -> oids {0, 2}
        let sel = select_range(&r_a, i64::MIN, 4).unwrap();
        let sel_oids: Vec<Oid> = (0..sel.len()).map(|p| sel.oid_at(p).unwrap()).collect();
        // fetch their k values and join with S.k
        let ks = fetch(&r_k, &sel_oids).unwrap();
        let k_bat = Bat::from_ints("sel_k", ks.iter().map(|a| a.as_int().unwrap()).collect());
        let mut pairs = join_bats(&k_bat, &s_k).unwrap();
        pairs.sort_unstable();
        // R oid 0 (k=100) matches S oid 1; R oid 2 (k=300) matches S oid 0.
        assert_eq!(pairs, vec![(0, 1), (1, 0)]);
    }
}
