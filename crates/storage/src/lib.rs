#![warn(missing_docs)]
//! # storage — a Binary Association Table (BAT) column store
//!
//! This crate is the storage substrate for the `dbcracker` workspace, a Rust
//! reproduction of *Cracking the Database Store* (Kersten & Manegold, CIDR
//! 2005). The paper's prototype lives inside MonetDB, whose kernel stores
//! every column as a **Binary Association Table**: a contiguous array of
//! fixed-length `(head, tail)` records, where the head is a surrogate object
//! identifier (OID) and the tail holds the attribute value. Variable-length
//! values live in a separate *heap* and the tail stores offsets into it.
//!
//! We re-implement that design in safe Rust:
//!
//! * [`bat::Bat`] — a single binary association table with a (usually dense)
//!   OID head and a typed tail column;
//! * [`heap::StrHeap`] — the variable-sized atom heap backing string tails;
//! * [`view::BatView`] — a zero-copy slice of a BAT, the mechanism the paper
//!   uses to make cracked pieces cheap ("BAT views provide a cheap
//!   representation of the newly created table", §5.2);
//! * [`accel`] — lazily built, automatically maintained search accelerators
//!   (hash table, sorted permutation), mirroring the accelerator slots in the
//!   BAT descriptor of the paper's Figure 7;
//! * [`stats`] — per-BAT statistics ((min,max) bounds, cardinality,
//!   sortedness), the raw material of the cracker index;
//! * [`catalog::StoreCatalog`] — an in-memory catalog of named BATs. The
//!   paper argues a *main-memory* catalog structure is required because
//!   routing piece administration through a persistent system catalog is
//!   what makes SQL-level cracking prohibitively expensive (§5.1, §7);
//! * [`persist`] — snapshot save/load of a catalog, so experiments can be
//!   checkpointed;
//! * [`checkpoint`] / [`wal`] — the durability layer: atomic incremental
//!   checkpoints (manifest + per-key payload files) and an append-only redo
//!   log for the pending-update overlay, so crack state recovers *warm*
//!   after a crash (protocol in `PERSISTENCE.md` at the repository root);
//! * [`page`] / [`pool`] / [`paged`] — the disk-block layer: fixed-size
//!   pages on a simulated disk, a CLOCK buffer pool with IO counters, and
//!   a paged integer column — the substrate that makes §3.4.2's
//!   "disk-blocks, being the slowest granularity in the system" a physical
//!   boundary rather than a configuration knob.
//!
//! The crate is deliberately free of any cracking logic: `cracker-core`
//! builds on top of it, exactly as MonetDB's cracker module sits on top of
//! the BAT layer as "a user defined extension module" (§3.4.2).

pub mod accel;
pub mod bat;
pub mod catalog;
pub mod checkpoint;
pub mod error;
pub mod fault;
pub mod heap;
pub mod ops;
pub mod page;
pub mod paged;
pub mod persist;
pub mod pool;
pub mod stats;
pub mod txn;
pub mod value;
pub mod view;
pub mod wal;

pub use bat::{Bat, HeadColumn, TailData};
pub use catalog::StoreCatalog;
pub use checkpoint::{CheckpointStore, CheckpointWriter, Manifest, ManifestEntry};
pub use error::{StorageError, StorageResult};
pub use fault::{FaultInjector, FaultKind, RetryPolicy};
pub use page::{IoStats, MemDisk, PageBuf, PageId, PageStore, DEFAULT_PAGE_SIZE};
pub use paged::PagedColumn;
pub use pool::{BufferPool, PoolStats};
pub use value::{Atom, AtomType, Oid};
pub use view::BatView;
pub use wal::{RedoLog, WalRecord};
