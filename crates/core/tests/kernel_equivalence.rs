//! Kernel equivalence suite: the branch-free and SIMD kernels — and the
//! banded dispatcher that mixes them per piece size — are pinned to the
//! scalar kernels across every concurrency mode a cracked column can run
//! under (plain, single-lock, sharded).
//!
//! What is pinned at which strength:
//!
//! * **Everywhere, all kernels**: split positions (piece boundaries),
//!   core ranges, sorted answer sets, whole-column `(oid, value)`
//!   multisets, and the arrangement-independent cost counters
//!   (`queries`, `cracks`, `tuples_touched`, `edge_scanned`, `merges`).
//! * **Per invocation, all kernels**: two-way `moved` — every kernel
//!   reports the canonical crossing-pair count (pinned here on virgin
//!   first cracks and exhaustively in `cracker_core::kernel`'s
//!   proptests).
//! * **Scalar ↔ branch-free only**: three-way arrangement and swap-count
//!   `moved` (those two sweeps are trace-identical). The SIMD three-way
//!   kernel reports the canonical destination-displacement count
//!   instead, pinned against an oracle in the kernel proptests; so
//!   `tuples_moved` is compared across families only where no
//!   crack-in-three could have diverged.
//! * **Per sequence**: the arrangement *within* a piece is
//!   kernel-specific (pieces are unordered sets by construction), so
//!   from the second crack on, each kernel partitions a
//!   differently-arranged piece and the *cumulative* `tuples_moved` may
//!   legitimately drift between families. Everything cracking observes
//!   stays pinned.
//!
//! The deterministic tests drive the band-boundary piece sizes (4k±1,
//! 32k±1 — the edges of the calibration table's bands) so the banded
//! dispatcher's per-band kernel switches are exercised on both sides of
//! each boundary.

use cracker_core::{
    simd_supported, ConcurrencyMode, ConcurrentColumn, CrackKernel, CrackMode, CrackerColumn,
    CrackerConfig, KernelPolicy, RangePred,
};
use proptest::prelude::*;

fn cfg(kernel: KernelPolicy) -> CrackerConfig {
    CrackerConfig::new().with_kernel(kernel)
}

/// Every forced policy of the kernel family (Auto excluded: it obeys the
/// CRACKER_KERNEL env override CI's matrix legs set, which would make
/// these comparisons env-dependent).
const POLICIES: [KernelPolicy; 4] = [
    KernelPolicy::Scalar,
    KernelPolicy::BranchFree,
    KernelPolicy::Simd,
    KernelPolicy::Banded,
];

#[test]
fn kernel_policy_flows_through_every_construction_path() {
    let vals: Vec<i64> = (0..100).rev().collect();
    let col = CrackerColumn::with_config(vals.clone(), cfg(KernelPolicy::BranchFree));
    assert_eq!(col.kernel(), CrackKernel::BranchFree);
    let col = CrackerColumn::with_config(vals.clone(), cfg(KernelPolicy::Scalar));
    assert_eq!(col.kernel(), CrackKernel::Scalar);
    // Forced SIMD resolves to the vector kernel exactly where the CPU
    // has a vector tier, and to its branch-free fallback elsewhere —
    // the graceful-degradation contract CI's simd leg relies on.
    let col = CrackerColumn::with_config(vals.clone(), cfg(KernelPolicy::Simd));
    let expect = if simd_supported() {
        CrackKernel::Simd
    } else {
        CrackKernel::BranchFree
    };
    assert_eq!(col.kernel(), expect);
    let col = CrackerColumn::with_config(vals.clone(), cfg(KernelPolicy::Banded));
    assert_eq!(col.kernel(), CrackKernel::Banded);
    let col = CrackerColumn::from_pairs(
        vals.clone(),
        (0..100).collect(),
        cfg(KernelPolicy::BranchFree),
    );
    assert_eq!(col.kernel(), CrackKernel::BranchFree);
}

/// One query sequence, the whole kernel family, every concurrency mode:
/// all executions must agree with the oracle and with each other.
#[test]
fn all_three_concurrency_modes_agree_under_every_kernel() {
    let vals: Vec<i64> = (0..20_000).map(|i| (i * 31) % 20_000).collect();
    let queries: Vec<RangePred<i64>> = (0..40)
        .map(|q| {
            let lo = (q * 977) % 18_000;
            RangePred::between(lo, lo + 700 + (q % 7) * 113)
        })
        .collect();
    for kernel in POLICIES {
        let mut plain = CrackerColumn::with_config(vals.clone(), cfg(kernel));
        let single =
            ConcurrentColumn::build(vals.clone(), cfg(kernel), ConcurrencyMode::SingleLock);
        let sharded = ConcurrentColumn::build(
            vals.clone(),
            cfg(kernel),
            ConcurrencyMode::Sharded { shards: 8 },
        );
        for pred in &queries {
            let mut want: Vec<u32> = vals
                .iter()
                .enumerate()
                .filter(|(_, &v)| pred.matches(v))
                .map(|(i, _)| i as u32)
                .collect();
            want.sort_unstable();
            let mut a = plain.select_oids(*pred);
            a.sort_unstable();
            let mut b = single.select_oids(*pred);
            b.sort_unstable();
            let mut c = sharded.select_oids(*pred);
            c.sort_unstable();
            assert_eq!(a, want, "plain/{kernel:?} disagrees with oracle");
            assert_eq!(b, want, "single-lock/{kernel:?} disagrees with oracle");
            assert_eq!(c, want, "sharded/{kernel:?} disagrees with oracle");
        }
        plain.validate().unwrap();
        single.validate().unwrap();
        sharded.validate().unwrap();
    }
}

/// The concurrent wrappers must produce kernel-independent physical cost
/// accounting too: same cracks, same tuples touched, for the same
/// single-threaded op sequence — across the whole family.
#[test]
fn stats_are_kernel_independent_in_every_mode() {
    let vals: Vec<i64> = (0..30_000).map(|i| (i * 7919) % 30_000).collect();
    for mode in [
        ConcurrencyMode::SingleLock,
        ConcurrencyMode::Sharded { shards: 8 },
    ] {
        let mut per_kernel = Vec::new();
        for kernel in POLICIES {
            let col = ConcurrentColumn::build(vals.clone(), cfg(kernel), mode);
            for q in 0..30i64 {
                let lo = (q * 887) % 27_000;
                col.count(RangePred::between(lo, lo + 1_500));
            }
            col.insert(100_000, 15_000);
            assert!(col.delete(100_000));
            assert!(col.delete(7));
            col.count(RangePred::between(0, 30_000));
            col.merge_pending();
            col.count(RangePred::between(5, 29_000));
            // `tuples_moved` is arrangement-dependent across a sequence
            // (see the module docs); the arrangement-independent counters
            // must match exactly.
            let s = col.stats();
            per_kernel.push((s.queries, s.cracks, s.tuples_touched, s.merges));
            col.validate().unwrap();
        }
        for k in &per_kernel[1..] {
            assert_eq!(
                &per_kernel[0], k,
                "{mode:?}: kernels must do identical physical work"
            );
        }
    }
}

/// Band-boundary piece sizes (4k±1, 32k±1): a virgin column whose first
/// crack is exactly at / just across each calibration-band edge, driven
/// under every policy and every concurrency mode. The banded dispatcher
/// switches kernels across these edges; nothing observable may change.
#[test]
fn band_boundary_pieces_agree_across_the_family() {
    for n in [4_095usize, 4_096, 4_097, 32_767, 32_768, 32_769] {
        let vals: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % n as i64).collect();
        let mid = n as i64 / 2;
        let preds = [
            RangePred::ge(mid),
            RangePred::between(mid / 2, mid + mid / 2),
        ];
        // Reference: the scalar plain column.
        let mut reference: Option<Vec<Vec<u32>>> = None;
        for kernel in POLICIES {
            let mut answers = Vec::new();
            let mut plain = CrackerColumn::with_config(vals.clone(), cfg(kernel));
            for pred in &preds {
                let mut got = plain.select_oids(*pred);
                got.sort_unstable();
                answers.push(got);
            }
            plain.validate().unwrap();
            for mode in [
                ConcurrencyMode::SingleLock,
                ConcurrencyMode::Sharded { shards: 4 },
            ] {
                let col = ConcurrentColumn::build(vals.clone(), cfg(kernel), mode);
                for (i, pred) in preds.iter().enumerate() {
                    let mut got = col.select_oids(*pred);
                    got.sort_unstable();
                    assert_eq!(
                        got, answers[i],
                        "n={n} {kernel:?}/{mode:?} diverged from plain"
                    );
                }
                col.validate().unwrap();
            }
            match &reference {
                None => reference = Some(answers),
                Some(want) => assert_eq!(want, &answers, "n={n} {kernel:?} answers diverged"),
            }
        }
    }
}

/// The banded dispatcher driven directly at the band edges: the raw
/// two-way partition must keep the canonical split/moved/multiset
/// contract on both sides of every band boundary (where the calibrated
/// kernel may change).
#[test]
fn banded_crack_two_keeps_the_contract_at_band_edges() {
    for n in [4_095usize, 4_096, 4_097, 32_767, 32_768, 32_769] {
        let vals: Vec<i64> = (0..n as i64).map(|i| (i * 104_729) % n as i64).collect();
        let key_mid = n as i64 / 2;
        let mut results = Vec::new();
        for kernel in [CrackKernel::Scalar, CrackKernel::Banded] {
            let mut v = vals.clone();
            let mut o: Vec<u32> = (0..n as u32).collect();
            let mut moved = 0u64;
            let p = kernel.crack_two(
                &mut v,
                &mut o,
                0,
                n,
                cracker_core::crack::BoundaryKey::lt(key_mid),
                &mut moved,
            );
            assert!(v[..p].iter().all(|&x| x < key_mid));
            assert!(v[p..].iter().all(|&x| x >= key_mid));
            for (i, &oid) in o.iter().enumerate() {
                assert_eq!(v[i], vals[oid as usize], "n={n}: oids must travel");
            }
            results.push((p, moved));
        }
        assert_eq!(results[0], results[1], "n={n}: split/moved diverged");
    }
}

/// The cracker-index boundaries as `(value, equal-side, split position)`
/// triples — the split-position fingerprint the kernels must share.
fn boundaries(col: &CrackerColumn<i64>) -> Vec<(i64, bool, usize)> {
    col.index()
        .boundaries()
        .map(|(k, info)| (k.value, k.lte, info.pos))
        .collect()
}

/// The whole column as a sorted `(oid, value)` multiset.
fn multiset(col: &CrackerColumn<i64>) -> Vec<(u32, i64)> {
    let mut pairs: Vec<(u32, i64)> = col
        .oids()
        .iter()
        .copied()
        .zip(col.values().iter().copied())
        .collect();
    pairs.sort_unstable();
    pairs
}

proptest! {
    /// The central pin, on the plain column: after every query of an
    /// arbitrary sequence (any crack mode, any cut-off), the whole
    /// kernel family has produced identical split positions, identical
    /// core ranges and answer sets, an identical whole-column multiset,
    /// and identical touched/scanned/crack accounting.
    #[test]
    fn prop_plain_columns_share_splits_multisets_and_accounting(
        orig in proptest::collection::vec(-100i64..100, 0..300),
        queries in proptest::collection::vec(
            (-120i64..120, -120i64..120, proptest::bool::ANY, proptest::bool::ANY),
            1..20
        ),
        three_way in proptest::bool::ANY,
        cutoff in 1usize..48,
    ) {
        let base = CrackerConfig::new()
            .with_mode(if three_way { CrackMode::ThreeWay } else { CrackMode::TwoWay })
            .with_min_piece_size(cutoff);
        let mut scalar = CrackerColumn::with_config(
            orig.clone(), base.with_kernel(KernelPolicy::Scalar));
        let mut others: Vec<CrackerColumn<i64>> = POLICIES[1..]
            .iter()
            .map(|&k| CrackerColumn::with_config(orig.clone(), base.with_kernel(k)))
            .collect();
        let mut first = true;
        for (a, b, inc_lo, inc_hi) in queries {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let pred = RangePred::with_bounds(Some((lo, inc_lo)), Some((hi, inc_hi)));
            let sel_s = scalar.select(pred);
            let mut oids_s = scalar.selection_oids(&sel_s);
            oids_s.sort_unstable();
            for (col, &policy) in others.iter_mut().zip(&POLICIES[1..]) {
                let sel_o = col.select(pred);
                // Identical split positions: the contiguous core and
                // every boundary the index administers.
                prop_assert_eq!(
                    sel_s.core.clone(), sel_o.core.clone(),
                    "{:?}: cores diverged", policy
                );
                prop_assert_eq!(
                    boundaries(&scalar), boundaries(col),
                    "{:?}: splits diverged", policy
                );
                prop_assert_eq!(scalar.piece_count(), col.piece_count());
                // Identical answer sets (edge positions may differ
                // inside a cut-off piece; the tuples they name may not).
                let mut oids_o = col.selection_oids(&sel_o);
                oids_o.sort_unstable();
                prop_assert_eq!(&oids_s, &oids_o, "{:?}: answer sets diverged", policy);
                prop_assert_eq!(sel_s.count(), sel_o.count());
                // Identical multiset: cracking permutes, never alters.
                prop_assert_eq!(
                    multiset(&scalar), multiset(col),
                    "{:?}: multisets diverged", policy
                );
                // Identical arrangement-independent accounting; `moved`
                // is additionally pinned on the virgin column when the
                // first query needed a single *two-way* crack — the one
                // case where every kernel partitioned the identical
                // input under the family-wide canonical two-way count
                // (a crack-in-three's `moved` is family-specific, and
                // later cracks see kernel-specific arrangements).
                let (ss, so) = (scalar.stats(), col.stats());
                if first && ss.cracks <= 1 && !three_way {
                    prop_assert_eq!(
                        ss.tuples_moved, so.tuples_moved,
                        "{:?}: moved diverged on a virgin two-way crack", policy
                    );
                }
                prop_assert_eq!(ss.tuples_touched, so.tuples_touched);
                prop_assert_eq!(ss.edge_scanned, so.edge_scanned);
                prop_assert_eq!(ss.cracks, so.cracks);
            }
            first = false;
        }
        scalar.validate().map_err(TestCaseError::fail)?;
        for col in &others {
            col.validate().map_err(TestCaseError::fail)?;
        }
    }

    /// Same pin with updates interleaved: staged inserts/deletes, overlay
    /// filtering, and merges must all be kernel-independent.
    #[test]
    fn prop_update_heavy_sequences_stay_identical(
        orig in proptest::collection::vec(-60i64..60, 1..150),
        ops in proptest::collection::vec(
            (0u8..4, -70i64..70, -70i64..70, 0usize..300),
            1..30
        ),
        merge_threshold in 1usize..24,
    ) {
        let base = CrackerConfig::new().with_merge_threshold(merge_threshold);
        let mut scalar = CrackerColumn::with_config(
            orig.clone(), base.with_kernel(KernelPolicy::Scalar));
        let mut others: Vec<CrackerColumn<i64>> = POLICIES[1..]
            .iter()
            .map(|&k| CrackerColumn::with_config(orig.clone(), base.with_kernel(k)))
            .collect();
        let mut next_oid = orig.len() as u32;
        for (kind, a, b, pick) in ops {
            match kind {
                0 | 1 => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let pred = RangePred::between(lo, hi);
                    let mut got_s = scalar.select_oids(pred);
                    got_s.sort_unstable();
                    for col in others.iter_mut() {
                        let mut got_o = col.select_oids(pred);
                        got_o.sort_unstable();
                        prop_assert_eq!(&got_s, &got_o, "answer sets diverged");
                    }
                }
                2 => {
                    scalar.insert(next_oid, a);
                    for col in others.iter_mut() {
                        col.insert(next_oid, a);
                    }
                    next_oid += 1;
                }
                _ => {
                    let victim = (pick % next_oid as usize) as u32;
                    let want = scalar.delete(victim);
                    for col in others.iter_mut() {
                        prop_assert_eq!(want, col.delete(victim));
                    }
                }
            }
            for col in &others {
                prop_assert_eq!(scalar.pending_len(), col.pending_len());
            }
        }
        scalar.merge_pending();
        scalar.validate().map_err(TestCaseError::fail)?;
        for col in others.iter_mut() {
            col.merge_pending();
            prop_assert_eq!(scalar.len(), col.len());
            prop_assert_eq!(multiset(&scalar), multiset(col));
            prop_assert_eq!(boundaries(&scalar), boundaries(col));
            prop_assert_eq!(scalar.stats().merges, col.stats().merges);
            col.validate().map_err(TestCaseError::fail)?;
        }
    }

    /// Single-lock and sharded wrappers replay the same op stream under
    /// the whole family; answers must match position-for-position (the
    /// wrappers are deterministic when driven single-threaded).
    #[test]
    fn prop_concurrent_modes_agree_across_kernels(
        orig in proptest::collection::vec(-200i64..200, 1..300),
        queries in proptest::collection::vec((-220i64..220, 0i64..80), 1..15),
        shards in 2usize..6,
    ) {
        for mode in [ConcurrencyMode::SingleLock, ConcurrencyMode::Sharded { shards }] {
            let scalar = ConcurrentColumn::build(
                orig.clone(), cfg(KernelPolicy::Scalar), mode);
            let others: Vec<ConcurrentColumn<i64>> = POLICIES[1..]
                .iter()
                .map(|&k| ConcurrentColumn::build(orig.clone(), cfg(k), mode))
                .collect();
            for &(lo, width) in &queries {
                let pred = RangePred::between(lo, lo + width);
                let mut a = scalar.select_oids(pred);
                a.sort_unstable();
                let want_count = scalar.count(pred);
                for col in &others {
                    let mut b = col.select_oids(pred);
                    b.sort_unstable();
                    prop_assert_eq!(&a, &b, "mode {:?} diverged", mode);
                    prop_assert_eq!(want_count, col.count(pred));
                }
            }
            scalar.validate().map_err(TestCaseError::fail)?;
            for col in &others {
                prop_assert_eq!(scalar.stats().cracks, col.stats().cracks);
                col.validate().map_err(TestCaseError::fail)?;
            }
        }
    }
}
