//! Kernel equivalence suite: the branch-free kernels are pinned to the
//! scalar kernels — identical split positions (piece boundaries),
//! identical multisets, identical `moved` accounting on identical inputs
//! — across every concurrency mode a cracked column can run under
//! (plain, single-lock, sharded).
//!
//! Two granularities of pin:
//!
//! * **Per invocation** (here, on the first crack of a virgin column, and
//!   exhaustively in `cracker_core::kernel`'s own proptests): same input
//!   ⇒ same split positions, same per-piece multisets, same `moved`.
//! * **Per sequence** (the bulk of this file): the arrangement *within* a
//!   piece is kernel-specific (pieces are unordered sets by
//!   construction), so from the second crack on, each kernel partitions a
//!   differently-arranged piece and the *cumulative* `tuples_moved` may
//!   legitimately drift. Everything cracking observes stays pinned:
//!   boundary positions, core ranges, sorted answer sets, whole-column
//!   `(oid, value)` multisets, and the arrangement-independent counters
//!   (`queries`, `cracks`, `tuples_touched`, `edge_scanned`).

use cracker_core::{
    ConcurrencyMode, ConcurrentColumn, CrackKernel, CrackMode, CrackerColumn, CrackerConfig,
    KernelPolicy, RangePred,
};
use proptest::prelude::*;

fn cfg(kernel: KernelPolicy) -> CrackerConfig {
    CrackerConfig::new().with_kernel(kernel)
}

#[test]
fn kernel_policy_flows_through_every_construction_path() {
    let vals: Vec<i64> = (0..100).rev().collect();
    let col = CrackerColumn::with_config(vals.clone(), cfg(KernelPolicy::BranchFree));
    assert_eq!(col.kernel(), CrackKernel::BranchFree);
    let col = CrackerColumn::with_config(vals.clone(), cfg(KernelPolicy::Scalar));
    assert_eq!(col.kernel(), CrackKernel::Scalar);
    let col = CrackerColumn::from_pairs(
        vals.clone(),
        (0..100).collect(),
        cfg(KernelPolicy::BranchFree),
    );
    assert_eq!(col.kernel(), CrackKernel::BranchFree);
}

/// One query sequence, both kernels, every concurrency mode: all six
/// executions must agree with the oracle and with each other.
#[test]
fn all_three_concurrency_modes_agree_under_both_kernels() {
    let vals: Vec<i64> = (0..20_000).map(|i| (i * 31) % 20_000).collect();
    let queries: Vec<RangePred<i64>> = (0..40)
        .map(|q| {
            let lo = (q * 977) % 18_000;
            RangePred::between(lo, lo + 700 + (q % 7) * 113)
        })
        .collect();
    for kernel in [KernelPolicy::Scalar, KernelPolicy::BranchFree] {
        let mut plain = CrackerColumn::with_config(vals.clone(), cfg(kernel));
        let single =
            ConcurrentColumn::build(vals.clone(), cfg(kernel), ConcurrencyMode::SingleLock);
        let sharded = ConcurrentColumn::build(
            vals.clone(),
            cfg(kernel),
            ConcurrencyMode::Sharded { shards: 8 },
        );
        for pred in &queries {
            let mut want: Vec<u32> = vals
                .iter()
                .enumerate()
                .filter(|(_, &v)| pred.matches(v))
                .map(|(i, _)| i as u32)
                .collect();
            want.sort_unstable();
            let mut a = plain.select_oids(*pred);
            a.sort_unstable();
            let mut b = single.select_oids(*pred);
            b.sort_unstable();
            let mut c = sharded.select_oids(*pred);
            c.sort_unstable();
            assert_eq!(a, want, "plain/{kernel:?} disagrees with oracle");
            assert_eq!(b, want, "single-lock/{kernel:?} disagrees with oracle");
            assert_eq!(c, want, "sharded/{kernel:?} disagrees with oracle");
        }
        plain.validate().unwrap();
        single.validate().unwrap();
        sharded.validate().unwrap();
    }
}

/// The concurrent wrappers must produce kernel-independent physical cost
/// accounting too: same cracks, same tuples moved, for the same
/// single-threaded op sequence.
#[test]
fn stats_are_kernel_independent_in_every_mode() {
    let vals: Vec<i64> = (0..30_000).map(|i| (i * 7919) % 30_000).collect();
    for mode in [
        ConcurrencyMode::SingleLock,
        ConcurrencyMode::Sharded { shards: 8 },
    ] {
        let mut per_kernel = Vec::new();
        for kernel in [KernelPolicy::Scalar, KernelPolicy::BranchFree] {
            let col = ConcurrentColumn::build(vals.clone(), cfg(kernel), mode);
            for q in 0..30i64 {
                let lo = (q * 887) % 27_000;
                col.count(RangePred::between(lo, lo + 1_500));
            }
            col.insert(100_000, 15_000);
            assert!(col.delete(100_000));
            assert!(col.delete(7));
            col.count(RangePred::between(0, 30_000));
            col.merge_pending();
            col.count(RangePred::between(5, 29_000));
            // `tuples_moved` is arrangement-dependent across a sequence
            // (see the module docs); the arrangement-independent counters
            // must match exactly.
            let s = col.stats();
            per_kernel.push((s.queries, s.cracks, s.tuples_touched, s.merges));
            col.validate().unwrap();
        }
        assert_eq!(
            per_kernel[0], per_kernel[1],
            "{mode:?}: kernels must do identical physical work"
        );
    }
}

/// The cracker-index boundaries as `(value, equal-side, split position)`
/// triples — the split-position fingerprint the kernels must share.
fn boundaries(col: &CrackerColumn<i64>) -> Vec<(i64, bool, usize)> {
    col.index()
        .boundaries()
        .map(|(k, info)| (k.value, k.lte, info.pos))
        .collect()
}

/// The whole column as a sorted `(oid, value)` multiset.
fn multiset(col: &CrackerColumn<i64>) -> Vec<(u32, i64)> {
    let mut pairs: Vec<(u32, i64)> = col
        .oids()
        .iter()
        .copied()
        .zip(col.values().iter().copied())
        .collect();
    pairs.sort_unstable();
    pairs
}

proptest! {
    /// The central pin, on the plain column: after every query of an
    /// arbitrary sequence (any crack mode, any cut-off), the two kernels
    /// have produced identical split positions, identical core ranges and
    /// answer sets, an identical whole-column multiset, and identical
    /// moved/touched accounting.
    #[test]
    fn prop_plain_columns_share_splits_multisets_and_accounting(
        orig in proptest::collection::vec(-100i64..100, 0..300),
        queries in proptest::collection::vec(
            (-120i64..120, -120i64..120, proptest::bool::ANY, proptest::bool::ANY),
            1..20
        ),
        three_way in proptest::bool::ANY,
        cutoff in 1usize..48,
    ) {
        let base = CrackerConfig::new()
            .with_mode(if three_way { CrackMode::ThreeWay } else { CrackMode::TwoWay })
            .with_min_piece_size(cutoff);
        let mut scalar = CrackerColumn::with_config(
            orig.clone(), base.with_kernel(KernelPolicy::Scalar));
        let mut bf = CrackerColumn::with_config(
            orig.clone(), base.with_kernel(KernelPolicy::BranchFree));
        let mut first = true;
        for (a, b, inc_lo, inc_hi) in queries {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let pred = RangePred::with_bounds(Some((lo, inc_lo)), Some((hi, inc_hi)));
            let sel_s = scalar.select(pred);
            let sel_b = bf.select(pred);
            // Identical split positions: the contiguous core and every
            // boundary the index administers.
            prop_assert_eq!(sel_s.core.clone(), sel_b.core.clone(), "cores diverged");
            prop_assert_eq!(boundaries(&scalar), boundaries(&bf), "splits diverged");
            prop_assert_eq!(scalar.piece_count(), bf.piece_count());
            // Identical answer sets (edge positions may differ inside a
            // cut-off piece; the tuples they name may not).
            let mut oids_s = scalar.selection_oids(&sel_s);
            let mut oids_b = bf.selection_oids(&sel_b);
            oids_s.sort_unstable();
            oids_b.sort_unstable();
            prop_assert_eq!(oids_s, oids_b, "answer sets diverged");
            prop_assert_eq!(sel_s.count(), sel_b.count());
            // Identical multiset: cracking permutes, never alters.
            prop_assert_eq!(multiset(&scalar), multiset(&bf), "multisets diverged");
            // Identical arrangement-independent accounting; `moved` is
            // pinned on the virgin column when the first query needed a
            // single crack — the one case where both kernels partitioned
            // the identical input (a two-way-mode range query cracks
            // twice, and the second crack already sees kernel-specific
            // piece arrangements; see the module docs).
            let (ss, sb) = (scalar.stats(), bf.stats());
            if first {
                if ss.cracks <= 1 {
                    prop_assert_eq!(
                        ss.tuples_moved, sb.tuples_moved,
                        "moved diverged on a virgin column"
                    );
                }
                first = false;
            }
            prop_assert_eq!(ss.tuples_touched, sb.tuples_touched);
            prop_assert_eq!(ss.edge_scanned, sb.edge_scanned);
            prop_assert_eq!(ss.cracks, sb.cracks);
        }
        scalar.validate().map_err(TestCaseError::fail)?;
        bf.validate().map_err(TestCaseError::fail)?;
    }

    /// Same pin with updates interleaved: staged inserts/deletes, overlay
    /// filtering, and merges must all be kernel-independent.
    #[test]
    fn prop_update_heavy_sequences_stay_identical(
        orig in proptest::collection::vec(-60i64..60, 1..150),
        ops in proptest::collection::vec(
            (0u8..4, -70i64..70, -70i64..70, 0usize..300),
            1..30
        ),
        merge_threshold in 1usize..24,
    ) {
        let base = CrackerConfig::new().with_merge_threshold(merge_threshold);
        let mut scalar = CrackerColumn::with_config(
            orig.clone(), base.with_kernel(KernelPolicy::Scalar));
        let mut bf = CrackerColumn::with_config(
            orig.clone(), base.with_kernel(KernelPolicy::BranchFree));
        let mut next_oid = orig.len() as u32;
        for (kind, a, b, pick) in ops {
            match kind {
                0 | 1 => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let pred = RangePred::between(lo, hi);
                    let mut got_s = scalar.select_oids(pred);
                    let mut got_b = bf.select_oids(pred);
                    got_s.sort_unstable();
                    got_b.sort_unstable();
                    prop_assert_eq!(got_s, got_b, "answer sets diverged");
                }
                2 => {
                    scalar.insert(next_oid, a);
                    bf.insert(next_oid, a);
                    next_oid += 1;
                }
                _ => {
                    let victim = (pick % next_oid as usize) as u32;
                    prop_assert_eq!(scalar.delete(victim), bf.delete(victim));
                }
            }
            prop_assert_eq!(scalar.pending_len(), bf.pending_len());
        }
        scalar.merge_pending();
        bf.merge_pending();
        prop_assert_eq!(scalar.len(), bf.len());
        prop_assert_eq!(multiset(&scalar), multiset(&bf));
        prop_assert_eq!(boundaries(&scalar), boundaries(&bf));
        prop_assert_eq!(scalar.stats().merges, bf.stats().merges);
        scalar.validate().map_err(TestCaseError::fail)?;
        bf.validate().map_err(TestCaseError::fail)?;
    }

    /// Single-lock and sharded wrappers replay the same op stream under
    /// both kernels; answers must match position-for-position (the
    /// wrappers are deterministic when driven single-threaded).
    #[test]
    fn prop_concurrent_modes_agree_across_kernels(
        orig in proptest::collection::vec(-200i64..200, 1..300),
        queries in proptest::collection::vec((-220i64..220, 0i64..80), 1..15),
        shards in 2usize..6,
    ) {
        for mode in [ConcurrencyMode::SingleLock, ConcurrencyMode::Sharded { shards }] {
            let scalar = ConcurrentColumn::build(
                orig.clone(), cfg(KernelPolicy::Scalar), mode);
            let bf = ConcurrentColumn::build(
                orig.clone(), cfg(KernelPolicy::BranchFree), mode);
            for &(lo, width) in &queries {
                let pred = RangePred::between(lo, lo + width);
                let mut a = scalar.select_oids(pred);
                let mut b = bf.select_oids(pred);
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "mode {:?} diverged", mode);
                prop_assert_eq!(scalar.count(pred), bf.count(pred));
            }
            prop_assert_eq!(scalar.stats().cracks, bf.stats().cracks);
            scalar.validate().map_err(TestCaseError::fail)?;
            bf.validate().map_err(TestCaseError::fail)?;
        }
    }
}
