//! Lockdep negative and clean-run tests.
//!
//! This suite lives in its own test binary on purpose: it calls
//! [`lockdep::force_enable`], which switches the checker on for the whole
//! process, and the negative tests feed deliberate violations into the
//! global lock-order graph. Keeping them here means neither leaks into
//! unrelated suites. Every negative test uses throwaway class names
//! (`neg-*`) so the poisoned graph edges never collide with the real
//! classes (`column`, `shard`, `admission`), which the clean-run tests
//! exercise under full instrumentation in this same process.

use cracker_core::sync::{lockdep, LockGroup, RwLock};
use cracker_core::{
    ConcurrencyMode, ConcurrentColumn, RangePred, ShardedCrackerColumn, SharedCrackerColumn,
};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Negative tests: each seeded violation must trip the checker.
// ---------------------------------------------------------------------------

/// The issue's seeded inversion: two latches of one sharded group taken
/// in descending shard order. Lockdep must refuse at the second acquire.
#[test]
#[should_panic(expected = "same-class order inversion")]
fn seeded_descending_shard_acquisition_trips_lockdep() {
    lockdep::force_enable();
    let group = LockGroup::new();
    let shard0 = RwLock::with_class(0u32, "neg-shard", 0, group);
    let shard1 = RwLock::with_class(1u32, "neg-shard", 1, group);
    let _hi = shard1.read();
    let _lo = shard0.read(); // descending: panics
}

#[test]
#[should_panic(expected = "same-class order inversion")]
fn equal_order_in_one_group_also_trips() {
    lockdep::force_enable();
    let group = LockGroup::new();
    let a = RwLock::with_class(0u32, "neg-shard-eq", 3, group);
    let b = RwLock::with_class(0u32, "neg-shard-eq", 3, group);
    let _a = a.read();
    let _b = b.read(); // equal order, same group: not strictly ascending
}

/// Distinct groups must NOT order-constrain each other: descending
/// orders across two groups of the same class are fine.
#[test]
fn distinct_groups_do_not_cross_constrain() {
    lockdep::force_enable();
    let a = RwLock::with_class(0u32, "neg-shard-groups", 1, LockGroup::new());
    let b = RwLock::with_class(0u32, "neg-shard-groups", 0, LockGroup::new());
    let _a = a.read();
    let _b = b.read();
}

#[test]
#[should_panic(expected = "lock-order cycle")]
fn cross_class_cycle_trips_lockdep() {
    lockdep::force_enable();
    let a = RwLock::with_class(0u32, "neg-cycle-a", 0, LockGroup::new());
    let b = RwLock::with_class(0u32, "neg-cycle-b", 0, LockGroup::new());
    {
        // Teach the graph a -> b.
        let _a = a.write();
        let _b = b.write();
    }
    // Now close the cycle: b -> a.
    let _b = b.write();
    let _a = a.write();
}

#[test]
#[should_panic(expected = "read->write upgrade while held")]
fn upgrade_while_held_trips_lockdep() {
    lockdep::force_enable();
    let l = RwLock::with_class(0u32, "neg-upgrade", 0, LockGroup::new());
    let _r = l.read();
    let _w = l.write(); // classic self-deadlocking upgrade
}

#[test]
#[should_panic(expected = "recursive read latch")]
fn recursive_read_trips_lockdep() {
    lockdep::force_enable();
    let l = RwLock::with_class(0u32, "neg-recursive", 0, LockGroup::new());
    let _r1 = l.read();
    let _r2 = l.read(); // deadlocks for real once a writer queues between
}

#[test]
#[should_panic(expected = "latch budget exceeded")]
fn latch_budget_trips_on_third_roundtrip() {
    lockdep::force_enable();
    let l = RwLock::with_class(0u32, "neg-budget", 0, LockGroup::new());
    let _budget = lockdep::LatchBudget::new("neg-budget", 2, "test contract");
    drop(l.read());
    drop(l.write());
    drop(l.read()); // third round-trip on one instance: over budget
}

#[test]
fn latch_budget_allows_the_contracted_roundtrips() {
    lockdep::force_enable();
    let group = LockGroup::new();
    let a = RwLock::with_class(0u32, "neg-budget-ok", 0, group);
    let b = RwLock::with_class(0u32, "neg-budget-ok", 1, group);
    let _budget = lockdep::LatchBudget::new("neg-budget-ok", 2, "test contract");
    // Two round-trips per instance, many instances: within contract.
    drop(a.read());
    drop(b.read());
    drop(a.write());
    drop(b.write());
}

// ---------------------------------------------------------------------------
// Clean runs: the real protocols under full instrumentation.
// ---------------------------------------------------------------------------

fn dataset(n: u32) -> Vec<i64> {
    // Deterministic scramble, same shape the other suites use.
    (0..n).map(|i| i64::from((i * 37) % n)).collect()
}

/// The column-wide double-checked upgrade protocol of
/// `SharedCrackerColumn` under contention: no upgrade-while-held, no
/// order violation, exactly the answers the oracle predicts.
#[test]
fn shared_column_protocol_is_clean_under_lockdep() {
    lockdep::force_enable();
    let col = Arc::new(SharedCrackerColumn::new(dataset(512)));
    let mut handles = Vec::new();
    for t in 0..4i64 {
        let col = Arc::clone(&col);
        handles.push(std::thread::spawn(move || {
            for lo in [t * 13, t * 29, 100 + t] {
                let got = col.select_oids(RangePred::between(lo, lo + 64)).len();
                let want = dataset(512)
                    .iter()
                    .filter(|v| (lo..=lo + 64).contains(v))
                    .count();
                assert_eq!(got, want);
            }
        }));
    }
    for h in handles {
        h.join().expect("no lockdep violation in shared column");
    }
}

/// The two-phase ascending-shard protocol, point and batch paths, under
/// contention — including the batch path's two-round-trips-per-shard
/// budget, which is armed inside `select_oids_batch_into` itself.
#[test]
fn sharded_column_protocol_is_clean_under_lockdep() {
    lockdep::force_enable();
    let col = Arc::new(ShardedCrackerColumn::new(dataset(1024), 4));
    let mut handles = Vec::new();
    for t in 0..4i64 {
        let col = Arc::clone(&col);
        handles.push(std::thread::spawn(move || {
            let preds: Vec<_> = (0..6)
                .map(|i| RangePred::between(t * 31 + i * 7, t * 31 + i * 7 + 90))
                .collect();
            let batch = col.select_oids_batch(&preds);
            for (pred, got) in preds.iter().zip(&batch) {
                let single = col.select_oids(*pred);
                assert_eq!(got.len(), single.len());
            }
            // Mutations latch one shard at a time; keep them in the mix.
            col.insert(u32::MAX - t as u32, 7 + t);
            col.delete(u32::MAX - t as u32);
        }));
    }
    for h in handles {
        h.join().expect("no lockdep violation in sharded column");
    }
}

/// The `ConcurrentColumn` facade routes to both protocols; run it under
/// instrumentation too so mode dispatch stays covered.
#[test]
fn concurrent_column_modes_are_clean_under_lockdep() {
    lockdep::force_enable();
    for mode in [
        ConcurrencyMode::SingleLock,
        ConcurrencyMode::Sharded { shards: 2 },
    ] {
        let col = ConcurrentColumn::build(dataset(256), Default::default(), mode);
        let oids = col.select_oids(RangePred::ge(128));
        assert_eq!(oids.len(), 128);
    }
}
