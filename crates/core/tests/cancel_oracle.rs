//! Cancellation never tears state and never changes later answers — in
//! either concurrency mode.
//!
//! The cooperative guard may fail at any poll: between predicates of a
//! batch and (single-lock mode) between the two crack steps of one
//! two-sided predicate. Wherever it fires, the contract of
//! `ROBUSTNESS.md` must hold:
//!
//! 1. the piece map still validates (every recorded boundary is true of
//!    the value array — `CrackerIndex::validate` subsumes
//!    `check_pieces`),
//! 2. every *completed* predicate's answer matches the naive oracle,
//! 3. abandoned predicates left their output buffers untouched, and
//! 4. re-running the whole batch afterwards, unguarded, returns exactly
//!    the oracle answers — the cancelled query cost itself its answer,
//!    never anybody else's.
//!
//! The proptest drives the poll-failure point through the whole range of
//! interesting positions, so the guard dies at the batch boundary, at the
//! crack-step boundary, and nowhere at all, across both modes.

use cracker_core::{ConcurrencyMode, ConcurrentColumn, CrackerConfig, RangePred};
use proptest::collection::vec;
use proptest::prelude::*;

fn oracle(orig: &[i64], pred: &RangePred<i64>) -> Vec<u32> {
    let mut v: Vec<u32> = orig
        .iter()
        .enumerate()
        .filter(|(_, &x)| pred.matches(x))
        .map(|(i, _)| i as u32)
        .collect();
    v.sort_unstable();
    v
}

fn modes() -> [ConcurrencyMode; 2] {
    [
        ConcurrencyMode::SingleLock,
        ConcurrencyMode::Sharded { shards: 4 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_cancel_anywhere_is_tear_free_in_both_modes(
        orig in vec(-400i64..400, 8..300),
        queries in vec((-420i64..420, 1i64..90), 2..10),
        cancel_at in 0usize..48,
    ) {
        let preds: Vec<RangePred<i64>> = queries
            .iter()
            .map(|&(lo, w)| RangePred::between(lo, lo + w))
            .collect();
        for mode in modes() {
            let col = ConcurrentColumn::build(orig.clone(), CrackerConfig::default(), mode);
            // Warm the column a little so guarded queries hit real piece
            // maps, not only virgin three-way cracks.
            col.count(preds[0]);

            let polls = std::cell::Cell::new(0usize);
            let guard = || {
                polls.set(polls.get() + 1);
                polls.get() <= cancel_at
            };
            let mut outs: Vec<Vec<u32>> = preds.iter().map(|_| Vec::new()).collect();
            let done = col.select_oids_batch_guarded(&preds, &mut outs, &guard);

            prop_assert!(done <= preds.len());
            col.validate().map_err(TestCaseError::fail)?;
            for (i, out) in outs.iter().enumerate() {
                if i < done {
                    let mut got = out.clone();
                    got.sort_unstable();
                    prop_assert_eq!(
                        got,
                        oracle(&orig, &preds[i]),
                        "completed pred {} under {:?}",
                        i,
                        mode
                    );
                } else {
                    prop_assert!(
                        out.is_empty(),
                        "abandoned pred {} wrote output under {:?}",
                        i,
                        mode
                    );
                }
            }

            // Whatever partial cracking the cancelled run left behind,
            // later unguarded queries see exactly the oracle answers.
            for pred in &preds {
                let mut got = col.select_oids(*pred);
                got.sort_unstable();
                prop_assert_eq!(got, oracle(&orig, pred), "post-cancel {:?}", mode);
            }
            col.validate().map_err(TestCaseError::fail)?;
        }
    }
}
