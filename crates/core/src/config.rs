//! Cracker configuration.
//!
//! §3.4.2 closes with "the research challenge ... to find a balance between
//! cracking the database into pieces, the overhead it incurs in terms of
//! cracker index management, query optimization, and query evaluation plan.
//! Possible cut-off points to consider are the disk-blocks, being the
//! slowest granularity in the system, or to limit the number of pieces
//! administered." `CrackerConfig` exposes exactly those knobs, and they
//! are swept by the ablation benchmarks.

use crate::kernel::KernelPolicy;
use serde::{Deserialize, Serialize};

/// How a double-sided range predicate cracks a virgin piece.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrackMode {
    /// Two successive two-way cracks (one per bound).
    TwoWay,
    /// A single-pass three-way partition when both bounds land in the same
    /// piece — the paper's "second version \[of\] selection-cracking that
    /// yields three pieces" (§3.1).
    ThreeWay,
}

/// Which boundary to sacrifice when the piece budget is exceeded.
///
/// "Fusion of pieces becomes a necessity, but which heuristic works best,
/// with minimal amount of work \[,\] remains an open issue" (§3.2). We
/// implement three candidates and benchmark them against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FusionPolicy {
    /// Merge the adjacent pair of pieces with the smallest combined size
    /// (keeps big, discriminative pieces).
    SmallestPair,
    /// Drop the least recently used boundary (keeps the hot set sharp).
    LeastRecentlyUsed,
    /// Drop the boundary that produces the most balanced merge, i.e. the
    /// one whose removal increases the maximum piece size the least.
    MostBalanced,
}

/// Tuning knobs for a [`crate::column::CrackerColumn`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrackerConfig {
    /// Two-way vs. single-pass three-way cracking for range predicates.
    pub mode: CrackMode,
    /// Pieces at or below this size are never cracked further; the residual
    /// filtering is done by scanning inside the piece. Models the paper's
    /// disk-block cut-off. `1` disables the cut-off.
    pub min_piece_size: usize,
    /// Upper bound on the number of pieces; exceeding it triggers fusion.
    /// `usize::MAX` disables fusion.
    pub max_pieces: usize,
    /// Fusion heuristic used when `max_pieces` is exceeded.
    pub fusion: FusionPolicy,
    /// Pending-update staging area size that forces a merge into the
    /// cracked store on the next query.
    pub merge_threshold: usize,
    /// Pieces at or below this size are sorted in place on first touch and
    /// thereafter cracked by binary search with zero tuple movement
    /// (progressive refinement, see [`crate::sorted`]). `0` disables.
    pub sort_below: usize,
    /// Which crack kernel the column's hot loops run (scalar, predicated
    /// branch-free, SIMD vector lanes, or the per-piece-size-band
    /// dispatcher; see [`crate::kernel`]). Resolved once at column
    /// construction: `Auto` consults `CRACKER_KERNEL`, then falls to the
    /// lazily calibrated band table.
    pub kernel: KernelPolicy,
}

impl Default for CrackerConfig {
    fn default() -> Self {
        CrackerConfig {
            mode: CrackMode::ThreeWay,
            min_piece_size: 1,
            max_pieces: usize::MAX,
            fusion: FusionPolicy::SmallestPair,
            merge_threshold: 1024,
            sort_below: 0,
            kernel: KernelPolicy::Auto,
        }
    }
}

impl CrackerConfig {
    /// Default configuration (three-way cracks, no cut-off, no piece cap).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: set the crack mode.
    pub fn with_mode(mut self, mode: CrackMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder: set the minimum piece size (cut-off granule).
    pub fn with_min_piece_size(mut self, n: usize) -> Self {
        self.min_piece_size = n.max(1);
        self
    }

    /// Builder: cap the number of pieces.
    pub fn with_max_pieces(mut self, n: usize) -> Self {
        self.max_pieces = n.max(1);
        self
    }

    /// Builder: choose the fusion policy.
    pub fn with_fusion(mut self, policy: FusionPolicy) -> Self {
        self.fusion = policy;
        self
    }

    /// Builder: set the pending-update merge threshold.
    pub fn with_merge_threshold(mut self, n: usize) -> Self {
        self.merge_threshold = n.max(1);
        self
    }

    /// Builder: set the progressive-refinement sort threshold (`0`
    /// disables).
    pub fn with_sort_below(mut self, n: usize) -> Self {
        self.sort_below = n;
        self
    }

    /// Builder: choose the crack kernel (scalar, branch-free, SIMD,
    /// banded, or auto-selected).
    pub fn with_kernel(mut self, kernel: KernelPolicy) -> Self {
        self.kernel = kernel;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_no_limits() {
        let c = CrackerConfig::default();
        assert_eq!(c.mode, CrackMode::ThreeWay);
        assert_eq!(c.min_piece_size, 1);
        assert_eq!(c.max_pieces, usize::MAX);
        assert_eq!(c.kernel, KernelPolicy::Auto);
    }

    #[test]
    fn builder_chains() {
        let c = CrackerConfig::new()
            .with_mode(CrackMode::TwoWay)
            .with_min_piece_size(64)
            .with_max_pieces(100)
            .with_fusion(FusionPolicy::LeastRecentlyUsed)
            .with_merge_threshold(10)
            .with_kernel(KernelPolicy::BranchFree);
        assert_eq!(c.mode, CrackMode::TwoWay);
        assert_eq!(c.min_piece_size, 64);
        assert_eq!(c.max_pieces, 100);
        assert_eq!(c.fusion, FusionPolicy::LeastRecentlyUsed);
        assert_eq!(c.merge_threshold, 10);
        assert_eq!(c.kernel, KernelPolicy::BranchFree);
    }

    #[test]
    fn degenerate_values_are_clamped() {
        let c = CrackerConfig::new()
            .with_min_piece_size(0)
            .with_max_pieces(0)
            .with_merge_threshold(0);
        assert_eq!(c.min_piece_size, 1);
        assert_eq!(c.max_pieces, 1);
        assert_eq!(c.merge_threshold, 1);
    }
}
