//! Range predicates.
//!
//! The paper restricts selection predicates to "simple (range) conditions of
//! the form `attr ∈ [low, high]` or `attr θ cst` with `θ ∈ {<, ≤, =, ≥, >}`"
//! (§3.1), with point selections viewed as double-sided ranges with
//! `low == high`. [`RangePred`] models that exact family, with explicit
//! inclusivity per bound.

use crate::value_trait::CrackValue;
use serde::{Deserialize, Serialize};

/// One bound of a range predicate: the value plus whether it is included.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bound<T> {
    /// Bound value.
    pub value: T,
    /// True for `≤` / `≥`; false for `<` / `>`.
    pub inclusive: bool,
}

/// A (possibly one-sided) range predicate over a single attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangePred<T> {
    /// Lower bound; `None` means unbounded below.
    pub low: Option<Bound<T>>,
    /// Upper bound; `None` means unbounded above.
    pub high: Option<Bound<T>>,
}

impl<T: CrackValue> RangePred<T> {
    /// `attr < v`.
    pub fn lt(v: T) -> Self {
        RangePred {
            low: None,
            high: Some(Bound {
                value: v,
                inclusive: false,
            }),
        }
    }

    /// `attr ≤ v`.
    pub fn le(v: T) -> Self {
        RangePred {
            low: None,
            high: Some(Bound {
                value: v,
                inclusive: true,
            }),
        }
    }

    /// `attr > v`.
    pub fn gt(v: T) -> Self {
        RangePred {
            low: Some(Bound {
                value: v,
                inclusive: false,
            }),
            high: None,
        }
    }

    /// `attr ≥ v`.
    pub fn ge(v: T) -> Self {
        RangePred {
            low: Some(Bound {
                value: v,
                inclusive: true,
            }),
            high: None,
        }
    }

    /// `attr = v` — a point selection, i.e. the double-sided range
    /// `[v, v]`, exactly as §3.1 suggests.
    pub fn eq(v: T) -> Self {
        Self::between(v, v)
    }

    /// `low ≤ attr ≤ high` (both inclusive).
    pub fn between(low: T, high: T) -> Self {
        RangePred {
            low: Some(Bound {
                value: low,
                inclusive: true,
            }),
            high: Some(Bound {
                value: high,
                inclusive: true,
            }),
        }
    }

    /// `low ≤ attr < high` (half-open, the common generated-workload form).
    pub fn half_open(low: T, high: T) -> Self {
        RangePred {
            low: Some(Bound {
                value: low,
                inclusive: true,
            }),
            high: Some(Bound {
                value: high,
                inclusive: false,
            }),
        }
    }

    /// Fully custom bounds.
    pub fn with_bounds(low: Option<(T, bool)>, high: Option<(T, bool)>) -> Self {
        RangePred {
            low: low.map(|(value, inclusive)| Bound { value, inclusive }),
            high: high.map(|(value, inclusive)| Bound { value, inclusive }),
        }
    }

    /// Evaluate the predicate against one value (the correctness oracle all
    /// cracked answers are property-tested against).
    pub fn matches(&self, v: T) -> bool {
        if let Some(lo) = self.low {
            let ok = if lo.inclusive {
                v >= lo.value
            } else {
                v > lo.value
            };
            if !ok {
                return false;
            }
        }
        if let Some(hi) = self.high {
            let ok = if hi.inclusive {
                v <= hi.value
            } else {
                v < hi.value
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// True when no value can satisfy the predicate (reversed bounds).
    pub fn is_empty_range(&self) -> bool {
        match (self.low, self.high) {
            (Some(lo), Some(hi)) => {
                lo.value > hi.value || (lo.value == hi.value && !(lo.inclusive && hi.inclusive))
            }
            _ => false,
        }
    }

    /// True when both bounds are present.
    pub fn is_double_sided(&self) -> bool {
        self.low.is_some() && self.high.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_sided_predicates_match_correctly() {
        assert!(RangePred::lt(10).matches(9));
        assert!(!RangePred::lt(10).matches(10));
        assert!(RangePred::le(10).matches(10));
        assert!(RangePred::gt(10).matches(11));
        assert!(!RangePred::gt(10).matches(10));
        assert!(RangePred::ge(10).matches(10));
    }

    #[test]
    fn double_sided_and_point() {
        let p = RangePred::between(5, 10);
        assert!(p.matches(5) && p.matches(10) && p.matches(7));
        assert!(!p.matches(4) && !p.matches(11));
        let q = RangePred::eq(5);
        assert!(q.matches(5));
        assert!(!q.matches(6));
        let h = RangePred::half_open(5, 10);
        assert!(h.matches(5) && h.matches(9));
        assert!(!h.matches(10));
    }

    #[test]
    fn empty_ranges_are_detected() {
        assert!(RangePred::between(10, 5).is_empty_range());
        assert!(RangePred::half_open(5, 5).is_empty_range());
        assert!(!RangePred::between(5, 5).is_empty_range());
        assert!(!RangePred::lt(3).is_empty_range());
        let open_point = RangePred::with_bounds(Some((5, false)), Some((5, true)));
        assert!(open_point.is_empty_range());
    }

    #[test]
    fn unbounded_predicate_matches_everything() {
        let p: RangePred<i64> = RangePred::with_bounds(None, None);
        assert!(p.matches(i64::MIN));
        assert!(p.matches(i64::MAX));
        assert!(!p.is_double_sided());
    }
}
