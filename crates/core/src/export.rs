//! Exporting cracked pieces as BATs and BAT views.
//!
//! §5.2: "With the data physically stored in a single container, we can
//! also use MonetDB's cheap mechanism to slice portions from it using a
//! BAT view. ... The MonetDB BATviews provide a cheap representation of
//! the newly created table. Their location within the BAT storage area and
//! their statistical properties are copied to the cracker index."
//!
//! [`export_bat`] materializes the cracked column as one BAT (explicit
//! head = surrogate OIDs, tail = values, in the *cracked* physical order);
//! [`piece_views`] then hands out one zero-copy [`BatView`] per piece, so
//! downstream operators (unions, joins over pieces) work on the standard
//! storage abstractions without copying a single BUN. [`register_pieces`]
//! publishes the views in a [`StoreCatalog`] under `name[k]` labels
//! matching the lineage convention.

use crate::column::CrackerColumn;
use crate::index::Piece;
use std::sync::Arc;
use storage::{Bat, BatView, StorageResult, StoreCatalog, TailData};

/// Materialize the cracked column (in its current physical order) as a
/// single BAT: head = surrogate OIDs, tail = values.
pub fn export_bat(col: &CrackerColumn<i64>, name: impl Into<String>) -> StorageResult<Bat> {
    let oids: Vec<u64> = col.oids().iter().map(|&o| o as u64).collect();
    Bat::with_explicit_head(name, oids, TailData::Int(col.values().to_vec()))
}

/// One exported piece: its index metadata plus a zero-copy view of its
/// slot range.
#[derive(Debug, Clone)]
pub struct PieceView {
    /// The piece's boundaries as recorded in the cracker index.
    pub piece: Piece<i64>,
    /// Zero-copy window over the exported BAT.
    pub view: BatView,
}

/// Slice the exported BAT into one view per cracker-index piece. The
/// views tile the BAT exactly.
pub fn piece_views(col: &CrackerColumn<i64>, bat: &Arc<Bat>) -> StorageResult<Vec<PieceView>> {
    col.index()
        .pieces()
        .into_iter()
        .map(|piece| {
            Ok(PieceView {
                view: BatView::slice(Arc::clone(bat), piece.start..piece.end)?,
                piece,
            })
        })
        .collect()
}

/// Export the column and register every piece in `catalog` as
/// `name[1]`, `name[2]`, ... (materialized, since the catalog owns BATs;
/// the full container is registered under `name` itself). Returns the
/// piece labels.
pub fn register_pieces(
    col: &CrackerColumn<i64>,
    catalog: &StoreCatalog,
    name: &str,
) -> StorageResult<Vec<String>> {
    let bat = Arc::new(export_bat(col, name)?);
    let mut labels = Vec::new();
    for (i, pv) in piece_views(col, &bat)?.into_iter().enumerate() {
        let label = format!("{name}[{}]", i + 1);
        let piece_bat = pv.view.materialize(label.clone())?;
        catalog.replace(&label, piece_bat);
        labels.push(label);
    }
    catalog.replace(name, (*bat).clone());
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::RangePred;

    fn cracked() -> CrackerColumn<i64> {
        let mut c = CrackerColumn::new((0..100).rev().collect());
        c.select(RangePred::between(20, 40));
        c.select(RangePred::between(60, 80));
        c
    }

    #[test]
    fn export_preserves_pairs() {
        let c = cracked();
        let bat = export_bat(&c, "r_a").unwrap();
        assert_eq!(bat.len(), 100);
        for pos in 0..100 {
            assert_eq!(bat.oid_at(pos).unwrap(), c.oids()[pos] as u64);
            assert_eq!(bat.ints().unwrap()[pos], c.values()[pos]);
        }
    }

    #[test]
    fn views_tile_the_container() {
        let c = cracked();
        let bat = Arc::new(export_bat(&c, "r_a").unwrap());
        let views = piece_views(&c, &bat).unwrap();
        assert_eq!(views.len(), c.piece_count());
        let mut cursor = 0;
        for pv in &views {
            assert_eq!(pv.view.bun_range().start, cursor);
            cursor = pv.view.bun_range().end;
        }
        assert_eq!(cursor, 100);
        // Total coverage without copies.
        let total: usize = views.iter().map(|pv| pv.view.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn piece_views_respect_value_boundaries() {
        let c = cracked();
        let bat = Arc::new(export_bat(&c, "r_a").unwrap());
        for pv in piece_views(&c, &bat).unwrap() {
            let stats = pv.view.stats();
            if let (Some(upper), Some(max)) = (pv.piece.upper, stats.max) {
                let max = max.as_int().unwrap();
                // Every value in the piece lies before its upper boundary.
                assert!(upper.before(max), "piece max {max} vs boundary {upper:?}");
            }
            if let (Some(lower), Some(min)) = (pv.piece.lower, stats.min) {
                let min = min.as_int().unwrap();
                assert!(!lower.before(min), "piece min {min} vs boundary {lower:?}");
            }
        }
    }

    #[test]
    fn register_publishes_labelled_pieces() {
        let c = cracked();
        let catalog = StoreCatalog::new();
        let labels = register_pieces(&c, &catalog, "r_a").unwrap();
        assert_eq!(labels.len(), c.piece_count());
        assert!(catalog.contains("r_a"));
        assert!(catalog.contains("r_a[1]"));
        // Union of the pieces reconstructs the container (loss-less).
        let total: usize = labels.iter().map(|l| catalog.get(l).unwrap().len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn virgin_column_exports_one_piece() {
        let c = CrackerColumn::new(vec![3i64, 1, 2]);
        let bat = Arc::new(export_bat(&c, "v").unwrap());
        let views = piece_views(&c, &bat).unwrap();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].view.len(), 3);
    }
}
