//! A sharded, per-piece-latched concurrent cracker index.
//!
//! [`crate::concurrent::SharedCrackerColumn`] serializes every
//! boundary-miss behind one column-wide lock: two queries that would crack
//! *different* pieces still queue on the same `RwLock`. §4 of the paper
//! hints at the cure — cracking already clusters the store by value range,
//! so the value domain itself is the natural unit of concurrency control.
//! [`ShardedCrackerColumn`] makes that structural: the domain is
//! range-partitioned at construction into S shards (split points chosen by
//! sampling, like the paper's first-touch clustering), each shard an
//! independently latched [`CrackerColumn`]. Concurrent crackers whose
//! predicates land in disjoint shards proceed fully in parallel.
//!
//! # Latching protocol
//!
//! Every multi-shard operation touches shards in **ascending shard-index
//! order** and acquires latches in that order only — the global latch
//! order that makes deadlock impossible (any two operations contend on
//! their common shards in the same sequence). A straddling select runs in
//! two phases:
//!
//! 1. **Optimistic (shared)**: take the read latch of every touched shard
//!    in ascending order and try [`CrackerColumn::try_select_readonly`] on
//!    each. If all succeed while all read latches are held, the answer is
//!    a consistent cross-shard snapshot and nothing was written.
//! 2. **Pessimistic**: otherwise drop all read latches and re-visit the
//!    touched shards in ascending order. Each shard is first re-tried
//!    read-only under a fresh read latch (double-checked locking — a
//!    contended thread never re-enters the cracking path for boundaries a
//!    winner created while it waited, and shards that need no cracking
//!    keep admitting concurrent readers); only a shard that still misses
//!    has its read latch dropped and its *write* latch taken, where the
//!    read-only path is retried once more before falling through to the
//!    cracking [`CrackerColumn::select`]. Re-acquiring a latch on the same
//!    shard after releasing its read latch never requests a lower index
//!    than one already held, so the global ascending order is preserved.
//!
//! Single-shard operations (updates routed by value, per-shard merges)
//! latch exactly one shard at a time and therefore compose with the
//! ascending-order rule trivially.
//!
//! # Batched selects (latch amortization)
//!
//! [`ShardedCrackerColumn::select_oids_batch_into`] answers a whole batch
//! of predicates in one pass over the shards: the batch is first bucketed
//! by shard (each predicate contributing its clamped per-shard predicate
//! to every shard it touches), then shards are visited in ascending index
//! order exactly **once**: the prefix of a shard's bucket whose
//! predicates hit existing boundaries is answered under a single read
//! latch, and at the first boundary miss the remainder is answered under
//! a single write latch (with the usual double-checked read-only retry
//! per predicate). A batch of k predicates touching a shard thus costs at
//! most two latch round-trips instead of k — and exactly one on a warm
//! column — which is where the multi-threaded win over
//! statement-at-a-time execution comes from. Each predicate's answer
//! is consistent per shard (the same guarantee the pessimistic phase of a
//! single straddling select provides); the batch as a whole is not a
//! cross-shard snapshot.
//!
//! # Predicate clamping
//!
//! A shard only ever stores values inside its assigned range, so border
//! shards are queried with the original predicate unchanged, while
//! *interior* shards of a straddling range are queried with the unbounded
//! predicate — their entire content qualifies, which the read-only path
//! answers without a single index probe (and without cracking).
//!
//! Every shard is built from the same `CrackerConfig`, so the crack
//! kernel selected there (scalar / branch-free / SIMD / banded,
//! [`crate::kernel`]) runs inside every shard — a faster single-shard
//! kernel multiplies through the whole latching scheme, and the band
//! dispatcher sees each shard's own (smaller) piece sizes.

use crate::column::{CrackerColumn, Selection};
use crate::concurrent::SharedCrackerColumn;
use crate::config::CrackerConfig;
use crate::pred::RangePred;
use crate::stats::CrackStats;
use crate::sync::{lockdep, LockGroup, RwLock, RwLockReadGuard, RwLockWriteGuard};
use crate::value_trait::CrackValue;

/// Upper bound on the number of values sampled to choose shard splits.
const SPLIT_SAMPLE: usize = 4096;

/// Lockdep class of the per-shard latches. Shard `i`'s latch carries
/// order key `i` inside the column's [`LockGroup`], so the ascending-
/// index discipline documented above is checked mechanically under
/// `LOCK_ANALYSIS=1` (see [`crate::sync`] and `CONCURRENCY.md`).
const LATCH_CLASS: &str = "shard";

/// A held shard latch of either strength (phase 2 mixes them: shards that
/// need no cracking stay read-latched).
enum Latch<'a, T> {
    Read(RwLockReadGuard<'a, CrackerColumn<T>>),
    Write(RwLockWriteGuard<'a, CrackerColumn<T>>),
}

impl<T> Latch<'_, T> {
    fn col(&self) -> &CrackerColumn<T> {
        match self {
            Latch::Read(g) => g,
            Latch::Write(g) => g,
        }
    }
}

/// Run a cracking select on one shard with panic containment: heal the
/// shard (validate-or-rebuild its piece map) before letting the unwind
/// continue, so a kernel dying mid-reorganization degrades that shard to
/// cold instead of leaving it torn for every later query. The mirror of
/// `SharedCrackerColumn`'s containment, per shard.
fn select_contained<T: CrackValue>(column: &mut CrackerColumn<T>, pred: RangePred<T>) -> Selection {
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| column.select(pred)));
    match attempt {
        Ok(sel) => sel,
        Err(payload) => {
            column.heal();
            std::panic::resume_unwind(payload);
        }
    }
}

/// How a concurrently shared cracked column is latched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConcurrencyMode {
    /// One `RwLock` around the whole column
    /// ([`SharedCrackerColumn`]).
    #[default]
    SingleLock,
    /// Range-partitioned shards, each independently latched
    /// ([`ShardedCrackerColumn`]).
    Sharded {
        /// Number of shards requested (the realized count can be lower
        /// when the data has too few distinct values to split).
        shards: usize,
    },
}

/// A per-shard `Selection` together with the shard that produced it.
///
/// The positions inside each [`Selection`] are relative to that shard's
/// own value/OID arrays; the OIDs materialized from them are global. Like
/// [`SharedCrackerColumn`]'s selections, this is a snapshot: it describes
/// the physical layout at the moment the latches were held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedSelection {
    /// `(shard index, selection within that shard)`, ascending by shard.
    pub parts: Vec<(usize, Selection)>,
}

impl ShardedSelection {
    /// Total number of qualifying tuples across all shards.
    pub fn count(&self) -> usize {
        self.parts.iter().map(|(_, s)| s.count()).sum()
    }

    /// True when nothing qualifies anywhere.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }
}

/// A cracker index partitioned into independently latched value-range
/// shards.
#[derive(Debug)]
pub struct ShardedCrackerColumn<T> {
    /// Ascending split values: shard `i` holds `splits[i-1] <= v <
    /// splits[i]` (first shard unbounded below, last unbounded above).
    splits: Vec<T>,
    /// One latched cracker per shard; `shards.len() == splits.len() + 1`.
    shards: Vec<RwLock<CrackerColumn<T>>>,
}

impl<T: CrackValue> ShardedCrackerColumn<T> {
    /// Shard `vals` into (at most) `shards` range partitions with the
    /// default cracker configuration.
    pub fn new(vals: Vec<T>, shards: usize) -> Self {
        Self::with_config(vals, CrackerConfig::default(), shards)
    }

    /// Shard `vals` with an explicit per-shard cracker configuration.
    ///
    /// Split points are chosen by sampling up to [`SPLIT_SAMPLE`] values
    /// at a fixed stride and taking equi-depth quantiles, so a skewed
    /// value distribution still yields balanced shard populations. OIDs
    /// are assigned densely (`0..n`) over the *original* order, exactly as
    /// [`CrackerColumn::new`] would, and travel with their values into the
    /// owning shard.
    pub fn with_config(vals: Vec<T>, config: CrackerConfig, shards: usize) -> Self {
        let splits = sample_splits(&vals, shards);
        let shard_count = splits.len() + 1;
        let mut parts: Vec<(Vec<T>, Vec<u32>)> =
            (0..shard_count).map(|_| (Vec::new(), Vec::new())).collect();
        for (i, v) in vals.into_iter().enumerate() {
            let s = splits.partition_point(|split| *split <= v);
            parts[s].0.push(v);
            parts[s].1.push(i as u32);
        }
        let group = LockGroup::new();
        let shards = parts
            .into_iter()
            .enumerate()
            .map(|(i, (v, o))| {
                RwLock::with_class(
                    CrackerColumn::from_pairs(v, o, config),
                    LATCH_CLASS,
                    i as u32,
                    group,
                )
            })
            .collect();
        ShardedCrackerColumn { splits, shards }
    }

    /// Reassemble a sharded column from previously exported parts — the
    /// recovery constructor. `columns[i]` becomes shard `i` under the same
    /// latch classes and ascending order keys as
    /// [`with_config`](Self::with_config); `splits` must be strictly
    /// ascending with `columns.len() == splits.len() + 1`. The per-shard
    /// range invariant (every cracked value inside its shard's assigned
    /// range) is checked here so a tampered checkpoint fails loudly
    /// instead of producing a silently mis-routed column.
    pub fn from_parts(splits: Vec<T>, columns: Vec<CrackerColumn<T>>) -> Result<Self, String> {
        if columns.len() != splits.len() + 1 {
            return Err(format!(
                "shard count mismatch: {} columns for {} splits",
                columns.len(),
                splits.len()
            ));
        }
        if splits.windows(2).any(|w| w[0] >= w[1]) {
            return Err("split points must be strictly ascending".to_string());
        }
        for (i, col) in columns.iter().enumerate() {
            let lower = i.checked_sub(1).map(|j| splits[j]);
            let upper = splits.get(i).copied();
            for &v in col.values() {
                if lower.is_some_and(|lo| v < lo) || upper.is_some_and(|hi| v >= hi) {
                    return Err(format!(
                        "shard {i}: value {v:?} outside range {lower:?}..{upper:?}"
                    ));
                }
            }
        }
        let group = LockGroup::new();
        let shards = columns
            .into_iter()
            .enumerate()
            .map(|(i, col)| RwLock::with_class(col, LATCH_CLASS, i as u32, group))
            .collect();
        Ok(ShardedCrackerColumn { splits, shards })
    }

    /// Run `f` over every shard's column in ascending shard order, one
    /// read latch at a time — the export path for checkpointing.
    pub fn read_shards<R>(&self, mut f: impl FnMut(&CrackerColumn<T>) -> R) -> Vec<R> {
        self.shards.iter().map(|s| f(&s.read())).collect()
    }

    /// Number of shards actually realized.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The split values delimiting the shards (ascending, `shard_count() -
    /// 1` of them).
    pub fn splits(&self) -> &[T] {
        &self.splits
    }

    /// Index of the shard owning `value`.
    fn shard_of(&self, value: T) -> usize {
        self.splits.partition_point(|split| *split <= value)
    }

    /// Inclusive `(first, last)` range of shard indices a predicate can
    /// have matches in.
    fn touched(&self, pred: &RangePred<T>) -> (usize, usize) {
        let first = match pred.low {
            None => 0,
            Some(b) => self.shard_of(b.value),
        };
        let last = match pred.high {
            None => self.shards.len() - 1,
            // Exclusive high: values equal to the bound do not match, so a
            // shard starting exactly at the bound need not be latched.
            Some(b) if !b.inclusive => self.splits.partition_point(|split| *split < b.value),
            Some(b) => self.shard_of(b.value),
        };
        (first, last.max(first))
    }

    /// The predicate shard `i` must evaluate: border shards see the
    /// original bounds, interior shards the unbounded predicate (every
    /// value they store qualifies by construction).
    fn shard_pred(pred: &RangePred<T>, i: usize, first: usize, last: usize) -> RangePred<T> {
        RangePred {
            low: if i == first { pred.low } else { None },
            high: if i == last { pred.high } else { None },
        }
    }

    /// Run `consume` over the per-shard selections of `pred`, in ascending
    /// shard order, while the corresponding latches are held — the
    /// two-phase protocol described in the module doc.
    fn for_each_selection(
        &self,
        pred: RangePred<T>,
        consume: &mut dyn FnMut(&CrackerColumn<T>, &Selection, usize),
    ) {
        if pred.is_empty_range() {
            return;
        }
        let (first, last) = self.touched(&pred);
        // Phase 1: optimistic — shared latches, ascending.
        {
            let mut guards = Vec::with_capacity(last - first + 1);
            let mut sels = Vec::with_capacity(last - first + 1);
            let mut complete = true;
            for i in first..=last {
                let guard = self.shards[i].read();
                match guard.try_select_readonly(Self::shard_pred(&pred, i, first, last)) {
                    Some(sel) => {
                        guards.push(guard);
                        sels.push(sel);
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                for (off, (guard, sel)) in guards.iter().zip(&sels).enumerate() {
                    consume(guard, sel, first + off);
                }
                return;
            }
        }
        // Phase 2: pessimistic — ascending, per shard: retry read-only
        // under a fresh read latch (keeping the shard open to concurrent
        // readers when it needs no cracking), escalating to the write
        // latch — with one more read-only retry under it — only on a
        // persistent miss.
        let mut guards: Vec<Latch<'_, T>> = Vec::with_capacity(last - first + 1);
        let mut sels = Vec::with_capacity(last - first + 1);
        for i in first..=last {
            let p = Self::shard_pred(&pred, i, first, last);
            let read = self.shards[i].read();
            if let Some(sel) = read.try_select_readonly(p) {
                guards.push(Latch::Read(read));
                sels.push(sel);
                continue;
            }
            drop(read);
            let mut write = self.shards[i].write();
            let sel = match write.try_select_readonly(p) {
                Some(sel) => sel,
                None => select_contained(&mut write, p),
            };
            guards.push(Latch::Write(write));
            sels.push(sel);
        }
        for (off, (guard, sel)) in guards.iter().zip(&sels).enumerate() {
            consume(guard.col(), sel, first + off);
        }
    }

    /// Run `consume` over the per-shard selections of a whole predicate
    /// batch, visiting each touched shard exactly once in ascending index
    /// order and answering all of that shard's predicates under a single
    /// latch acquisition — the latch-amortization protocol from the module
    /// doc. `consume` receives the batch index of the predicate a
    /// selection belongs to.
    fn for_each_selection_batch(
        &self,
        preds: &[RangePred<T>],
        consume: &mut dyn FnMut(usize, &CrackerColumn<T>, &Selection),
    ) {
        // Machine-checked form of the amortization contract: at most two
        // latch round-trips (one read + one write) per shard for the
        // whole batch (no-op unless lock analysis is on).
        let _budget = lockdep::LatchBudget::new(LATCH_CLASS, 2, "batch latch amortization");
        // Bucket the batch by shard: `work[s]` holds `(batch index,
        // clamped per-shard predicate)` for every predicate touching
        // shard `s`, in batch order.
        let mut work: Vec<Vec<(usize, RangePred<T>)>> = vec![Vec::new(); self.shards.len()];
        for (idx, pred) in preds.iter().enumerate() {
            if pred.is_empty_range() {
                continue;
            }
            let (first, last) = self.touched(pred);
            for (s, jobs) in work.iter_mut().enumerate().take(last + 1).skip(first) {
                jobs.push((idx, Self::shard_pred(pred, s, first, last)));
            }
        }
        for (s, jobs) in work.iter().enumerate() {
            if jobs.is_empty() {
                continue;
            }
            // Optimistic: consume straight off the shared latch until the
            // first boundary miss (no staging buffer — each answer is
            // final the moment its boundaries are known to exist).
            let mut done = 0;
            {
                let read = self.shards[s].read();
                for (idx, p) in jobs {
                    match read.try_select_readonly(*p) {
                        Some(sel) => {
                            consume(*idx, &read, &sel);
                            done += 1;
                        }
                        None => break,
                    }
                }
            }
            if done == jobs.len() {
                continue;
            }
            // Pessimistic: escalate to the write latch once for the
            // remainder of the bucket, double-checking the read-only path
            // per predicate so a cold predicate still enters the cracking
            // select() at most once.
            let mut write = self.shards[s].write();
            for (idx, p) in &jobs[done..] {
                let sel = match write.try_select_readonly(*p) {
                    Some(sel) => sel,
                    None => select_contained(&mut write, *p),
                };
                consume(*idx, &write, &sel);
            }
        }
    }

    /// Count qualifying tuples. Shards whose boundaries already exist are
    /// read-latched only; crackers on disjoint shards run in parallel.
    pub fn count(&self, pred: RangePred<T>) -> usize {
        let mut total = 0usize;
        self.for_each_selection(pred, &mut |_, sel, _| total += sel.count());
        total
    }

    /// Qualifying OIDs (unordered across shards, physical order within
    /// each), same latching discipline as [`count`](Self::count).
    pub fn select_oids(&self, pred: RangePred<T>) -> Vec<u32> {
        let mut out = Vec::new();
        self.select_oids_into(pred, &mut out);
        out
    }

    /// Append the qualifying OIDs of `pred` to `out` — the scratch-buffer
    /// twin of [`select_oids`](Self::select_oids); a warm query allocates
    /// nothing.
    pub fn select_oids_into(&self, pred: RangePred<T>, out: &mut Vec<u32>) {
        self.for_each_selection(pred, &mut |col, sel, _| {
            col.selection_oids_into(sel, out);
        });
    }

    /// Answer a whole batch of predicates, appending the OIDs of
    /// `preds[i]` to `outs[i]`. Each touched shard's latch is acquired
    /// once for the whole batch on a warm column — at most twice (read,
    /// then write for the cold remainder) otherwise; ascending shard
    /// order preserved. See the module doc's latch-amortization section.
    pub fn select_oids_batch_into(&self, preds: &[RangePred<T>], outs: &mut [Vec<u32>]) {
        assert_eq!(preds.len(), outs.len(), "one output buffer per predicate");
        self.for_each_selection_batch(preds, &mut |idx, col, sel| {
            col.selection_oids_into(sel, &mut outs[idx]);
        });
    }

    /// Allocating convenience wrapper over
    /// [`select_oids_batch_into`](Self::select_oids_batch_into).
    pub fn select_oids_batch(&self, preds: &[RangePred<T>]) -> Vec<Vec<u32>> {
        let mut outs: Vec<Vec<u32>> = preds.iter().map(|_| Vec::new()).collect();
        self.select_oids_batch_into(preds, &mut outs);
        outs
    }

    /// The cancellable twin of
    /// [`select_oids_batch_into`](Self::select_oids_batch_into):
    /// `keep_going` is polled before every predicate, and each predicate's
    /// answer is all-or-nothing (a predicate's per-shard cracks each run
    /// to completion — pieces are never left torn). Returns the number of
    /// predicates fully answered — always a prefix; `outs` beyond it are
    /// untouched. The poll sits at predicate granularity here (rather
    /// than the single-lock path's crack-step granularity) because a
    /// straddling predicate's partial cross-shard answer could not be
    /// discarded without double-cracking; each per-shard crack remains an
    /// atomic step either way.
    ///
    /// # Panics
    /// Panics if `preds` and `outs` differ in length.
    pub fn select_oids_batch_guarded(
        &self,
        preds: &[RangePred<T>],
        outs: &mut [Vec<u32>],
        keep_going: &dyn Fn() -> bool,
    ) -> usize {
        assert_eq!(preds.len(), outs.len(), "one output buffer per predicate");
        for (i, (pred, out)) in preds.iter().zip(outs.iter_mut()).enumerate() {
            if !keep_going() {
                return i;
            }
            self.select_oids_into(*pred, out);
        }
        preds.len()
    }

    /// Qualifying `(oid, value)` pairs, same latching discipline as
    /// [`count`](Self::count).
    pub fn select_pairs(&self, pred: RangePred<T>) -> Vec<(u32, T)> {
        let mut out = Vec::new();
        self.for_each_selection(pred, &mut |col, sel, _| {
            col.copy_selection_into(sel, &mut out);
        });
        out
    }

    /// The stitched per-shard selections for `pred` — a layout snapshot
    /// (see [`ShardedSelection`]). Cracks as a side effect where needed.
    pub fn select(&self, pred: RangePred<T>) -> ShardedSelection {
        let mut parts = Vec::new();
        self.for_each_selection(pred, &mut |_, sel, shard| {
            parts.push((shard, sel.clone()));
        });
        ShardedSelection { parts }
    }

    /// The inclusive `(first, last)` shard-index range `pred` can have
    /// matches in, or `None` for an empty range — the morsel enumeration
    /// entry point: a caller that wants to claim shards as independent
    /// morsels asks for the touched range once, then answers each shard
    /// with [`select_shard_oids_into`](Self::select_shard_oids_into).
    pub fn touched_shards(&self, pred: &RangePred<T>) -> Option<(usize, usize)> {
        if pred.is_empty_range() {
            return None;
        }
        Some(self.touched(pred))
    }

    /// Answer `pred` on a single shard, appending its qualifying OIDs to
    /// `out` — the morsel execution entry point. The predicate is clamped
    /// to the shard exactly as [`select_oids`](Self::select_oids) would
    /// (border shards see the original bounds, interior shards the
    /// unbounded predicate), and the per-shard two-phase latch protocol is
    /// followed: optimistic read latch, then write latch with a read-only
    /// double-check. Shards outside the touched range contribute nothing.
    /// Because each call latches exactly one shard and the latch is
    /// released before the next claim, concurrent morsel workers never
    /// hold two shard latches at once — the ascending-order deadlock rule
    /// is satisfied vacuously.
    pub fn select_shard_oids_into(&self, shard: usize, pred: RangePred<T>, out: &mut Vec<u32>) {
        let Some((first, last)) = self.touched_shards(&pred) else {
            return;
        };
        if shard < first || shard > last {
            return;
        }
        let p = Self::shard_pred(&pred, shard, first, last);
        {
            let read = self.shards[shard].read();
            if let Some(sel) = read.try_select_readonly(p) {
                read.selection_oids_into(&sel, out);
                return;
            }
        }
        let mut write = self.shards[shard].write();
        let sel = match write.try_select_readonly(p) {
            Some(sel) => sel,
            None => select_contained(&mut write, p),
        };
        write.selection_oids_into(&sel, out);
    }

    /// Stage an insert, routed to the shard owning `value` (one exclusive
    /// shard latch).
    pub fn insert(&self, oid: u32, value: T) {
        self.shards[self.shard_of(value)].write().insert(oid, value);
    }

    /// Stage a batch of inserts under one exclusive latch acquisition per
    /// *touched* shard (ascending index order, matching the global latch
    /// rule): rows are bucketed by owning shard first, then each bucket is
    /// applied in one critical section — N staged rows cost at most
    /// `shard_count` latch round-trips instead of N.
    pub fn insert_batch(&self, rows: &[(u32, T)]) {
        if rows.is_empty() {
            return;
        }
        let mut buckets: Vec<Vec<(u32, T)>> = vec![Vec::new(); self.shards.len()];
        for &(oid, value) in rows {
            buckets[self.shard_of(value)].push((oid, value));
        }
        for (s, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut col = self.shards[s].write();
            for &(oid, value) in bucket {
                col.insert(oid, value);
            }
        }
    }

    /// Stage a delete. The value (hence shard) of `oid` is unknown, so
    /// shards are probed in ascending order — under a *read* latch, so the
    /// scan doesn't stall readers of uninvolved shards — and only the
    /// owning shard is write-latched to stage the delete. Returns whether
    /// the OID was found (false also when a racing delete got there
    /// first).
    pub fn delete(&self, oid: u32) -> bool {
        for shard in &self.shards {
            let present = {
                let col = shard.read();
                col.pending.insert_value(oid).is_some() || col.oids().contains(&oid)
            };
            if present {
                // Re-checked under the write latch: a concurrent delete
                // may have claimed the OID between the two latches.
                return shard.write().delete(oid);
            }
        }
        false
    }

    /// Fold staged updates into every shard (one exclusive latch at a
    /// time, ascending).
    pub fn merge_pending(&self) {
        for shard in &self.shards {
            shard.write().merge_pending();
        }
    }

    /// Chaos hook: arm the first shard's panic-on-crack countdown (see
    /// [`CrackerColumn::arm_panic_on_crack`]). Arming one shard keeps the
    /// blast radius of one `arm` call at exactly one panic — the countdown
    /// disarms itself when it fires, so later queries run clean — while
    /// still exercising the per-shard containment path.
    pub fn arm_panic_on_crack(&self, after: u32) {
        if let Some(shard) = self.shards.first() {
            shard.write().arm_panic_on_crack(after);
        }
    }

    /// Validate-or-rebuild every shard's piece map (see
    /// [`CrackerColumn::heal`]); returns whether any shard was rebuilt.
    /// The select paths already heal the affected shard automatically
    /// when a contained panic unwinds through them.
    pub fn heal(&self) -> bool {
        let mut rebuilt = false;
        for shard in &self.shards {
            rebuilt |= shard.write().heal();
        }
        rebuilt
    }

    /// Aggregate cost counters over all shards.
    pub fn stats(&self) -> CrackStats {
        let mut acc = CrackStats::default();
        for shard in &self.shards {
            acc.absorb(shard.read().stats());
        }
        acc
    }

    /// Total number of pieces across all shards.
    pub fn piece_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().piece_count()).sum()
    }

    /// Total number of stored tuples (excludes pending inserts).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validate every shard's cracker invariants plus the sharding
    /// invariant itself: all values (cracked and staged) lie inside their
    /// shard's assigned range. Test/debug helper.
    pub fn validate(&self) -> Result<(), String> {
        for (i, shard) in self.shards.iter().enumerate() {
            let col = shard.read();
            col.validate().map_err(|e| format!("shard {i}: {e}"))?;
            let lower = i.checked_sub(1).map(|j| self.splits[j]);
            let upper = self.splits.get(i).copied();
            for &v in col.values() {
                if lower.is_some_and(|lo| v < lo) || upper.is_some_and(|hi| v >= hi) {
                    return Err(format!(
                        "shard {i}: value {v:?} outside range {lower:?}..{upper:?}"
                    ));
                }
            }
            let range =
                RangePred::with_bounds(lower.map(|lo| (lo, true)), upper.map(|hi| (hi, false)));
            let everything = RangePred::with_bounds(None, None);
            if col.pending.matching_inserts(&range).len()
                != col.pending.matching_inserts(&everything).len()
            {
                return Err(format!("shard {i}: staged insert outside shard range"));
            }
        }
        Ok(())
    }
}

/// Equi-depth split points from a strided sample of `vals` (ascending,
/// strictly distinct; may be fewer than `shards - 1` when the data has too
/// few distinct values).
fn sample_splits<T: CrackValue>(vals: &[T], shards: usize) -> Vec<T> {
    if shards <= 1 || vals.is_empty() {
        return Vec::new();
    }
    let stride = (vals.len() / SPLIT_SAMPLE).max(1);
    let mut sample: Vec<T> = vals.iter().step_by(stride).copied().collect();
    sample.sort_unstable();
    let mut splits: Vec<T> = Vec::with_capacity(shards - 1);
    for k in 1..shards {
        let v = sample[k * sample.len() / shards];
        if splits.last() != Some(&v) {
            splits.push(v);
        }
    }
    splits
}

/// A latched cracked column under either concurrency mode — the type the
/// engine hands out when several threads share one cracked attribute.
// One long-lived handle per shared column; the size skew between the two
// variants is irrelevant next to the column data behind them, and boxing
// would put a pointer chase on every query.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ConcurrentColumn<T> {
    /// One column-wide `RwLock`.
    Single(SharedCrackerColumn<T>),
    /// Range-partitioned per-shard latches.
    Sharded(ShardedCrackerColumn<T>),
}

impl<T: CrackValue> ConcurrentColumn<T> {
    /// Build from `vals` under `mode`.
    pub fn build(vals: Vec<T>, config: CrackerConfig, mode: ConcurrencyMode) -> Self {
        match mode {
            ConcurrencyMode::SingleLock => {
                ConcurrentColumn::Single(SharedCrackerColumn::with_config(vals, config))
            }
            ConcurrencyMode::Sharded { shards } => {
                ConcurrentColumn::Sharded(ShardedCrackerColumn::with_config(vals, config, shards))
            }
        }
    }

    /// The mode this column was built under.
    pub fn mode(&self) -> ConcurrencyMode {
        match self {
            ConcurrentColumn::Single(_) => ConcurrencyMode::SingleLock,
            ConcurrentColumn::Sharded(s) => ConcurrencyMode::Sharded {
                shards: s.shard_count(),
            },
        }
    }

    /// Count qualifying tuples.
    pub fn count(&self, pred: RangePred<T>) -> usize {
        match self {
            ConcurrentColumn::Single(c) => c.count(pred),
            ConcurrentColumn::Sharded(c) => c.count(pred),
        }
    }

    /// Qualifying OIDs (unordered).
    pub fn select_oids(&self, pred: RangePred<T>) -> Vec<u32> {
        match self {
            ConcurrentColumn::Single(c) => c.select_oids(pred),
            ConcurrentColumn::Sharded(c) => c.select_oids(pred),
        }
    }

    /// Append the qualifying OIDs of `pred` to `out` (scratch-buffer
    /// variant — no per-query allocation on a warm column).
    pub fn select_oids_into(&self, pred: RangePred<T>, out: &mut Vec<u32>) {
        match self {
            ConcurrentColumn::Single(c) => c.select_oids_into(pred, out),
            ConcurrentColumn::Sharded(c) => c.select_oids_into(pred, out),
        }
    }

    /// Answer a batch of predicates under amortized locking, appending
    /// the OIDs of `preds[i]` to `outs[i]`: one lock acquisition per
    /// batch (single-lock mode) or one latch acquisition per touched
    /// shard per batch (sharded mode).
    pub fn select_oids_batch_into(&self, preds: &[RangePred<T>], outs: &mut [Vec<u32>]) {
        match self {
            ConcurrentColumn::Single(c) => c.select_oids_batch_into(preds, outs),
            ConcurrentColumn::Sharded(c) => c.select_oids_batch_into(preds, outs),
        }
    }

    /// Allocating convenience wrapper over
    /// [`select_oids_batch_into`](Self::select_oids_batch_into).
    pub fn select_oids_batch(&self, preds: &[RangePred<T>]) -> Vec<Vec<u32>> {
        match self {
            ConcurrentColumn::Single(c) => c.select_oids_batch(preds),
            ConcurrentColumn::Sharded(c) => c.select_oids_batch(preds),
        }
    }

    /// The cancellable batch select: `keep_going` is polled at safe
    /// boundaries (per predicate in both modes, plus per crack step in
    /// single-lock mode) and the batch stops — piece maps valid, later
    /// answers unaffected — once it reports false. Returns the number of
    /// predicates fully answered, always a prefix of `preds`.
    ///
    /// # Panics
    /// Panics if `preds` and `outs` differ in length.
    pub fn select_oids_batch_guarded(
        &self,
        preds: &[RangePred<T>],
        outs: &mut [Vec<u32>],
        keep_going: &dyn Fn() -> bool,
    ) -> usize {
        match self {
            ConcurrentColumn::Single(c) => c.select_oids_batch_guarded(preds, outs, keep_going),
            ConcurrentColumn::Sharded(c) => c.select_oids_batch_guarded(preds, outs, keep_going),
        }
    }

    /// Chaos hook: arm the panic-on-crack countdown (the first shard in
    /// sharded mode). See [`CrackerColumn::arm_panic_on_crack`].
    pub fn arm_panic_on_crack(&self, after: u32) {
        match self {
            ConcurrentColumn::Single(c) => c.arm_panic_on_crack(after),
            ConcurrentColumn::Sharded(c) => c.arm_panic_on_crack(after),
        }
    }

    /// Validate-or-rebuild the piece map(s); returns whether anything was
    /// rebuilt. See [`CrackerColumn::heal`].
    pub fn heal(&self) -> bool {
        match self {
            ConcurrentColumn::Single(c) => c.heal(),
            ConcurrentColumn::Sharded(c) => c.heal(),
        }
    }

    /// Stage an insert.
    pub fn insert(&self, oid: u32, value: T) {
        match self {
            ConcurrentColumn::Single(c) => c.insert(oid, value),
            ConcurrentColumn::Sharded(c) => c.insert(oid, value),
        }
    }

    /// Stage a batch of inserts under amortized latching: one write-latch
    /// acquisition total (single-lock mode) or one per touched shard
    /// (sharded mode, ascending index order).
    pub fn insert_batch(&self, rows: &[(u32, T)]) {
        match self {
            ConcurrentColumn::Single(c) => c.insert_batch(rows),
            ConcurrentColumn::Sharded(c) => c.insert_batch(rows),
        }
    }

    /// Stage a delete; returns whether the OID was found.
    pub fn delete(&self, oid: u32) -> bool {
        match self {
            ConcurrentColumn::Single(c) => c.delete(oid),
            ConcurrentColumn::Sharded(c) => c.delete(oid),
        }
    }

    /// The sharded column behind this handle, when built in sharded mode
    /// — the morsel scheduler needs the per-shard claim surface
    /// ([`ShardedCrackerColumn::touched_shards`] /
    /// [`ShardedCrackerColumn::select_shard_oids_into`]), which a
    /// column-wide lock cannot offer.
    pub fn as_sharded(&self) -> Option<&ShardedCrackerColumn<T>> {
        match self {
            ConcurrentColumn::Single(_) => None,
            ConcurrentColumn::Sharded(c) => Some(c),
        }
    }

    /// Fold staged updates into the store.
    pub fn merge_pending(&self) {
        match self {
            ConcurrentColumn::Single(c) => c.merge_pending(),
            ConcurrentColumn::Sharded(c) => c.merge_pending(),
        }
    }

    /// Aggregate cost counters.
    pub fn stats(&self) -> CrackStats {
        match self {
            ConcurrentColumn::Single(c) => c.stats(),
            ConcurrentColumn::Sharded(c) => c.stats(),
        }
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        match self {
            ConcurrentColumn::Single(c) => c.len(),
            ConcurrentColumn::Sharded(c) => c.len(),
        }
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of pieces.
    pub fn piece_count(&self) -> usize {
        match self {
            ConcurrentColumn::Single(c) => c.piece_count(),
            ConcurrentColumn::Sharded(c) => c.piece_count(),
        }
    }

    /// Validate all invariants (test/debug).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ConcurrentColumn::Single(c) => c.validate(),
            ConcurrentColumn::Sharded(c) => c.validate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    fn oracle(vals: &[i64], pred: &RangePred<i64>) -> Vec<u32> {
        let mut v: Vec<u32> = vals
            .iter()
            .enumerate()
            .filter(|(_, &x)| pred.matches(x))
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn sharded_answers_agree_with_oracle() {
        let vals: Vec<i64> = (0..10_000).map(|i| (i * 37) % 10_000).collect();
        let col = ShardedCrackerColumn::new(vals.clone(), 8);
        assert_eq!(col.shard_count(), 8);
        assert_eq!(col.len(), vals.len());
        for (lo, hi) in [(0, 100), (4_990, 5_010), (9_000, 9_999), (0, 9_999)] {
            let pred = RangePred::between(lo, hi);
            let mut got = col.select_oids(pred);
            got.sort_unstable();
            assert_eq!(got, oracle(&vals, &pred));
            assert_eq!(col.count(pred), got.len());
        }
        col.validate().unwrap();
    }

    #[test]
    fn straddling_predicate_latches_interior_shards_readonly() {
        // A range covering several whole shards: the interior shards are
        // answered without cracking (their unbounded predicate needs no
        // boundary), so total cracks stay bounded by the two borders.
        let vals: Vec<i64> = (0..16_000).rev().collect();
        let col = ShardedCrackerColumn::new(vals.clone(), 16);
        let pred = RangePred::between(1_500, 14_500);
        let n = col.count(pred);
        assert_eq!(n, 13_001);
        assert!(
            col.stats().cracks <= 2,
            "only border shards may crack, got {}",
            col.stats().cracks
        );
        col.validate().unwrap();
    }

    #[test]
    fn one_sided_and_empty_predicates() {
        let vals: Vec<i64> = (0..1_000).map(|i| (i * 7) % 1_000).collect();
        let col = ShardedCrackerColumn::new(vals.clone(), 4);
        for pred in [
            RangePred::lt(250),
            RangePred::le(250),
            RangePred::gt(750),
            RangePred::ge(750),
            RangePred::eq(500),
            RangePred::with_bounds(None, None),
        ] {
            let mut got = col.select_oids(pred);
            got.sort_unstable();
            assert_eq!(got, oracle(&vals, &pred), "pred {pred:?}");
        }
        assert_eq!(col.count(RangePred::between(10, 5)), 0);
        assert_eq!(col.count(RangePred::half_open(7, 7)), 0);
        col.validate().unwrap();
    }

    #[test]
    fn empty_and_tiny_columns() {
        let col: ShardedCrackerColumn<i64> = ShardedCrackerColumn::new(Vec::new(), 8);
        assert!(col.is_empty());
        assert_eq!(col.count(RangePred::between(0, 10)), 0);
        let col = ShardedCrackerColumn::new(vec![5i64], 8);
        assert_eq!(col.count(RangePred::eq(5)), 1);
        col.validate().unwrap();
    }

    #[test]
    fn duplicates_collapse_split_points() {
        let col = ShardedCrackerColumn::new(vec![7i64; 5_000], 16);
        assert!(
            col.shard_count() <= 2,
            "constant data cannot be split 16 ways, got {} shards",
            col.shard_count()
        );
        assert_eq!(col.count(RangePred::eq(7)), 5_000);
        col.validate().unwrap();
    }

    #[test]
    fn updates_route_to_owning_shards() {
        let vals: Vec<i64> = (0..4_000).collect();
        let col = ShardedCrackerColumn::new(vals, 8);
        col.count(RangePred::between(100, 200)); // warm some boundaries
        col.insert(10_000, 150);
        col.insert(10_001, 3_999);
        assert_eq!(col.count(RangePred::between(100, 200)), 102);
        assert!(col.delete(10_000));
        assert!(col.delete(150));
        assert!(!col.delete(99_999));
        assert_eq!(col.count(RangePred::between(100, 200)), 100);
        col.validate().unwrap();
        col.merge_pending();
        assert_eq!(col.len(), 4_000); // -1 cracked tuple, +1 surviving insert
        assert_eq!(col.count(RangePred::between(100, 200)), 100);
        col.validate().unwrap();
    }

    #[test]
    fn selection_stitching_counts_match() {
        let vals: Vec<i64> = (0..8_000).rev().collect();
        let col = ShardedCrackerColumn::new(vals, 8);
        let pred = RangePred::between(1_000, 7_000);
        let stitched = col.select(pred);
        assert!(stitched.parts.len() > 1, "predicate must straddle shards");
        assert_eq!(stitched.count(), 6_001);
        assert!(!stitched.is_empty());
        // Parts arrive in ascending shard order.
        for w in stitched.parts.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(stitched.count(), col.count(pred));
    }

    #[test]
    fn contended_cold_predicate_cracks_each_shard_at_most_once() {
        // The sharded write path must double-check the read-only path
        // under each exclusive latch: racing threads on the same cold
        // straddling predicate perform each shard's cracking select once.
        let vals: Vec<i64> = (0..50_000).rev().collect();
        let col = ShardedCrackerColumn::new(vals, 8);
        let threads = 8;
        let pred = RangePred::between(11_111, 38_888);
        let barrier = Barrier::new(threads);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let col = &col;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    assert_eq!(col.count(pred), 27_778);
                });
            }
        });
        // Only the two border shards enter select() (queries counts every
        // select() entry; interior shards answer read-only): exactly one
        // cracking select per border shard, no redundant re-entry.
        assert_eq!(
            col.stats().queries,
            2,
            "contended upgrade must not re-run select() for existing boundaries"
        );
        col.validate().unwrap();
    }

    #[test]
    fn concurrent_disjoint_shards_stay_correct() {
        let vals: Vec<i64> = (0..40_000).map(|i| (i * 31) % 40_000).collect();
        let col = ShardedCrackerColumn::new(vals.clone(), 8);
        std::thread::scope(|s| {
            for t in 0..8 {
                let col = &col;
                let vals = &vals;
                s.spawn(move || {
                    for q in 0..40 {
                        let lo = ((t * 4_813 + q * 127) % 39_000) as i64;
                        let pred = RangePred::between(lo, lo + 500);
                        assert_eq!(col.count(pred), oracle(vals, &pred).len());
                    }
                });
            }
        });
        col.validate().unwrap();
    }

    #[test]
    fn concurrent_column_modes_agree() {
        let vals: Vec<i64> = (0..5_000).map(|i| (i * 13) % 5_000).collect();
        let single = ConcurrentColumn::build(
            vals.clone(),
            CrackerConfig::default(),
            ConcurrencyMode::SingleLock,
        );
        let sharded = ConcurrentColumn::build(
            vals.clone(),
            CrackerConfig::default(),
            ConcurrencyMode::Sharded { shards: 8 },
        );
        assert_eq!(single.mode(), ConcurrencyMode::SingleLock);
        assert!(matches!(sharded.mode(), ConcurrencyMode::Sharded { .. }));
        for col in [&single, &sharded] {
            assert_eq!(col.len(), vals.len());
            assert!(!col.is_empty());
            let pred = RangePred::between(1_000, 2_000);
            let mut got = col.select_oids(pred);
            got.sort_unstable();
            assert_eq!(got, oracle(&vals, &pred));
            assert_eq!(col.count(pred), got.len());
            col.insert(90_000, 1_500);
            assert_eq!(col.count(pred), got.len() + 1);
            assert!(col.delete(90_000));
            col.merge_pending();
            assert!(col.stats().queries > 0);
            assert!(col.piece_count() >= 1);
            col.validate().unwrap();
        }
    }

    #[test]
    fn batch_select_matches_statement_at_a_time_and_amortizes_latches() {
        let vals: Vec<i64> = (0..20_000).map(|i| (i * 29) % 20_000).collect();
        let batch = ShardedCrackerColumn::new(vals.clone(), 8);
        let single = ShardedCrackerColumn::new(vals, 8);
        let preds: Vec<RangePred<i64>> = (0..32)
            .map(|i| RangePred::between(i * 550, i * 550 + 1_200))
            .collect();
        let got = batch.select_oids_batch(&preds);
        for (pred, mut oids) in preds.iter().zip(got) {
            let mut expect = single.select_oids(*pred);
            oids.sort_unstable();
            expect.sort_unstable();
            assert_eq!(oids, expect, "pred {pred:?}");
        }
        // Batch and statement-at-a-time create the same boundaries.
        assert_eq!(batch.piece_count(), single.piece_count());
        // A warm batch never re-enters select(): every bucket is answered
        // on the optimistic read-latch pass.
        let queries = batch.stats().queries;
        batch.select_oids_batch(&preds);
        assert_eq!(batch.stats().queries, queries);
        batch.validate().unwrap();
        single.validate().unwrap();
    }

    #[test]
    fn batch_select_handles_empty_and_unbounded_predicates() {
        let vals: Vec<i64> = (0..1_000).rev().collect();
        let col = ShardedCrackerColumn::new(vals, 4);
        let preds = vec![
            RangePred::between(10, 5),          // empty range
            RangePred::with_bounds(None, None), // everything
            RangePred::eq(500),
        ];
        let got = col.select_oids_batch(&preds);
        assert!(got[0].is_empty());
        assert_eq!(got[1].len(), 1_000);
        assert_eq!(got[2].len(), 1);
        col.validate().unwrap();
    }

    #[test]
    fn select_pairs_returns_global_oids_and_values() {
        let vals = vec![30i64, 10, 20, 40, 25];
        let col = ShardedCrackerColumn::new(vals, 2);
        let mut pairs = col.select_pairs(RangePred::between(15, 35));
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 30), (2, 20), (4, 25)]);
    }

    #[test]
    fn a_panicking_crack_in_one_shard_is_contained_and_heals() {
        let vals: Vec<i64> = (0..4_000).map(|i| (i * 23) % 4_000).collect();
        let col = ShardedCrackerColumn::new(vals.clone(), 4);
        col.count(RangePred::between(1_000, 3_000)); // crack boundaries
        col.arm_panic_on_crack(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            col.count(RangePred::between(100, 300))
        }));
        assert!(r.is_err(), "the panicking query must fail loudly");
        // The torn shard healed inside the containment wrapper and the
        // countdown disarmed itself, so later queries run clean.
        col.validate().unwrap();
        assert!(!col.heal(), "containment already healed the torn shard");
        for pred in [
            RangePred::between(100, 300),
            RangePred::between(1_000, 3_000),
            RangePred::le(50),
        ] {
            let mut got = col.select_oids(pred);
            got.sort_unstable();
            assert_eq!(got, oracle(&vals, &pred), "pred {pred:?}");
        }
    }

    #[test]
    fn guarded_batch_cuts_short_between_predicates_only() {
        let vals: Vec<i64> = (0..3_000).map(|i| (i * 41) % 3_000).collect();
        let col = ShardedCrackerColumn::new(vals.clone(), 4);
        let preds: Vec<RangePred<i64>> = (0..5)
            .map(|i| RangePred::between(i * 500, i * 500 + 400))
            .collect();
        // Sharded batches poll at predicate granularity: a predicate that
        // starts runs on every shard it touches, so the guard admits two.
        let polls = std::cell::Cell::new(0usize);
        let guard = || {
            polls.set(polls.get() + 1);
            polls.get() <= 2
        };
        let mut outs: Vec<Vec<u32>> = preds.iter().map(|_| Vec::new()).collect();
        let done = col.select_oids_batch_guarded(&preds, &mut outs, &guard);
        assert_eq!(done, 2, "exactly the admitted prefix completes");
        for (i, out) in outs.iter().enumerate() {
            if i < done {
                let mut got = out.clone();
                got.sort_unstable();
                assert_eq!(got, oracle(&vals, &preds[i]), "completed pred {i}");
            } else {
                assert!(out.is_empty(), "abandoned pred {i} left no output");
            }
        }
        col.validate().unwrap();
        for pred in &preds {
            let mut got = col.select_oids(*pred);
            got.sort_unstable();
            assert_eq!(got, oracle(&vals, pred));
        }
    }
}
