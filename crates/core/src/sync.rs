//! The workspace's sync facade: instrumented latches with **lockdep**.
//!
//! Every latch in the cracker's concurrency layer — the column-wide
//! `RwLock` of [`crate::concurrent::SharedCrackerColumn`], the per-shard
//! latches of [`crate::sharded::ShardedCrackerColumn`], and the
//! mutex/condvar pair inside the engine's `AdmissionGate` — is constructed
//! through this module instead of `parking_lot` / `std::sync` directly
//! (a hand-rolled lint, `cargo run -p analysis --bin lint`, enforces
//! this). The wrappers are transparent pass-throughs until **lock
//! analysis** is switched on, at which point every acquisition is checked
//! against the latch discipline documented in `CONCURRENCY.md`:
//!
//! * **Lock-order graph** — each acquisition made while other latches are
//!   held adds `held-class → new-class` edges to a global directed graph;
//!   an edge that closes a cycle is a latent deadlock and panics with both
//!   acquisition sites (the classic lockdep check).
//! * **Same-class ordering** — latches of the same class within the same
//!   [`LockGroup`] (e.g. the shards of one sharded column) must be
//!   acquired in strictly ascending `order` — the ascending-shard-index
//!   discipline. A descending or duplicate acquisition panics.
//! * **Upgrade-while-held** — re-acquiring an instance this thread already
//!   holds panics: read→write is the classic self-deadlocking upgrade, and
//!   read→read recursion deadlocks under a writer-priority `RwLock` when a
//!   writer queues between the two reads.
//! * **Latch budgets** — a scope can declare "this class may be acquired
//!   at most N times per instance" ([`LatchBudget`]); the batch executors
//!   use it to machine-check their "at most two latch round-trips per
//!   shard per batch" contract.
//!
//! # Enabling analysis
//!
//! Analysis is off by default and costs one relaxed atomic load per
//! acquisition (measured unobservable next to the lock operation itself).
//! It turns on when any of these hold at the *first* lock operation:
//!
//! * the environment variable `LOCK_ANALYSIS=1` (CI runs the concurrency
//!   suites under it),
//! * the compile-time cfg `--cfg lock_analysis`,
//! * a prior call to [`lockdep::force_enable`] (used by the negative
//!   tests, which must trip the checker under plain `cargo test`).
//!
//! Violations panic. That is deliberate: a latch-order inversion is a
//! latent deadlock, and the instrumented test run exists to surface it as
//! a loud failure with both acquisition sites in the message.
//!
//! Lock *classes* are `&'static str` names. The graph is keyed by class,
//! not instance, so checks generalize: observing `admission → shard` on
//! one code path and `shard → admission` on another is reported even if
//! the two paths never ran concurrently. Same-class ordering is scoped by
//! [`LockGroup`] so two unrelated sharded columns do not order-constrain
//! each other (holding shards of two *different* columns at once is
//! outside the discipline and not currently checked — no code path does
//! it; see `CONCURRENCY.md`).

use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;

/// Scope key for same-class order checking: the shards of one column share
/// a group; distinct columns get distinct groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockGroup(u64);

impl LockGroup {
    /// A fresh, process-unique group.
    pub fn new() -> Self {
        LockGroup(next_id())
    }
}

impl Default for LockGroup {
    fn default() -> Self {
        Self::new()
    }
}

/// Identity of one instrumented lock instance.
#[derive(Debug, Clone, Copy)]
struct LockId {
    /// Latch class — the node in the lock-order graph.
    class: &'static str,
    /// Order key within `(class, group)`: shard index for shard latches.
    order: u32,
    /// Scope for the same-class ordering rule.
    group: u64,
    /// Process-unique instance id (upgrade/recursion detection).
    instance: u64,
}

fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A reader-writer latch routed through lockdep. API mirrors the
/// `parking_lot` subset the workspace uses.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    id: LockId,
    inner: parking_lot::RwLock<T>,
}

/// Shared guard of [`RwLock`]; releases (and lockdep-untracks) on drop.
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    // Drop order: the lockdep entry is popped by the token's drop after
    // the latch itself is released; both orders are correct (the checker
    // tolerates either), field order keeps it deterministic. The leading
    // underscore: the field exists only for its Drop.
    inner: parking_lot::RwLockReadGuard<'a, T>,
    _tracked: lockdep::HeldToken,
}

/// Exclusive guard of [`RwLock`]; releases (and lockdep-untracks) on drop.
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
    _tracked: lockdep::HeldToken,
}

impl<T> RwLock<T> {
    /// An anonymous-class latch (class `"rwlock"`, its own group). Prefer
    /// [`with_class`](Self::with_class) so lockdep reports carry a name.
    pub fn new(value: T) -> Self {
        Self::with_class(value, "rwlock", 0, LockGroup::new())
    }

    /// A latch belonging to `class` with an `order` key inside `group`.
    pub fn with_class(value: T, class: &'static str, order: u32, group: LockGroup) -> Self {
        RwLock {
            id: LockId {
                class,
                order,
                group: group.0,
                instance: next_id(),
            },
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consume the latch, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared access is acquired (lockdep-checked).
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let tracked = lockdep::on_acquire(self.id, lockdep::Mode::Read, Location::caller());
        RwLockReadGuard {
            inner: self.inner.read(),
            _tracked: tracked,
        }
    }

    /// Block until exclusive access is acquired (lockdep-checked).
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let tracked = lockdep::on_acquire(self.id, lockdep::Mode::Write, Location::caller());
        RwLockWriteGuard {
            inner: self.inner.write(),
            _tracked: tracked,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A mutex routed through lockdep, paired with [`Condvar`]. Backed by
/// `std::sync::Mutex` (the condvar needs the std guard); poisoning is
/// swallowed like the `parking_lot` shim does.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    id: LockId,
    inner: std::sync::Mutex<T>,
}

/// Guard of [`Mutex`]; releases (and lockdep-untracks) on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::mem::ManuallyDrop<std::sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
    tracked: Option<lockdep::HeldToken>,
}

impl<T> Mutex<T> {
    /// An anonymous-class mutex (class `"mutex"`, its own group).
    pub fn new(value: T) -> Self {
        Self::with_class(value, "mutex")
    }

    /// A mutex belonging to `class` (its own group, order 0).
    pub fn with_class(value: T, class: &'static str) -> Self {
        Mutex {
            id: LockId {
                class,
                order: 0,
                group: next_id(),
                instance: next_id(),
            },
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the mutex is acquired (lockdep-checked). A panic in a
    /// previous holder does not poison the lock.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let tracked = lockdep::on_acquire(self.id, lockdep::Mode::Write, Location::caller());
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            inner: std::mem::ManuallyDrop::new(inner),
            lock: self,
            tracked: Some(tracked),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    // The ManuallyDrop release below is the one unsafe operation the
    // facade needs; justified inline.
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        // SAFETY: `inner` is dropped exactly once: here, or — when the
        // guard was consumed by `Condvar::wait` via `into_parts` — never
        // (ManuallyDrop::take transfers ownership there and `drop` is not
        // run on the dismantled guard, which is wrapped in
        // `std::mem::forget`).
        unsafe { std::mem::ManuallyDrop::drop(&mut self.inner) };
        drop(self.tracked.take());
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Dismantle the guard without releasing the mutex: hand the std guard
    /// and the lockdep bookkeeping to [`Condvar::wait`].
    // ManuallyDrop::take is unsafe; the forget directly below makes it
    // sound — see the SAFETY note.
    #[allow(unsafe_code)]
    fn into_parts(
        mut self,
    ) -> (
        std::sync::MutexGuard<'a, T>,
        &'a Mutex<T>,
        Option<lockdep::HeldToken>,
    ) {
        // SAFETY: `self` is forgotten immediately after the take, so its
        // Drop (the only other place that drops `inner`) never runs.
        let inner = unsafe { std::mem::ManuallyDrop::take(&mut self.inner) };
        let lock = self.lock;
        let tracked = self.tracked.take();
        std::mem::forget(self);
        (inner, lock, tracked)
    }
}

/// A condition variable for [`Mutex`]. Waiting releases the mutex
/// atomically and re-registers it with lockdep on wakeup.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A fresh condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release `guard`'s mutex and wait for a notification;
    /// the mutex is re-acquired (and re-checked by lockdep) before this
    /// returns. Spurious wakeups are possible, as with `std`.
    #[track_caller]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let (inner, lock, tracked) = guard.into_parts();
        // The mutex is released inside `wait`: pop the held entry now so
        // lockdep does not count it against latches acquired by other
        // code this thread runs via unwinds, and so a notifier's checks
        // see the true held set.
        drop(tracked);
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        let tracked = lockdep::on_acquire(lock.id, lockdep::Mode::Write, Location::caller());
        MutexGuard {
            inner: std::mem::ManuallyDrop::new(inner),
            lock,
            tracked: Some(tracked),
        }
    }

    /// Like [`Condvar::wait`], but give up after `timeout`: returns the
    /// re-acquired guard plus `true` when the wait timed out (the bounded
    /// wait the admission gate's `try_acquire_for` builds on). Spurious
    /// wakeups are possible; callers must re-check their predicate *and*
    /// their own deadline.
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (inner, lock, tracked) = guard.into_parts();
        // Same bookkeeping as `wait`: the mutex is released inside.
        drop(tracked);
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        let tracked = lockdep::on_acquire(lock.id, lockdep::Mode::Write, Location::caller());
        (
            MutexGuard {
                inner: std::mem::ManuallyDrop::new(inner),
                lock,
                tracked: Some(tracked),
            },
            res.timed_out(),
        )
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

pub mod lockdep {
    //! The checker behind the [`super`] facade: held-set tracking, the
    //! lock-order graph, and latch budgets. See the module docs above for
    //! the discipline being enforced and `CONCURRENCY.md` for which
    //! invariants are checked here vs. stress-tested.

    use super::LockId;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::sync::Mutex;

    /// Acquisition strength, for report wording and the upgrade check.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(super) enum Mode {
        /// Shared.
        Read,
        /// Exclusive.
        Write,
    }

    // 0 = undecided (resolve from env on first use), 1 = off, 2 = on.
    static STATE: AtomicU8 = AtomicU8::new(0);

    /// Is lock analysis active? One relaxed load on the hot path.
    #[inline]
    pub fn enabled() -> bool {
        match STATE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => resolve(),
        }
    }

    #[cold]
    fn resolve() -> bool {
        let on = cfg!(lock_analysis)
            || std::env::var("LOCK_ANALYSIS").is_ok_and(|v| v == "1" || v == "true");
        // A concurrent `force_enable` wins over an env-derived "off".
        let _ = STATE.compare_exchange(
            0,
            if on { 2 } else { 1 },
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        STATE.load(Ordering::Relaxed) == 2
    }

    /// Switch analysis on for the rest of the process, regardless of the
    /// environment. Used by the negative tests (which must trip the
    /// checker under plain `cargo test`); those live in their own test
    /// binary so the forced state does not leak into unrelated suites.
    pub fn force_enable() {
        STATE.store(2, Ordering::Relaxed);
    }

    #[derive(Debug, Clone, Copy)]
    struct Held {
        id: LockId,
        mode: Mode,
        site: &'static Location<'static>,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static BUDGETS: RefCell<Vec<BudgetFrame>> = const { RefCell::new(Vec::new()) };
    }

    /// Proof that an acquisition was (maybe) recorded; dropping it removes
    /// the held-set entry. Carried inside every facade guard.
    #[derive(Debug)]
    pub(super) struct HeldToken {
        /// Instance to pop, `0` when the acquisition was not tracked
        /// (analysis off at acquire time).
        instance: u64,
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            if self.instance == 0 {
                return;
            }
            let instance = self.instance;
            // Tolerant removal: analysis may have been force-enabled
            // between this guard's acquire and release, in which case the
            // entry never existed.
            let _ = HELD.try_with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|h| h.id.instance == instance) {
                    held.remove(pos);
                }
            });
        }
    }

    /// Edges of the class-level lock-order graph, with the first-observed
    /// acquisition sites of each edge for reporting.
    #[derive(Debug, Default)]
    struct Graph {
        edges: HashMap<(&'static str, &'static str), EdgeSites>,
    }

    #[derive(Debug, Clone, Copy)]
    struct EdgeSites {
        held_at: &'static Location<'static>,
        acquired_at: &'static Location<'static>,
    }

    impl Graph {
        /// Is `to` reachable from `from`?
        fn reaches(&self, from: &'static str, to: &'static str) -> bool {
            let mut stack = vec![from];
            let mut seen = vec![from];
            while let Some(n) = stack.pop() {
                if n == to {
                    return true;
                }
                for (a, b) in self.edges.keys() {
                    if *a == n && !seen.contains(b) {
                        seen.push(b);
                        stack.push(b);
                    }
                }
            }
            false
        }
    }

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: std::sync::OnceLock<Mutex<Graph>> = std::sync::OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(Graph::default()))
    }

    /// Check one acquisition against the discipline, record it, and
    /// return the pop token. Panics on violations (see module docs).
    pub(super) fn on_acquire(
        id: LockId,
        mode: Mode,
        site: &'static Location<'static>,
    ) -> HeldToken {
        if !enabled() {
            return HeldToken { instance: 0 };
        }
        HELD.with(|held| {
            let held_now = held.borrow();
            for h in held_now.iter() {
                if h.id.instance == id.instance {
                    let kind = match (h.mode, mode) {
                        (Mode::Read, Mode::Write) => "read->write upgrade while held",
                        (Mode::Read, Mode::Read) => {
                            "recursive read latch (deadlocks under a queued writer)"
                        }
                        _ => "re-acquisition of a held latch",
                    };
                    panic!(
                        "lockdep: {kind} on class `{}`: held {:?} at {}, re-acquired {:?} at {}",
                        id.class, h.mode, h.site, mode, site
                    );
                }
                if h.id.class == id.class && h.id.group == id.group && h.id.order >= id.order {
                    panic!(
                        "lockdep: same-class order inversion on `{}`: holding order {} \
                         (acquired at {}) while acquiring order {} at {} — \
                         latches of one group must be taken in strictly ascending order",
                        id.class, h.id.order, h.site, id.order, site
                    );
                }
            }
            // Cross-class edges: every held class orders before the new one.
            if held_now.iter().any(|h| h.id.class != id.class) {
                let mut g = graph()
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for h in held_now.iter().filter(|h| h.id.class != id.class) {
                    if g.reaches(id.class, h.id.class) {
                        let reverse = g.edges.get(&(id.class, h.id.class)).copied();
                        let detail = match reverse {
                            Some(e) => format!(
                                "the opposite order `{}` -> `{}` was observed with `{}` held \
                                 at {} while acquiring at {}",
                                id.class, h.id.class, id.class, e.held_at, e.acquired_at
                            ),
                            None => format!(
                                "`{}` already reaches `{}` through intermediate classes",
                                id.class, h.id.class
                            ),
                        };
                        panic!(
                            "lockdep: lock-order cycle: acquiring `{}` at {} while holding `{}` \
                             (acquired at {}), but {detail}",
                            id.class, site, h.id.class, h.site
                        );
                    }
                    g.edges.entry((h.id.class, id.class)).or_insert(EdgeSites {
                        held_at: h.site,
                        acquired_at: site,
                    });
                }
            }
            drop(held_now);
            held.borrow_mut().push(Held { id, mode, site });
        });
        BUDGETS.with(|budgets| {
            if let Some(frame) = budgets.borrow_mut().last_mut() {
                frame.charge(id, site);
            }
        });
        HeldToken {
            instance: id.instance,
        }
    }

    #[derive(Debug)]
    struct BudgetFrame {
        class: &'static str,
        limit: u32,
        what: &'static str,
        counts: HashMap<u64, u32>,
    }

    impl BudgetFrame {
        fn charge(&mut self, id: LockId, site: &'static Location<'static>) {
            if id.class != self.class {
                return;
            }
            let n = self.counts.entry(id.instance).or_insert(0);
            *n += 1;
            if *n > self.limit {
                panic!(
                    "lockdep: latch budget exceeded: {} acquisitions of one `{}` instance \
                     (order {}) in a scope limited to {} ({}); latest at {}",
                    n, self.class, id.order, self.limit, self.what, site
                );
            }
        }
    }

    /// Scope guard declaring "while I live, this thread acquires any one
    /// latch of `class` at most `limit` times" — the machine-checked form
    /// of the batch executors' latch-amortization contract. No-op when
    /// analysis is off. Frames nest; only the innermost is charged.
    #[derive(Debug)]
    pub struct LatchBudget {
        active: bool,
    }

    impl LatchBudget {
        /// Open a budget scope; `what` names the contract in reports.
        pub fn new(class: &'static str, limit: u32, what: &'static str) -> Self {
            if !enabled() {
                return LatchBudget { active: false };
            }
            BUDGETS.with(|budgets| {
                budgets.borrow_mut().push(BudgetFrame {
                    class,
                    limit,
                    what,
                    counts: HashMap::new(),
                });
            });
            LatchBudget { active: true }
        }
    }

    impl Drop for LatchBudget {
        fn drop(&mut self) {
            if self.active {
                let _ = BUDGETS.try_with(|budgets| {
                    budgets.borrow_mut().pop();
                });
            }
        }
    }

    /// Number of latches the current thread holds (test support).
    pub fn held_count() -> usize {
        HELD.with(|held| held.borrow().len())
    }
}

#[cfg(test)]
mod tests {
    // The positive-path tests here run with analysis *off* (the default in
    // this test binary) plus basic pass-through behavior; everything that
    // force-enables the checker lives in `tests/lockdep.rs`, a separate
    // process, so the forced state cannot leak into unrelated suites.
    use super::*;

    #[test]
    fn rwlock_passthrough_roundtrip() {
        let l = RwLock::with_class(vec![1, 2], "t_sync_rw", 0, LockGroup::new());
        {
            let a = l.read();
            assert_eq!(a.len(), 2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Mutex::with_class(0usize, "t_sync_mx");
        let cv = Condvar::new();
        *m.lock() += 1;
        std::thread::scope(|s| {
            let m = &m;
            let cv = &cv;
            s.spawn(move || {
                let mut g = m.lock();
                *g += 1;
                drop(g);
                cv.notify_all();
            });
            let mut g = m.lock();
            while *g < 2 {
                g = cv.wait(g);
            }
            assert_eq!(*g, 2);
        });
    }

    #[test]
    fn wait_timeout_times_out_and_still_returns_the_lock() {
        let m = Mutex::with_class(0usize, "t_sync_to");
        let cv = Condvar::new();
        let g = m.lock();
        let (g, timed_out) = cv.wait_timeout(g, std::time::Duration::from_millis(5));
        assert!(timed_out, "nobody notified: the wait must time out");
        assert_eq!(*g, 0);
        drop(g);
        // And the notified path reports no timeout.
        std::thread::scope(|s| {
            let m = &m;
            let cv = &cv;
            s.spawn(move || {
                *m.lock() = 1;
                cv.notify_all();
            });
            let mut g = m.lock();
            let mut timed_out = false;
            while *g < 1 && !timed_out {
                (g, timed_out) = cv.wait_timeout(g, std::time::Duration::from_secs(5));
            }
            assert_eq!(*g, 1, "the notification must arrive well before 5s");
        });
    }

    #[test]
    fn tokens_balance_even_when_disabled() {
        let l = RwLock::new(7u32);
        let g = l.read();
        drop(g);
        assert_eq!(lockdep::held_count(), 0);
    }
}
