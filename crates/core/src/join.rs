//! ^-cracking (Wedge): join-driven reorganization.
//!
//! "The cracking operation ^(R ⋈ S) over two relations produces four
//! pieces: P1 = R⋉S, P2 = R∖(R⋉S), P3 = S⋉R, P4 = S∖(S⋉R)" (§3.1). And
//! §3.4.2: "instead of producing a separate table with the tuples being
//! join-compatible, we shuffle the tuples around such that both operands
//! have a consecutive area with matching tuples."
//!
//! The result is a dynamically built **semijoin index**: the matching areas
//! can be joined without ever touching non-matching tuples, and the
//! non-matching areas are exactly the extra tuples an outer join needs
//! (§3.3).

use crate::value_trait::CrackValue;
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// A join-side column: values plus parallel surrogate OIDs, physically
/// reorganized by wedge cracks. Unlike [`crate::column::CrackerColumn`]
/// this type clusters by *match status*, not by value order, so it keeps
/// its own region bookkeeping.
#[derive(Debug, Clone)]
pub struct PairColumn<T> {
    vals: Vec<T>,
    oids: Vec<u32>,
}

impl<T: CrackValue> PairColumn<T> {
    /// Build from values with dense OIDs `0..n`.
    pub fn new(vals: Vec<T>) -> Self {
        let n = vals.len();
        PairColumn {
            vals,
            oids: (0..n as u32).collect(),
        }
    }

    /// Build from explicit `(value, oid)` pairs.
    ///
    /// # Panics
    /// Panics if the arrays differ in length.
    pub fn from_pairs(vals: Vec<T>, oids: Vec<u32>) -> Self {
        assert_eq!(vals.len(), oids.len(), "values and oids must align");
        PairColumn { vals, oids }
    }

    /// Values in physical order.
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// OIDs in physical order.
    pub fn oids(&self) -> &[u32] {
        &self.oids
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Mutable access to both parallel arrays (crate-internal: used by the
    /// Ω cracker's scatter pass).
    pub(crate) fn arrays_mut(&mut self) -> (&mut [T], &mut [u32]) {
        (&mut self.vals, &mut self.oids)
    }

    /// Stable in-place partition of `range` so that tuples satisfying
    /// `keep` come first. Returns the split position and counts moved
    /// tuples. Stability keeps previously established clusters intact.
    fn stable_partition(
        &mut self,
        range: Range<usize>,
        keep: impl Fn(T) -> bool,
        moved: &mut u64,
    ) -> usize {
        let mut matched: Vec<(T, u32)> = Vec::new();
        let mut unmatched: Vec<(T, u32)> = Vec::new();
        for i in range.clone() {
            if keep(self.vals[i]) {
                matched.push((self.vals[i], self.oids[i]));
            } else {
                unmatched.push((self.vals[i], self.oids[i]));
            }
        }
        let split = range.start + matched.len();
        for (offset, (v, o)) in matched.into_iter().chain(unmatched).enumerate() {
            let i = range.start + offset;
            if self.vals[i] != v || self.oids[i] != o {
                *moved += 1;
            }
            self.vals[i] = v;
            self.oids[i] = o;
        }
        split
    }
}

/// Cost counters of one wedge crack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WedgeStats {
    /// Tuples inspected across both operands.
    pub tuples_touched: u64,
    /// Tuples relocated across both operands.
    pub tuples_moved: u64,
}

/// Result of a wedge crack: the consecutive matching areas of each operand.
///
/// Piece layout afterwards:
/// `R = [ R⋉S | R∖(R⋉S) ]` over `r_match` / its complement, and
/// `S = [ S⋉R | S∖(S⋉R) ]` over `s_match` / its complement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WedgeResult {
    /// Slot range of R-tuples that find a match in S.
    pub r_match: Range<usize>,
    /// Slot range of S-tuples that find a match in R.
    pub s_match: Range<usize>,
    /// Cost counters.
    pub stats: WedgeStats,
}

/// Perform a ^-crack of `r ⋈ s` on the given slot ranges (pass `0..len`
/// for whole relations; sub-ranges let the engine wedge-crack inside pieces
/// produced by earlier Ξ-cracks, as the paper's Figure 5 example does with
/// `^(R[4], S)`).
///
/// Both operands are shuffled so their matching tuples become consecutive;
/// the returned ranges delimit the four pieces.
pub fn wedge_crack<T: CrackValue>(
    r: &mut PairColumn<T>,
    s: &mut PairColumn<T>,
    r_range: Range<usize>,
    s_range: Range<usize>,
) -> WedgeResult {
    let mut stats = WedgeStats::default();
    stats.tuples_touched += (r_range.len() + s_range.len()) as u64;

    // Semijoin R ⋉ S: R-tuples whose value appears in S's range.
    let s_values: HashSet<T> = s.vals[s_range.clone()].iter().copied().collect();
    let r_split = r.stable_partition(
        r_range.clone(),
        |v| s_values.contains(&v),
        &mut stats.tuples_moved,
    );

    // Semijoin S ⋉ R: S-tuples whose value appears in R's (matching) range
    // — by definition of natural join this equals "appears anywhere in R's
    // range", since a value matched by some S tuple is now in R's matching
    // area.
    let r_values: HashSet<T> = r.vals[r_range.start..r_split].iter().copied().collect();
    let s_split = s.stable_partition(
        s_range.clone(),
        |v| r_values.contains(&v),
        &mut stats.tuples_moved,
    );

    WedgeResult {
        r_match: r_range.start..r_split,
        s_match: s_range.start..s_split,
        stats,
    }
}

/// Join the matching areas established by a previous [`wedge_crack`]: a
/// hash join confined to the two match ranges, producing `(r_oid, s_oid)`
/// pairs. Never touches non-matching tuples — the pay-off of the wedge.
pub fn join_matched<T: CrackValue>(
    r: &PairColumn<T>,
    s: &PairColumn<T>,
    res: &WedgeResult,
) -> Vec<(u32, u32)> {
    let mut by_val: HashMap<T, Vec<u32>> = HashMap::new();
    for i in res.r_match.clone() {
        by_val.entry(r.vals[i]).or_default().push(r.oids[i]);
    }
    let mut out = Vec::new();
    for j in res.s_match.clone() {
        if let Some(r_oids) = by_val.get(&s.vals[j]) {
            for &ro in r_oids {
                out.push((ro, s.oids[j]));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wedge_clusters_matching_tuples_consecutively() {
        let mut r = PairColumn::new(vec![1i64, 5, 3, 7, 9]);
        let mut s = PairColumn::new(vec![3i64, 8, 5, 2]);
        let res = wedge_crack(&mut r, &mut s, 0..5, 0..4);
        // R ⋉ S = {5, 3}; S ⋉ R = {3, 5}.
        let r_matched: Vec<i64> = res.r_match.clone().map(|i| r.values()[i]).collect();
        assert_eq!(r_matched, vec![5, 3], "stable order of first appearance");
        let s_matched: Vec<i64> = res.s_match.clone().map(|i| s.values()[i]).collect();
        assert_eq!(s_matched, vec![3, 5]);
        // Non-matching pieces hold the rest.
        let r_rest: Vec<i64> = (res.r_match.end..5).map(|i| r.values()[i]).collect();
        assert_eq!(r_rest, vec![1, 7, 9]);
    }

    #[test]
    fn four_pieces_reconstruct_the_originals() {
        let r_orig = vec![4i64, 8, 15, 16, 23, 42];
        let s_orig = vec![8i64, 42, 99];
        let mut r = PairColumn::new(r_orig.clone());
        let mut s = PairColumn::new(s_orig.clone());
        wedge_crack(&mut r, &mut s, 0..6, 0..3);
        // Union of pieces == original multiset (loss-less property).
        let mut r_all: Vec<i64> = r.values().to_vec();
        r_all.sort_unstable();
        let mut r_want = r_orig;
        r_want.sort_unstable();
        assert_eq!(r_all, r_want);
        // And OIDs still map to original values.
        for (i, &oid) in r.oids().iter().enumerate() {
            assert_eq!(r.values()[i], [4i64, 8, 15, 16, 23, 42][oid as usize]);
        }
    }

    #[test]
    fn join_matched_equals_naive_join() {
        let r_orig = vec![1i64, 2, 2, 3];
        let s_orig = vec![2i64, 3, 3, 4];
        let mut r = PairColumn::new(r_orig.clone());
        let mut s = PairColumn::new(s_orig.clone());
        let res = wedge_crack(&mut r, &mut s, 0..4, 0..4);
        let mut got = join_matched(&r, &s, &res);
        got.sort_unstable();
        let mut want = Vec::new();
        for (i, &rv) in r_orig.iter().enumerate() {
            for (j, &sv) in s_orig.iter().enumerate() {
                if rv == sv {
                    want.push((i as u32, j as u32));
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn disjoint_relations_yield_empty_match_areas() {
        let mut r = PairColumn::new(vec![1i64, 2]);
        let mut s = PairColumn::new(vec![3i64, 4]);
        let res = wedge_crack(&mut r, &mut s, 0..2, 0..2);
        assert!(res.r_match.is_empty());
        assert!(res.s_match.is_empty());
        assert!(join_matched(&r, &s, &res).is_empty());
    }

    #[test]
    fn identical_relations_match_fully() {
        let mut r = PairColumn::new(vec![1i64, 2, 3]);
        let mut s = PairColumn::new(vec![3i64, 2, 1]);
        let res = wedge_crack(&mut r, &mut s, 0..3, 0..3);
        assert_eq!(res.r_match, 0..3);
        assert_eq!(res.s_match, 0..3);
    }

    #[test]
    fn wedge_on_subranges_leaves_outside_untouched() {
        let mut r = PairColumn::new(vec![100i64, 1, 5, 3, 200]);
        let mut s = PairColumn::new(vec![5i64, 3, 9]);
        let res = wedge_crack(&mut r, &mut s, 1..4, 0..3);
        assert_eq!(r.values()[0], 100);
        assert_eq!(r.values()[4], 200);
        let matched: Vec<i64> = res.r_match.clone().map(|i| r.values()[i]).collect();
        assert_eq!(matched, vec![5, 3]);
    }

    #[test]
    fn empty_operands() {
        let mut r = PairColumn::new(Vec::<i64>::new());
        let mut s = PairColumn::new(vec![1i64]);
        let res = wedge_crack(&mut r, &mut s, 0..0, 0..1);
        assert!(res.r_match.is_empty());
        assert!(res.s_match.is_empty());
    }

    #[test]
    #[should_panic(expected = "align")]
    fn from_pairs_checks_alignment() {
        PairColumn::from_pairs(vec![1i64], vec![]);
    }

    proptest! {
        #[test]
        fn prop_wedge_partitions_exactly_by_match(
            r_vals in proptest::collection::vec(0i64..30, 0..80),
            s_vals in proptest::collection::vec(0i64..30, 0..80),
        ) {
            let mut r = PairColumn::new(r_vals.clone());
            let mut s = PairColumn::new(s_vals.clone());
            let rn = r.len();
            let sn = s.len();
            let res = wedge_crack(&mut r, &mut s, 0..rn, 0..sn);
            let s_set: HashSet<i64> = s_vals.iter().copied().collect();
            let r_set: HashSet<i64> = r_vals.iter().copied().collect();
            for i in 0..rn {
                let matches = s_set.contains(&r.values()[i]);
                prop_assert_eq!(res.r_match.contains(&i), matches);
            }
            for j in 0..sn {
                let matches = r_set.contains(&s.values()[j]);
                prop_assert_eq!(res.s_match.contains(&j), matches);
            }
        }

        #[test]
        fn prop_join_matched_agrees_with_nested_loop_oracle(
            r_vals in proptest::collection::vec(0i64..15, 0..50),
            s_vals in proptest::collection::vec(0i64..15, 0..50),
        ) {
            let mut r = PairColumn::new(r_vals.clone());
            let mut s = PairColumn::new(s_vals.clone());
            let rn = r.len();
            let sn = s.len();
            let res = wedge_crack(&mut r, &mut s, 0..rn, 0..sn);
            let mut got = join_matched(&r, &s, &res);
            got.sort_unstable();
            let mut want = Vec::new();
            for (i, &rv) in r_vals.iter().enumerate() {
                for (j, &sv) in s_vals.iter().enumerate() {
                    if rv == sv { want.push((i as u32, j as u32)); }
                }
            }
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
