//! Cracking cost counters.
//!
//! The paper's §2.2 outlook reasons entirely in reads and writes: a scan is
//! `N` reads plus `σN` result writes; cracking adds up to `(1-σ)N` writes
//! for relocated tuples. [`CrackStats`] counts exactly those quantities so
//! the figures (2, 3, 10, 11) can report both wall-clock and the paper's
//! own cost units.

use serde::{Deserialize, Serialize};

/// Monotone counters accumulated by a cracker column over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrackStats {
    /// Range queries answered.
    pub queries: usize,
    /// Physical crack operations performed (a three-way crack counts once).
    pub cracks: usize,
    /// Tuples inspected while partitioning border pieces ("reads").
    pub tuples_touched: u64,
    /// Tuples relocated by swaps ("writes"; each swap moves two tuples).
    pub tuples_moved: u64,
    /// Tuples scanned inside cut-off pieces to filter residual edges.
    pub edge_scanned: u64,
    /// Boundary fusions performed by the piece-budget enforcement.
    pub fusions: usize,
    /// Pending-update merges performed.
    pub merges: usize,
}

impl CrackStats {
    /// Add another column's counters into this accumulator — used to
    /// aggregate stats across shards and across a database's cracked
    /// columns.
    pub fn absorb(&mut self, other: &CrackStats) {
        self.queries += other.queries;
        self.cracks += other.cracks;
        self.tuples_touched += other.tuples_touched;
        self.tuples_moved += other.tuples_moved;
        self.edge_scanned += other.edge_scanned;
        self.fusions += other.fusions;
        self.merges += other.merges;
    }

    /// Difference `self - earlier`, for per-query deltas.
    pub fn delta_since(&self, earlier: &CrackStats) -> CrackStats {
        CrackStats {
            queries: self.queries - earlier.queries,
            cracks: self.cracks - earlier.cracks,
            tuples_touched: self.tuples_touched - earlier.tuples_touched,
            tuples_moved: self.tuples_moved - earlier.tuples_moved,
            edge_scanned: self.edge_scanned - earlier.edge_scanned,
            fusions: self.fusions - earlier.fusions,
            merges: self.merges - earlier.merges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = CrackStats {
            queries: 10,
            cracks: 5,
            tuples_touched: 100,
            tuples_moved: 40,
            edge_scanned: 7,
            fusions: 1,
            merges: 2,
        };
        let b = CrackStats {
            queries: 4,
            cracks: 2,
            tuples_touched: 60,
            tuples_moved: 10,
            edge_scanned: 3,
            fusions: 0,
            merges: 1,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.queries, 6);
        assert_eq!(d.cracks, 3);
        assert_eq!(d.tuples_touched, 40);
        assert_eq!(d.tuples_moved, 30);
        assert_eq!(d.edge_scanned, 4);
        assert_eq!(d.fusions, 1);
        assert_eq!(d.merges, 1);
    }

    #[test]
    fn default_is_zero() {
        let s = CrackStats::default();
        assert_eq!(s.queries, 0);
        assert_eq!(s.tuples_moved, 0);
    }
}
