//! Progressive piece refinement: sorted pieces crack for free.
//!
//! The paper's BAT descriptor (Figure 7) reserves a tree-index slot per
//! column, and §2.2 contrasts cracking with sorting the whole table
//! upfront. This module implements the natural hybrid the paper's
//! discussion points at: individual *pieces* may be sorted — either
//! explicitly ([`CrackerColumn::sort_piece_containing`]) or automatically
//! once cracking has whittled them below a threshold
//! ([`CrackerConfig::sort_below`](crate::config::CrackerConfig)) — and
//! from then on any boundary that falls inside a sorted piece is resolved
//! by **binary search with zero tuple movement**, and both halves inherit
//! sortedness.
//!
//! This bounds the total physical work of a fully-converged column by one
//! incremental sort (the §2.2 observation that "the total CPU cost for
//! such an incremental scheme is in the same order of magnitude as
//! sorting"), while still paying it only for queried regions.

use crate::column::CrackerColumn;
use crate::crack::BoundaryKey;
use crate::value_trait::CrackValue;
use std::collections::BTreeSet;

/// Sorted-piece bookkeeping, keyed by piece start slot.
///
/// Invariant: if `starts` contains `s`, the piece beginning at slot `s`
/// (up to the next boundary) is sorted ascending. Splitting a sorted piece
/// keeps both halves sorted; fusing or rewriting drops the flag.
#[derive(Debug, Clone, Default)]
pub struct SortedPieces {
    starts: BTreeSet<usize>,
}

impl SortedPieces {
    /// No sorted pieces.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is the piece starting at `start` known-sorted?
    pub fn contains(&self, start: usize) -> bool {
        self.starts.contains(&start)
    }

    /// Mark the piece starting at `start` as sorted.
    pub fn insert(&mut self, start: usize) {
        self.starts.insert(start);
    }

    /// A sorted piece `[start, end)` was split at `pos`: the right half
    /// starts at `pos` and is also sorted. Zero-width halves are never
    /// flagged — their start would collide with the *next* piece's start
    /// and leak sortedness to a piece that was never sorted.
    pub fn split(&mut self, start: usize, pos: usize, end: usize) {
        if self.starts.contains(&start) && pos > start && pos < end {
            self.starts.insert(pos);
        }
    }

    /// Forget the piece starting at `start` (fusion, rewrite).
    pub fn remove(&mut self, start: usize) {
        self.starts.remove(&start);
    }

    /// Forget everything (bulk rewrite, e.g. an update merge).
    pub fn clear(&mut self) {
        self.starts.clear();
    }

    /// Number of sorted pieces tracked.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True when no piece is marked sorted.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }
}

impl<T: CrackValue> CrackerColumn<T> {
    /// Sort the piece containing boundary-key position `probe` in place
    /// (values and OIDs together) and mark it sorted. Later boundaries
    /// inside it resolve by binary search. Returns the piece's slot range.
    pub fn sort_piece_containing(&mut self, probe: T) -> std::ops::Range<usize> {
        let piece = self.index().enclosing_piece(BoundaryKey::lt(probe));
        self.sort_piece_range(piece.clone());
        piece
    }

    /// Sort an exact piece range (caller obtained it from the index).
    pub(crate) fn sort_piece_range(&mut self, piece: std::ops::Range<usize>) {
        if piece.is_empty() {
            // A zero-width piece shares its start with its successor;
            // flagging it would mislabel the successor. Nothing to sort
            // anyway.
            return;
        }
        let moved;
        {
            let (vals, oids, _) = self.arrays_mut();
            let mut pairs: Vec<(T, u32)> = vals[piece.clone()]
                .iter()
                .copied()
                .zip(oids[piece.clone()].iter().copied())
                .collect();
            pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut m = 0u64;
            for (offset, (v, o)) in pairs.into_iter().enumerate() {
                let i = piece.start + offset;
                if vals[i] != v || oids[i] != o {
                    m += 1;
                }
                vals[i] = v;
                oids[i] = o;
            }
            moved = m;
        }
        self.stats_mut().tuples_moved += moved;
        self.stats_mut().tuples_touched += piece.len() as u64;
        self.sorted_mut().insert(piece.start);
    }

    /// Resolve a boundary inside a known-sorted piece by binary search
    /// (zero moves). Returns `None` when the piece is not marked sorted.
    pub(crate) fn resolve_in_sorted(
        &mut self,
        key: BoundaryKey<T>,
        piece: std::ops::Range<usize>,
    ) -> Option<usize> {
        if !self.sorted_ref().contains(piece.start) {
            return None;
        }
        let pos = {
            let vals = self.values();
            piece.start + vals[piece.clone()].partition_point(|&v| key.before(v))
        };
        self.index_mut().insert(key, pos);
        self.sorted_mut().split(piece.start, pos, piece.end);
        Some(pos)
    }

    /// Number of pieces currently known-sorted.
    pub fn sorted_piece_count(&self) -> usize {
        self.sorted_ref().len()
    }

    /// Is the piece starting at slot `start` known-sorted?
    pub fn piece_is_sorted(&self, start: usize) -> bool {
        self.sorted_ref().contains(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CrackerConfig;
    use crate::pred::RangePred;
    use proptest::prelude::*;

    #[test]
    fn sorted_piece_resolves_boundaries_without_moves() {
        let mut c = CrackerColumn::new((0..1000).rev().collect::<Vec<i64>>());
        c.select(RangePred::between(400, 600));
        // Sort the middle piece explicitly.
        let piece = c.sort_piece_containing(500);
        assert!(c.piece_is_sorted(piece.start));
        let moved_before = c.stats().tuples_moved;
        // A new boundary strictly inside the sorted piece: binary search,
        // zero moves.
        let sel = c.select(RangePred::between(450, 550));
        assert_eq!(sel.count(), 101);
        assert_eq!(
            c.stats().tuples_moved,
            moved_before,
            "cracking a sorted piece must not move tuples"
        );
        c.validate().unwrap();
    }

    #[test]
    fn both_halves_inherit_sortedness() {
        let mut c = CrackerColumn::new((0..100).rev().collect::<Vec<i64>>());
        let piece = c.sort_piece_containing(50);
        assert_eq!(piece, 0..100);
        c.select(RangePred::between(30, 60));
        // All three resulting pieces are sorted.
        let pieces = c.index().pieces();
        for p in pieces {
            assert!(
                c.piece_is_sorted(p.start),
                "piece at {} should inherit sortedness",
                p.start
            );
        }
        // Further cracking stays move-free.
        let moved = c.stats().tuples_moved;
        c.select(RangePred::between(10, 20));
        assert_eq!(c.stats().tuples_moved, moved);
    }

    #[test]
    fn auto_sort_below_threshold() {
        let cfg = CrackerConfig::new().with_sort_below(64);
        let mut c = CrackerColumn::with_config(
            (0..10_000).map(|i| (i * 37) % 10_000).collect::<Vec<i64>>(),
            cfg,
        );
        // Zooming queries shrink the hot piece; once a border piece is at
        // or below 64 slots it gets sorted and subsequent cracks are free.
        // The (2990, 3050) query leaves a 60-slot piece [2990, 3050]; the
        // next query's bounds fall inside it and trigger the sort.
        for (lo, hi) in [
            (1000, 5000),
            (2000, 4000),
            (2900, 3100),
            (2990, 3050),
            (3000, 3040),
        ] {
            c.select(RangePred::between(lo, hi));
        }
        assert!(c.sorted_piece_count() > 0, "threshold sort must trigger");
        let moved = c.stats().tuples_moved;
        let sel = c.select(RangePred::between(3000, 3020));
        assert_eq!(sel.count(), 21);
        assert_eq!(c.stats().tuples_moved, moved, "inside sorted piece: free");
        c.validate().unwrap();
    }

    #[test]
    fn update_merge_clears_sorted_flags() {
        let mut c = CrackerColumn::new((0..100).collect::<Vec<i64>>());
        c.sort_piece_containing(50);
        assert_eq!(c.sorted_piece_count(), 1);
        c.insert(200, 42);
        c.merge_pending();
        assert_eq!(
            c.sorted_piece_count(),
            0,
            "bulk rewrite invalidates sortedness"
        );
        c.validate().unwrap();
        assert_eq!(c.count(RangePred::eq(42)), 2);
    }

    #[test]
    fn fusion_drops_the_flag_of_the_merged_piece() {
        let cfg = CrackerConfig::new().with_max_pieces(2);
        let mut c = CrackerColumn::with_config((0..1000).rev().collect::<Vec<i64>>(), cfg);
        c.select(RangePred::between(100, 200)); // cracks, then fuses to <=2 pieces
        c.sort_piece_containing(150);
        // Force more fusion churn.
        c.select(RangePred::between(700, 800));
        c.validate().unwrap();
        // Whatever flags remain must describe truly sorted pieces.
        for p in c.index().pieces() {
            if c.piece_is_sorted(p.start) {
                let vals = &c.values()[p.start..p.end];
                assert!(vals.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn empty_piece_sorting_is_harmless() {
        let mut c = CrackerColumn::new(Vec::<i64>::new());
        let piece = c.sort_piece_containing(5);
        assert!(piece.is_empty());
        assert_eq!(c.count(RangePred::lt(10)), 0);
    }

    proptest! {
        #[test]
        fn prop_sorted_pieces_never_change_answers(
            orig in proptest::collection::vec(-60i64..60, 1..200),
            queries in proptest::collection::vec((-70i64..70, -70i64..70), 1..20),
            sort_below in prop_oneof![Just(0usize), 1usize..64],
        ) {
            let cfg = CrackerConfig::new().with_sort_below(sort_below);
            let mut c = CrackerColumn::with_config(orig.clone(), cfg);
            for (a, b) in queries {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let pred = RangePred::between(lo, hi);
                let mut got = c.select_oids(pred);
                got.sort_unstable();
                let mut want: Vec<u32> = orig.iter().enumerate()
                    .filter(|(_, &v)| pred.matches(v))
                    .map(|(i, _)| i as u32)
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
            c.validate().map_err(TestCaseError::fail)?;
            // Every sorted flag is truthful.
            for p in c.index().pieces() {
                if c.piece_is_sorted(p.start) {
                    let vals = &c.values()[p.start..p.end];
                    prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]));
                }
            }
        }
    }
}
