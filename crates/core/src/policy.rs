//! The cracking optimizer: when (not) to crack.
//!
//! §3.3 observes that the cracker index "grows quickly and becomes the
//! target of a resource management challenge" and calls for "a cracking
//! optimizer which controls the number of pieces to produce. It is as
//! yet unclear, if this optimizer should work towards the smallest
//! pieces or try to retain large chunks. A plausible strategy is to
//! optimize towards many pieces in the beginning and shift to the larger
//! chunks when we already have a large cracker index."
//!
//! [`CrackPolicy`] makes that decision pluggable: before every select,
//! the policy inspects the column's state and sets the effective cut-off
//! granule (pieces at or below it are scanned, not cracked). The
//! candidates implemented — including the paper's own "plausible
//! strategy" as [`CrackPolicy::ManyThenChunks`] — are compared by the
//! `ext_policy` ablation.

use crate::column::{CrackerColumn, Selection};
use crate::pred::RangePred;
use crate::value_trait::CrackValue;

/// A rule mapping column state to the effective cut-off granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrackPolicy {
    /// Crack every touched piece down to single tuples (the idealized
    /// algorithm of §2.2).
    Always,
    /// Never crack: every query scans its border pieces — the `nocrack`
    /// baseline expressed as a policy (the virgin column is one piece, so
    /// this is a full scan per query).
    Never,
    /// A fixed cut-off granule (the paper's disk-block cut-off).
    FixedGranule {
        /// Pieces at or below this size are scanned, not cracked.
        granule: usize,
    },
    /// The paper's "plausible strategy": crack eagerly while the index
    /// is small, retain large chunks once it has grown.
    ManyThenChunks {
        /// Piece count at which the shift happens.
        switch_at_pieces: usize,
        /// Cut-off granule after the shift.
        late_granule: usize,
    },
    /// A hard piece budget: once the index holds this many pieces, stop
    /// producing new ones altogether (contrast with fusion, which
    /// *repairs* an oversized index instead of preventing it).
    PieceBudget {
        /// Maximum number of pieces to ever produce.
        max_pieces: usize,
    },
}

impl CrackPolicy {
    /// Short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            CrackPolicy::Always => "always",
            CrackPolicy::Never => "never",
            CrackPolicy::FixedGranule { .. } => "fixed-granule",
            CrackPolicy::ManyThenChunks { .. } => "many-then-chunks",
            CrackPolicy::PieceBudget { .. } => "piece-budget",
        }
    }

    /// The effective cut-off granule for a column with `piece_count`
    /// pieces over `n` tuples.
    pub fn effective_granule(&self, piece_count: usize, n: usize) -> usize {
        match *self {
            CrackPolicy::Always => 1,
            // A granule of n (or more) means no piece is ever cracked.
            CrackPolicy::Never => n.max(1),
            CrackPolicy::FixedGranule { granule } => granule.max(1),
            CrackPolicy::ManyThenChunks {
                switch_at_pieces,
                late_granule,
            } => {
                if piece_count < switch_at_pieces {
                    1
                } else {
                    late_granule.max(1)
                }
            }
            CrackPolicy::PieceBudget { max_pieces } => {
                if piece_count < max_pieces {
                    1
                } else {
                    n.max(1)
                }
            }
        }
    }
}

/// A cracked column whose cut-off granule is driven by a [`CrackPolicy`]
/// instead of a fixed configuration value.
#[derive(Debug, Clone)]
pub struct PolicyCracker<T> {
    col: CrackerColumn<T>,
    policy: CrackPolicy,
}

impl<T: CrackValue> PolicyCracker<T> {
    /// Wrap a value vector under `policy`.
    pub fn new(vals: Vec<T>, policy: CrackPolicy) -> Self {
        PolicyCracker {
            col: CrackerColumn::new(vals),
            policy,
        }
    }

    /// The wrapped column.
    pub fn column(&self) -> &CrackerColumn<T> {
        &self.col
    }

    /// The policy in force.
    pub fn policy(&self) -> CrackPolicy {
        self.policy
    }

    /// Answer a range predicate; the policy decides how deep the border
    /// pieces may crack.
    pub fn select(&mut self, pred: RangePred<T>) -> Selection {
        let granule = self
            .policy
            .effective_granule(self.col.piece_count(), self.col.len());
        self.col.set_min_piece_size(granule);
        self.col.select(pred)
    }

    /// Count qualifying tuples.
    pub fn count(&mut self, pred: RangePred<T>) -> usize {
        self.select(pred).count()
    }

    /// OIDs of qualifying tuples.
    pub fn select_oids(&mut self, pred: RangePred<T>) -> Vec<u32> {
        let sel = self.select(pred);
        self.col.selection_oids(&sel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn oracle(orig: &[i64], pred: &RangePred<i64>) -> Vec<u32> {
        let mut v: Vec<u32> = orig
            .iter()
            .enumerate()
            .filter(|(_, &x)| pred.matches(x))
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    const POLICIES: [CrackPolicy; 5] = [
        CrackPolicy::Always,
        CrackPolicy::Never,
        CrackPolicy::FixedGranule { granule: 64 },
        CrackPolicy::ManyThenChunks {
            switch_at_pieces: 16,
            late_granule: 256,
        },
        CrackPolicy::PieceBudget { max_pieces: 16 },
    ];

    #[test]
    fn effective_granule_shapes() {
        assert_eq!(CrackPolicy::Always.effective_granule(100, 1000), 1);
        assert_eq!(CrackPolicy::Never.effective_granule(0, 1000), 1000);
        assert_eq!(
            CrackPolicy::FixedGranule { granule: 64 }.effective_granule(5, 1000),
            64
        );
        let shift = CrackPolicy::ManyThenChunks {
            switch_at_pieces: 10,
            late_granule: 200,
        };
        assert_eq!(shift.effective_granule(9, 1000), 1, "eager while small");
        assert_eq!(shift.effective_granule(10, 1000), 200, "chunky once grown");
        let budget = CrackPolicy::PieceBudget { max_pieces: 4 };
        assert_eq!(budget.effective_granule(3, 1000), 1);
        assert_eq!(budget.effective_granule(4, 1000), 1000, "budget reached");
    }

    #[test]
    fn never_policy_is_a_scan_engine() {
        let mut c = PolicyCracker::new((0..1000).rev().collect(), CrackPolicy::Never);
        for _ in 0..3 {
            let sel = c.select(RangePred::between(100, 199));
            assert_eq!(sel.count(), 100);
        }
        assert_eq!(c.column().piece_count(), 1, "never cracked");
        assert_eq!(c.column().stats().cracks, 0);
        // Every query scanned the whole (single) piece.
        assert!(c.column().stats().edge_scanned >= 3000);
    }

    #[test]
    fn piece_budget_freezes_the_index() {
        let mut c = PolicyCracker::new(
            (0..10_000).rev().collect(),
            CrackPolicy::PieceBudget { max_pieces: 8 },
        );
        for lo in (0..10_000).step_by(500) {
            c.count(RangePred::half_open(lo, lo + 100));
        }
        // The budget halts *new* cracking once reached; one final query
        // may still have pushed the count a couple past the threshold
        // (both bounds of the triggering query crack).
        assert!(
            c.column().piece_count() <= 10,
            "index frozen near the budget (got {})",
            c.column().piece_count()
        );
    }

    #[test]
    fn many_then_chunks_shifts_behaviour() {
        let policy = CrackPolicy::ManyThenChunks {
            switch_at_pieces: 8,
            late_granule: 6_000,
        };
        let mut c = PolicyCracker::new((0..20_000).rev().collect(), policy);
        // Early queries crack exactly (single-tuple granule).
        for lo in [1_000, 5_000, 9_000, 12_000] {
            let sel = c.select(RangePred::half_open(lo, lo + 10));
            assert!(sel.edges.is_empty(), "early phase cracks exactly");
        }
        assert!(c.column().piece_count() >= 8);
        // A late query into one of the ~4000-wide retained chunks (below
        // the late granule) is answered by scanning, not cracking.
        let sel = c.select(RangePred::half_open(6_000, 6_010));
        assert!(
            !sel.edges.is_empty(),
            "late phase scans inside retained chunks"
        );
    }

    proptest! {
        /// Whatever the policy decides, answers stay correct.
        #[test]
        fn prop_policies_never_affect_answers(
            orig in proptest::collection::vec(-100i64..100, 0..300),
            queries in proptest::collection::vec((-120i64..120, -120i64..120), 1..15),
            policy_idx in 0usize..POLICIES.len(),
        ) {
            let mut c = PolicyCracker::new(orig.clone(), POLICIES[policy_idx]);
            for (a, b) in queries {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let pred = RangePred::between(lo, hi);
                let mut got = c.select_oids(pred);
                got.sort_unstable();
                prop_assert_eq!(got, oracle(&orig, &pred));
                c.column().validate().map_err(TestCaseError::fail)?;
            }
        }
    }
}
