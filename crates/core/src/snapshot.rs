//! Serializable crack-state records — the piece-map export/import layer
//! behind the durability subsystem (see `PERSISTENCE.md` at the
//! repository root).
//!
//! The paper treats the cracker index as a session-local auxiliary
//! structure (§5.2); keeping a restarted store *warm* means persisting
//! exactly three things per cracked column: the physically reorganized
//! value/OID arrays, the boundary map (key + split position — tiny), and
//! the pending-update overlay. [`ColumnSnapshot`] captures those from a
//! [`CrackerColumn`] and rebuilds one on recovery; [`ConcurrentSnapshot`]
//! does the same for either latching mode of a [`ConcurrentColumn`].
//!
//! Restore never trusts the snapshot: boundary positions are re-validated
//! against the actual values in `O(n + p)`
//! ([`CrackerIndex::check_pieces`]) and the sharded range invariant is
//! re-checked ([`ShardedCrackerColumn::from_parts`]), so a corrupt or
//! tampered checkpoint fails loudly instead of yielding a silently wrong
//! column. Recency ticks and cost counters are deliberately *not*
//! persisted — they restart at zero, which only delays LRU fusion and
//! resets instrumentation, never answers.
//!
//! Records are concrete over `i64` (the engine's cracked-attribute type):
//! keeping the on-disk schema monomorphic makes the checkpoint format a
//! stable, documentable artifact.

use crate::column::CrackerColumn;
use crate::concurrent::SharedCrackerColumn;
use crate::config::CrackerConfig;
use crate::crack::BoundaryKey;
use crate::index::CrackerIndex;
use crate::sharded::{ConcurrentColumn, ShardedCrackerColumn};
use serde::{Deserialize, Serialize};

/// One crack boundary as persisted: the [`BoundaryKey`] flattened next to
/// its split position. Recency is not persisted (see the module doc).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryRecord {
    /// Boundary value.
    pub value: i64,
    /// Whether values equal to `value` fall before the boundary.
    pub lte: bool,
    /// Split position: slots before `pos` are "before" the key.
    pub pos: usize,
}

impl BoundaryRecord {
    /// The in-memory boundary key this record denotes.
    pub fn key(&self) -> BoundaryKey<i64> {
        if self.lte {
            BoundaryKey::le(self.value)
        } else {
            BoundaryKey::lt(self.value)
        }
    }
}

/// Everything worth persisting about one [`CrackerColumn`]: the cracked
/// arrays, the piece map, and the pending-update overlay.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnSnapshot {
    /// Cracked values in physical (piece) order.
    pub values: Vec<i64>,
    /// Parallel OID array.
    pub oids: Vec<u32>,
    /// Crack boundaries in ascending key order.
    pub boundaries: Vec<BoundaryRecord>,
    /// Staged-but-unmerged inserts, in staging order.
    pub pending_inserts: Vec<(u32, i64)>,
    /// OIDs staged for deletion (sorted for a canonical encoding).
    pub pending_deletes: Vec<u32>,
}

impl ColumnSnapshot {
    /// Capture the persistent state of `col`.
    pub fn capture(col: &CrackerColumn<i64>) -> Self {
        let mut pending_deletes: Vec<u32> = col.pending.deleted_set().iter().collect();
        pending_deletes.sort_unstable();
        ColumnSnapshot {
            values: col.values().to_vec(),
            oids: col.oids().to_vec(),
            boundaries: col
                .index()
                .boundaries()
                .map(|(k, info)| BoundaryRecord {
                    value: k.value,
                    lte: k.lte,
                    pos: info.pos,
                })
                .collect(),
            pending_inserts: col.pending.staged_inserts().to_vec(),
            pending_deletes,
        }
    }

    /// Rebuild a column from this snapshot, re-validating every invariant.
    ///
    /// The piece map is re-imposed boundary by boundary and then checked
    /// against the actual values ([`CrackerIndex::check_pieces`]); the
    /// overlay is re-staged through the public update API so the
    /// insert/delete disjointness invariant is re-established by
    /// construction. Any inconsistency is an error — a recovered column is
    /// either exactly the captured one or refused.
    pub fn restore(&self, config: CrackerConfig) -> Result<CrackerColumn<i64>, String> {
        if self.values.len() != self.oids.len() {
            return Err(format!(
                "column snapshot misaligned: {} values vs {} oids",
                self.values.len(),
                self.oids.len()
            ));
        }
        let mut col = CrackerColumn::from_pairs(self.values.clone(), self.oids.clone(), config);
        {
            let index = col.index_mut();
            for b in &self.boundaries {
                if b.pos > self.values.len() {
                    return Err(format!(
                        "boundary {:?} position {} beyond column end {}",
                        b.key(),
                        b.pos,
                        self.values.len()
                    ));
                }
                index.set_position(b.key(), b.pos);
            }
        }
        col.index().check_pieces(col.values())?;
        for &(oid, v) in &self.pending_inserts {
            col.insert(oid, v);
        }
        for &oid in &self.pending_deletes {
            if !col.delete(oid) {
                return Err(format!(
                    "pending delete references unknown oid {oid} — snapshot corrupt"
                ));
            }
        }
        Ok(col)
    }

    /// Cheap dirty-tracking fingerprint of a column's persistent state:
    /// two snapshots of the same column are byte-identical whenever its
    /// fingerprints match, so an unchanged fingerprint lets the
    /// checkpoint layer skip re-serializing a warm column. Layout changes
    /// are counter-based (cracks/fusions/merges are monotone); the
    /// overlay is covered by a content hash, *not* its length — the
    /// overlay length is not monotone (deleting a staged insert cancels
    /// it), so a cancel-plus-restage between checkpoints would collide
    /// on length and silently carry a stale payload forward.
    pub fn fingerprint(col: &CrackerColumn<i64>) -> String {
        let s = col.stats();
        format!(
            "n{}b{}c{}f{}m{}t{}o{:016x}",
            col.len(),
            col.index().boundary_count(),
            s.cracks,
            s.fusions,
            s.merges,
            s.tuples_moved,
            overlay_hash(col)
        )
    }
}

/// FNV-1a over `bytes`, continuing from `h`.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Content hash of a column's pending-update overlay: the staged inserts
/// in staging order plus the pending-delete set in sorted order, each
/// section prefixed by its length so no two distinct overlays share an
/// encoding. Two columns hash equal exactly when their captured
/// `pending_inserts`/`pending_deletes` would be equal — the property the
/// fingerprint needs and the raw overlay *length* cannot provide.
fn overlay_hash(col: &CrackerColumn<i64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let inserts = col.pending.staged_inserts();
    fnv1a(&mut h, &(inserts.len() as u64).to_le_bytes());
    for &(oid, v) in inserts {
        fnv1a(&mut h, &oid.to_le_bytes());
        fnv1a(&mut h, &v.to_le_bytes());
    }
    let mut deletes: Vec<u32> = col.pending.deleted_set().iter().collect();
    deletes.sort_unstable();
    fnv1a(&mut h, &(deletes.len() as u64).to_le_bytes());
    for oid in deletes {
        fnv1a(&mut h, &oid.to_le_bytes());
    }
    h
}

/// The persistent state of a [`ConcurrentColumn`] under either latching
/// mode: a single-lock column is one [`ColumnSnapshot`]; a sharded column
/// is its split points plus one snapshot per shard in ascending order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConcurrentSnapshot {
    /// True for [`ShardedCrackerColumn`]; false for the single-lock mode.
    pub sharded: bool,
    /// Ascending split values (empty in single-lock mode).
    pub splits: Vec<i64>,
    /// Per-shard snapshots (exactly one in single-lock mode).
    pub shards: Vec<ColumnSnapshot>,
}

impl ConcurrentSnapshot {
    /// Capture the persistent state of `col` (read latches only, one
    /// shard at a time in ascending order).
    pub fn capture(col: &ConcurrentColumn<i64>) -> Self {
        match col {
            ConcurrentColumn::Single(c) => ConcurrentSnapshot {
                sharded: false,
                splits: Vec::new(),
                shards: vec![c.read_with(ColumnSnapshot::capture)],
            },
            ConcurrentColumn::Sharded(s) => ConcurrentSnapshot {
                sharded: true,
                splits: s.splits().to_vec(),
                shards: s.read_shards(ColumnSnapshot::capture),
            },
        }
    }

    /// Rebuild a concurrent column, re-validating per-shard piece maps
    /// and the sharded range invariant.
    pub fn restore(&self, config: CrackerConfig) -> Result<ConcurrentColumn<i64>, String> {
        if !self.sharded {
            if self.shards.len() != 1 {
                return Err(format!(
                    "single-lock snapshot must hold exactly one shard, got {}",
                    self.shards.len()
                ));
            }
            if !self.splits.is_empty() {
                return Err("single-lock snapshot must not carry splits".to_string());
            }
            let col = self.shards[0].restore(config)?;
            return Ok(ConcurrentColumn::Single(SharedCrackerColumn::from_column(
                col,
            )));
        }
        let mut columns = Vec::with_capacity(self.shards.len());
        for (i, snap) in self.shards.iter().enumerate() {
            columns.push(
                snap.restore(config)
                    .map_err(|e| format!("shard {i}: {e}"))?,
            );
        }
        let sharded = ShardedCrackerColumn::from_parts(self.splits.clone(), columns)?;
        Ok(ConcurrentColumn::Sharded(sharded))
    }

    /// Dirty-tracking fingerprint: the mode tag plus every shard's
    /// [`ColumnSnapshot::fingerprint`], in ascending shard order.
    pub fn fingerprint(col: &ConcurrentColumn<i64>) -> String {
        match col {
            ConcurrentColumn::Single(c) => {
                format!("single:{}", c.read_with(ColumnSnapshot::fingerprint))
            }
            ConcurrentColumn::Sharded(s) => {
                format!(
                    "sharded:{}",
                    s.read_shards(ColumnSnapshot::fingerprint).join("/")
                )
            }
        }
    }
}

/// Re-validate a restored index against values — re-exported convenience
/// so callers outside the crate can run the same `O(n + p)` check the
/// restore path uses.
pub fn check_piece_map(index: &CrackerIndex<i64>, vals: &[i64]) -> Result<(), String> {
    index.check_pieces(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::RangePred;
    use crate::sharded::ConcurrencyMode;

    fn warmed_column() -> CrackerColumn<i64> {
        let mut c = CrackerColumn::new((0..500).rev().collect::<Vec<i64>>());
        c.select(RangePred::between(100, 200));
        c.select(RangePred::lt(50));
        c.select(RangePred::ge(400));
        c.insert(1_000, 150);
        c.insert(1_001, 425);
        c.delete(3); // cracked value 496
        c
    }

    #[test]
    fn column_snapshot_roundtrip_preserves_layout_and_overlay() {
        let col = warmed_column();
        let snap = ColumnSnapshot::capture(&col);
        let restored = snap.restore(*col.config()).unwrap();
        assert_eq!(restored.values(), col.values());
        assert_eq!(restored.oids(), col.oids());
        assert_eq!(restored.piece_count(), col.piece_count());
        assert_eq!(restored.pending_len(), col.pending_len());
        restored.validate().unwrap();
        // Snapshot of the restored column is identical: capture∘restore
        // is idempotent.
        assert_eq!(ColumnSnapshot::capture(&restored), snap);
    }

    #[test]
    fn restored_column_answers_like_the_original() {
        let col = warmed_column();
        let snap = ColumnSnapshot::capture(&col);
        let mut restored = snap.restore(*col.config()).unwrap();
        let mut original = col;
        for pred in [
            RangePred::between(100, 200),
            RangePred::eq(150),
            RangePred::ge(400),
            RangePred::with_bounds(None, None),
        ] {
            let mut a = original.select_oids(pred);
            let mut b = restored.select_oids(pred);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "pred {pred:?}");
        }
    }

    #[test]
    fn tampered_boundary_position_is_rejected() {
        let col = warmed_column();
        let mut snap = ColumnSnapshot::capture(&col);
        snap.boundaries[0].pos += 1;
        assert!(snap.restore(*col.config()).is_err());
    }

    #[test]
    fn misaligned_and_out_of_range_snapshots_are_rejected() {
        let col = warmed_column();
        let mut snap = ColumnSnapshot::capture(&col);
        snap.oids.pop();
        assert!(snap.restore(*col.config()).is_err());

        let mut snap = ColumnSnapshot::capture(&col);
        snap.boundaries[0].pos = snap.values.len() + 7;
        assert!(snap.restore(*col.config()).is_err());

        let mut snap = ColumnSnapshot::capture(&col);
        snap.pending_deletes.push(999_999);
        assert!(snap.restore(*col.config()).is_err());
    }

    #[test]
    fn fingerprint_tracks_every_layout_change() {
        let mut col = CrackerColumn::new((0..300).rev().collect::<Vec<i64>>());
        let f0 = ColumnSnapshot::fingerprint(&col);
        col.select(RangePred::between(50, 100)); // cracks
        let f1 = ColumnSnapshot::fingerprint(&col);
        assert_ne!(f0, f1);
        col.insert(900, 75); // overlay grows
        let f2 = ColumnSnapshot::fingerprint(&col);
        assert_ne!(f1, f2);
        col.merge_pending(); // overlay folded in
        let f3 = ColumnSnapshot::fingerprint(&col);
        assert_ne!(f2, f3);
        // A repeated warm query changes nothing persistent.
        col.select(RangePred::between(50, 100));
        assert_eq!(ColumnSnapshot::fingerprint(&col), f3);
    }

    #[test]
    fn fingerprint_sees_overlay_swap_that_preserves_length() {
        // Regression: deleting a staged insert cancels it (the overlay
        // shrinks), so a cancel followed by one fresh staged insert leaves
        // pending_len — and every monotone layout counter — unchanged. A
        // length-based fingerprint collides here and the checkpoint layer
        // would carry the stale overlay forward, resurrecting the
        // cancelled insert and losing the fresh one on recovery.
        let mut col = CrackerColumn::new((0..100).collect::<Vec<i64>>());
        col.insert(500, 10);
        let f_x = ColumnSnapshot::fingerprint(&col);
        assert!(col.delete(500), "delete must cancel the staged insert");
        col.insert(501, 20);
        assert_eq!(col.pending_len(), 1, "overlay length is back to 1");
        let f_z = ColumnSnapshot::fingerprint(&col);
        assert_ne!(f_x, f_z, "same overlay length, different contents");
        // Same contents, rebuilt independently, must still hash equal —
        // otherwise incremental checkpoints would never reuse a payload.
        let mut twin = CrackerColumn::new((0..100).collect::<Vec<i64>>());
        twin.insert(501, 20);
        assert_eq!(ColumnSnapshot::fingerprint(&twin), f_z);
    }

    #[test]
    fn concurrent_snapshot_roundtrip_both_modes() {
        let vals: Vec<i64> = (0..4_000).map(|i| (i * 37) % 4_000).collect();
        for mode in [
            ConcurrencyMode::SingleLock,
            ConcurrencyMode::Sharded { shards: 4 },
        ] {
            let col = ConcurrentColumn::build(vals.clone(), CrackerConfig::default(), mode);
            col.count(RangePred::between(500, 1_500));
            col.insert(90_000, 1_000);
            col.delete(17);
            let snap = ConcurrentSnapshot::capture(&col);
            let restored = snap.restore(CrackerConfig::default()).unwrap();
            assert_eq!(restored.mode(), col.mode(), "mode {mode:?}");
            assert_eq!(restored.piece_count(), col.piece_count());
            for pred in [
                RangePred::between(500, 1_500),
                RangePred::eq(1_000),
                RangePred::with_bounds(None, None),
            ] {
                let mut a = col.select_oids(pred);
                let mut b = restored.select_oids(pred);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "mode {mode:?} pred {pred:?}");
            }
            restored.validate().unwrap();
            // Counters restart at zero after restore, so fingerprints are
            // comparable only within one column's lifetime — but the
            // *snapshot* of the restored overlay/layout must match.
            assert_eq!(
                ConcurrentSnapshot::capture(&restored).shards.len(),
                snap.shards.len()
            );
        }
    }

    #[test]
    fn sharded_snapshot_with_wrong_shape_is_rejected() {
        let vals: Vec<i64> = (0..1_000).collect();
        let col = ConcurrentColumn::build(
            vals,
            CrackerConfig::default(),
            ConcurrencyMode::Sharded { shards: 4 },
        );
        let good = ConcurrentSnapshot::capture(&col);

        let mut snap = good.clone();
        snap.shards.pop();
        assert!(snap.restore(CrackerConfig::default()).is_err());

        let mut snap = good.clone();
        snap.splits.reverse(); // no longer ascending
        assert!(snap.restore(CrackerConfig::default()).is_err());

        // A value planted outside its shard's range is caught.
        let mut snap = good.clone();
        snap.shards[0].values[0] = i64::MAX;
        assert!(snap.restore(CrackerConfig::default()).is_err());

        let mut snap = good;
        snap.sharded = false;
        assert!(snap.restore(CrackerConfig::default()).is_err());
    }

    #[test]
    fn check_piece_map_reexport_agrees_with_validate() {
        let mut col = CrackerColumn::new((0..200).rev().collect::<Vec<i64>>());
        col.select(RangePred::between(40, 120));
        check_piece_map(col.index(), col.values()).unwrap();
        col.index().validate(col.values()).unwrap();
    }
}
