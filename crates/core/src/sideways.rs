//! Sideways cracking: cracker maps for multi-column queries.
//!
//! The Ψ cracker of §3.1 splits relations vertically, "each vertical
//! fragment include\[s\] ... a unique surrogate (oid), that allows simple
//! reconstruction by means of a natural 1:1-join". That reconstruction
//! join is exactly where a cracked column-store hurts: after Ξ-cracking
//! the selection column, its tuples sit in *cracked* (shuffled) order, so
//! projecting any other attribute of the qualifying tuples means one
//! random access per OID — a cache-miss per tuple, potentially costlier
//! than the scan cracking saved.
//!
//! **Cracker maps** (the follow-on technique of Idreos et al.,
//! *Self-organizing tuple reconstruction in a column-store*, SIGMOD 2009)
//! fix this sideways: for each (selection attribute, projection
//! attribute) pair `A→B` actually used by queries, a [`CrackerMap`]
//! stores the `B` values *physically aligned with the cracked order of
//! `A`* and cracks them together. A selection on `A` then yields the
//! qualifying `B` values as one contiguous slice — tuple reconstruction
//! cost drops to a memcpy, and the map network stays query-driven: maps
//! are created lazily on first use, exactly like every other cracker in
//! this library.
//!
//! [`SidewaysCracker`] manages the map set for one head attribute; the
//! `ext_sideways` experiment measures the contiguous-projection payoff
//! against OID-based reconstruction.

use crate::crack::BoundaryKey;
use crate::index::CrackerIndex;
use crate::pred::RangePred;
use crate::stats::CrackStats;
use crate::value_trait::CrackValue;
use std::collections::BTreeMap;
use std::ops::Range;

/// One head→tail cracker map: tail values kept physically aligned with
/// the cracked order of the head attribute.
#[derive(Debug, Clone)]
pub struct CrackerMap<T> {
    head: Vec<T>,
    tail: Vec<T>,
    oids: Vec<u32>,
    index: CrackerIndex<T>,
    stats: CrackStats,
}

/// Three-array swap: head, tail and surrogate travel together.
#[inline(always)]
fn swap3<T>(head: &mut [T], tail: &mut [T], oids: &mut [u32], a: usize, b: usize) {
    head.swap(a, b);
    tail.swap(a, b);
    oids.swap(a, b);
}

impl<T: CrackValue> CrackerMap<T> {
    /// Build a map from parallel head/tail columns (dense OIDs).
    ///
    /// # Panics
    /// Panics if the columns differ in length.
    pub fn new(head: Vec<T>, tail: Vec<T>) -> Self {
        assert_eq!(head.len(), tail.len(), "head and tail must align");
        let n = head.len();
        CrackerMap {
            head,
            tail,
            oids: (0..n as u32).collect(),
            index: CrackerIndex::new(n),
            stats: CrackStats::default(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.head.len()
    }

    /// True when the map is empty.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty()
    }

    /// Cost counters.
    pub fn stats(&self) -> &CrackStats {
        &self.stats
    }

    /// Number of pieces in the map's cracker index.
    pub fn piece_count(&self) -> usize {
        self.index.piece_count()
    }

    /// The head values in cracked order (test/inspection surface).
    pub fn head_values(&self) -> &[T] {
        &self.head
    }

    /// The OIDs in cracked order, parallel to both value arrays.
    pub fn oids(&self) -> &[u32] {
        &self.oids
    }

    /// Select on the head attribute, cracking the map; the answer is the
    /// slot range whose **tail** values (and OIDs) are contiguous.
    pub fn select(&mut self, pred: RangePred<T>) -> Range<usize> {
        self.stats.queries += 1;
        self.index.next_tick();
        if pred.is_empty_range() || self.head.is_empty() {
            return 0..0;
        }
        let start = match pred.low {
            None => 0,
            Some(b) => {
                let key = if b.inclusive {
                    BoundaryKey::lt(b.value)
                } else {
                    BoundaryKey::le(b.value)
                };
                self.resolve(key)
            }
        };
        let end = match pred.high {
            None => self.head.len(),
            Some(b) => {
                let key = if b.inclusive {
                    BoundaryKey::le(b.value)
                } else {
                    BoundaryKey::lt(b.value)
                };
                self.resolve(key)
            }
        };
        start..end.max(start)
    }

    /// The contiguous tail projection of a selection: this is the whole
    /// point of the map — no per-OID random access.
    pub fn project(&self, slots: Range<usize>) -> &[T] {
        &self.tail[slots]
    }

    /// Select and project in one call.
    pub fn select_project(&mut self, pred: RangePred<T>) -> &[T] {
        let r = self.select(pred);
        self.project(r)
    }

    /// Find or create the split position for `key` (two-way crack over
    /// all three arrays).
    fn resolve(&mut self, key: BoundaryKey<T>) -> usize {
        if let Some(pos) = self.index.lookup(key) {
            return pos;
        }
        let piece = self.index.enclosing_piece(key);
        let pos = self.crack2(piece.clone(), key);
        self.stats.tuples_touched += piece.len() as u64;
        self.stats.cracks += 1;
        self.index.insert(key, pos);
        pos
    }

    /// Hoare-style partition mirrored across head/tail/oids.
    fn crack2(&mut self, piece: Range<usize>, key: BoundaryKey<T>) -> usize {
        let (mut i, mut j) = (piece.start, piece.end);
        loop {
            while i < j && key.before(self.head[i]) {
                i += 1;
            }
            while i < j && !key.before(self.head[j - 1]) {
                j -= 1;
            }
            if i >= j {
                break;
            }
            swap3(&mut self.head, &mut self.tail, &mut self.oids, i, j - 1);
            self.stats.tuples_moved += 2;
            i += 1;
            j -= 1;
        }
        i
    }

    /// Check internal invariants (index tiling/ordering over the head).
    pub fn validate(&self) -> Result<(), String> {
        self.index.validate(&self.head)?;
        if self.tail.len() != self.head.len() || self.oids.len() != self.head.len() {
            return Err("map arrays misaligned".into());
        }
        Ok(())
    }
}

/// The map set for one head (selection) attribute: one [`CrackerMap`] per
/// projected attribute, created lazily on first use.
#[derive(Debug, Clone)]
pub struct SidewaysCracker<T> {
    head: Vec<T>,
    maps: BTreeMap<String, CrackerMap<T>>,
}

impl<T: CrackValue> SidewaysCracker<T> {
    /// A cracker for selections on the given head column.
    pub fn new(head: Vec<T>) -> Self {
        SidewaysCracker {
            head,
            maps: BTreeMap::new(),
        }
    }

    /// Number of maps materialized so far.
    pub fn map_count(&self) -> usize {
        self.maps.len()
    }

    /// The map for a projected attribute, if it exists yet.
    pub fn map(&self, tail_name: &str) -> Option<&CrackerMap<T>> {
        self.maps.get(tail_name)
    }

    /// `SELECT tail FROM t WHERE head IN pred` — creates the `head→tail`
    /// map on first use (copying both columns once, like the first crack
    /// of any column), cracks it, and returns the contiguous tail slice.
    ///
    /// `fetch_tail` supplies the tail column values in OID order; it is
    /// only invoked when the map does not exist yet.
    pub fn select_project<'a>(
        &'a mut self,
        tail_name: &str,
        fetch_tail: impl FnOnce() -> Vec<T>,
        pred: RangePred<T>,
    ) -> &'a [T] {
        let head = &self.head;
        let map = self
            .maps
            .entry(tail_name.to_owned())
            .or_insert_with(|| CrackerMap::new(head.clone(), fetch_tail()));
        let r = map.select(pred);
        map.project(r)
    }

    /// Aggregate crack statistics over all maps.
    pub fn total_stats(&self) -> CrackStats {
        let mut acc = CrackStats::default();
        for m in self.maps.values() {
            let s = m.stats();
            acc.queries += s.queries;
            acc.cracks += s.cracks;
            acc.tuples_touched += s.tuples_touched;
            acc.tuples_moved += s.tuples_moved;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Oracle: (tail values of tuples whose head matches), as a sorted
    /// multiset.
    fn oracle(head: &[i64], tail: &[i64], pred: &RangePred<i64>) -> Vec<i64> {
        let mut v: Vec<i64> = head
            .iter()
            .zip(tail)
            .filter(|(&h, _)| pred.matches(h))
            .map(|(_, &t)| t)
            .collect();
        v.sort_unstable();
        v
    }

    fn sample(n: usize) -> (Vec<i64>, Vec<i64>) {
        // head: reversed values; tail: head * 10 + 1 so pairs are checkable.
        let head: Vec<i64> = (0..n as i64).rev().collect();
        let tail: Vec<i64> = head.iter().map(|h| h * 10 + 1).collect();
        (head, tail)
    }

    #[test]
    fn projection_is_contiguous_and_correct() {
        let (head, tail) = sample(1_000);
        let mut m = CrackerMap::new(head.clone(), tail.clone());
        let pred = RangePred::between(100, 199);
        let r = m.select(pred);
        assert_eq!(r.len(), 100);
        let mut got: Vec<i64> = m.project(r).to_vec();
        got.sort_unstable();
        assert_eq!(got, oracle(&head, &tail, &pred));
        m.validate().unwrap();
    }

    #[test]
    fn tail_and_oids_travel_with_the_head() {
        let (head, tail) = sample(500);
        let mut m = CrackerMap::new(head.clone(), tail.clone());
        for (lo, hi) in [(10, 50), (200, 450), (0, 499), (30, 31)] {
            m.select(RangePred::between(lo, hi));
        }
        // Invariant: at every slot, tail == head*10+1 and oid recovers the
        // original pair.
        for i in 0..m.len() {
            let h = m.head_values()[i];
            assert_eq!(m.project(i..i + 1)[0], h * 10 + 1);
            let oid = m.oids()[i] as usize;
            assert_eq!(head[oid], h);
        }
    }

    #[test]
    fn repeat_selections_reuse_boundaries() {
        let (head, tail) = sample(2_000);
        let mut m = CrackerMap::new(head, tail);
        m.select(RangePred::between(500, 700));
        let touched = m.stats().tuples_touched;
        let r = m.select(RangePred::between(500, 700));
        assert_eq!(r.len(), 201);
        assert_eq!(m.stats().tuples_touched, touched, "repeat is index-only");
    }

    #[test]
    fn empty_ranges_columns_and_misalignment() {
        let (head, tail) = sample(100);
        let mut m = CrackerMap::new(head, tail);
        assert_eq!(m.select(RangePred::between(50, 10)), 0..0);
        let mut e = CrackerMap::new(Vec::<i64>::new(), Vec::new());
        assert_eq!(e.select(RangePred::lt(5)), 0..0);
        assert!(e.is_empty());
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_columns_panic() {
        CrackerMap::new(vec![1i64, 2], vec![1i64]);
    }

    #[test]
    fn sideways_cracker_materializes_maps_lazily() {
        let n = 1_000;
        let head: Vec<i64> = (0..n).rev().collect();
        let b: Vec<i64> = (0..n).map(|i| i * 2).collect();
        let c: Vec<i64> = (0..n).map(|i| i * 3).collect();
        let mut sw = SidewaysCracker::new(head.clone());
        assert_eq!(sw.map_count(), 0);

        let got_b = sw
            .select_project("b", || b.clone(), RangePred::between(100, 199))
            .to_vec();
        assert_eq!(sw.map_count(), 1);
        let mut got_b_sorted = got_b;
        got_b_sorted.sort_unstable();
        assert_eq!(
            got_b_sorted,
            oracle(&head, &b, &RangePred::between(100, 199))
        );

        // A second projected attribute gets its own map, answering the
        // same predicate independently.
        let got_c = sw
            .select_project("c", || c.clone(), RangePred::between(100, 199))
            .to_vec();
        assert_eq!(sw.map_count(), 2);
        assert_eq!(got_c.len(), 100);
        let mut got_c_sorted = got_c.clone();
        got_c_sorted.sort_unstable();
        assert_eq!(
            got_c_sorted,
            oracle(&head, &c, &RangePred::between(100, 199))
        );

        // Both maps answer row-aligned: pairing b/2 with c/3 recovers the
        // same tuple set.
        let got_b2 = sw
            .select_project(
                "b",
                || unreachable!("map exists"),
                RangePred::between(100, 199),
            )
            .to_vec();
        let rows_b: std::collections::BTreeSet<i64> = got_b2.iter().map(|v| v / 2).collect();
        let rows_c: std::collections::BTreeSet<i64> = got_c.iter().map(|v| v / 3).collect();
        assert_eq!(rows_b, rows_c, "maps agree on the qualifying tuple set");
    }

    #[test]
    fn stats_aggregate_across_maps() {
        let head: Vec<i64> = (0..100).collect();
        let mut sw = SidewaysCracker::new(head);
        sw.select_project("b", || (0..100).collect(), RangePred::lt(50));
        sw.select_project("c", || (0..100).collect(), RangePred::ge(50));
        let s = sw.total_stats();
        assert_eq!(s.queries, 2);
        assert!(s.cracks >= 2);
        assert!(sw.map("b").is_some());
        assert!(sw.map("zzz").is_none());
    }

    proptest! {
        #[test]
        fn prop_map_selections_agree_with_oracle(
            pairs in proptest::collection::vec((-50i64..50, -50i64..50), 0..300),
            queries in proptest::collection::vec((-60i64..60, -60i64..60), 1..20),
        ) {
            let head: Vec<i64> = pairs.iter().map(|&(h, _)| h).collect();
            let tail: Vec<i64> = pairs.iter().map(|&(_, t)| t).collect();
            let mut m = CrackerMap::new(head.clone(), tail.clone());
            for (a, b) in queries {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let pred = RangePred::between(lo, hi);
                let r = m.select(pred);
                let mut got: Vec<i64> = m.project(r).to_vec();
                got.sort_unstable();
                prop_assert_eq!(got, oracle(&head, &tail, &pred));
                m.validate().map_err(TestCaseError::fail)?;
            }
        }

        #[test]
        fn prop_pairs_are_never_separated(
            pairs in proptest::collection::vec((-50i64..50, -50i64..50), 1..200),
            queries in proptest::collection::vec((-60i64..60, -60i64..60), 1..12),
        ) {
            let head: Vec<i64> = pairs.iter().map(|&(h, _)| h).collect();
            let tail: Vec<i64> = pairs.iter().map(|&(_, t)| t).collect();
            let mut m = CrackerMap::new(head, tail);
            for (a, b) in queries {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                m.select(RangePred::between(lo, hi));
            }
            // Every slot still holds an original (head, tail, oid) triple.
            for i in 0..m.len() {
                let oid = m.oids()[i] as usize;
                prop_assert_eq!(m.head_values()[i], pairs[oid].0);
                prop_assert_eq!(m.project(i..i + 1)[0], pairs[oid].1);
            }
        }
    }
}
