//! Crack kernels: scalar, branch-free, and SIMD hot loops, selected at
//! runtime per piece-size band.
//!
//! The cracker's per-query cost is dominated by three inner loops: the
//! two-way / three-way partition sweeps of [`crate::crack`], the residual
//! scans over cut-off border pieces, and the pending-delete overlay filter.
//! All three are *data-dependent branch farms* in their textbook form: on a
//! cold (virgin) piece the partition branch is taken with the predicate's
//! selectivity — close to a coin flip for the midpoint splits cracking
//! produces — so a modern core eats a branch misprediction every few
//! tuples. This module provides a three-way **kernel family** for those
//! loops, plus the policy that decides which member a crack runs:
//!
//! * [`CrackKernel::Scalar`] — the straight-line safe-Rust loops of
//!   [`crate::crack`]: one data-dependent branch per tuple, unbeatable
//!   when that branch predicts (small or skewed pieces).
//! * [`CrackKernel::BranchFree`] — predication: every data branch becomes
//!   arithmetic (branchless cyclic-Lomuto two-way partition, predicated
//!   Dutch-flag three-way sweep, 64-lane bitmask scans), one tuple per
//!   iteration. The portable fast path: no CPU features required.
//! * [`CrackKernel::Simd`] — explicit vector lanes (the `simd` module):
//!   AVX2 `vpcmpgtq` compares and LUT-driven compress permutes process 4
//!   tuples per iteration (an SSE4.2 `pcmpgtq` tier covers the two-way
//!   partition at 2 lanes), selected per process by
//!   `is_x86_feature_detected!`. On non-x86-64 hosts, CPUs without the
//!   features, or value types without a 64-bit vector compare, every
//!   entry point falls back to the branch-free kernels — forcing `Simd`
//!   is safe everywhere.
//! * [`CrackKernel::Banded`] — not a fourth loop but the measuring
//!   policy: each piece-size **band** (≤4k / ≤32k / ≤256k / larger
//!   tuples, see [`BAND_UPPER`]) lazily probes all available kernels on
//!   fresh pseudo-random data of a band-representative size and caches
//!   the winner process-wide, so small pieces keep the well-predicted
//!   scalar loop while large cold cracks get vector lanes.
//!
//! # The branch-free predication scheme
//!
//! The branch-free kernels keep the scalar kernels' *contract* — the same
//! split positions, the same value/OID multiset per piece, and the same
//! `moved` accounting — while restructuring the loops so the CPU never
//! speculates on a data-dependent comparison:
//!
//! * [`CrackKernel::crack_two`] is a branchless cyclic-Lomuto partition:
//!   one forward cursor reads every element exactly once (loads pipeline
//!   perfectly because the read address never depends on the data), a
//!   write cursor advances by the comparison result (`write += before`),
//!   and each iteration performs an unconditional two-way rotation
//!   between the cursors, a self-assignment when nothing is misplaced.
//!   The physical arrangement inside each output piece can differ from
//!   the scalar Hoare sweep's, but cracking treats pieces as unordered
//!   sets, so every observable answer is unchanged. `moved` is the
//!   canonical Hoare count — 2 per crossing pair, i.e. the number of
//!   tuples that were not already inside their destination piece —
//!   computed branch-free during the same pass, so both kernels report
//!   identical write accounting for identical inputs.
//! * [`CrackKernel::crack_three`] predicates the Dutch-national-flag
//!   sweep step-for-step: the three-way branch (`before k1` / `after k2`
//!   / middle) becomes two flags and a mask-selected swap target (`lt`,
//!   `gt`, or a self-swap at `i`). Because it performs the *same swaps in
//!   the same order* as the scalar sweep, its output — arrangement, split
//!   pair, and `moved` — is bit-identical to the scalar kernel's.
//! * [`CrackKernel::scan_into`] (cut-off piece scans) and the overlay
//!   helpers ([`CrackKernel::count_deleted`],
//!   [`CrackKernel::for_each_live`]) are chunked, bitmask-driven: the
//!   predicate or delete-bitmap probe is evaluated branch-free over
//!   64-tuple chunks into a `u64` lane mask, and only then are the set
//!   bits walked with `trailing_zeros`.
//!
//! # The SIMD scheme
//!
//! The vector kernels go one step further: the compare itself becomes a
//! 4-lane `vpcmpgtq`, and data movement becomes a compress permute
//! steered by the compare's sign-bit mask (an in-place bidirectional
//! partition for crack-in-two, a scratch compress-scatter for
//! crack-in-three; see the `simd` module for the algorithms and safety
//! arguments). The two-way partition keeps the canonical crossing-pair
//! `moved` bit-for-bit. The three-way partition keeps splits, multisets,
//! and answer sets, but reports `moved` as the canonical
//! **destination-displacement count** — the number of tuples that were
//! not already inside their destination piece, the same semantics the
//! two-way kernels use — because the scalar sweep's swap count is
//! trace-defined (middle-class tuples shuffle along repeatedly) and
//! reproducing it would require simulating the scalar sweep. Per-family
//! `moved` is still deterministic and pinned by an oracle in the
//! equivalence suites; cumulative `moved` across a query *sequence*
//! already drifts between families for the documented
//! arrangement-divergence reason.
//!
//! # Skew guard
//!
//! Predication trades branches for unconditional work, so it wins exactly
//! where cracking hurts — balanced splits, where a data-dependent branch
//! mispredicts every other tuple — and loses where the split is skewed,
//! because a branch that is taken 95% of the time is predicted nearly for
//! free while predication still pays its flat per-tuple cost. The
//! branch-free kernel therefore carries a **skew guard**: before
//! partitioning a piece above the kernel's size floor ([`BRANCHFREE_MIN`]
//! for two-way, [`THREE_WAY_MIN`] for three-way), a strided sample of
//! [`SKEW_SAMPLE`] values estimates the split balance, and only cracks
//! whose largest output region is expected to stay under 7/8 of the piece
//! take the predicated loop — the rest fall through to the scalar loop,
//! whose branches the predictor handles. The SIMD two-way partition
//! carries **no** balance guard: a compress partition's cost is
//! data-independent (every chunk loads, compares, permutes, and stores
//! regardless of the mask), so skew cannot make it slower — only a size
//! floor (`simd::SIMD_MIN`) routes tiny pieces to the fallback. The SIMD
//! *three-way* partition carries an **exact middle-dominance guard**
//! instead of a sampled one: its counting pass already fixes the class
//! populations, and when ≥ 7/8 of a piece stays in the middle region —
//! every crack of a contracting (MQS homerun) sequence — the data
//! movement is delegated to the scalar sweep, which never moves a
//! middle-class tuple, while the displacement `moved` is still computed
//! exactly from the outer regions' counts. Every guard honors the
//! identical observable contract, so they are invisible to everything
//! but the clock.
//!
//! # Selection policy
//!
//! [`KernelPolicy`] is the [`crate::config::CrackerConfig`] knob; it is
//! resolved to a concrete [`CrackKernel`] once, when a column is built.
//! The full dispatch order for the default policy is:
//!
//! 1. **Env override**: `KernelPolicy::Auto` consults `CRACKER_KERNEL`
//!    (`scalar` / `branchfree` / `simd` / `banded`) — the hook CI's test
//!    matrix uses to run the whole tier-1 suite under each family.
//!    Without an override, `Auto` resolves to `Banded`.
//! 2. **CPU detection**: the `Simd` kernel (forced, from the env, or as
//!    a band candidate) is only real where
//!    `is_x86_feature_detected!` finds AVX2 (or SSE4.2 for the two-way
//!    partition); otherwise it degrades to the branch-free kernels.
//! 3. **Per-band calibration**: `Banded` lazily probes scalar,
//!    branch-free, and (where detected) SIMD crack-in-two on fresh
//!    pseudo-random data at one representative size per piece-size band,
//!    caching each band's winner in a `OnceLock` table
//!    ([`BAND_UPPER`] bounds the bands). Every subsequent crack, scan,
//!    or overlay probe dispatches on its piece length.
//! 4. **Skew guard**: inside the branch-free kernels, the per-crack
//!    balance probe described above makes the final scalar-vs-predicated
//!    call.
//!
//! Because every concurrency wrapper ([`crate::concurrent`],
//! [`crate::sharded`]) and the engine build their columns through
//! `CrackerConfig`, the choice — including the band policy — flows to
//! every crack path: plain, single-lock, and sharded, without further
//! plumbing.

use crate::crack::{self, BoundaryKey};
use crate::pred::RangePred;
use crate::simd;
use crate::updates::OidSet;
use crate::value_trait::CrackValue;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::OnceLock;

/// Tuples per bitmask chunk in the scan/overlay kernels.
const LANES: usize = 64;

/// How a column chooses its crack kernel (the `CrackerConfig` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelPolicy {
    /// Resolve via `CRACKER_KERNEL` if set, else per-band calibration
    /// (`Banded`).
    Auto,
    /// Force the scalar (branchy) kernels.
    Scalar,
    /// Force the predicated branch-free kernels.
    BranchFree,
    /// Force the vector kernels (degrades to branch-free where the CPU
    /// or value type has no vector path).
    Simd,
    /// Force the per-piece-size-band calibration table.
    Banded,
}

// Not derived: the serde shim's derive macro hand-parses enum bodies and
// must not see a `#[default]` variant attribute.
#[allow(clippy::derivable_impls)]
impl Default for KernelPolicy {
    fn default() -> Self {
        KernelPolicy::Auto
    }
}

impl KernelPolicy {
    /// Resolve the policy to a concrete kernel (see the module docs for
    /// the resolution order).
    pub fn resolve(self) -> CrackKernel {
        match self {
            KernelPolicy::Scalar => CrackKernel::Scalar,
            KernelPolicy::BranchFree => CrackKernel::BranchFree,
            // Forced SIMD on a host without any vector tier is honest at
            // resolution time: report the branch-free kernel the calls
            // would land on anyway.
            KernelPolicy::Simd => {
                if simd::available() {
                    CrackKernel::Simd
                } else {
                    CrackKernel::BranchFree
                }
            }
            KernelPolicy::Banded => CrackKernel::Banded,
            KernelPolicy::Auto => auto_kernel(),
        }
    }
}

/// True when the running CPU has a vector tier for the SIMD kernels
/// (AVX2, or SSE4.2 for the two-way partition): the condition under
/// which [`KernelPolicy::Simd`] resolves to [`CrackKernel::Simd`] and
/// the band calibration includes the SIMD candidate.
pub fn simd_supported() -> bool {
    simd::available()
}

/// A concrete kernel implementation, resolved from a [`KernelPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrackKernel {
    /// The straight-line safe-Rust loops of [`crate::crack`]: one
    /// data-dependent branch per tuple.
    Scalar,
    /// Predicated partition loops and chunked bitmask scans — comparison
    /// masks and conditional (self-)swaps instead of branches — behind a
    /// per-crack skew guard that falls back to the scalar loops where
    /// branches are predictable anyway.
    BranchFree,
    /// Explicit vector lanes (the `simd` module): AVX2/SSE4.2 compare +
    /// compress-permute partitions, vector residual scans, gathered
    /// overlay probes; falls back to the branch-free kernels where no
    /// vector path exists.
    Simd,
    /// Per-piece-size-band dispatch: every call consults the lazily
    /// calibrated band table ([`BAND_UPPER`]) with its piece length and
    /// runs that band's measured winner.
    Banded,
}

impl CrackKernel {
    /// Resolve `Banded` to the calibrated kernel for a piece of `len`
    /// tuples; concrete kernels pass through.
    #[inline]
    fn concrete(self, len: usize) -> CrackKernel {
        if self == CrackKernel::Banded {
            band_kernel(len)
        } else {
            self
        }
    }

    /// Two-way in-place partition of `vals[lo..hi]` (and the parallel
    /// `oids[lo..hi]`) around `key`; returns the absolute split position.
    /// All kernels produce the same split, the same per-piece multisets,
    /// and the same `moved` delta (2 per crossing pair — the number of
    /// tuples that were not already inside their destination piece, the
    /// paper's write accounting); the arrangement *within* each piece is
    /// kernel-specific, which cracking never observes.
    #[inline]
    pub fn crack_two<T: CrackValue>(
        self,
        vals: &mut [T],
        oids: &mut [u32],
        lo: usize,
        hi: usize,
        key: BoundaryKey<T>,
        moved: &mut u64,
    ) -> usize {
        match self.concrete(hi - lo) {
            CrackKernel::Scalar => crack::crack_two(vals, oids, lo, hi, key, moved),
            CrackKernel::BranchFree => crack_two_branchfree(vals, oids, lo, hi, key, moved),
            CrackKernel::Simd => match simd::crack_two(vals, oids, lo, hi, key, moved) {
                Some(split) => split,
                None => crack_two_branchfree(vals, oids, lo, hi, key, moved),
            },
            CrackKernel::Banded => unreachable!("concrete() never returns Banded"),
        }
    }

    /// Single-pass three-way partition of `vals[lo..hi]` around `k1 ≤ k2`;
    /// returns the absolute `(p1, p2)` split positions. All kernels
    /// produce the same splits and per-piece multisets; scalar and
    /// branch-free are additionally bit-identical (arrangement and swap
    /// `moved`), while the SIMD kernel reports the canonical
    /// destination-displacement `moved` (see the module docs).
    // Mirrors `crack::crack_three`'s signature plus the receiver.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn crack_three<T: CrackValue>(
        self,
        vals: &mut [T],
        oids: &mut [u32],
        lo: usize,
        hi: usize,
        k1: BoundaryKey<T>,
        k2: BoundaryKey<T>,
        moved: &mut u64,
    ) -> (usize, usize) {
        match self.concrete(hi - lo) {
            CrackKernel::Scalar => crack::crack_three(vals, oids, lo, hi, k1, k2, moved),
            CrackKernel::BranchFree => crack_three_branchfree(vals, oids, lo, hi, k1, k2, moved),
            CrackKernel::Simd => match simd::crack_three(vals, oids, lo, hi, k1, k2, moved) {
                Some(splits) => splits,
                None => crack_three_branchfree(vals, oids, lo, hi, k1, k2, moved),
            },
            CrackKernel::Banded => unreachable!("concrete() never returns Banded"),
        }
    }

    /// Append the absolute positions in `range` whose value matches `pred`
    /// — the residual scan over a cut-off border piece.
    #[inline]
    pub fn scan_into<T: CrackValue>(
        self,
        vals: &[T],
        range: Range<usize>,
        pred: &RangePred<T>,
        out: &mut Vec<usize>,
    ) {
        match self.concrete(range.len()) {
            CrackKernel::Scalar => {
                out.extend(range.filter(|&p| pred.matches(vals[p])));
            }
            CrackKernel::BranchFree => scan_branchfree(vals, range, pred, out),
            CrackKernel::Simd => {
                if !simd::scan_into(vals, range.clone(), pred, out) {
                    scan_branchfree(vals, range, pred, out);
                }
            }
            CrackKernel::Banded => unreachable!("concrete() never returns Banded"),
        }
    }

    /// Count how many of `oids` are present in the pending-delete set —
    /// the overlay discount applied to a selection's core range.
    #[inline]
    pub fn count_deleted(self, oids: &[u32], deleted: &OidSet) -> usize {
        match self.concrete(oids.len()) {
            CrackKernel::Scalar => oids.iter().filter(|&&o| deleted.contains(o)).count(),
            CrackKernel::BranchFree => {
                // Branch-free accumulation: the probe result is summed as
                // an integer instead of steering a filter branch.
                oids.iter().map(|&o| deleted.contains(o) as usize).sum()
            }
            CrackKernel::Simd => simd::count_deleted(oids, deleted)
                .unwrap_or_else(|| oids.iter().map(|&o| deleted.contains(o) as usize).sum()),
            CrackKernel::Banded => unreachable!("concrete() never returns Banded"),
        }
    }

    /// Invoke `emit` with the relative index of every OID in `oids` that
    /// is *not* pending deletion — the overlay filter behind
    /// `selection_oids` / `copy_selection_into`. The chunked path only
    /// engages when deletes are dense enough that the per-tuple "is it
    /// live?" branch would actually mispredict; against a sparse delete
    /// set that branch is almost never taken and predicted for free.
    /// The SIMD kernel shares the branch-free chunk walk: the per-hit
    /// `emit` callback dominates this loop, not the bitmap probe.
    #[inline]
    pub fn for_each_live(self, oids: &[u32], deleted: &OidSet, mut emit: impl FnMut(usize)) {
        // The sparse short-circuit needs no kernel at all — check it
        // before `concrete()` so an overlay walk never pays a lazy band
        // calibration just to take the scalar path anyway.
        let sparse = deleted.len() * 8 <= oids.len();
        if sparse || self.concrete(oids.len()) == CrackKernel::Scalar {
            for (i, &o) in oids.iter().enumerate() {
                if !deleted.contains(o) {
                    emit(i);
                }
            }
            return;
        }
        let mut base = 0usize;
        while base < oids.len() {
            let end = (base + LANES).min(oids.len());
            let mut mask = 0u64;
            for (lane, &o) in oids[base..end].iter().enumerate() {
                mask |= ((!deleted.contains(o)) as u64) << lane;
            }
            // Fully-live chunks emit straight through; the bit-walk only
            // runs for chunks that actually contain deleted tuples.
            if mask == u64::MAX && end - base == LANES {
                for p in base..end {
                    emit(p);
                }
            } else {
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    emit(base + lane);
                    mask &= mask - 1;
                }
            }
            base = end;
        }
    }
}

/// Two-way partitions below this size always take the scalar loop: the
/// skew probe and the predicated loop's fixed costs outweigh any branch
/// savings.
const BRANCHFREE_MIN: usize = 128;
/// Three-way partitions below this size always take the scalar sweep.
/// The predicated DNF's margin over the scalar sweep is much thinner
/// than cyclic Lomuto's (its swap targets and cursor advances stay on
/// the loop-carried dependency chain), so it only pays off once the
/// piece outgrows the cache-resident sizes where the scalar sweep's
/// misprediction recovery overlaps with its loads; below this floor the
/// scalar sweep is at worst comparable.
const THREE_WAY_MIN: usize = 32_768;
/// Upper bound on the number of values the skew guard samples (strided,
/// so the probe is O(`SKEW_SAMPLE`) regardless of piece size).
const SKEW_SAMPLE: usize = 512;

/// The skew guard's verdict: predication pays off only when the largest
/// output region is expected to stay under 7/8 of the piece; beyond
/// that, the scalar loop's branches are predicted nearly for free.
fn balanced(largest_region: usize, sampled: usize) -> bool {
    largest_region * 8 <= sampled * 7
}

/// Branch-free two-way partition with the skew guard (see the module
/// docs): balanced pieces take the branchless cyclic Lomuto, skewed or
/// tiny pieces fall back to the scalar Hoare loop. Either path reports
/// the canonical crossing-pair `moved` count.
fn crack_two_branchfree<T: CrackValue>(
    vals: &mut [T],
    oids: &mut [u32],
    lo: usize,
    hi: usize,
    key: BoundaryKey<T>,
    moved: &mut u64,
) -> usize {
    let len = hi - lo;
    if len >= BRANCHFREE_MIN {
        let stride = (len / SKEW_SAMPLE).max(1);
        let mut sampled = 0usize;
        let mut before = 0usize;
        let mut p = lo;
        while p < hi {
            before += key.before(vals[p]) as usize;
            sampled += 1;
            p += stride;
        }
        if balanced(before.max(sampled - before), sampled) {
            return if key.lte {
                lomuto_branchfree::<T, true>(vals, oids, lo, hi, key.value, moved)
            } else {
                lomuto_branchfree::<T, false>(vals, oids, lo, hi, key.value, moved)
            };
        }
    }
    crack::crack_two(vals, oids, lo, hi, key, moved)
}

/// The cyclic-Lomuto inner loop. `LTE` selects `≤ pivot` vs. `< pivot` as
/// the "belongs left" test at compile time.
///
/// The first pass counts the left population `c` branch-free (the final
/// split is `lo + c`, known before any tuple moves). The second pass
/// reads each element exactly once at a data-independent address,
/// unconditionally rotates the read/write pair (a self-assignment when
/// `write == read`), and advances `write` by the comparison result.
/// `moved` accumulates the canonical Hoare count — misplaced tuples in
/// the final left region (each pairs with one misplaced tuple on the
/// right, hence ×2) — evaluated against the original arrangement, which
/// the forward scan still observes: position `read` is never written
/// before iteration `read` reads it.
// One of the few places the workspace's no-unsafe rule is waived (the
// others are this module's sibling loop below and `crate::simd`): a
// ~15-line hot loop whose cursor invariants are stated in the SAFETY
// comment, pinned by the kernel-equivalence proptests, and whose bounds
// checks would otherwise sit on the critical path of every cold crack.
#[allow(unsafe_code)]
fn lomuto_branchfree<T: CrackValue, const LTE: bool>(
    vals: &mut [T],
    oids: &mut [u32],
    lo: usize,
    hi: usize,
    pivot: T,
    moved: &mut u64,
) -> usize {
    debug_assert!(lo <= hi && hi <= vals.len());
    debug_assert_eq!(vals.len(), oids.len());
    let before = |v: T| -> bool {
        if LTE {
            v <= pivot
        } else {
            v < pivot
        }
    };
    let mut c = 0usize;
    for &v in &vals[lo..hi] {
        c += before(v) as usize;
    }
    let split = lo + c;
    let mut write = lo;
    let mut misplaced = 0u64;
    // SAFETY: `write <= read < hi <= vals.len() == oids.len()` throughout:
    // `read` is the loop variable and `write` only advances by 0 or 1 per
    // iteration starting from `lo`.
    unsafe {
        let vp = vals.as_mut_ptr();
        let op = oids.as_mut_ptr();
        for read in lo..hi {
            let v = *vp.add(read);
            let o = *op.add(read);
            *vp.add(read) = *vp.add(write);
            *op.add(read) = *op.add(write);
            *vp.add(write) = v;
            *op.add(write) = o;
            let b = before(v) as usize;
            misplaced += (((read < split) as usize) & (1 - b)) as u64;
            write += b;
        }
    }
    debug_assert_eq!(write, split);
    *moved += 2 * misplaced;
    split
}

/// Branch-free three-way partition with the skew guard: balanced pieces
/// take the predicated Dutch-national-flag sweep, skewed or tiny pieces
/// fall back to the scalar sweep. The two sweeps are trace-identical, so
/// the choice never shows in the output.
fn crack_three_branchfree<T: CrackValue>(
    vals: &mut [T],
    oids: &mut [u32],
    lo: usize,
    hi: usize,
    k1: BoundaryKey<T>,
    k2: BoundaryKey<T>,
    moved: &mut u64,
) -> (usize, usize) {
    let len = hi - lo;
    if len >= THREE_WAY_MIN {
        let stride = (len / SKEW_SAMPLE).max(1);
        let mut sampled = 0usize;
        let mut c1 = 0usize;
        let mut c3 = 0usize;
        let mut p = lo;
        while p < hi {
            let v = vals[p];
            c1 += k1.before(v) as usize;
            c3 += !k2.before(v) as usize;
            sampled += 1;
            p += stride;
        }
        let largest = c1.max(c3).max(sampled - c1 - c3);
        if balanced(largest, sampled) {
            return dnf_predicated(vals, oids, lo, hi, k1, k2, moved);
        }
    }
    crack::crack_three(vals, oids, lo, hi, k1, k2, moved)
}

/// Predicated Dutch-national-flag sweep: the three-way case split becomes
/// two flags and a mask-selected swap target (`lt`, `gt`, or a self-swap
/// at `i`). Performs the same swaps in the same order as
/// [`crack::crack_three`], so its output is bit-identical to the scalar
/// kernel's.
// See `lomuto_branchfree` for the rationale behind the waiver.
#[allow(unsafe_code)]
fn dnf_predicated<T: CrackValue>(
    vals: &mut [T],
    oids: &mut [u32],
    lo: usize,
    hi: usize,
    k1: BoundaryKey<T>,
    k2: BoundaryKey<T>,
    moved: &mut u64,
) -> (usize, usize) {
    debug_assert!(lo <= hi && hi <= vals.len());
    debug_assert_eq!(vals.len(), oids.len());
    debug_assert!(k1 <= k2, "boundaries must be ordered");
    let mut lt = lo;
    let mut i = lo;
    let mut gt = hi;
    let mut swapped = 0u64;
    // SAFETY: `lo <= lt <= i < gt <= hi <= len` throughout (`gt` is only
    // decremented while `i < gt`), and the swap target `t` is one of
    // `lt`, `gt`, `i` — all within `lo..hi`.
    unsafe {
        let vp = vals.as_mut_ptr();
        let op = oids.as_mut_ptr();
        while i < gt {
            let v = *vp.add(i);
            // `a` and `b` are mutually exclusive: k1 ≤ k2, so a value
            // before k1 is also before k2.
            let a = k1.before(v) as usize;
            let b = !k2.before(v) as usize;
            gt -= b;
            let am = a.wrapping_neg();
            let bm = b.wrapping_neg();
            let t = (lt & am) | (gt & bm) | (i & !(am | bm));
            // Swap positions i and t (t == i in the middle case).
            let tv = *vp.add(t);
            let to = *op.add(t);
            *vp.add(t) = v;
            *op.add(t) = *op.add(i);
            *vp.add(i) = tv;
            *op.add(i) = to;
            swapped += (t != i) as u64;
            lt += a;
            i += 1 - b;
        }
    }
    *moved += 2 * swapped;
    (lt, gt)
}

/// Chunked bitmask scan: evaluate the predicate branch-free over 64-tuple
/// chunks, then walk the set bits. Emits the same positions in the same
/// order as a scalar filter.
fn scan_branchfree<T: CrackValue>(
    vals: &[T],
    range: Range<usize>,
    pred: &RangePred<T>,
    out: &mut Vec<usize>,
) {
    // Express the bounds as boundary keys so each test is one comparison:
    // matched ⇔ !lo_key.before(v) (at/after the lower bound) and
    // hi_key.before(v) (strictly inside the upper bound).
    let lo_key = pred.low.map(|b| {
        if b.inclusive {
            BoundaryKey::lt(b.value)
        } else {
            BoundaryKey::le(b.value)
        }
    });
    let hi_key = pred.high.map(|b| {
        if b.inclusive {
            BoundaryKey::le(b.value)
        } else {
            BoundaryKey::lt(b.value)
        }
    });
    let mut base = range.start;
    while base < range.end {
        let end = (base + LANES).min(range.end);
        let mut mask = 0u64;
        for (lane, &v) in vals[base..end].iter().enumerate() {
            let in_lo = lo_key.is_none_or(|k| !k.before(v));
            let in_hi = hi_key.is_none_or(|k| k.before(v));
            mask |= ((in_lo & in_hi) as u64) << lane;
        }
        while mask != 0 {
            let lane = mask.trailing_zeros() as usize;
            out.push(base + lane);
            mask &= mask - 1;
        }
        base = end;
    }
}

/// Resolve `KernelPolicy::Auto`: environment override first, then the
/// per-band calibration table.
fn auto_kernel() -> CrackKernel {
    static CHOICE: OnceLock<CrackKernel> = OnceLock::new();
    *CHOICE.get_or_init(|| match env_override() {
        Some(k) => k,
        None => CrackKernel::Banded,
    })
}

/// Parse the `CRACKER_KERNEL` environment variable. Unknown values fall
/// through to the band table (with a one-time note on stderr) rather
/// than aborting the process.
fn env_override() -> Option<CrackKernel> {
    let raw = std::env::var("CRACKER_KERNEL").ok()?;
    match raw.to_ascii_lowercase().as_str() {
        "scalar" => Some(CrackKernel::Scalar),
        "branchfree" | "branch-free" | "branch_free" => Some(CrackKernel::BranchFree),
        // Forced SIMD degrades gracefully where no vector tier exists —
        // CI forces this on heterogeneous runners.
        "simd" => Some(KernelPolicy::Simd.resolve()),
        "banded" => Some(CrackKernel::Banded),
        other => {
            eprintln!(
                "cracker_core: ignoring unrecognized CRACKER_KERNEL value {other:?} \
                 (expected \"scalar\", \"branchfree\", \"simd\", or \"banded\"); \
                 using the band table instead"
            );
            None
        }
    }
}

/// Upper bounds (in tuples, inclusive) of the first three piece-size
/// bands of the calibration table; pieces larger than the last bound
/// form the fourth band. The boundaries track the cache hierarchy a
/// 64-bit column walks: a ≤4k-tuple piece is L1/L2-resident (scalar
/// branches recover fast), ≤32k straddles L2, ≤256k lives in L3, and
/// larger pieces stream from memory — exactly where vector lanes pay.
pub const BAND_UPPER: [usize; 3] = [4_096, 32_768, 262_144];

/// Representative probe length per band (roughly each band's geometric
/// midpoint; the last probes past the final boundary, far enough to
/// leave the cache-resident regime but small enough that the lazy
/// calibration stall on the first large crack stays bounded).
const BAND_PROBE_N: [usize; 4] = [2_048, 16_384, 131_072, 393_216];

/// Timed repetitions per kernel and band; the minimum is compared.
/// Small probes get an extra round because a branch predictor can
/// partially memorize a small buffer's outcome sequence across rounds;
/// at the large-band sizes that effect vanishes and fewer rounds keep
/// the one-time calibration stall short.
fn calibration_rounds(probe_n: usize) -> usize {
    if probe_n >= 131_072 {
        2
    } else {
        3
    }
}

/// The band index for a piece of `len` tuples.
fn band_of(len: usize) -> usize {
    BAND_UPPER
        .iter()
        .position(|&b| len <= b)
        .unwrap_or(BAND_UPPER.len())
}

/// The calibrated kernel for a piece of `len` tuples: lazily probes the
/// piece's band on first use and caches the winner process-wide.
fn band_kernel(len: usize) -> CrackKernel {
    static TABLE: [OnceLock<CrackKernel>; 4] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    let band = band_of(len);
    *TABLE[band].get_or_init(|| calibrate_band(band))
}

/// An `n`-element pseudo-random buffer (xorshift64: deterministic,
/// dependency-free). Each round uses a fresh seed — a modern branch
/// predictor memorizes the outcome sequence of a small buffer it has
/// seen before, which would flatter the scalar kernel with a prediction
/// accuracy no real cold crack gets.
fn calibration_data(n: usize, seed: u64) -> Vec<i64> {
    let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ seed.wrapping_mul(0xD1B5_4A32_D192_ED03);
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 16) as i64
        })
        .collect()
}

/// Probe one band: every available kernel cracks fresh pseudo-random
/// buffers of the band's representative size in two around the median —
/// the worst-case ~50% branch pattern a cold crack produces — and the
/// fastest minimum wins. The two-way partition is the probe because it
/// is both the most frequent crack (every resolved boundary after the
/// first) and the loop where the kernels differ most.
fn calibrate_band(band: usize) -> CrackKernel {
    let n = BAND_PROBE_N[band];
    // Values are uniform in [0, 2^48): 2^47 is the median split.
    let key = BoundaryKey::lt(1i64 << 47);
    let time = |kernel: CrackKernel| -> u128 {
        let mut best = u128::MAX;
        for round in 0..calibration_rounds(n) {
            let mut vals = calibration_data(n, (band * 8 + round) as u64);
            let mut oids: Vec<u32> = (0..n as u32).collect();
            let mut moved = 0u64;
            let start = std::time::Instant::now();
            let split = kernel.crack_two(&mut vals, &mut oids, 0, n, key, &mut moved);
            let elapsed = start.elapsed().as_nanos();
            std::hint::black_box((split, vals, oids, moved));
            best = best.min(elapsed);
        }
        best
    };
    let mut winner = CrackKernel::Scalar;
    let mut best = time(CrackKernel::Scalar);
    let mut candidates = vec![CrackKernel::BranchFree];
    if simd::available() {
        candidates.push(CrackKernel::Simd);
    }
    for k in candidates {
        let t = time(k);
        if t < best {
            best = t;
            winner = k;
        }
    }
    winner
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const KERNELS: [CrackKernel; 4] = [
        CrackKernel::Scalar,
        CrackKernel::BranchFree,
        CrackKernel::Simd,
        CrackKernel::Banded,
    ];

    fn keys(a: i64, lte1: bool, b: i64, lte2: bool) -> (BoundaryKey<i64>, BoundaryKey<i64>) {
        let mut k1 = BoundaryKey {
            value: a,
            lte: lte1,
        };
        let mut k2 = BoundaryKey {
            value: b,
            lte: lte2,
        };
        if k1 > k2 {
            std::mem::swap(&mut k1, &mut k2);
        }
        (k1, k2)
    }

    #[test]
    fn policies_resolve() {
        assert_eq!(KernelPolicy::Scalar.resolve(), CrackKernel::Scalar);
        assert_eq!(KernelPolicy::BranchFree.resolve(), CrackKernel::BranchFree);
        assert_eq!(KernelPolicy::Banded.resolve(), CrackKernel::Banded);
        // Forced SIMD resolves to the vector kernel exactly where a
        // vector tier exists, and degrades to branch-free elsewhere.
        let expect_simd = if simd_supported() {
            CrackKernel::Simd
        } else {
            CrackKernel::BranchFree
        };
        assert_eq!(KernelPolicy::Simd.resolve(), expect_simd);
        // Auto resolves to *some* kernel and is stable across calls
        // (which kernel depends on the CRACKER_KERNEL env override CI
        // legs set).
        assert_eq!(KernelPolicy::Auto.resolve(), KernelPolicy::Auto.resolve());
        assert_eq!(KernelPolicy::default(), KernelPolicy::Auto);
    }

    #[test]
    fn bands_partition_the_size_axis() {
        assert_eq!(band_of(0), 0);
        assert_eq!(band_of(4_095), 0);
        assert_eq!(band_of(4_096), 0);
        assert_eq!(band_of(4_097), 1);
        assert_eq!(band_of(32_768), 1);
        assert_eq!(band_of(32_769), 2);
        assert_eq!(band_of(262_144), 2);
        assert_eq!(band_of(262_145), 3);
        assert_eq!(band_of(usize::MAX), 3);
    }

    #[test]
    fn band_calibration_is_lazy_and_stable() {
        // Each band resolves to a concrete kernel and keeps resolving to
        // the same one.
        for len in [100, 5_000, 100_000, 500_000] {
            let k = band_kernel(len);
            assert!(
                matches!(
                    k,
                    CrackKernel::Scalar | CrackKernel::BranchFree | CrackKernel::Simd
                ),
                "band winner must be concrete, got {k:?}"
            );
            assert_eq!(k, band_kernel(len));
        }
    }

    #[test]
    fn calibration_picks_a_kernel_without_panicking() {
        for band in 0..2 {
            let k = calibrate_band(band);
            assert!(KERNELS.contains(&k) && k != CrackKernel::Banded);
        }
    }

    #[test]
    fn branchfree_crack_two_known_case() {
        let mut vals = vec![5i64, 1, 9, 3, 7];
        let mut oids: Vec<u32> = (0..5).collect();
        let mut moved = 0;
        let p = CrackKernel::BranchFree.crack_two(
            &mut vals,
            &mut oids,
            0,
            5,
            BoundaryKey::lt(5),
            &mut moved,
        );
        assert_eq!(p, 2);
        assert!(vals[..p].iter().all(|&v| v < 5));
        assert!(vals[p..].iter().all(|&v| v >= 5));
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(v, [5i64, 1, 9, 3, 7][oids[i] as usize]);
        }
    }

    #[test]
    fn branchfree_crack_three_known_case() {
        let mut vals = vec![9i64, 3, 1, 7, 5, 2, 8];
        let mut oids: Vec<u32> = (0..7).collect();
        let mut moved = 0;
        let (p1, p2) = CrackKernel::BranchFree.crack_three(
            &mut vals,
            &mut oids,
            0,
            7,
            BoundaryKey::lt(3),
            BoundaryKey::le(7),
            &mut moved,
        );
        assert_eq!((p1, p2), (2, 5));
        assert!(vals[..p1].iter().all(|&v| v < 3));
        assert!(vals[p1..p2].iter().all(|&v| (3..=7).contains(&v)));
        assert!(vals[p2..].iter().all(|&v| v > 7));
    }

    #[test]
    fn predicated_paths_engage_on_large_balanced_pieces() {
        // Large enough for the skew guard (≥ BRANCHFREE_MIN) and dead
        // balanced, so the predicated loops run; the contract must hold
        // against the scalar kernels. The SIMD and Banded kernels ride
        // the same loop (crack_two `moved` is canonical family-wide).
        let n = 4 * BRANCHFREE_MIN;
        let vals: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % n as i64).collect();
        let key = BoundaryKey::lt(n as i64 / 2);
        let mut results = Vec::new();
        for k in KERNELS {
            let mut v = vals.clone();
            let mut o: Vec<u32> = (0..n as u32).collect();
            let mut moved = 0u64;
            let p = k.crack_two(&mut v, &mut o, 0, n, key, &mut moved);
            assert!(v[..p].iter().all(|&x| key.before(x)));
            assert!(v[p..].iter().all(|&x| !key.before(x)));
            for (i, &oid) in o.iter().enumerate() {
                assert_eq!(v[i], vals[oid as usize], "oids must travel");
            }
            results.push((p, moved));
        }
        for r in &results[1..] {
            assert_eq!(&results[0], r, "split/moved contract diverged");
        }

        // Above the three-way floor, the predicated DNF engages; the
        // scalar/branch-free pair stays bit-identical.
        let n = 2 * THREE_WAY_MIN;
        let vals: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % n as i64).collect();
        let (k1, k2) = (
            BoundaryKey::lt(n as i64 / 3),
            BoundaryKey::le(2 * n as i64 / 3),
        );
        let mut results = Vec::new();
        for k in [CrackKernel::Scalar, CrackKernel::BranchFree] {
            let mut v = vals.clone();
            let mut o: Vec<u32> = (0..n as u32).collect();
            let mut moved = 0u64;
            let (p1, p2) = k.crack_three(&mut v, &mut o, 0, n, k1, k2, &mut moved);
            results.push((p1, p2, moved, v, o));
        }
        // The three-way sweeps are trace-identical: everything matches.
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn skew_guard_falls_back_without_breaking_the_contract() {
        // A 99%-skewed split: the guard routes to the scalar loop; the
        // answer must be indistinguishable either way.
        let n = 8 * BRANCHFREE_MIN;
        let vals: Vec<i64> = (0..n as i64).map(|i| (i * 31) % n as i64).collect();
        let key = BoundaryKey::lt(n as i64 / 100);
        let mut results = Vec::new();
        for k in KERNELS {
            let mut v = vals.clone();
            let mut o: Vec<u32> = (0..n as u32).collect();
            let mut moved = 0u64;
            let p = k.crack_two(&mut v, &mut o, 0, n, key, &mut moved);
            assert!(v[..p].iter().all(|&x| key.before(x)));
            results.push((p, moved));
        }
        for r in &results[1..] {
            assert_eq!(&results[0], r);
        }
    }

    #[test]
    fn branchfree_scan_matches_scalar_on_chunk_boundaries() {
        // Lengths straddling the 64-lane chunk size, including exactly 64.
        for n in [0usize, 1, 63, 64, 65, 130] {
            let vals: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 100).collect();
            let pred = RangePred::between(20, 60);
            let mut scalar = Vec::new();
            CrackKernel::Scalar.scan_into(&vals, 0..n, &pred, &mut scalar);
            for k in &KERNELS[1..] {
                let mut got = Vec::new();
                k.scan_into(&vals, 0..n, &pred, &mut got);
                assert_eq!(scalar, got, "n = {n}, kernel {k:?}");
            }
        }
    }

    #[test]
    fn overlay_kernels_agree() {
        let mut set = OidSet::new();
        for oid in [3u32, 64, 65, 200] {
            set.insert(oid);
        }
        let oids: Vec<u32> = (0..300).collect();
        for k in KERNELS {
            assert_eq!(k.count_deleted(&oids, &set), 4);
            let mut live = Vec::new();
            k.for_each_live(&oids, &set, |i| live.push(i));
            assert_eq!(live.len(), 296);
            assert!(!live.contains(&3));
            assert!(!live.contains(&200));
        }
    }

    /// The canonical destination-displacement count for a three-way
    /// partition of `vals[lo..hi)`: tuples whose original position lies
    /// outside the region their class ends up in.
    fn displaced_oracle(
        vals: &[i64],
        lo: usize,
        hi: usize,
        k1: BoundaryKey<i64>,
        k2: BoundaryKey<i64>,
        p1: usize,
        p2: usize,
    ) -> u64 {
        let mut displaced = 0u64;
        for (pos, &v) in vals.iter().enumerate().take(hi).skip(lo) {
            let in_region = if k1.before(v) {
                pos < p1
            } else if !k2.before(v) {
                pos >= p2
            } else {
                (p1..p2).contains(&pos)
            };
            displaced += !in_region as u64;
        }
        displaced
    }

    proptest! {
        /// The core pin for the two-way partition: identical split
        /// position, identical per-piece multisets, identical `moved`
        /// accounting — and OIDs still travel with their values — across
        /// the whole kernel family. (The arrangement *within* a piece is
        /// kernel-specific by design.)
        #[test]
        fn prop_crack_two_kernels_share_the_contract(
            vals in proptest::collection::vec(-50i64..50, 0..300),
            pivot in -60i64..60,
            lte in proptest::bool::ANY,
            lo_frac in 0.0f64..1.0,
            hi_frac in 0.0f64..1.0,
        ) {
            let n = vals.len();
            let (mut lo, mut hi) = (
                (lo_frac * n as f64) as usize,
                (hi_frac * n as f64) as usize,
            );
            if lo > hi { std::mem::swap(&mut lo, &mut hi); }
            let key = if lte { BoundaryKey::le(pivot) } else { BoundaryKey::lt(pivot) };
            let mut results = Vec::new();
            for k in KERNELS {
                let mut v = vals.clone();
                let mut o: Vec<u32> = (0..n as u32).collect();
                let mut moved = 0u64;
                let p = k.crack_two(&mut v, &mut o, lo, hi, key, &mut moved);
                prop_assert!(v[lo..p].iter().all(|&x| key.before(x)));
                prop_assert!(v[p..hi].iter().all(|&x| !key.before(x)));
                // OIDs travelled with their values, and untouched slots
                // outside lo..hi stayed put.
                for (i, &oid) in o.iter().enumerate() {
                    prop_assert_eq!(v[i], vals[oid as usize]);
                    if i < lo || i >= hi {
                        prop_assert_eq!(oid as usize, i);
                    }
                }
                let mut left: Vec<i64> = v[lo..p].to_vec();
                let mut right: Vec<i64> = v[p..hi].to_vec();
                left.sort_unstable();
                right.sort_unstable();
                results.push((p, moved, left, right));
            }
            for r in &results[1..] {
                prop_assert_eq!(&results[0], r);
            }
        }

        /// Large pieces drive the vector two-way partition through its
        /// full structure (buffered registers, bidirectional reads,
        /// odd tails): split, moved, multisets, and OID travel must
        /// match the scalar kernel exactly.
        #[test]
        fn prop_simd_crack_two_matches_scalar_on_large_pieces(
            seed in 0u64..1000,
            n in 64usize..800,
            pivot_frac in 0.0f64..1.0,
            lte in proptest::bool::ANY,
        ) {
            let vals = calibration_data(n, seed);
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            let pivot = sorted[((pivot_frac * (n - 1) as f64) as usize).min(n - 1)];
            let key = if lte { BoundaryKey::le(pivot) } else { BoundaryKey::lt(pivot) };
            let mut results = Vec::new();
            for k in [CrackKernel::Scalar, CrackKernel::Simd] {
                let mut v = vals.clone();
                let mut o: Vec<u32> = (0..n as u32).collect();
                let mut moved = 0u64;
                let p = k.crack_two(&mut v, &mut o, 0, n, key, &mut moved);
                prop_assert!(v[..p].iter().all(|&x| key.before(x)));
                prop_assert!(v[p..].iter().all(|&x| !key.before(x)));
                for (i, &oid) in o.iter().enumerate() {
                    prop_assert_eq!(v[i], vals[oid as usize]);
                }
                let mut left: Vec<i64> = v[..p].to_vec();
                left.sort_unstable();
                results.push((p, moved, left));
            }
            prop_assert_eq!(&results[0], &results[1]);
        }

        /// The predicated DNF itself, driven directly (the public entry
        /// point's skew guard routes small inputs to the scalar sweep,
        /// which would make this a scalar-vs-scalar comparison): on any
        /// input — duplicate-heavy, boundary-equal values, all four
        /// inclusivity combinations — it must be trace-identical to the
        /// scalar sweep.
        #[test]
        fn prop_dnf_predicated_is_trace_identical_to_scalar(
            vals in proptest::collection::vec(-10i64..10, 0..400),
            a in -12i64..12,
            b in -12i64..12,
            lte1 in proptest::bool::ANY,
            lte2 in proptest::bool::ANY,
        ) {
            let n = vals.len();
            let (k1, k2) = keys(a, lte1, b, lte2);
            let mut sv = vals.clone();
            let mut so: Vec<u32> = (0..n as u32).collect();
            let mut sm = 0u64;
            let scalar = crack::crack_three(&mut sv, &mut so, 0, n, k1, k2, &mut sm);
            let mut bv = vals.clone();
            let mut bo: Vec<u32> = (0..n as u32).collect();
            let mut bm = 0u64;
            let bf = dnf_predicated(&mut bv, &mut bo, 0, n, k1, k2, &mut bm);
            prop_assert_eq!(scalar, bf, "split pair diverged");
            prop_assert_eq!(sv, bv, "arrangement diverged");
            prop_assert_eq!(so, bo, "oids diverged");
            prop_assert_eq!(sm, bm, "moved diverged");
        }

        /// The three-way partition across the whole family: identical
        /// splits and per-region multisets everywhere; the scalar and
        /// branch-free sweeps additionally bit-identical (arrangement
        /// and swap-count `moved`).
        #[test]
        fn prop_crack_three_kernels_share_observables(
            vals in proptest::collection::vec(-50i64..50, 0..300),
            a in -60i64..60,
            b in -60i64..60,
            lte1 in proptest::bool::ANY,
            lte2 in proptest::bool::ANY,
        ) {
            let n = vals.len();
            let (k1, k2) = keys(a, lte1, b, lte2);
            let mut traces = Vec::new();
            let mut observables = Vec::new();
            for k in KERNELS {
                let mut v = vals.clone();
                let mut o: Vec<u32> = (0..n as u32).collect();
                let mut moved = 0u64;
                let (p1, p2) = k.crack_three(&mut v, &mut o, 0, n, k1, k2, &mut moved);
                prop_assert!(p1 <= p2);
                prop_assert!(v[..p1].iter().all(|&x| k1.before(x)));
                prop_assert!(v[p1..p2].iter().all(|&x| !k1.before(x) && k2.before(x)));
                prop_assert!(v[p2..].iter().all(|&x| !k2.before(x)));
                for (i, &oid) in o.iter().enumerate() {
                    prop_assert_eq!(v[i], vals[oid as usize]);
                }
                let mut regions: Vec<Vec<i64>> =
                    vec![v[..p1].to_vec(), v[p1..p2].to_vec(), v[p2..].to_vec()];
                for r in &mut regions { r.sort_unstable(); }
                observables.push((p1, p2, regions));
                if matches!(k, CrackKernel::Scalar | CrackKernel::BranchFree) {
                    traces.push((v, o, moved));
                }
            }
            for obs in &observables[1..] {
                prop_assert_eq!(&observables[0], obs, "splits/multisets diverged");
            }
            prop_assert_eq!(&traces[0], &traces[1], "scalar/branch-free traces diverged");
        }

        /// The vector three-way partition, driven directly at sizes that
        /// clear its floor: splits and multisets match scalar, and its
        /// `moved` equals the destination-displacement oracle.
        #[test]
        fn prop_simd_crack_three_moved_is_the_displacement_count(
            seed in 0u64..1000,
            n in 64usize..600,
            fa in 0.0f64..1.0,
            fb in 0.0f64..1.0,
            lte1 in proptest::bool::ANY,
            lte2 in proptest::bool::ANY,
        ) {
            let vals = calibration_data(n, seed ^ 0xC0FFEE);
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            let (va, vb) = (
                sorted[((fa * (n - 1) as f64) as usize).min(n - 1)],
                sorted[((fb * (n - 1) as f64) as usize).min(n - 1)],
            );
            let (k1, k2) = keys(va, lte1, vb, lte2);
            let mut sv = vals.clone();
            let mut so: Vec<u32> = (0..n as u32).collect();
            let mut sm = 0u64;
            let scalar = crack::crack_three(&mut sv, &mut so, 0, n, k1, k2, &mut sm);
            let mut xv = vals.clone();
            let mut xo: Vec<u32> = (0..n as u32).collect();
            let mut xm = 0u64;
            // Drive the vector path directly; on hosts without AVX2 the
            // dispatch returns None and there is nothing to pin.
            if let Some((p1, p2)) = simd::crack_three(&mut xv, &mut xo, 0, n, k1, k2, &mut xm) {
                prop_assert_eq!(scalar, (p1, p2), "split pair diverged");
                prop_assert_eq!(
                    xm,
                    displaced_oracle(&vals, 0, n, k1, k2, p1, p2),
                    "SIMD three-way moved must be the displacement count"
                );
                for (i, &oid) in xo.iter().enumerate() {
                    prop_assert_eq!(xv[i], vals[oid as usize]);
                }
                for (a, b) in [(0, p1), (p1, p2), (p2, n)] {
                    let mut got: Vec<i64> = xv[a..b].to_vec();
                    let mut want: Vec<i64> = sv[a..b].to_vec();
                    got.sort_unstable();
                    want.sort_unstable();
                    prop_assert_eq!(got, want, "region multiset diverged");
                }
            }
        }

        /// Scan kernels emit identical position lists for arbitrary
        /// predicates (one-sided, empty, inverted) across the family.
        #[test]
        fn prop_scan_kernels_agree(
            vals in proptest::collection::vec(-50i64..50, 0..200),
            lo in proptest::option::of((-60i64..60, proptest::bool::ANY)),
            hi in proptest::option::of((-60i64..60, proptest::bool::ANY)),
        ) {
            let pred = RangePred::with_bounds(lo, hi);
            let n = vals.len();
            let mut scalar = Vec::new();
            CrackKernel::Scalar.scan_into(&vals, 0..n, &pred, &mut scalar);
            for k in &KERNELS[1..] {
                let mut got = Vec::new();
                k.scan_into(&vals, 0..n, &pred, &mut got);
                prop_assert_eq!(&scalar, &got, "kernel {:?}", k);
            }
        }

        /// The vector scan at sizes above its floor, where the 4-lane
        /// compare masks actually run.
        #[test]
        fn prop_simd_scan_matches_scalar_on_large_pieces(
            seed in 0u64..1000,
            n in 64usize..500,
            lo in proptest::option::of((0.0f64..1.0, proptest::bool::ANY)),
            hi in proptest::option::of((0.0f64..1.0, proptest::bool::ANY)),
        ) {
            let vals = calibration_data(n, seed ^ 0x5CA7);
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            let pick = |f: f64| sorted[((f * (n - 1) as f64) as usize).min(n - 1)];
            let pred = RangePred::with_bounds(
                lo.map(|(f, inc)| (pick(f), inc)),
                hi.map(|(f, inc)| (pick(f), inc)),
            );
            let mut scalar = Vec::new();
            CrackKernel::Scalar.scan_into(&vals, 0..n, &pred, &mut scalar);
            let mut got = Vec::new();
            CrackKernel::Simd.scan_into(&vals, 0..n, &pred, &mut got);
            prop_assert_eq!(scalar, got);
        }

        /// Overlay kernels agree on arbitrary delete sets across the
        /// family.
        #[test]
        fn prop_overlay_kernels_agree(
            oids in proptest::collection::vec(0u32..500, 0..300),
            dels in proptest::collection::vec(0u32..500, 0..100),
        ) {
            let mut set = OidSet::new();
            for d in dels { set.insert(d); }
            let scalar_count = CrackKernel::Scalar.count_deleted(&oids, &set);
            let mut scalar_live = Vec::new();
            CrackKernel::Scalar.for_each_live(&oids, &set, |i| scalar_live.push(i));
            prop_assert_eq!(scalar_live.len() + scalar_count, oids.len());
            for k in &KERNELS[1..] {
                prop_assert_eq!(k.count_deleted(&oids, &set), scalar_count, "kernel {:?}", k);
                let mut live = Vec::new();
                k.for_each_live(&oids, &set, |i| live.push(i));
                prop_assert_eq!(&scalar_live, &live, "kernel {:?}", k);
            }
        }

        /// The gathered overlay probe at sizes above its floor, with
        /// OIDs far beyond the bitmap so the gather's bounds mask is
        /// exercised.
        #[test]
        fn prop_simd_count_deleted_matches_scalar_on_large_sets(
            n in 64usize..400,
            dels in proptest::collection::vec(0u32..2000, 0..400),
            stride in 1u32..17,
        ) {
            let mut set = OidSet::new();
            for d in dels { set.insert(d); }
            let oids: Vec<u32> = (0..n as u32).map(|i| i * stride).collect();
            prop_assert_eq!(
                CrackKernel::Simd.count_deleted(&oids, &set),
                CrackKernel::Scalar.count_deleted(&oids, &set)
            );
        }
    }
}
