//! Updates on a cracked column.
//!
//! "What are the effects of updates on the scheme proposed?" is one of the
//! open questions of §2.2. We adopt the approach the paper's BAT layout
//! already hints at (Figure 7 shows dedicated `inserted` and `deleted`
//! areas): updates are staged in pending areas that every select consults,
//! and a **merge** folds them into the cracked store when the staging area
//! exceeds a threshold. The merge re-buckets every live tuple into its
//! piece — an `O(n log p)` rewrite that preserves all existing boundaries,
//! so the investment in cracking survives the update burst.

use crate::column::CrackerColumn;
use crate::crack::BoundaryKey;
use crate::pred::RangePred;
use crate::value_trait::CrackValue;

/// A set of OIDs backed by a growable bitmap: one bit per OID, so
/// membership is a single O(1) word probe with no hashing — the
/// representation behind the pending-delete overlay, where `select`
/// probes once per tuple in its core range and a hash probe per element
/// dominated the overlay cost.
///
/// OIDs are caller-supplied and only *conventionally* dense, so the
/// bitmap is not allowed to balloon on an outlier: it grows only while
/// the requested word stays near the already-allocated prefix (within
/// double the current size plus a fixed slack). Members beyond that —
/// e.g. one delete of a huge surrogate OID — go to a sparse side set,
/// keeping memory proportional to the dense cluster actually in use
/// rather than to `max_oid / 8`.
#[derive(Debug, Clone, Default)]
pub struct OidSet {
    /// Bit `oid % 64` of `words[oid / 64]` marks membership of the dense
    /// prefix.
    words: Vec<u64>,
    /// Outlier members the growth rule kept out of the bitmap.
    sparse: std::collections::HashSet<u32>,
    /// Number of distinct members (both representations).
    len: usize,
}

/// Fixed headroom (in 64-bit words) the bitmap may grow past its current
/// end in one step: 1024 words = 64k OIDs = 8 KiB.
const DENSE_SLACK_WORDS: usize = 1024;

impl OidSet {
    /// An empty set.
    pub fn new() -> Self {
        OidSet::default()
    }

    /// Add `oid`; returns `true` when it was not yet a member.
    pub fn insert(&mut self, oid: u32) -> bool {
        let (w, bit) = (oid as usize / 64, 1u64 << (oid % 64));
        if w >= self.words.len() {
            if w > self.words.len() * 2 + DENSE_SLACK_WORDS {
                // Far beyond the dense prefix: spill to the side set
                // instead of zero-filling megabytes of bitmap.
                let fresh = self.sparse.insert(oid);
                self.len += fresh as usize;
                return fresh;
            }
            self.words.resize(w + 1, 0);
        }
        // The bitmap may have grown over a word whose OID sits in the
        // side set; migrate it so each member lives in one place.
        if !self.sparse.is_empty() && self.sparse.remove(&oid) {
            self.words[w] |= bit;
            return false;
        }
        let fresh = self.words[w] & bit == 0;
        self.words[w] |= bit;
        self.len += fresh as usize;
        fresh
    }

    /// Is `oid` a member? One bounds check plus one word probe; the
    /// sparse side set is consulted only when it is non-empty.
    #[inline(always)]
    pub fn contains(&self, oid: u32) -> bool {
        let w = oid as usize / 64;
        (w < self.words.len() && self.words[w] & (1 << (oid % 64)) != 0)
            || (!self.sparse.is_empty() && self.sparse.contains(&oid))
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// The dense bitmap words (bit `oid % 64` of `words[oid / 64]`) —
    /// gathered directly by the SIMD overlay probe.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// True when any member lives in the sparse side set: the SIMD
    /// overlay probe only covers the dense bitmap and must fall back.
    pub(crate) fn has_sparse(&self) -> bool {
        !self.sparse.is_empty()
    }

    /// True when no OID is a member.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate all members in unspecified order — the export path for
    /// checkpointing the pending-delete overlay.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let dense = self.words.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |bit| bits & (1u64 << bit) != 0)
                .map(move |bit| (w * 64 + bit) as u32)
        });
        dense.chain(self.sparse.iter().copied())
    }
}

/// Staging areas for not-yet-merged updates.
#[derive(Debug, Clone, Default)]
pub struct PendingUpdates<T> {
    /// Inserted `(oid, value)` pairs, not yet in the cracked area.
    inserts: Vec<(u32, T)>,
    /// OIDs pending deletion from the cracked area.
    deletes: OidSet,
}

impl<T: CrackValue> PendingUpdates<T> {
    /// Empty staging areas.
    pub fn new() -> Self {
        PendingUpdates {
            inserts: Vec::new(),
            deletes: OidSet::new(),
        }
    }

    /// Stage an insert.
    pub fn stage_insert(&mut self, oid: u32, value: T) {
        self.inserts.push((oid, value));
    }

    /// Stage a delete. If the OID is still in the insert staging area the
    /// two cancel out immediately.
    pub fn stage_delete(&mut self, oid: u32) {
        let before = self.inserts.len();
        self.inserts.retain(|&(o, _)| o != oid);
        if self.inserts.len() == before {
            self.deletes.insert(oid);
        }
    }

    /// Is this OID pending deletion? An O(1) bitmap probe.
    pub fn is_deleted(&self, oid: u32) -> bool {
        self.deletes.contains(oid)
    }

    /// The pending-delete set itself — handed to the overlay kernels so
    /// they can probe it per tuple without going through `self`.
    pub fn deleted_set(&self) -> &OidSet {
        &self.deletes
    }

    /// Any deletes staged?
    pub fn has_deletes(&self) -> bool {
        !self.deletes.is_empty()
    }

    /// Nothing staged at all?
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total staged entries.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Should a merge run before the next query?
    pub fn should_merge(&self, threshold: usize) -> bool {
        self.len() >= threshold
    }

    /// All staged inserts in staging order — the export path for
    /// checkpointing the pending-insert overlay.
    pub fn staged_inserts(&self) -> &[(u32, T)] {
        &self.inserts
    }

    /// OIDs of staged inserts matching `pred`.
    pub fn matching_inserts(&self, pred: &RangePred<T>) -> Vec<u32> {
        self.inserts
            .iter()
            .filter(|(_, v)| pred.matches(*v))
            .map(|(o, _)| *o)
            .collect()
    }

    /// Value of a staged insert, by OID.
    pub fn insert_value(&self, oid: u32) -> Option<T> {
        self.inserts
            .iter()
            .find(|(o, _)| *o == oid)
            .map(|(_, v)| *v)
    }

    fn take(&mut self) -> (Vec<(u32, T)>, OidSet) {
        (
            std::mem::take(&mut self.inserts),
            std::mem::take(&mut self.deletes),
        )
    }
}

impl<T: CrackValue> CrackerColumn<T> {
    /// Stage the insertion of `(oid, value)`. Visible to queries
    /// immediately (they scan the staging area); folded into the cracked
    /// store by the next merge.
    pub fn insert(&mut self, oid: u32, value: T) {
        self.pending.stage_insert(oid, value);
    }

    /// Stage the deletion of `oid`. Returns `true` if the OID was found in
    /// either the cracked area or the insert staging area.
    pub fn delete(&mut self, oid: u32) -> bool {
        if self.pending.insert_value(oid).is_some() {
            self.pending.stage_delete(oid);
            return true;
        }
        if self.oids().contains(&oid) {
            self.pending.stage_delete(oid);
            return true;
        }
        false
    }

    /// Number of staged (unmerged) updates.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Fold all staged updates into the cracked store, preserving every
    /// existing boundary.
    ///
    /// Every live tuple is assigned to its piece by binary search over the
    /// boundary keys (`O(log p)` per tuple), buckets are concatenated in
    /// piece order, and boundary positions are recomputed from the bucket
    /// sizes. Tuple order *within* a piece is not significant (pieces are
    /// unordered sets by construction), so this rewrite preserves all
    /// select answers — a property the test-suite checks against the
    /// oracle.
    pub fn merge_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let (inserts, deletes) = self.pending.take();
        let keys: Vec<BoundaryKey<T>> = {
            let (_, _, index) = self.arrays_mut();
            index.boundaries().map(|(k, _)| *k).collect()
        };
        let piece_of = |v: T, keys: &[BoundaryKey<T>]| -> usize {
            // Piece index = number of boundaries the value lies at or after.
            keys.partition_point(|k| !k.before(v))
        };
        let n_pieces = keys.len() + 1;
        let mut buckets: Vec<Vec<(T, u32)>> = vec![Vec::new(); n_pieces];
        {
            let (vals, oids, _) = self.arrays_mut();
            for i in 0..vals.len() {
                if !deletes.contains(oids[i]) {
                    buckets[piece_of(vals[i], &keys)].push((vals[i], oids[i]));
                }
            }
        }
        for (oid, v) in inserts {
            if !deletes.contains(oid) {
                buckets[piece_of(v, &keys)].push((v, oid));
            }
        }
        let total: usize = buckets.iter().map(Vec::len).sum();
        let mut new_vals = Vec::with_capacity(total);
        let mut new_oids = Vec::with_capacity(total);
        let mut positions = Vec::with_capacity(keys.len());
        for (i, bucket) in buckets.into_iter().enumerate() {
            for (v, o) in bucket {
                new_vals.push(v);
                new_oids.push(o);
            }
            if i < keys.len() {
                positions.push(new_vals.len());
            }
        }
        {
            let (vals, oids, index) = self.arrays_mut();
            *vals = new_vals;
            *oids = new_oids;
            index.set_slots(total);
            for (key, pos) in keys.iter().zip(positions) {
                index.set_position(*key, pos);
            }
        }
        // The rewrite fills pieces in scan order: intra-piece sortedness
        // is not preserved, so all refinement flags are dropped.
        self.sorted_mut().clear();
        let moved = total as u64;
        let s = self.stats_mut();
        s.merges += 1;
        s.tuples_moved += moved;
        debug_assert!(self.validate().is_ok());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CrackerConfig;
    use proptest::prelude::*;

    #[test]
    fn oidset_inserts_probes_and_counts() {
        let mut s = OidSet::new();
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert!(!s.contains(1_000_000), "probe beyond the bitmap is false");
        assert!(s.insert(63));
        assert!(s.insert(64), "word-boundary neighbors are distinct bits");
        assert!(!s.insert(63), "re-insert reports not-fresh");
        assert_eq!(s.len(), 2);
        assert!(s.contains(63) && s.contains(64));
        assert!(!s.contains(62) && !s.contains(65));
        assert!(s.insert(0));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn oidset_outliers_spill_without_ballooning() {
        let mut s = OidSet::new();
        // One delete of a huge surrogate OID must not zero-fill ~512MB.
        assert!(s.insert(u32::MAX));
        assert!(s.contains(u32::MAX));
        assert!(s.words.len() <= 1, "outlier must not grow the bitmap");
        assert_eq!(s.len(), 1);
        // A dense cluster still lands in the bitmap.
        for oid in 0..1_000 {
            assert!(s.insert(oid));
        }
        assert_eq!(s.len(), 1_001);
        assert!(s.contains(u32::MAX) && s.contains(999));
        // Re-inserting the outlier is not fresh, wherever it lives.
        assert!(!s.insert(u32::MAX));
        assert_eq!(s.len(), 1_001);
    }

    #[test]
    fn oidset_spilled_member_survives_bitmap_growth_over_its_word() {
        let mut s = OidSet::new();
        let outlier = 70_000u32; // beyond the fresh-set growth rule
        assert!(s.insert(outlier));
        assert!(s.contains(outlier));
        // Grow the dense prefix until the bitmap covers the outlier's
        // word; membership must be preserved and not double-counted.
        for oid in 0..80_000 {
            if oid != outlier {
                assert!(s.insert(oid));
            }
        }
        assert!(s.contains(outlier));
        assert!(!s.insert(outlier), "still a member after migration");
        assert_eq!(s.len(), 80_000);
    }

    #[test]
    fn oidset_iter_visits_dense_and_sparse_members_once() {
        let mut s = OidSet::new();
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(u32::MAX); // spilled to the sparse side set
        let mut got: Vec<u32> = s.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 63, 64, u32::MAX]);
        assert_eq!(s.iter().count(), s.len());
    }

    #[test]
    fn oidset_agrees_with_hashset_reference() {
        let mut s = OidSet::new();
        let mut reference = std::collections::HashSet::new();
        let mut x = 12345u64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let oid = (x >> 33) as u32 % 2_000;
            assert_eq!(s.insert(oid), reference.insert(oid));
        }
        assert_eq!(s.len(), reference.len());
        for oid in 0..2_000 {
            assert_eq!(s.contains(oid), reference.contains(&oid));
        }
    }

    #[test]
    fn staged_insert_is_visible_before_merge() {
        let mut c = CrackerColumn::new(vec![1i64, 2, 3]);
        c.insert(100, 10);
        let sel = c.select(RangePred::ge(5));
        assert_eq!(sel.count(), 1);
        assert_eq!(sel.pending_oids, vec![100]);
        assert_eq!(c.selection_pairs(&sel), vec![(100, 10)]);
    }

    #[test]
    fn staged_delete_is_honored_before_merge() {
        let mut c = CrackerColumn::new(vec![10i64, 20, 30]);
        assert!(c.delete(1)); // value 20
        assert_eq!(c.count(RangePred::between(0, 100)), 2);
        let oids = c.select_oids(RangePred::between(0, 100));
        assert!(!oids.contains(&1));
    }

    #[test]
    fn delete_of_pending_insert_cancels_out() {
        let mut c = CrackerColumn::new(vec![1i64]);
        c.insert(50, 9);
        assert!(c.delete(50));
        assert_eq!(c.pending_len(), 0, "insert+delete must cancel");
        assert_eq!(c.count(RangePred::eq(9)), 0);
    }

    #[test]
    fn delete_of_unknown_oid_is_reported() {
        let mut c = CrackerColumn::new(vec![1i64]);
        assert!(!c.delete(42));
    }

    #[test]
    fn merge_preserves_boundaries_and_answers() {
        let mut c = CrackerColumn::new((0..100).rev().collect::<Vec<i64>>());
        c.select(RangePred::between(20, 40));
        let pieces_before = c.piece_count();
        c.insert(200, 30);
        c.insert(201, 99);
        c.delete(0); // value 99 at original position 0
        c.merge_pending();
        assert_eq!(c.pending_len(), 0);
        assert_eq!(c.piece_count(), pieces_before, "merge keeps boundaries");
        c.validate().unwrap();
        // 20..=40 originally 21 values, +1 inserted (30).
        assert_eq!(c.count(RangePred::between(20, 40)), 22);
        // 99 deleted once, inserted once: still exactly one.
        assert_eq!(c.count(RangePred::eq(99)), 1);
        assert_eq!(c.stats().merges, 1);
    }

    #[test]
    fn merge_triggers_automatically_at_threshold() {
        let cfg = CrackerConfig::new().with_merge_threshold(3);
        let mut c = CrackerColumn::with_config((0..50).collect::<Vec<i64>>(), cfg);
        c.select(RangePred::between(10, 20));
        c.insert(100, 15);
        c.insert(101, 16);
        assert_eq!(c.stats().merges, 0);
        c.insert(102, 17);
        // Threshold reached: next select merges first.
        let sel = c.select(RangePred::between(10, 20));
        assert_eq!(c.stats().merges, 1);
        assert!(sel.is_contiguous(), "after merge the answer is contiguous");
        assert_eq!(sel.count(), 14);
    }

    #[test]
    fn merge_on_virgin_column_just_appends() {
        let mut c = CrackerColumn::new(vec![5i64, 6]);
        c.insert(10, 7);
        c.merge_pending();
        assert_eq!(c.len(), 3);
        assert_eq!(c.count(RangePred::eq(7)), 1);
        c.validate().unwrap();
    }

    #[test]
    fn merge_with_only_deletes_shrinks() {
        let mut c = CrackerColumn::new((0..10).collect::<Vec<i64>>());
        c.select(RangePred::lt(5));
        c.delete(3);
        c.delete(8);
        c.merge_pending();
        assert_eq!(c.len(), 8);
        assert_eq!(c.count(RangePred::lt(5)), 4);
        c.validate().unwrap();
    }

    proptest! {
        #[test]
        fn prop_interleaved_updates_and_queries_agree_with_oracle(
            orig in proptest::collection::vec(-40i64..40, 1..120),
            ops in proptest::collection::vec(
                // (is_query, a, b) / (insert value) / (delete index)
                (0u8..3, -50i64..50, -50i64..50, 0usize..200),
                1..40
            ),
            threshold in 1usize..20,
        ) {
            let cfg = CrackerConfig::new().with_merge_threshold(threshold);
            let mut c = CrackerColumn::with_config(orig.clone(), cfg);
            // Shadow model: oid -> value.
            let mut model: std::collections::BTreeMap<u32, i64> =
                (0..orig.len() as u32).map(|i| (i, orig[i as usize])).collect();
            let mut next_oid = orig.len() as u32;
            for (kind, a, b, idx) in ops {
                match kind {
                    0 => {
                        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                        let pred = RangePred::between(lo, hi);
                        let mut got = c.select_oids(pred);
                        got.sort_unstable();
                        let mut want: Vec<u32> = model.iter()
                            .filter(|(_, &v)| pred.matches(v))
                            .map(|(&o, _)| o)
                            .collect();
                        want.sort_unstable();
                        prop_assert_eq!(got, want);
                    }
                    1 => {
                        c.insert(next_oid, a);
                        model.insert(next_oid, a);
                        next_oid += 1;
                    }
                    _ => {
                        let keys: Vec<u32> = model.keys().copied().collect();
                        if !keys.is_empty() {
                            let victim = keys[idx % keys.len()];
                            prop_assert!(c.delete(victim));
                            model.remove(&victim);
                        }
                    }
                }
            }
            c.merge_pending();
            c.validate().map_err(TestCaseError::fail)?;
            prop_assert_eq!(c.len(), model.len());
        }
    }
}
