//! Cracking a disk-resident column at disk-block granularity.
//!
//! §3.4.2 names the natural cut-off for cracking: "possible cut-off
//! points to consider are the disk-blocks, being the slowest granularity
//! in the system". [`PagedCracker`] implements exactly that regime over
//! the storage crate's paged substrate: the column lives on pages behind
//! a [`BufferPool`], boundary cracks shuffle tuples *through the pool*
//! (every swap is page traffic), and pieces are never cracked below one
//! page — residual filtering scans inside the border block instead.
//!
//! What the experiments observe here is Figure 1's large-table regime
//! ("linear in the number of disk IOs") turning adaptive: a scan reads
//! every page on every query, while the cracked column's page footprint
//! per query shrinks to the blocks overlapping the answer.

use crate::crack::BoundaryKey;
use crate::index::CrackerIndex;
use crate::pred::RangePred;
use crate::stats::CrackStats;
use std::ops::Range;
use storage::{BufferPool, PageStore, PagedColumn, StorageResult};

/// Result of a paged cracked selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagedSelection {
    /// Contiguous slot range of (exactly) matching positions.
    pub core: Range<usize>,
    /// Matching tuples found by scanning uncracked border blocks.
    pub edge_matches: usize,
}

impl PagedSelection {
    /// Number of qualifying tuples.
    pub fn count(&self) -> usize {
        self.core.len() + self.edge_matches
    }
}

/// How a boundary resolved.
enum Resolved {
    Exact(usize),
    CutOff(Range<usize>),
}

/// A continuously cracked paged column; pieces bottom out at one disk
/// block.
#[derive(Debug)]
pub struct PagedCracker {
    col: PagedColumn,
    index: CrackerIndex<i64>,
    stats: CrackStats,
}

impl PagedCracker {
    /// Materialize `vals` onto the pool's store and wrap them for
    /// cracking.
    pub fn create<S: PageStore>(pool: &mut BufferPool<S>, vals: &[i64]) -> StorageResult<Self> {
        let col = PagedColumn::create(pool, vals)?;
        let n = col.len();
        Ok(PagedCracker {
            col,
            index: CrackerIndex::new(n),
            stats: CrackStats::default(),
        })
    }

    /// The underlying paged column.
    pub fn column(&self) -> &PagedColumn {
        &self.col
    }

    /// Number of pieces currently administered.
    pub fn piece_count(&self) -> usize {
        self.index.piece_count()
    }

    /// Tuple-level cost counters (page-level counters live on the pool).
    pub fn stats(&self) -> &CrackStats {
        &self.stats
    }

    /// Answer a range predicate, cracking border pieces down to (but
    /// never below) one page.
    pub fn select<S: PageStore>(
        &mut self,
        pool: &mut BufferPool<S>,
        pred: RangePred<i64>,
    ) -> StorageResult<PagedSelection> {
        self.stats.queries += 1;
        self.index.next_tick();
        if pred.is_empty_range() || self.col.is_empty() {
            return Ok(PagedSelection {
                core: 0..0,
                edge_matches: 0,
            });
        }
        let start = match pred.low {
            None => Resolved::Exact(0),
            Some(b) => {
                let key = if b.inclusive {
                    BoundaryKey::lt(b.value)
                } else {
                    BoundaryKey::le(b.value)
                };
                self.resolve(pool, key)?
            }
        };
        let end = match pred.high {
            None => Resolved::Exact(self.col.len()),
            Some(b) => {
                let key = if b.inclusive {
                    BoundaryKey::le(b.value)
                } else {
                    BoundaryKey::lt(b.value)
                };
                self.resolve(pool, key)?
            }
        };
        let mut edge_matches = 0;
        let core = match (start, end) {
            (Resolved::Exact(s), Resolved::Exact(e)) => s..e.max(s),
            (Resolved::CutOff(p), Resolved::Exact(e)) => {
                edge_matches += self.scan_edge(pool, p.start..p.end.min(e), &pred)?;
                p.end.min(e)..e.max(p.end.min(e))
            }
            (Resolved::Exact(s), Resolved::CutOff(p)) => {
                edge_matches += self.scan_edge(pool, p.start.max(s)..p.end, &pred)?;
                s..p.start.max(s)
            }
            (Resolved::CutOff(p1), Resolved::CutOff(p2)) => {
                if p1 == p2 {
                    edge_matches += self.scan_edge(pool, p1.clone(), &pred)?;
                    p1.end..p1.end
                } else {
                    edge_matches += self.scan_edge(pool, p1.clone(), &pred)?;
                    edge_matches += self.scan_edge(pool, p2.clone(), &pred)?;
                    p1.end..p2.start.max(p1.end)
                }
            }
        };
        Ok(PagedSelection { core, edge_matches })
    }

    /// Count qualifying tuples.
    pub fn count<S: PageStore>(
        &mut self,
        pool: &mut BufferPool<S>,
        pred: RangePred<i64>,
    ) -> StorageResult<usize> {
        Ok(self.select(pool, pred)?.count())
    }

    fn resolve<S: PageStore>(
        &mut self,
        pool: &mut BufferPool<S>,
        key: BoundaryKey<i64>,
    ) -> StorageResult<Resolved> {
        if let Some(pos) = self.index.lookup(key) {
            return Ok(Resolved::Exact(pos));
        }
        let piece = self.index.enclosing_piece(key);
        // The disk-block cut-off: a piece within one block is scanned,
        // never shuffled.
        if piece.len() <= self.col.per_page() {
            return Ok(Resolved::CutOff(piece));
        }
        let pos = self.crack_two_paged(pool, piece.clone(), key)?;
        self.stats.tuples_touched += piece.len() as u64;
        self.stats.cracks += 1;
        self.index.insert(key, pos);
        Ok(Resolved::Exact(pos))
    }

    /// Hoare partition through the buffer pool.
    fn crack_two_paged<S: PageStore>(
        &mut self,
        pool: &mut BufferPool<S>,
        piece: Range<usize>,
        key: BoundaryKey<i64>,
    ) -> StorageResult<usize> {
        let (mut i, mut j) = (piece.start, piece.end);
        loop {
            while i < j && key.before(self.col.get(pool, i)?) {
                i += 1;
            }
            while i < j && !key.before(self.col.get(pool, j - 1)?) {
                j -= 1;
            }
            if i >= j {
                break;
            }
            self.col.swap(pool, i, j - 1)?;
            self.stats.tuples_moved += 2;
            i += 1;
            j -= 1;
        }
        Ok(i)
    }

    fn scan_edge<S: PageStore>(
        &mut self,
        pool: &mut BufferPool<S>,
        range: Range<usize>,
        pred: &RangePred<i64>,
    ) -> StorageResult<usize> {
        self.stats.edge_scanned += range.len() as u64;
        self.col
            .fold_range(pool, range.start, range.end, 0usize, |n, v| {
                n + usize::from(pred.matches(v))
            })
    }

    /// Check the cracker-index invariants against the materialized
    /// column (test/debug helper; reads every page).
    pub fn validate<S: PageStore>(
        &self,
        pool: &mut BufferPool<S>,
    ) -> StorageResult<Result<(), String>> {
        let vals = self.col.to_vec(pool)?;
        Ok(self.index.validate(&vals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::MemDisk;

    fn oracle(orig: &[i64], pred: &RangePred<i64>) -> usize {
        orig.iter().filter(|&&v| pred.matches(v)).count()
    }

    /// Tiny pages (7 values) so block boundaries are everywhere.
    fn setup(n: usize, frames: usize) -> (BufferPool<MemDisk>, PagedCracker, Vec<i64>) {
        let mut pool = BufferPool::new(MemDisk::with_page_size(64), frames);
        let vals: Vec<i64> = (0..n as i64).rev().collect();
        let cracker = PagedCracker::create(&mut pool, &vals).unwrap();
        (pool, cracker, vals)
    }

    #[test]
    fn cracked_answers_match_the_oracle() {
        let (mut pool, mut c, vals) = setup(500, 8);
        for (lo, hi) in [(100, 200), (0, 500), (250, 251), (490, 600), (-10, 5)] {
            let pred = RangePred::half_open(lo, hi);
            let got = c.count(&mut pool, pred).unwrap();
            assert_eq!(got, oracle(&vals, &pred), "[{lo},{hi})");
            assert_eq!(c.validate(&mut pool).unwrap(), Ok(()));
        }
    }

    #[test]
    fn pieces_never_crack_below_one_block() {
        let (mut pool, mut c, vals) = setup(700, 16);
        // An unrestricted in-memory cracker over the same data and
        // queries, as the piece-count reference. Two passes: a coarse one
        // carving ~20-value pieces, then a fine one whose bounds land
        // *inside* those pieces — where only the unrestricted cracker may
        // keep cracking.
        let mut unrestricted = crate::CrackerColumn::new(vals.clone());
        let coarse = (0..700).step_by(21).map(|lo| (lo, lo + 2));
        let fine = (0..699).map(|lo| (lo, lo + 1));
        for (lo, hi) in coarse.chain(fine) {
            let pred = RangePred::half_open(lo, hi);
            let got = c.count(&mut pool, pred).unwrap();
            assert_eq!(got, unrestricted.count(pred), "answers agree");
        }
        // The cut-off refused the cracks that would have split blocks:
        // strictly fewer pieces than the unrestricted cracker, and the
        // refusals show up as border scans.
        assert!(
            c.piece_count() < unrestricted.piece_count() * 3 / 4,
            "block cut-off must suppress a large share of the cracks ({} !< {}*3/4)",
            c.piece_count(),
            unrestricted.piece_count()
        );
        assert!(
            c.stats().edge_scanned > 0,
            "borders are scanned, not cracked"
        );
        // And no recorded piece was produced by cracking inside a block:
        // every crack's source piece exceeded one page, so every *crack*
        // counter increment touched > per_page tuples on average.
        assert!(
            c.stats().tuples_touched >= c.stats().cracks as u64 * c.column().per_page() as u64,
            "every crack partitioned more than one block"
        );
    }

    #[test]
    fn page_traffic_shrinks_as_the_column_cracks() {
        let n = 7 * 256; // 256 blocks
        let (mut pool, mut c, _) = setup(n, 64);
        pool.flush().unwrap();

        // First query: the virgin column is fully partitioned — reads
        // every page (possibly several times; the pool holds only 64).
        pool.reset_stats();
        let r0 = pool.io_stats();
        c.count(&mut pool, RangePred::half_open(400, 600)).unwrap();
        let first_reads = pool.io_stats().reads - r0.reads;

        // Repeat query: only the (already resident or at worst re-read)
        // answer blocks are touched.
        let r1 = pool.io_stats();
        c.count(&mut pool, RangePred::half_open(400, 600)).unwrap();
        let repeat_reads = pool.io_stats().reads - r1.reads;

        assert!(first_reads >= 256, "virgin crack reads the whole column");
        let answer_blocks = 200 / 7 + 2;
        assert!(
            repeat_reads <= answer_blocks as u64,
            "repeat touches only answer blocks ({repeat_reads} > {answer_blocks})"
        );
    }

    #[test]
    fn scan_baseline_reads_everything_every_time() {
        let n = 7 * 64;
        let mut pool = BufferPool::new(MemDisk::with_page_size(64), 8);
        let vals: Vec<i64> = (0..n as i64).collect();
        let col = PagedColumn::create(&mut pool, &vals).unwrap();
        pool.flush().unwrap();
        let mut last = pool.io_stats().reads;
        for _ in 0..3 {
            col.count_matching(&mut pool, |v| v < 10).unwrap();
            let now = pool.io_stats().reads;
            assert!(
                now - last >= 56,
                "a thrashing scan re-reads most blocks every query"
            );
            last = now;
        }
    }

    #[test]
    fn works_under_extreme_memory_pressure() {
        // Two frames for a 72-block column: every cursor move faults.
        let (mut pool, mut c, vals) = setup(500, 2);
        let pred = RangePred::between(123, 345);
        assert_eq!(c.count(&mut pool, pred).unwrap(), oracle(&vals, &pred));
        assert_eq!(c.validate(&mut pool).unwrap(), Ok(()));
        assert!(pool.stats().evictions > 0);
    }

    #[test]
    fn empty_column_and_empty_ranges() {
        let mut pool = BufferPool::new(MemDisk::with_page_size(64), 2);
        let mut c = PagedCracker::create(&mut pool, &[]).unwrap();
        assert_eq!(c.count(&mut pool, RangePred::lt(5)).unwrap(), 0);
        let (mut pool, mut c, _) = setup(100, 4);
        assert_eq!(c.count(&mut pool, RangePred::between(50, 10)).unwrap(), 0);
        assert_eq!(c.stats().cracks, 0);
    }

    #[test]
    fn sequence_converges_like_the_in_memory_cracker() {
        let (mut pool, mut c, vals) = setup(2_000, 32);
        let mut last_touched = u64::MAX;
        for (lo, hi) in [(200, 1800), (400, 1600), (600, 1400), (800, 1200)] {
            let before = c.stats().tuples_touched + c.stats().edge_scanned;
            let pred = RangePred::half_open(lo, hi);
            assert_eq!(c.count(&mut pool, pred).unwrap(), oracle(&vals, &pred));
            let delta = c.stats().tuples_touched + c.stats().edge_scanned - before;
            assert!(delta <= last_touched, "narrowing queries touch less");
            last_touched = delta;
        }
    }
}
