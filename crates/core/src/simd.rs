//! Explicit SIMD crack kernels: AVX2 (with an SSE4.2 tier for the
//! two-way partition) behind runtime CPU detection.
//!
//! This module is the vector-lane tier of the three-way kernel family
//! ([`crate::kernel`]): where the branch-free kernels replace data
//! branches with scalar arithmetic (one tuple per iteration), these
//! kernels process 4 tuples per iteration (2 on the SSE4.2 tier) with
//! `core::arch::x86_64` intrinsics — `vpcmpgtq` compares, sign-bit
//! `movemask` extraction, and LUT-driven compress permutes — inside
//! `#[target_feature]` functions selected once per process via
//! `is_x86_feature_detected!`. Everything is stable Rust; on non-x86-64
//! hosts, on CPUs without the detected features, on value types without a
//! vector compare (`i32`/`u32`/`OrdF64`), or below the [`SIMD_MIN`] size
//! floor, every entry point returns `None`/`false` and the caller falls
//! back to the portable branch-free kernels.
//!
//! # Kernels
//!
//! * **Two-way partition** (`crack_two`): a counting pass (vector
//!   compare + lane-popcount) fixes the split position up front, then a
//!   block-bidirectional in-place compress partition walks both ends
//!   inward: one block from each end is buffered to open write room,
//!   each iteration reads a 32-tuple block from whichever side has less
//!   free space (one amortized, rather than per-chunk, branch) and
//!   compress-stores each 4-tuple chunk's "before" lanes ascending from
//!   the left cursor and the rest descending from the right cursor.
//!   Compression is a 16-entry permutation LUT (`vpermd` for the 64-bit
//!   values, `pshufb` for the parallel 32-bit OIDs) indexed by the
//!   4-bit compare mask; the canonical crossing-pair `moved` count is
//!   folded into the same pass via source-position masks. Stores are
//!   full registers whose garbage lanes land only in free space (the
//!   per-side invariant `free ≥ block` is maintained by always reading
//!   from the tighter side, and a right-read block is processed
//!   high→low so its stores chase its loads); the two buffered blocks
//!   and the `len % 32` tail are placed scalarly at the end, when the
//!   remaining free space exactly fits them.
//! * **Three-way partition** (`crack_three`): a counting pass (two
//!   compares per chunk) fixes both split positions, then one pass
//!   compress-scatters each class into three thread-local scratch
//!   regions (each padded by one register so full-width stores stay in
//!   bounds) which are copied back contiguously. Middle-dominant pieces
//!   (≥ 7/8 of the tuples staying put, the shape every contracting
//!   query sequence produces) skip the scatter: the counting pass has
//!   already fixed the exact class populations, so the data movement is
//!   delegated to the scalar sweep — which never moves a middle-class
//!   tuple — while two small extra counts over the outer regions
//!   recover the displacement total. `moved` is always the canonical
//!   destination-displacement count — the number of tuples that were
//!   not already inside their destination piece, the same accounting
//!   the two-way kernels report. The scalar and branch-free three-way
//!   sweeps count Dutch-flag *swaps* instead, which can exceed the
//!   displacement count (middle-class tuples shuffle along multiple
//!   times), so three-way `moved` is pinned per-kernel-family, not
//!   across families; see the `kernel` module docs.
//! * **Residual scan** (`scan_into`): 4-lane predicate masks
//!   (lower/upper bound compares folded into one nibble) with a
//!   fast path for all-matching chunks.
//! * **Overlay probe** (`count_deleted`): the pending-delete bitmap is
//!   probed 4 OIDs at a time with a masked `vpgatherqq` over the bitmap
//!   words plus per-lane variable shifts; out-of-range OIDs are masked
//!   off (matching `OidSet::contains`'s bounds behavior). The live-tuple
//!   walk (`for_each_live`) stays on the branch-free chunk path: its cost
//!   is dominated by the per-hit `emit` callback, not the probe.
//!
//! `u64` columns ride the `i64` kernels through the order-preserving
//! sign-flip bijection (`x ^ i64::MIN`): loaded vectors are flipped only
//! for the compare, never in memory.

// The workspace forbids unsafe code; this module and the branch-free
// kernels in `kernel.rs` are the audited exceptions. Every unsafe block
// carries a SAFETY comment, the loops' cursor invariants are stated
// inline, and the kernel-equivalence proptests pin every kernel to the
// scalar reference across splits, multisets, answer sets, and `moved`.
#![allow(unsafe_code)]

use crate::crack::BoundaryKey;
use crate::pred::RangePred;
use crate::updates::OidSet;
use crate::value_trait::CrackValue;
use std::any::TypeId;
use std::ops::Range;

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Pieces below this many tuples never take a vector kernel: the fixed
/// costs (detection indirection, block buffering, scalar flush)
/// outweigh the lane win, and the per-band calibration routes such
/// pieces to the scalar loop anyway. Must stay ≥ two partition blocks
/// plus a tail (see `crack_two_avx2`).
pub(crate) const SIMD_MIN: usize = 128;

/// The vector tier the running CPU supports, detected once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SimdLevel {
    /// 4×64-bit lanes: AVX2 `vpcmpgtq`/`vpermd` (plus `popcnt`).
    Avx2,
    /// 2×64-bit lanes: SSE4.2 `pcmpgtq` + SSSE3 `pshufb` (plus
    /// `popcnt`). Two-way partition only; the other kernels fall back.
    Sse42,
}

/// Runtime CPU detection, cached for the process lifetime.
pub(crate) fn level() -> Option<SimdLevel> {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static LEVEL: OnceLock<Option<SimdLevel>> = OnceLock::new();
        *LEVEL.get_or_init(|| {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt") {
                Some(SimdLevel::Avx2)
            } else if is_x86_feature_detected!("sse4.2")
                && is_x86_feature_detected!("ssse3")
                && is_x86_feature_detected!("popcnt")
            {
                Some(SimdLevel::Sse42)
            } else {
                None
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        None
    }
}

/// True when at least one vector tier is available — the hook the
/// per-band calibration uses to decide whether `Simd` is a candidate.
pub(crate) fn available() -> bool {
    level().is_some()
}

/// Reinterpret a `CrackValue` slice as `i64` lanes when the type has a
/// 64-bit vector compare: `i64` directly, `u64` via the sign-flip
/// bijection. Returns the lane slice plus the XOR applied before every
/// compare (`0` or `i64::MIN`); other types get `None` and fall back.
fn lanes_mut<T: CrackValue>(vals: &mut [T]) -> Option<(&mut [i64], i64)> {
    let flip = lane_flip::<T>()?;
    // SAFETY: the TypeId check in `lane_flip` proves `T` is exactly
    // `i64` or `u64`; both have the size, alignment, and bit validity
    // of `i64`, so the slice reinterpretation is sound.
    Some((unsafe { &mut *(vals as *mut [T] as *mut [i64]) }, flip))
}

/// Shared-reference sibling of [`lanes_mut`].
fn lanes_ref<T: CrackValue>(vals: &[T]) -> Option<(&[i64], i64)> {
    let flip = lane_flip::<T>()?;
    // SAFETY: as in `lanes_mut`.
    Some((unsafe { &*(vals as *const [T] as *const [i64]) }, flip))
}

/// The compare-domain XOR for a supported lane type, or `None`.
fn lane_flip<T: CrackValue>() -> Option<i64> {
    if TypeId::of::<T>() == TypeId::of::<i64>() {
        Some(0)
    } else if TypeId::of::<T>() == TypeId::of::<u64>() {
        Some(i64::MIN)
    } else {
        None
    }
}

/// A boundary key's value as compare-domain `i64` bits plus its
/// equal-side flag. Only called once `lane_flip::<T>()` succeeded.
fn key_bits<T: CrackValue>(key: BoundaryKey<T>, flip: i64) -> (i64, bool) {
    debug_assert_eq!(std::mem::size_of::<T>(), 8);
    // SAFETY: `lane_flip` proved `T` is `i64` or `u64`; `transmute_copy`
    // of either to `i64` is a bit copy of the same width.
    let raw: i64 = unsafe { std::mem::transmute_copy(&key.value) };
    (raw ^ flip, key.lte)
}

/// Scalar compare-domain "belongs before the boundary" test, used for
/// tails and the buffered-register flush.
#[inline(always)]
fn before_scalar(x: i64, pivot: i64, flip: i64, lte: bool) -> bool {
    let x = x ^ flip;
    if lte {
        x <= pivot
    } else {
        x < pivot
    }
}

/// Vector two-way partition entry point: `Some(split)` when a vector
/// tier handled the piece, `None` to fall back (unsupported CPU or
/// value type, or a piece under the size floor). The contract is the
/// scalar kernel's: same split, same per-piece multisets, `moved`
/// incremented by the canonical crossing-pair count.
pub(crate) fn crack_two<T: CrackValue>(
    vals: &mut [T],
    oids: &mut [u32],
    lo: usize,
    hi: usize,
    key: BoundaryKey<T>,
    moved: &mut u64,
) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    {
        let lvl = level()?;
        if hi - lo < SIMD_MIN {
            return None;
        }
        let (lanes, flip) = lanes_mut(vals)?;
        let (pivot, lte) = key_bits(key, flip);
        debug_assert!(lo <= hi && hi <= lanes.len() && lanes.len() == oids.len());
        // SAFETY: `level()` proved the required target features are
        // available on this CPU; bounds are asserted above.
        unsafe {
            Some(match (lvl, lte) {
                (SimdLevel::Avx2, false) => {
                    crack_two_avx2::<false>(lanes, oids, lo, hi, pivot, flip, moved)
                }
                (SimdLevel::Avx2, true) => {
                    crack_two_avx2::<true>(lanes, oids, lo, hi, pivot, flip, moved)
                }
                (SimdLevel::Sse42, false) => {
                    crack_two_sse42::<false>(lanes, oids, lo, hi, pivot, flip, moved)
                }
                (SimdLevel::Sse42, true) => {
                    crack_two_sse42::<true>(lanes, oids, lo, hi, pivot, flip, moved)
                }
            })
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (vals, oids, lo, hi, key, moved);
        None
    }
}

/// Vector three-way partition entry point (AVX2 only): `Some((p1, p2))`
/// or `None` to fall back. Splits and per-piece multisets match the
/// scalar sweep; `moved` is incremented by the canonical
/// destination-displacement count (see the module docs).
pub(crate) fn crack_three<T: CrackValue>(
    vals: &mut [T],
    oids: &mut [u32],
    lo: usize,
    hi: usize,
    k1: BoundaryKey<T>,
    k2: BoundaryKey<T>,
    moved: &mut u64,
) -> Option<(usize, usize)> {
    #[cfg(target_arch = "x86_64")]
    {
        if level()? != SimdLevel::Avx2 || hi - lo < SIMD_MIN {
            return None;
        }
        let flip = lane_flip::<T>()?;
        let (p1v, lte1) = key_bits(k1, flip);
        let (p2v, lte2) = key_bits(k2, flip);
        debug_assert!(lo <= hi && hi <= vals.len() && vals.len() == oids.len());
        // Counting pass: fixes both split positions (and the class
        // populations) before anything moves.
        let (c1, c3) = {
            let (lanes, _) = lanes_mut(vals)?;
            // SAFETY: AVX2 (and popcnt) verified by `level()`; bounds
            // asserted above.
            unsafe { count3_avx2(lanes, lo, hi, p1v, lte1, p2v, lte2, flip) }
        };
        let (split1, split2) = (lo + c1, hi - c3);
        if c1 == 0 && c3 == 0 {
            // Everything is middle-class: no movement, no displacement.
            return Some((split1, split2));
        }

        // Middle-dominance guard — the three-way sibling of the
        // branch-free skew guard, but exact, because the counting pass
        // has already fixed the class populations. Contracting query
        // sequences (MQS homerun) crack pieces where ≥ 7/8 of the
        // tuples stay in the middle region; the scalar sweep never
        // moves a middle-class tuple (one cheap pass whose rare
        // branches predict well), while the compress-scatter would
        // still push every tuple through scratch and back. Delegate the
        // data movement to the scalar sweep in the original typed
        // domain (an i64 sweep over reinterpreted u64 bits would order
        // the sign bit wrongly), and keep this kernel's
        // destination-displacement `moved` contract by deriving the
        // count from the two small outer regions alone: with `a_l`/`a_g`
        // the L/G-class populations of the final left region and
        // `c_l`/`c_g` those of the final right region, the mismatches
        // are `(|left| - a_l) + (|right| - c_g)` in the outer regions
        // plus the L/G tuples stranded in the middle,
        // `(c1 - a_l - c_l) + (c3 - a_g - c_g)`.
        if (c1 + c3) * 8 <= hi - lo {
            let (a_l, a_g, c_l, c_g) = {
                let (lanes, _) = lanes_mut(vals)?;
                // SAFETY: both count ranges are within `lo..hi`.
                unsafe {
                    let (a_l, a_g) = count3_avx2(lanes, lo, split1, p1v, lte1, p2v, lte2, flip);
                    let (c_l, c_g) = count3_avx2(lanes, split2, hi, p1v, lte1, p2v, lte2, flip);
                    (a_l, a_g, c_l, c_g)
                }
            };
            let displaced =
                (split1 - lo - a_l) + (hi - split2 - c_g) + (c1 - a_l - c_l) + (c3 - a_g - c_g);
            let mut swap_moved = 0u64;
            let splits = crate::crack::crack_three(vals, oids, lo, hi, k1, k2, &mut swap_moved);
            debug_assert_eq!(splits, (split1, split2));
            *moved += displaced as u64;
            return Some(splits);
        }

        let (lanes, _) = lanes_mut(vals)?;
        // SAFETY: as above; `c1`/`c3` are the exact class populations of
        // `lanes[lo..hi)` just counted.
        unsafe {
            Some(crack_three_avx2(
                lanes, oids, lo, hi, p1v, lte1, p2v, lte2, flip, c1, c3, moved,
            ))
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (vals, oids, lo, hi, k1, k2, moved);
        None
    }
}

/// Vector residual scan over a cut-off piece (AVX2 only): appends the
/// absolute positions in `range` matching `pred` to `out`, in ascending
/// order — exactly the scalar filter's output. Returns `false` to fall
/// back.
pub(crate) fn scan_into<T: CrackValue>(
    vals: &[T],
    range: Range<usize>,
    pred: &RangePred<T>,
    out: &mut Vec<usize>,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if level() != Some(SimdLevel::Avx2) || range.len() < SIMD_MIN {
            return false;
        }
        let Some((lanes, flip)) = lanes_ref(vals) else {
            return false;
        };
        // Same bound→key mapping as the branch-free scan: matched ⇔
        // !lo_key.before(v) && hi_key.before(v).
        let lo_key = pred.low.map(|b| {
            let k = if b.inclusive {
                BoundaryKey::lt(b.value)
            } else {
                BoundaryKey::le(b.value)
            };
            key_bits(k, flip)
        });
        let hi_key = pred.high.map(|b| {
            let k = if b.inclusive {
                BoundaryKey::le(b.value)
            } else {
                BoundaryKey::lt(b.value)
            };
            key_bits(k, flip)
        });
        debug_assert!(range.end <= lanes.len());
        // SAFETY: AVX2 verified by `level()`; `range` is in bounds.
        unsafe { scan_avx2(lanes, range, lo_key, hi_key, flip, out) };
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (vals, range, pred, out);
        false
    }
}

/// Vector pending-delete overlay count (AVX2 only): how many of `oids`
/// are in `deleted`. Returns `None` to fall back.
pub(crate) fn count_deleted(oids: &[u32], deleted: &OidSet) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    {
        if level()? != SimdLevel::Avx2 || oids.len() < SIMD_MIN || deleted.has_sparse() {
            // The gather only probes the dense bitmap; members in the
            // sparse side set need the scalar probe.
            return None;
        }
        // SAFETY: AVX2 verified by `level()`.
        Some(unsafe { count_deleted_avx2(oids, deleted.words()) })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (oids, deleted);
        None
    }
}

// ---------------------------------------------------------------------
// Compress-permutation lookup tables.
// ---------------------------------------------------------------------

/// `vpermd` index vectors compressing the 64-bit lanes named by a 4-bit
/// mask to the **front** of a ymm register, original order preserved
/// (each 64-bit lane is the dword pair `2j, 2j+1`). Unselected lanes
/// fill the back; their contents are garbage by contract.
#[cfg(target_arch = "x86_64")]
static PERM64_FRONT: [[u32; 8]; 16] = build_perm64(true);
/// As [`PERM64_FRONT`] but compressing the masked lanes to the **back**.
#[cfg(target_arch = "x86_64")]
static PERM64_BACK: [[u32; 8]; 16] = build_perm64(false);
/// `pshufb` byte masks compressing the 32-bit OID lanes named by a 4-bit
/// mask to the front of an xmm register.
#[cfg(target_arch = "x86_64")]
static OID_FRONT: [[u8; 16]; 16] = build_oid_shuf(true);
/// As [`OID_FRONT`] but to the back.
#[cfg(target_arch = "x86_64")]
static OID_BACK: [[u8; 16]; 16] = build_oid_shuf(false);
/// `pshufb` byte masks compressing the 64-bit lanes named by a 2-bit
/// mask to the front of an xmm register (SSE4.2 tier).
#[cfg(target_arch = "x86_64")]
static QW_FRONT: [[u8; 16]; 4] = build_qw_shuf(true);
/// As [`QW_FRONT`] but to the back.
#[cfg(target_arch = "x86_64")]
static QW_BACK: [[u8; 16]; 4] = build_qw_shuf(false);

/// Lane order for a compress: masked lanes first (front) or last
/// (back), relative order preserved on both sides.
const fn lane_order<const N: usize>(mask: usize, front: bool) -> [usize; N] {
    let mut order = [0usize; N];
    let mut slot = 0;
    // Two passes over the lanes: the selected group is placed first for
    // a front compress and last for a back compress, relative order
    // preserved within each group.
    let mut pass = 0;
    while pass < 2 {
        let want_selected = if front { pass == 0 } else { pass == 1 };
        let mut j = 0;
        while j < N {
            if ((mask >> j) & 1 == 1) == want_selected {
                order[slot] = j;
                slot += 1;
            }
            j += 1;
        }
        pass += 1;
    }
    order
}

/// Build the `vpermd` LUT for 4×64-bit compresses.
const fn build_perm64(front: bool) -> [[u32; 8]; 16] {
    let mut out = [[0u32; 8]; 16];
    let mut m = 0;
    while m < 16 {
        let order: [usize; 4] = lane_order::<4>(m, front);
        let mut k = 0;
        while k < 4 {
            out[m][2 * k] = (2 * order[k]) as u32;
            out[m][2 * k + 1] = (2 * order[k] + 1) as u32;
            k += 1;
        }
        m += 1;
    }
    out
}

/// Build the `pshufb` LUT for 4×32-bit OID compresses.
const fn build_oid_shuf(front: bool) -> [[u8; 16]; 16] {
    let mut out = [[0u8; 16]; 16];
    let mut m = 0;
    while m < 16 {
        let order: [usize; 4] = lane_order::<4>(m, front);
        let mut k = 0;
        while k < 4 {
            let mut b = 0;
            while b < 4 {
                out[m][4 * k + b] = (4 * order[k] + b) as u8;
                b += 1;
            }
            k += 1;
        }
        m += 1;
    }
    out
}

/// Build the `pshufb` LUT for 2×64-bit compresses (SSE4.2 tier).
const fn build_qw_shuf(front: bool) -> [[u8; 16]; 4] {
    let mut out = [[0u8; 16]; 4];
    let mut m = 0;
    while m < 4 {
        let order: [usize; 2] = lane_order::<2>(m, front);
        let mut k = 0;
        while k < 2 {
            let mut b = 0;
            while b < 8 {
                out[m][8 * k + b] = (8 * order[k] + b) as u8;
                b += 1;
            }
            k += 1;
        }
        m += 1;
    }
    out
}

// ---------------------------------------------------------------------
// AVX2 kernels.
// ---------------------------------------------------------------------

/// Count `before(v)` over `lanes[from..to)` with 4-lane compares.
///
/// # Safety
/// Caller guarantees AVX2+popcnt and `from <= to <= lanes.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
unsafe fn count_before_avx2<const LTE: bool>(
    lanes: &[i64],
    from: usize,
    to: usize,
    pivot: i64,
    flip: i64,
) -> usize {
    // For `<` count the `pivot > x` lanes directly; for `≤` count the
    // `x > pivot` lanes and subtract (no `cmpge` in AVX2).
    let pv = _mm256_set1_epi64x(pivot);
    let fv = _mm256_set1_epi64x(flip);
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    let ptr = lanes.as_ptr();
    let mut i = from;
    // SAFETY: the loads are bounded by `i + 8 <= to` / `i + 4 <= to`,
    // with `to <= lanes.len()`.
    unsafe {
        // Two accumulator chains so the lane-wise subtract is not the
        // loop-carried bottleneck.
        while i + 8 <= to {
            let x0 = _mm256_xor_si256(_mm256_loadu_si256(ptr.add(i) as *const __m256i), fv);
            let x1 = _mm256_xor_si256(_mm256_loadu_si256(ptr.add(i + 4) as *const __m256i), fv);
            let (m0, m1) = if LTE {
                (_mm256_cmpgt_epi64(x0, pv), _mm256_cmpgt_epi64(x1, pv))
            } else {
                (_mm256_cmpgt_epi64(pv, x0), _mm256_cmpgt_epi64(pv, x1))
            };
            // Lanes are 0 or -1: subtracting accumulates a per-lane count.
            acc0 = _mm256_sub_epi64(acc0, m0);
            acc1 = _mm256_sub_epi64(acc1, m1);
            i += 8;
        }
        while i + 4 <= to {
            let x = _mm256_xor_si256(_mm256_loadu_si256(ptr.add(i) as *const __m256i), fv);
            let m = if LTE {
                _mm256_cmpgt_epi64(x, pv)
            } else {
                _mm256_cmpgt_epi64(pv, x)
            };
            acc0 = _mm256_sub_epi64(acc0, m);
            i += 4;
        }
    }
    let mut parts = [0i64; 4];
    // SAFETY: `parts` is 32 bytes, matching the unaligned store width.
    unsafe {
        _mm256_storeu_si256(
            parts.as_mut_ptr() as *mut __m256i,
            _mm256_add_epi64(acc0, acc1),
        )
    };
    let mut cnt = (parts[0] + parts[1] + parts[2] + parts[3]) as usize;
    while i < to {
        let x = lanes[i] ^ flip;
        cnt += if LTE { x > pivot } else { pivot > x } as usize;
        i += 1;
    }
    if LTE {
        (to - from) - cnt
    } else {
        cnt
    }
}

/// The 4-bit "belongs before" mask of one ymm chunk.
///
/// # Safety
/// Caller guarantees AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mask4_before<const LTE: bool>(v: __m256i, pv: __m256i, fv: __m256i) -> usize {
    let x = _mm256_xor_si256(v, fv);
    let m = if LTE {
        // before ⇔ x ≤ pivot ⇔ !(x > pivot): invert the mask bits.
        let gt = _mm256_cmpgt_epi64(x, pv);
        (!_mm256_movemask_pd(_mm256_castsi256_pd(gt))) & 0xF
    } else {
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(pv, x)))
    };
    m as usize
}

/// Scalar placement of one tuple into the partition's free window —
/// used for the buffered registers and the vector-width tail, when the
/// free window exactly fits the remaining tuples.
///
/// # Safety
/// Caller guarantees `*l_write < *r_write ≤ len` and that the slot
/// consumed is free.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn place_scalar(
    vals: *mut i64,
    oids: *mut u32,
    x: i64,
    o: u32,
    goes_left: bool,
    l_write: &mut usize,
    r_write: &mut usize,
) {
    // SAFETY: per the contract, the targeted slot is inside the free
    // window `[*l_write, *r_write)`.
    unsafe {
        if goes_left {
            *vals.add(*l_write) = x;
            *oids.add(*l_write) = o;
            *l_write += 1;
        } else {
            *r_write -= 1;
            *vals.add(*r_write) = x;
            *oids.add(*r_write) = o;
        }
    }
}

/// AVX2 two-way partition of `lanes[lo..hi)` / `oids[lo..hi)`; returns
/// the split. See the module docs for the algorithm and the in-place
/// safety argument.
///
/// # Safety
/// Caller guarantees AVX2+popcnt, `lo ≤ hi ≤ lanes.len() == oids.len()`,
/// and `hi - lo ≥ SIMD_MIN`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
#[allow(clippy::too_many_arguments)] // kernel entry point: partition state arrives unpacked by design
unsafe fn crack_two_avx2<const LTE: bool>(
    lanes: &mut [i64],
    oids: &mut [u32],
    lo: usize,
    hi: usize,
    pivot: i64,
    flip: i64,
    moved: &mut u64,
) -> usize {
    // Counting pass: fixes the split up front. The canonical
    // crossing-pair `moved` (each "before" tuple stranded at or beyond
    // the split pairs with one "after" tuple stranded below it) is
    // accumulated inside the partition pass, which sees every tuple's
    // original position exactly once.
    // SAFETY: the range is within `lo..hi`.
    let c = unsafe { count_before_avx2::<LTE>(lanes, lo, hi, pivot, flip) };
    let split = lo + c;
    if c == 0 || split == hi {
        // One-sided: nothing can be misplaced, nothing to move.
        return split;
    }
    let mut misplaced = 0usize;

    // Block size: the read side is chosen once per block (one branch
    // per B tuples, amortizing its misprediction), and the block's four
    // chunk loads are sequential from the block base, so they issue and
    // pipeline without waiting on the cursor arithmetic. (A per-chunk
    // side choice mispredicts on every balanced crack; a cmov'd choice
    // serializes the load address behind the previous chunk's popcount
    // — both measurably slower.)
    const B: usize = 32;
    let len = hi - lo;
    let tail = len % B;
    let hi_vec = hi - tail;
    let vp = lanes.as_mut_ptr();
    let op = oids.as_mut_ptr();
    let pv = _mm256_set1_epi64x(pivot);
    let fv = _mm256_set1_epi64x(flip);

    // Copy the tail out (its slots become free space for the right
    // write cursor) and buffer the first and last block of the vector
    // span to open the free window. `SIMD_MIN ≥ 128` guarantees the
    // span holds ≥ 2 blocks.
    let mut tail_v = [0i64; B];
    let mut tail_o = [0u32; B];
    let mut buf_v = [0i64; 2 * B];
    let mut buf_o = [0u32; 2 * B];
    // SAFETY: `[hi_vec, hi)` (tail < B), `[lo, lo+B)` and
    // `[hi_vec-B, hi_vec)` are all in bounds, and the two buffered
    // blocks are disjoint (span ≥ 2B).
    unsafe {
        std::ptr::copy_nonoverlapping(vp.add(hi_vec), tail_v.as_mut_ptr(), tail);
        std::ptr::copy_nonoverlapping(op.add(hi_vec), tail_o.as_mut_ptr(), tail);
        std::ptr::copy_nonoverlapping(vp.add(lo), buf_v.as_mut_ptr(), B);
        std::ptr::copy_nonoverlapping(op.add(lo), buf_o.as_mut_ptr(), B);
        std::ptr::copy_nonoverlapping(vp.add(hi_vec - B), buf_v.as_mut_ptr().add(B), B);
        std::ptr::copy_nonoverlapping(op.add(hi_vec - B), buf_o.as_mut_ptr().add(B), B);
    }
    let mut l_read = lo + B;
    let mut r_read = hi_vec - B;
    let mut l_write = lo;
    let mut r_write = hi;

    // SAFETY: loop invariants — `l_write ≤ l_read ≤ r_read ≤ r_write`,
    // `free_left = l_read - l_write` and `free_right = r_write - r_read`
    // sum to `2B + tail`. Reading a block from the side with less free
    // space first makes both frees ≥ B before the block's stores, and a
    // block stores at most B tuples per side, so the block's stores fit
    // the free window. Within a block the stores must additionally
    // never overtake the block's own not-yet-loaded chunks: a
    // left-read block is processed low→high (left stores trail the
    // ascending loads), a right-read block high→low (right stores,
    // which can descend into the block itself when `free_right == B`,
    // chase the descending loads). Full-width garbage lanes need 4 free
    // slots, covered by the same bound.
    unsafe {
        while l_read < r_read {
            let base;
            let rev;
            if l_read - l_write <= r_write - r_read {
                base = l_read;
                l_read += B;
                rev = 0;
            } else {
                r_read -= B;
                base = r_read;
                rev = B / 4 - 1;
            }
            for idx in 0..B / 4 {
                let k = idx ^ rev;
                let src = base + 4 * k;
                let v = _mm256_loadu_si256(vp.add(src) as *const __m256i);
                let o = _mm_loadu_si128(op.add(src) as *const __m128i);
                let m = mask4_before::<LTE>(v, pv, fv);
                // Crossing pairs: "before" lanes whose original
                // position is at or beyond the split.
                misplaced += ((m & pos_mask_ge(src, split)) as u32).count_ones() as usize;
                let cl = (m as u32).count_ones() as usize;
                // Left: compress the "before" lanes to the front, store
                // at the left cursor.
                let vl_c = _mm256_permutevar8x32_epi32(
                    v,
                    _mm256_loadu_si256(PERM64_FRONT[m].as_ptr() as *const __m256i),
                );
                let ol_c =
                    _mm_shuffle_epi8(o, _mm_loadu_si128(OID_FRONT[m].as_ptr() as *const __m128i));
                _mm256_storeu_si256(vp.add(l_write) as *mut __m256i, vl_c);
                _mm_storeu_si128(op.add(l_write) as *mut __m128i, ol_c);
                // Right: compress the rest to the back, store ending at
                // the right cursor.
                let mr = (!m) & 0xF;
                let vr_c = _mm256_permutevar8x32_epi32(
                    v,
                    _mm256_loadu_si256(PERM64_BACK[mr].as_ptr() as *const __m256i),
                );
                let or_c =
                    _mm_shuffle_epi8(o, _mm_loadu_si128(OID_BACK[mr].as_ptr() as *const __m128i));
                _mm256_storeu_si256(vp.add(r_write - 4) as *mut __m256i, vr_c);
                _mm_storeu_si128(op.add(r_write - 4) as *mut __m128i, or_c);
                l_write += cl;
                r_write -= 4 - cl;
            }
        }
    }
    debug_assert_eq!(l_read, r_read);

    // Flush the two buffered blocks and the tail scalarly: the free
    // window now exactly fits them (2B + tail slots).
    // SAFETY: every `place_scalar` consumes one free slot of the
    // remaining window.
    unsafe {
        for k in 0..2 * B {
            // Source positions: the first buffered block came from
            // `[lo, lo+B)`, the second from `[hi_vec-B, hi_vec)`.
            let src = if k < B { lo + k } else { hi_vec - 2 * B + k };
            let b = before_scalar(buf_v[k], pivot, flip, LTE);
            misplaced += (b && src >= split) as usize;
            place_scalar(vp, op, buf_v[k], buf_o[k], b, &mut l_write, &mut r_write);
        }
        for k in 0..tail {
            let b = before_scalar(tail_v[k], pivot, flip, LTE);
            misplaced += (b && hi_vec + k >= split) as usize;
            place_scalar(vp, op, tail_v[k], tail_o[k], b, &mut l_write, &mut r_write);
        }
    }
    debug_assert_eq!(l_write, r_write);
    debug_assert_eq!(l_write, split);
    *moved += 2 * misplaced as u64;
    split
}

/// The 4-bit mask of chunk lanes whose absolute position is `≥ bound`,
/// for a chunk starting at `pos` (lane `j` is position `pos + j`).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn pos_mask_ge(pos: usize, bound: usize) -> usize {
    0xF & !pos_mask_below(pos, bound)
}

/// Elements per class buffer the three-way scratch may keep across
/// cracks (~2 MB values + 1 MB OIDs per class at the cap); larger
/// allocations are released after the copyback.
#[cfg(target_arch = "x86_64")]
const SCRATCH_RETAIN: usize = 262_144;

/// Thread-local scratch for the three-way compress-scatter: one
/// (values, oids) buffer pair per output class.
#[cfg(target_arch = "x86_64")]
struct ThreeWayScratch {
    vals: [Vec<i64>; 3],
    oids: [Vec<u32>; 3],
}

#[cfg(target_arch = "x86_64")]
thread_local! {
    static SCRATCH3: std::cell::RefCell<ThreeWayScratch> =
        const {
            std::cell::RefCell::new(ThreeWayScratch {
                vals: [Vec::new(), Vec::new(), Vec::new()],
                oids: [Vec::new(), Vec::new(), Vec::new()],
            })
        };
}

/// The 4-bit masks `(before_k1, !before_k2)` of one ymm chunk.
///
/// # Safety
/// Caller guarantees AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn masks3(
    v: __m256i,
    p1: __m256i,
    lte1: bool,
    p2: __m256i,
    lte2: bool,
    fv: __m256i,
) -> (usize, usize) {
    let x = _mm256_xor_si256(v, fv);
    let m_l = if lte1 {
        (!_mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(x, p1)))) & 0xF
    } else {
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(p1, x)))
    } as usize;
    // G-class: !before_k2 — for `lte2` that is `x > p2`, otherwise
    // `x ≥ p2` ⇔ !(p2 > x).
    let m_g = if lte2 {
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(x, p2))) as usize
    } else {
        (!_mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(p2, x))) & 0xF) as usize
    };
    (m_l, m_g)
}

/// The 4-bit mask of chunk lanes whose absolute position is `< bound`,
/// for a chunk starting at `pos` (lane `j` is position `pos + j`).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn pos_mask_below(pos: usize, bound: usize) -> usize {
    if bound <= pos {
        0
    } else if bound >= pos + 4 {
        0xF
    } else {
        (1 << (bound - pos)) - 1
    }
}

/// The L- and G-class populations of `lanes[from..to)` — the counting
/// pass that fixes a three-way partition's split positions (and, run
/// over a sub-range, the per-region populations the middle-dominance
/// guard's displacement formula needs).
///
/// # Safety
/// Caller guarantees AVX2+popcnt and `from ≤ to ≤ lanes.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
#[allow(clippy::too_many_arguments)] // kernel entry point: partition state arrives unpacked by design
unsafe fn count3_avx2(
    lanes: &[i64],
    from: usize,
    to: usize,
    p1v: i64,
    lte1: bool,
    p2v: i64,
    lte2: bool,
    flip: i64,
) -> (usize, usize) {
    let p1 = _mm256_set1_epi64x(p1v);
    let p2 = _mm256_set1_epi64x(p2v);
    let fv = _mm256_set1_epi64x(flip);
    let ptr = lanes.as_ptr();
    let (mut c1, mut c3) = (0usize, 0usize);
    let mut i = from;
    // SAFETY: `i + 4 <= to` bounds every load.
    unsafe {
        while i + 4 <= to {
            let v = _mm256_loadu_si256(ptr.add(i) as *const __m256i);
            let (m_l, m_g) = masks3(v, p1, lte1, p2, lte2, fv);
            c1 += (m_l as u32).count_ones() as usize;
            c3 += (m_g as u32).count_ones() as usize;
            i += 4;
        }
    }
    while i < to {
        let x = lanes[i] ^ flip;
        let is_l = if lte1 { x <= p1v } else { x < p1v };
        let is_g = if lte2 { x > p2v } else { x >= p2v };
        c1 += is_l as usize;
        c3 += is_g as usize;
        i += 1;
    }
    (c1, c3)
}

/// AVX2 three-way partition, after the counting pass: compress-scatter
/// into the thread-local scratch, copy back contiguously. Returns the
/// split pair; `moved` gains the destination-displacement count.
///
/// # Safety
/// Caller guarantees AVX2+popcnt, `lo ≤ hi ≤ lanes.len() == oids.len()`,
/// `hi - lo ≥ SIMD_MIN`, `k1 ≤ k2` (compare-domain), and that
/// `c1`/`c3` are the exact L/G-class populations of `lanes[lo..hi)`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
#[allow(clippy::too_many_arguments)] // kernel entry point: partition state arrives unpacked by design
unsafe fn crack_three_avx2(
    lanes: &mut [i64],
    oids: &mut [u32],
    lo: usize,
    hi: usize,
    p1v: i64,
    lte1: bool,
    p2v: i64,
    lte2: bool,
    flip: i64,
    c1: usize,
    c3: usize,
    moved: &mut u64,
) -> (usize, usize) {
    let p1 = _mm256_set1_epi64x(p1v);
    let p2 = _mm256_set1_epi64x(p2v);
    let fv = _mm256_set1_epi64x(flip);
    let vp = lanes.as_mut_ptr();
    let op = oids.as_mut_ptr();
    let split1 = lo + c1;
    let split2 = hi - c3;

    let counts = [c1, split2 - split1, c3];
    SCRATCH3.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let scratch = &mut *scratch;
        for ((vbuf, obuf), &cnt) in scratch
            .vals
            .iter_mut()
            .zip(scratch.oids.iter_mut())
            .zip(counts.iter())
        {
            // One register of slack so full-width compress stores stay
            // inside the allocation.
            let need = cnt + 4;
            if vbuf.capacity() < need {
                vbuf.reserve(need - vbuf.len());
                obuf.reserve(need - obuf.len());
            }
        }
        let dv: [*mut i64; 3] = std::array::from_fn(|r| scratch.vals[r].as_mut_ptr());
        let do_: [*mut u32; 3] = std::array::from_fn(|r| scratch.oids[r].as_mut_ptr());
        let mut cur = [0usize; 3];
        let mut displaced = 0usize;

        // Scatter pass.
        let mut i = lo;
        // SAFETY: loads are bounded by `i + 4 <= hi`; scratch stores are
        // bounded by `cur[r] + 4 ≤ counts[r] + 4 ≤` the reserved
        // capacity (each class cursor can only advance to its final
        // population).
        unsafe {
            while i + 4 <= hi {
                let v = _mm256_loadu_si256(vp.add(i) as *const __m256i);
                let o = _mm_loadu_si128(op.add(i) as *const __m128i);
                let (m_l, m_g) = masks3(v, p1, lte1, p2, lte2, fv);
                let m_m = 0xF & !(m_l | m_g);
                // Displacement: lanes whose class region differs from
                // the region their position already lies in.
                let pos_l = pos_mask_below(i, split1);
                let pos_m = pos_mask_below(i, split2) & !pos_l;
                let pos_g = 0xF & !(pos_l | pos_m);
                displaced += ((m_l & !pos_l) as u32).count_ones() as usize
                    + ((m_m & !pos_m) as u32).count_ones() as usize
                    + ((m_g & !pos_g) as u32).count_ones() as usize;
                // Unconditional compress-store for every class: an
                // empty class stores garbage at its cursor and advances
                // it by zero (overwritten by the next store), which is
                // cheaper than a data-dependent "is this class present"
                // branch per chunk.
                for (r, m) in [(0usize, m_l), (1, m_m), (2, m_g)] {
                    let vc = _mm256_permutevar8x32_epi32(
                        v,
                        _mm256_loadu_si256(PERM64_FRONT[m].as_ptr() as *const __m256i),
                    );
                    let oc = _mm_shuffle_epi8(
                        o,
                        _mm_loadu_si128(OID_FRONT[m].as_ptr() as *const __m128i),
                    );
                    _mm256_storeu_si256(dv[r].add(cur[r]) as *mut __m256i, vc);
                    _mm_storeu_si128(do_[r].add(cur[r]) as *mut __m128i, oc);
                    cur[r] += (m as u32).count_ones() as usize;
                }
                i += 4;
            }
            while i < hi {
                let x = lanes[i] ^ flip;
                let is_l = if lte1 { x <= p1v } else { x < p1v };
                let is_g = if lte2 { x > p2v } else { x >= p2v };
                let r = if is_l {
                    0
                } else if is_g {
                    2
                } else {
                    1
                };
                let in_region = match r {
                    0 => i < split1,
                    1 => (split1..split2).contains(&i),
                    _ => i >= split2,
                };
                displaced += !in_region as usize;
                *dv[r].add(cur[r]) = lanes[i];
                *do_[r].add(cur[r]) = oids[i];
                cur[r] += 1;
                i += 1;
            }
        }
        debug_assert_eq!(cur, counts);

        // Copy back: the three class regions are contiguous.
        let starts = [lo, split1, split2];
        // SAFETY: each scratch prefix of `cnt` elements was fully
        // initialized by the scatter pass, and each destination range
        // lies inside `[lo, hi)`.
        unsafe {
            for ((&sv, &so), (&start, &cnt)) in dv
                .iter()
                .zip(do_.iter())
                .zip(starts.iter().zip(counts.iter()))
            {
                std::ptr::copy_nonoverlapping(sv, vp.add(start), cnt);
                std::ptr::copy_nonoverlapping(so, op.add(start), cnt);
            }
        }
        // Don't let one huge cold crack pin its scratch for the thread's
        // lifetime: pieces only shrink after the first few queries, so
        // capacity beyond the retention cap is dead weight.
        for (vbuf, obuf) in scratch.vals.iter_mut().zip(scratch.oids.iter_mut()) {
            if vbuf.capacity() > SCRATCH_RETAIN {
                vbuf.shrink_to(SCRATCH_RETAIN);
                obuf.shrink_to(SCRATCH_RETAIN);
            }
        }
        *moved += displaced as u64;
    });
    (split1, split2)
}

/// AVX2 residual scan: emit matching absolute positions in ascending
/// order.
///
/// # Safety
/// Caller guarantees AVX2 and `range.end ≤ lanes.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
unsafe fn scan_avx2(
    lanes: &[i64],
    range: Range<usize>,
    lo_key: Option<(i64, bool)>,
    hi_key: Option<(i64, bool)>,
    flip: i64,
    out: &mut Vec<usize>,
) {
    let fv = _mm256_set1_epi64x(flip);
    let lo_v = lo_key.map(|(p, lte)| (_mm256_set1_epi64x(p), p, lte));
    let hi_v = hi_key.map(|(p, lte)| (_mm256_set1_epi64x(p), p, lte));
    let ptr = lanes.as_ptr();
    let mut i = range.start;
    // SAFETY: `i + 4 <= range.end ≤ lanes.len()` bounds every load.
    unsafe {
        while i + 4 <= range.end {
            let v = _mm256_loadu_si256(ptr.add(i) as *const __m256i);
            let mut m = 0xFusize;
            if let Some((pv, _, lte)) = lo_v {
                // Matched ⇔ !before(lo_key): clear the "before" lanes.
                m &= !(if lte {
                    mask4_before::<true>(v, pv, fv)
                } else {
                    mask4_before::<false>(v, pv, fv)
                });
            }
            if let Some((pv, _, lte)) = hi_v {
                m &= if lte {
                    mask4_before::<true>(v, pv, fv)
                } else {
                    mask4_before::<false>(v, pv, fv)
                };
            }
            if m == 0xF {
                out.extend_from_slice(&[i, i + 1, i + 2, i + 3]);
            } else {
                let mut bits = m;
                while bits != 0 {
                    out.push(i + bits.trailing_zeros() as usize);
                    bits &= bits - 1;
                }
            }
            i += 4;
        }
    }
    while i < range.end {
        let x = lanes[i];
        let ok_lo = lo_v.is_none_or(|(_, p, lte)| !before_scalar(x, p, flip, lte));
        let ok_hi = hi_v.is_none_or(|(_, p, lte)| before_scalar(x, p, flip, lte));
        if ok_lo && ok_hi {
            out.push(i);
        }
        i += 1;
    }
}

/// AVX2 pending-delete probe: masked 4-lane gathers over the bitmap
/// words, per-lane variable shifts, lane-summed.
///
/// # Safety
/// Caller guarantees AVX2+popcnt.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,popcnt")]
unsafe fn count_deleted_avx2(oids: &[u32], words: &[u64]) -> usize {
    if words.is_empty() {
        return 0;
    }
    let len_w = _mm256_set1_epi64x(words.len() as i64);
    let sixty_three = _mm_set1_epi32(63);
    let one = _mm256_set1_epi64x(1);
    let zero = _mm256_setzero_si256();
    let base = words.as_ptr() as *const i64;
    let mut acc = _mm256_setzero_si256();
    let mut i = 0usize;
    // SAFETY: 16-byte loads are bounded by `i + 4 <= oids.len()`; the
    // gather mask clears every lane whose word index is out of range, so
    // no out-of-bounds word is dereferenced (masked-off gather elements
    // are architecturally not loaded).
    unsafe {
        while i + 4 <= oids.len() {
            let o = _mm_loadu_si128(oids.as_ptr().add(i) as *const __m128i);
            let idx32 = _mm_srli_epi32::<6>(o);
            let idx64 = _mm256_cvtepu32_epi64(idx32);
            let valid = _mm256_cmpgt_epi64(len_w, idx64);
            let shift = _mm256_cvtepu32_epi64(_mm_and_si128(o, sixty_three));
            let w = _mm256_mask_i32gather_epi64::<8>(zero, base, idx32, valid);
            let bit = _mm256_and_si256(_mm256_srlv_epi64(w, shift), one);
            acc = _mm256_add_epi64(acc, bit);
            i += 4;
        }
    }
    let mut parts = [0i64; 4];
    // SAFETY: `parts` matches the 32-byte store width.
    unsafe { _mm256_storeu_si256(parts.as_mut_ptr() as *mut __m256i, acc) };
    let mut cnt = (parts[0] + parts[1] + parts[2] + parts[3]) as usize;
    while i < oids.len() {
        let o = oids[i];
        let wi = (o >> 6) as usize;
        cnt += (wi < words.len() && (words[wi] >> (o & 63)) & 1 == 1) as usize;
        i += 1;
    }
    cnt
}

// ---------------------------------------------------------------------
// SSE4.2 tier: two-way partition only.
// ---------------------------------------------------------------------

/// The 2-bit "belongs before" mask of one xmm chunk.
///
/// # Safety
/// Caller guarantees SSE4.2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn mask2_before<const LTE: bool>(v: __m128i, pv: __m128i, fv: __m128i) -> usize {
    let x = _mm_xor_si128(v, fv);
    let m = if LTE {
        (!_mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(x, pv)))) & 0x3
    } else {
        _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpgt_epi64(pv, x)))
    };
    m as usize
}

/// SSE4.2 two-way partition: the AVX2 algorithm at 2 lanes per
/// register (`pcmpgtq` compares, `pshufb` compresses). The counting
/// pass is a plain scalar reduction (LLVM vectorizes it under the
/// enabled features).
///
/// # Safety
/// As [`crack_two_avx2`], with SSE4.2+SSSE3+popcnt.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2,ssse3,popcnt")]
#[allow(clippy::too_many_arguments)] // kernel entry point: partition state arrives unpacked by design
unsafe fn crack_two_sse42<const LTE: bool>(
    lanes: &mut [i64],
    oids: &mut [u32],
    lo: usize,
    hi: usize,
    pivot: i64,
    flip: i64,
    moved: &mut u64,
) -> usize {
    let mut c = 0usize;
    for &x in &lanes[lo..hi] {
        c += before_scalar(x, pivot, flip, LTE) as usize;
    }
    let split = lo + c;
    if c == 0 || split == hi {
        return split;
    }
    let mut misplaced = 0usize;

    let n = 2usize;
    let len = hi - lo;
    let tail = len % n;
    let hi_vec = hi - tail;
    let vp = lanes.as_mut_ptr();
    let op = oids.as_mut_ptr();
    let pv = _mm_set1_epi64x(pivot);
    let fv = _mm_set1_epi64x(flip);

    let mut tail_v = [0i64; 2];
    let mut tail_o = [0u32; 2];
    // SAFETY: `tail < 2` elements copied from `[hi_vec, hi)`.
    unsafe {
        std::ptr::copy_nonoverlapping(vp.add(hi_vec), tail_v.as_mut_ptr(), tail);
        std::ptr::copy_nonoverlapping(op.add(hi_vec), tail_o.as_mut_ptr(), tail);
    }
    // SAFETY: the spans `[lo, lo+2)` and `[hi_vec-2, hi_vec)` are in
    // bounds and disjoint (`SIMD_MIN ≥ 64`). OID pairs travel as 8-byte
    // loads/stores in the low half of an xmm.
    let (vf, of, vl, ol) = unsafe {
        (
            _mm_loadu_si128(vp.add(lo) as *const __m128i),
            _mm_loadl_epi64(op.add(lo) as *const __m128i),
            _mm_loadu_si128(vp.add(hi_vec - 2) as *const __m128i),
            _mm_loadl_epi64(op.add(hi_vec - 2) as *const __m128i),
        )
    };
    let mut l_read = lo + n;
    let mut r_read = hi_vec - n;
    let mut l_write = lo;
    let mut r_write = hi;

    // SAFETY: same invariant as `crack_two_avx2` with register width 2:
    // both frees are ≥ 2 before each pair of stores, so the full-width
    // value store (16 bytes) and the 8-byte OID store stay inside the
    // free window. The side choice is arithmetic (cmov), not a branch,
    // for the reason documented there.
    unsafe {
        while l_read < r_read {
            let from_left = (l_read - l_write <= r_write - r_read) as usize;
            let src = from_left * l_read + (1 - from_left) * (r_read - n);
            l_read += n * from_left;
            r_read -= n * (1 - from_left);
            let v = _mm_loadu_si128(vp.add(src) as *const __m128i);
            let o = _mm_loadl_epi64(op.add(src) as *const __m128i);
            let m = mask2_before::<LTE>(v, pv, fv);
            let pos_ge = (((src >= split) as usize) | (((src + 1 >= split) as usize) << 1)) & 0x3;
            misplaced += ((m & pos_ge) as u32).count_ones() as usize;
            let cl = (m as u32).count_ones() as usize;
            let vl_c = _mm_shuffle_epi8(v, _mm_loadu_si128(QW_FRONT[m].as_ptr() as *const __m128i));
            let ol_c =
                _mm_shuffle_epi8(o, _mm_loadu_si128(OID_FRONT[m].as_ptr() as *const __m128i));
            _mm_storeu_si128(vp.add(l_write) as *mut __m128i, vl_c);
            _mm_storel_epi64(op.add(l_write) as *mut __m128i, ol_c);
            let mr = (!m) & 0x3;
            let vr_c = _mm_shuffle_epi8(v, _mm_loadu_si128(QW_BACK[mr].as_ptr() as *const __m128i));
            // OID back-compress at 2 lanes: lane order `[unselected,
            // selected]` in the low 8 bytes.
            let or_c =
                _mm_shuffle_epi8(o, _mm_loadu_si128(OID_BACK2[mr].as_ptr() as *const __m128i));
            _mm_storeu_si128(vp.add(r_write - n) as *mut __m128i, vr_c);
            _mm_storel_epi64(op.add(r_write - n) as *mut __m128i, or_c);
            l_write += cl;
            r_write -= n - cl;
        }
    }
    debug_assert_eq!(l_read, r_read);

    let mut buf_v = [0i64; 4];
    let mut buf_o = [0u32; 4];
    // SAFETY: the stack buffers match the store widths.
    unsafe {
        _mm_storeu_si128(buf_v.as_mut_ptr() as *mut __m128i, vf);
        _mm_storel_epi64(buf_o.as_mut_ptr() as *mut __m128i, of);
        _mm_storeu_si128(buf_v.as_mut_ptr().add(2) as *mut __m128i, vl);
        _mm_storel_epi64(buf_o.as_mut_ptr().add(2) as *mut __m128i, ol);
    }
    // SAFETY: 4 + tail tuples remain and the free window exactly fits
    // them.
    unsafe {
        for k in 0..4 {
            let src = if k < 2 { lo + k } else { hi_vec - 4 + k };
            let b = before_scalar(buf_v[k], pivot, flip, LTE);
            misplaced += (b && src >= split) as usize;
            place_scalar(vp, op, buf_v[k], buf_o[k], b, &mut l_write, &mut r_write);
        }
        for k in 0..tail {
            let b = before_scalar(tail_v[k], pivot, flip, LTE);
            misplaced += (b && hi_vec + k >= split) as usize;
            place_scalar(vp, op, tail_v[k], tail_o[k], b, &mut l_write, &mut r_write);
        }
    }
    debug_assert_eq!(l_write, r_write);
    debug_assert_eq!(l_write, split);
    *moved += 2 * misplaced as u64;
    split
}

/// `pshufb` byte masks compressing 2×32-bit OID lanes (packed in the
/// low 8 bytes) named by a 2-bit mask to the **back** of the pair.
#[cfg(target_arch = "x86_64")]
static OID_BACK2: [[u8; 16]; 4] = build_oid2_back();

/// Build [`OID_BACK2`].
#[cfg(target_arch = "x86_64")]
const fn build_oid2_back() -> [[u8; 16]; 4] {
    let mut out = [[0u8; 16]; 4];
    let mut m = 0;
    while m < 4 {
        let order: [usize; 2] = lane_order::<2>(m, false);
        let mut k = 0;
        while k < 2 {
            let mut b = 0;
            while b < 4 {
                out[m][4 * k + b] = (4 * order[k] + b) as u8;
                b += 1;
            }
            k += 1;
        }
        m += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_order_tables_are_permutations() {
        let mut m = 0;
        while m < 16 {
            let front: [usize; 4] = lane_order::<4>(m, true);
            let back: [usize; 4] = lane_order::<4>(m, false);
            let mut seen_f = [false; 4];
            let mut seen_b = [false; 4];
            for k in 0..4 {
                seen_f[front[k]] = true;
                seen_b[back[k]] = true;
            }
            assert_eq!(seen_f, [true; 4], "front mask {m}");
            assert_eq!(seen_b, [true; 4], "back mask {m}");
            // Selected lanes occupy the first popcount slots (front) /
            // last popcount slots (back), in ascending lane order.
            let pc = (m as u32).count_ones() as usize;
            let mut prev = None;
            for &lane in front.iter().take(pc) {
                assert_eq!((m >> lane) & 1, 1);
                assert!(prev.is_none_or(|p| p < lane));
                prev = Some(lane);
            }
            let mut prev = None;
            for &lane in back.iter().skip(4 - pc) {
                assert_eq!((m >> lane) & 1, 1);
                assert!(prev.is_none_or(|p| p < lane));
                prev = Some(lane);
            }
            m += 1;
        }
    }

    #[test]
    fn detection_is_stable() {
        assert_eq!(level(), level());
        assert_eq!(available(), level().is_some());
    }

    #[test]
    fn unsupported_types_fall_back() {
        use crate::value_trait::OrdF64;
        let mut vals = vec![OrdF64(1.0); 100];
        let mut oids: Vec<u32> = (0..100).collect();
        let mut moved = 0;
        assert!(crack_two(
            &mut vals,
            &mut oids,
            0,
            100,
            BoundaryKey::lt(OrdF64(0.5)),
            &mut moved
        )
        .is_none());
        let mut small = vec![1i32; 100];
        assert!(crack_two(
            &mut small,
            &mut oids,
            0,
            100,
            BoundaryKey::lt(1i32),
            &mut moved
        )
        .is_none());
    }

    /// The SSE4.2 tier never runs through normal dispatch on an AVX2
    /// host, so its ~100-line unsafe loop would otherwise ship
    /// untested everywhere that matters; SSE4.2 is present on every
    /// AVX2 CPU, so drive the function directly.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse42_tier_matches_scalar_driven_directly() {
        if !(is_x86_feature_detected!("sse4.2")
            && is_x86_feature_detected!("ssse3")
            && is_x86_feature_detected!("popcnt"))
        {
            return;
        }
        let data = |n: usize, seed: u64| -> Vec<i64> {
            let mut x = 0x2545_F491_4F6C_DD1Du64 ^ seed;
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x >> 20) as i64
                })
                .collect()
        };
        // Sizes straddling the block structure (odd tails, sub-minimum
        // handled by the caller, so start at SIMD_MIN) and both
        // equal-side flags; plus one run in the u64 flip domain.
        for (n, lte, flip) in [
            (128usize, false, 0i64),
            (129, true, 0),
            (257, false, 0),
            (400, true, 0),
            (321, false, i64::MIN),
        ] {
            let vals = data(n, n as u64 * 31 + lte as u64);
            let mut sorted: Vec<i64> = vals.iter().map(|&v| v ^ flip).collect();
            sorted.sort_unstable();
            let pivot = sorted[n / 2];
            let mut sv: Vec<i64> = vals.clone();
            let mut so: Vec<u32> = (0..n as u32).collect();
            let mut sm = 0u64;
            // Scalar reference in the compare domain.
            for v in sv.iter_mut() {
                *v ^= flip;
            }
            let key = if lte {
                BoundaryKey::le(pivot)
            } else {
                BoundaryKey::lt(pivot)
            };
            let sp = crate::crack::crack_two(&mut sv, &mut so, 0, n, key, &mut sm);
            let mut xv = vals.clone();
            let mut xo: Vec<u32> = (0..n as u32).collect();
            let mut xm = 0u64;
            // SAFETY: features checked above; full-slice bounds.
            let xp = unsafe {
                if lte {
                    crack_two_sse42::<true>(&mut xv, &mut xo, 0, n, pivot, flip, &mut xm)
                } else {
                    crack_two_sse42::<false>(&mut xv, &mut xo, 0, n, pivot, flip, &mut xm)
                }
            };
            assert_eq!(sp, xp, "n={n} lte={lte}: split diverged");
            assert_eq!(sm, xm, "n={n} lte={lte}: moved diverged");
            for (i, &oid) in xo.iter().enumerate() {
                assert_eq!(xv[i], vals[oid as usize], "oids must travel");
            }
            let mut left: Vec<i64> = xv[..xp].iter().map(|&v| v ^ flip).collect();
            let mut want: Vec<i64> = sv[..sp].to_vec();
            left.sort_unstable();
            want.sort_unstable();
            assert_eq!(left, want, "n={n} lte={lte}: left multiset diverged");
        }
    }

    #[test]
    fn u64_rides_the_sign_flip() {
        if !available() {
            return;
        }
        // Values straddling the sign bit: an unsigned compare must not
        // be confused by the i64 reinterpretation.
        let n = 256usize;
        let vals: Vec<u64> = (0..n as u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ (1u64 << 63))
            .collect();
        let pivot = vals[n / 3];
        let mut v = vals.clone();
        let mut o: Vec<u32> = (0..n as u32).collect();
        let mut moved = 0;
        let p = crack_two(&mut v, &mut o, 0, n, BoundaryKey::lt(pivot), &mut moved)
            .expect("u64 columns take the vector kernel");
        assert_eq!(p, vals.iter().filter(|&&x| x < pivot).count());
        assert!(v[..p].iter().all(|&x| x < pivot));
        assert!(v[p..].iter().all(|&x| x >= pivot));
        for (i, &oid) in o.iter().enumerate() {
            assert_eq!(v[i], vals[oid as usize]);
        }

        // Crack-in-three across the sign bit too (AVX2 hosts).
        let (k1, k2) = (
            BoundaryKey::lt(vals[n / 4]),
            BoundaryKey::le(vals[2 * n / 3]),
        );
        let (k1, k2) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        let mut v = vals.clone();
        let mut o: Vec<u32> = (0..n as u32).collect();
        let mut moved = 0;
        if let Some((p1, p2)) = crack_three(&mut v, &mut o, 0, n, k1, k2, &mut moved) {
            assert!(v[..p1].iter().all(|&x| k1.before(x)));
            assert!(v[p1..p2].iter().all(|&x| !k1.before(x) && k2.before(x)));
            assert!(v[p2..].iter().all(|&x| !k2.before(x)));
            for (i, &oid) in o.iter().enumerate() {
                assert_eq!(v[i], vals[oid as usize]);
            }
        }
    }
}
