//! In-place partitioning primitives — the physical act of cracking.
//!
//! §3.4.2: "The Ξ cracker algorithm takes a value-range and performs a
//! shuffle-exchange sort over all tuples to cluster them according to their
//! tail value. The shuffling takes place in the original storage area."
//!
//! These functions operate on a value array and a parallel OID array (the
//! head of the cracked BAT): every swap is mirrored so the surrogate keys
//! travel with their values. Both a two-way (Hoare-style) and a single-pass
//! three-way (Dutch-national-flag) partition are provided; the three-way
//! variant is what gives double-sided range predicates their single-pass
//! crack-in-three.

use crate::value_trait::CrackValue;

/// A crack boundary: a value plus the side on which equal values fall.
///
/// `lte == false` places equal values to the *right* ("before" the boundary
/// means `x < value`); `lte == true` places them to the *left* ("before"
/// means `x ≤ value`). The derived lexicographic order — `bool` orders
/// `false < true` — matches physical order: the `< v` split position never
/// exceeds the `≤ v` split position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BoundaryKey<T> {
    /// Boundary value.
    pub value: T,
    /// Whether values equal to `value` belong before the boundary.
    pub lte: bool,
}

impl<T: CrackValue> BoundaryKey<T> {
    /// Boundary placing equal values on the right (`before ⇔ x < value`).
    pub fn lt(value: T) -> Self {
        BoundaryKey { value, lte: false }
    }

    /// Boundary placing equal values on the left (`before ⇔ x ≤ value`).
    pub fn le(value: T) -> Self {
        BoundaryKey { value, lte: true }
    }

    /// Does `x` belong before this boundary?
    #[inline(always)]
    pub fn before(&self, x: T) -> bool {
        if self.lte {
            x <= self.value
        } else {
            x < self.value
        }
    }
}

/// Swap positions `a` and `b` in both parallel arrays.
#[inline(always)]
fn swap_pair<T>(vals: &mut [T], oids: &mut [u32], a: usize, b: usize) {
    vals.swap(a, b);
    oids.swap(a, b);
}

/// Two-way in-place partition of `vals[lo..hi]` (and the parallel
/// `oids[lo..hi]`) around `key`: afterwards every element before the
/// returned split position satisfies `key.before(v)` and no element at or
/// after it does. Returns the absolute split position in `lo..=hi`.
///
/// `moved` is incremented by 2 per swap (two tuples relocated), matching
/// the paper's write accounting.
pub fn crack_two<T: CrackValue>(
    vals: &mut [T],
    oids: &mut [u32],
    lo: usize,
    hi: usize,
    key: BoundaryKey<T>,
    moved: &mut u64,
) -> usize {
    debug_assert!(lo <= hi && hi <= vals.len());
    let mut i = lo;
    let mut j = hi;
    loop {
        // Advance i over elements already on the correct (left) side.
        while i < j && key.before(vals[i]) {
            i += 1;
        }
        // Retreat j over elements already on the correct (right) side.
        while i < j && !key.before(vals[j - 1]) {
            j -= 1;
        }
        if i >= j {
            break;
        }
        swap_pair(vals, oids, i, j - 1);
        *moved += 2;
        i += 1;
        j -= 1;
    }
    i
}

/// Single-pass three-way partition of `vals[lo..hi]` around two boundaries
/// `k1 ≤ k2`: afterwards the slice is laid out as
///
/// ```text
/// [ before k1 | between k1 and k2 | after k2 ]
///             p1                  p2
/// ```
///
/// Returns `(p1, p2)` (absolute). This is the Dutch-national-flag sweep
/// specialised to boundary predicates; equal-value placement follows each
/// key's `lte` flag, so inclusive/exclusive range ends come out exact.
pub fn crack_three<T: CrackValue>(
    vals: &mut [T],
    oids: &mut [u32],
    lo: usize,
    hi: usize,
    k1: BoundaryKey<T>,
    k2: BoundaryKey<T>,
    moved: &mut u64,
) -> (usize, usize) {
    debug_assert!(lo <= hi && hi <= vals.len());
    debug_assert!(k1 <= k2, "boundaries must be ordered");
    let mut lt = lo; // next slot for the "before k1" region
    let mut i = lo; // scan cursor
    let mut gt = hi; // one past the last unexamined slot from the right
    while i < gt {
        let v = vals[i];
        if k1.before(v) {
            if i != lt {
                swap_pair(vals, oids, i, lt);
                *moved += 2;
            }
            lt += 1;
            i += 1;
        } else if !k2.before(v) {
            gt -= 1;
            if i != gt {
                swap_pair(vals, oids, i, gt);
                *moved += 2;
            }
            // Do not advance i: the swapped-in element is unexamined.
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn multiset(vals: &[i64], oids: &[u32]) -> Vec<(i64, u32)> {
        let mut pairs: Vec<_> = vals.iter().copied().zip(oids.iter().copied()).collect();
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn crack_two_basic_lt() {
        let mut vals = vec![5, 1, 9, 3, 7];
        let mut oids: Vec<u32> = (0..5).collect();
        let mut moved = 0;
        let n = vals.len();
        let p = crack_two(&mut vals, &mut oids, 0, n, BoundaryKey::lt(5), &mut moved);
        assert_eq!(p, 2);
        assert!(vals[..p].iter().all(|&v| v < 5));
        assert!(vals[p..].iter().all(|&v| v >= 5));
        // OIDs travelled with their values.
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(v, [5i64, 1, 9, 3, 7][oids[i] as usize]);
        }
    }

    #[test]
    fn crack_two_le_places_equals_left() {
        let mut vals = vec![5, 5, 1, 9, 5];
        let mut oids: Vec<u32> = (0..5).collect();
        let mut moved = 0;
        let n = vals.len();
        let p = crack_two(&mut vals, &mut oids, 0, n, BoundaryKey::le(5), &mut moved);
        assert_eq!(p, 4);
        assert!(vals[..p].iter().all(|&v| v <= 5));
        assert!(vals[p..].iter().all(|&v| v > 5));
    }

    #[test]
    fn crack_two_on_subrange_leaves_rest_untouched() {
        let mut vals = vec![100, 4, 2, 3, 1, -100];
        let mut oids: Vec<u32> = (0..6).collect();
        let mut moved = 0;
        let p = crack_two(&mut vals, &mut oids, 1, 5, BoundaryKey::lt(3), &mut moved);
        assert_eq!(vals[0], 100);
        assert_eq!(vals[5], -100);
        assert!(vals[1..p].iter().all(|&v| v < 3));
        assert!(vals[p..5].iter().all(|&v| v >= 3));
    }

    #[test]
    fn crack_two_already_partitioned_moves_nothing() {
        let mut vals = vec![1, 2, 8, 9];
        let mut oids: Vec<u32> = (0..4).collect();
        let mut moved = 0;
        let p = crack_two(&mut vals, &mut oids, 0, 4, BoundaryKey::lt(5), &mut moved);
        assert_eq!(p, 2);
        assert_eq!(moved, 0);
    }

    #[test]
    fn crack_two_empty_and_singleton() {
        let mut vals: Vec<i64> = vec![];
        let mut oids: Vec<u32> = vec![];
        let mut moved = 0;
        assert_eq!(
            crack_two(&mut vals, &mut oids, 0, 0, BoundaryKey::lt(5), &mut moved),
            0
        );
        let mut vals = vec![7i64];
        let mut oids = vec![0u32];
        let p = crack_two(&mut vals, &mut oids, 0, 1, BoundaryKey::lt(5), &mut moved);
        assert_eq!(p, 0);
        let p = crack_two(&mut vals, &mut oids, 0, 1, BoundaryKey::lt(10), &mut moved);
        assert_eq!(p, 1);
    }

    #[test]
    fn crack_three_basic_inclusive_range() {
        // Range query 3 <= v <= 7: k1 = lt(3), k2 = le(7).
        let mut vals = vec![9, 3, 1, 7, 5, 2, 8];
        let mut oids: Vec<u32> = (0..7).collect();
        let mut moved = 0;
        let n = vals.len();
        let (p1, p2) = crack_three(
            &mut vals,
            &mut oids,
            0,
            n,
            BoundaryKey::lt(3),
            BoundaryKey::le(7),
            &mut moved,
        );
        assert!(vals[..p1].iter().all(|&v| v < 3));
        assert!(vals[p1..p2].iter().all(|&v| (3..=7).contains(&v)));
        assert!(vals[p2..].iter().all(|&v| v > 7));
        assert_eq!(p1, 2);
        assert_eq!(p2, 5);
    }

    #[test]
    fn crack_three_exclusive_ends() {
        // Range query 3 < v < 7: k1 = le(3), k2 = lt(7).
        let mut vals = vec![3, 7, 4, 6, 3, 7, 5];
        let mut oids: Vec<u32> = (0..7).collect();
        let mut moved = 0;
        let n = vals.len();
        let (p1, p2) = crack_three(
            &mut vals,
            &mut oids,
            0,
            n,
            BoundaryKey::le(3),
            BoundaryKey::lt(7),
            &mut moved,
        );
        assert!(vals[..p1].iter().all(|&v| v <= 3));
        assert!(vals[p1..p2].iter().all(|&v| v > 3 && v < 7));
        assert!(vals[p2..].iter().all(|&v| v >= 7));
    }

    #[test]
    fn crack_three_point_query_isolates_equals() {
        // v == 5: k1 = lt(5), k2 = le(5).
        let mut vals = vec![5, 2, 5, 8, 5, 1];
        let mut oids: Vec<u32> = (0..6).collect();
        let mut moved = 0;
        let n = vals.len();
        let (p1, p2) = crack_three(
            &mut vals,
            &mut oids,
            0,
            n,
            BoundaryKey::lt(5),
            BoundaryKey::le(5),
            &mut moved,
        );
        assert_eq!(&vals[p1..p2], &[5, 5, 5]);
    }

    #[test]
    fn crack_three_empty_middle() {
        let mut vals = vec![1, 9, 2, 8];
        let mut oids: Vec<u32> = (0..4).collect();
        let mut moved = 0;
        let (p1, p2) = crack_three(
            &mut vals,
            &mut oids,
            0,
            4,
            BoundaryKey::lt(5),
            BoundaryKey::le(5),
            &mut moved,
        );
        assert_eq!(p1, p2, "no value equals 5, middle region is empty");
    }

    #[test]
    fn boundary_key_ordering_matches_physical_order() {
        assert!(BoundaryKey::lt(5) < BoundaryKey::le(5));
        assert!(BoundaryKey::le(4) < BoundaryKey::lt(5));
    }

    proptest! {
        #[test]
        fn prop_crack_two_partitions_and_preserves_multiset(
            mut vals in proptest::collection::vec(-50i64..50, 0..200),
            pivot in -60i64..60,
            lte in proptest::bool::ANY,
        ) {
            let mut oids: Vec<u32> = (0..vals.len() as u32).collect();
            let before = multiset(&vals, &oids);
            let key = if lte { BoundaryKey::le(pivot) } else { BoundaryKey::lt(pivot) };
            let mut moved = 0;
            let n = vals.len();
            let p = crack_two(&mut vals, &mut oids, 0, n, key, &mut moved);
            prop_assert!(vals[..p].iter().all(|&v| key.before(v)));
            prop_assert!(vals[p..].iter().all(|&v| !key.before(v)));
            prop_assert_eq!(multiset(&vals, &oids), before);
        }

        #[test]
        fn prop_crack_three_partitions_and_preserves_multiset(
            mut vals in proptest::collection::vec(-50i64..50, 0..200),
            a in -60i64..60,
            b in -60i64..60,
            lte1 in proptest::bool::ANY,
            lte2 in proptest::bool::ANY,
        ) {
            let mut k1 = BoundaryKey { value: a, lte: lte1 };
            let mut k2 = BoundaryKey { value: b, lte: lte2 };
            if k1 > k2 { std::mem::swap(&mut k1, &mut k2); }
            let mut oids: Vec<u32> = (0..vals.len() as u32).collect();
            let before = multiset(&vals, &oids);
            let mut moved = 0;
            let n = vals.len();
            let (p1, p2) = crack_three(&mut vals, &mut oids, 0, n, k1, k2, &mut moved);
            prop_assert!(p1 <= p2);
            prop_assert!(vals[..p1].iter().all(|&v| k1.before(v)));
            prop_assert!(vals[p1..p2].iter().all(|&v| !k1.before(v) && k2.before(v)));
            prop_assert!(vals[p2..].iter().all(|&v| !k2.before(v)));
            prop_assert_eq!(multiset(&vals, &oids), before);
        }

        #[test]
        fn prop_crack_two_agrees_with_stable_filter_count(
            mut vals in proptest::collection::vec(-20i64..20, 0..100),
            pivot in -25i64..25,
        ) {
            let expected = vals.iter().filter(|&&v| v < pivot).count();
            let mut oids: Vec<u32> = (0..vals.len() as u32).collect();
            let mut moved = 0;
            let n = vals.len();
            let p = crack_two(&mut vals, &mut oids, 0, n, BoundaryKey::lt(pivot), &mut moved);
            prop_assert_eq!(p, expected);
        }

        #[test]
        fn prop_oids_always_travel_with_values(
            orig in proptest::collection::vec(-50i64..50, 1..150),
            pivot in -60i64..60,
        ) {
            let mut vals = orig.clone();
            let mut oids: Vec<u32> = (0..vals.len() as u32).collect();
            let mut moved = 0;
            let n = vals.len();
            crack_two(&mut vals, &mut oids, 0, n, BoundaryKey::lt(pivot), &mut moved);
            for (i, &oid) in oids.iter().enumerate() {
                prop_assert_eq!(vals[i], orig[oid as usize]);
            }
        }
    }
}
