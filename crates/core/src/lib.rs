#![warn(missing_docs)]
//! # cracker-core — the database cracker
//!
//! The primary contribution of *Cracking the Database Store* (Kersten &
//! Manegold, CIDR 2005): instead of maintaining indices at update time, the
//! store is **cracked** — physically reorganized — as a byproduct of query
//! processing. "Every query is first analyzed for its contribution to break
//! the database into multiple pieces, such that both the required subset is
//! easily retrieved and subsequent queries may benefit from the new
//! partitioning structure."
//!
//! ## The four cracker operators (§3.1)
//!
//! * **Ξ (Xi)** — selection cracking: [`column::CrackerColumn`] keeps a
//!   shuffled copy of one attribute; each range predicate partitions at most
//!   the two *border pieces* in place, after which the answer is a
//!   contiguous slot range. One-sided predicates crack a piece in two,
//!   double-sided ranges (and point queries, viewed as `low == high`) crack
//!   in three — restoring the "consecutive ranges" property the paper calls
//!   out.
//! * **Ψ (Psi)** — projection cracking: [`project`] splits a relation
//!   vertically into two fragments, each carrying the surrogate `oid`
//!   needed for loss-less 1:1 reconstruction.
//! * **^ (Wedge)** — join cracking: [`join`] shuffles both join operands so
//!   that matching tuples form consecutive areas — a dynamically built
//!   semijoin index yielding the four pieces `R⋉S`, `R∖(R⋉S)`, `S⋉R`,
//!   `S∖(S⋉R)`.
//! * **Ω (Omega)** — group-by cracking: [`group`] clusters a column into an
//!   n-way partition, one consecutive piece per group value.
//!
//! ## The cracker index (§3.2, §5.2)
//!
//! [`index::CrackerIndex`] is the "decorated interval tree": an ordered map
//! from boundary values to split positions, decorated with per-piece
//! statistics and recency. It lives purely in memory and is never
//! persisted — exactly the paper's prototype, whose indices "are not saved
//! between sessions".
//!
//! ## Beyond the happy path
//!
//! * [`fuse`] — piece-fusion heuristics for when "cracking is completely
//!   overshadowed by cracker index maintenance overhead" (§3.2): because
//!   fusion is the inverse of cracking and our pieces are physically
//!   contiguous, fusing is *index trimming* — no tuple moves.
//! * [`updates`] — the paper's open question "what are the effects of
//!   updates on the scheme proposed?": pending insert/delete staging areas
//!   merged into the cracked store on demand.
//! * [`lineage`] — the lineage DAG of Figures 5 and 6, recording which
//!   cracker produced which piece so originals remain reconstructible.

pub mod column;
pub mod concurrent;
pub mod config;
pub mod crack;
pub mod export;
pub mod fuse;
pub mod group;
pub mod index;
pub mod join;
pub mod kernel;
pub mod lineage;
pub mod paged;
pub mod policy;
pub mod pred;
pub mod project;
pub mod sharded;
pub mod sideways;
pub(crate) mod simd;
pub mod snapshot;
pub mod sorted;
pub mod stats;
pub mod stochastic;
pub mod sync;
pub mod updates;
pub mod value_trait;

pub use column::{CrackerColumn, Selection};
pub use concurrent::SharedCrackerColumn;
pub use config::{CrackMode, CrackerConfig, FusionPolicy};
pub use index::CrackerIndex;
pub use kernel::{simd_supported, CrackKernel, KernelPolicy, BAND_UPPER};
pub use paged::PagedCracker;
pub use policy::{CrackPolicy, PolicyCracker};
pub use pred::RangePred;
pub use sharded::{ConcurrencyMode, ConcurrentColumn, ShardedCrackerColumn, ShardedSelection};
pub use sideways::{CrackerMap, SidewaysCracker};
pub use snapshot::{BoundaryRecord, ColumnSnapshot, ConcurrentSnapshot};
pub use stats::CrackStats;
pub use stochastic::{StochasticCracker, StochasticPolicy};
pub use updates::OidSet;
pub use value_trait::{CrackValue, OrdF64};
