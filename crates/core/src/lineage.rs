//! Piece lineage — Figures 5 and 6 of the paper.
//!
//! "Cracking the database into pieces should be complemented with
//! information to reconstruct its original state and result tables, which
//! means we have to administer the lineage of each piece, i.e. its source
//! and the Ξ, Ψ, ^ or Ω operators applied" (§3.2).
//!
//! [`LineageGraph`] is that administration: an append-only DAG whose nodes
//! are pieces (`R[1]`, `R[2]`, ... per the paper's labels) and whose
//! operator applications record which pieces a cracker consumed and
//! produced. The key query is [`LineageGraph::reconstruction_set`]: the
//! current leaves whose union (Ξ, ^, Ω) or surrogate join (Ψ)
//! re-constitutes an original relation — the loss-less property of §3.1.
//! The graph "can be controlled by selectively trimming ... applying the
//! inverse operation to the nodes": [`LineageGraph::undo`] removes an
//! operator application and re-exposes its inputs as leaves.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a piece node in the lineage graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PieceId(pub usize);

/// Identifier of an operator application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub usize);

/// Which cracker produced a set of pieces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrackOp {
    /// Ξ selection cracking, annotated with the predicate text.
    Xi(String),
    /// Ψ projection cracking, annotated with the projection list.
    Psi(Vec<String>),
    /// ^ join cracking, annotated with the join predicate text.
    Wedge(String),
    /// Ω group-by cracking, annotated with the grouping attributes.
    Omega(Vec<String>),
}

impl fmt::Display for CrackOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrackOp::Xi(p) => write!(f, "Ξ({p})"),
            CrackOp::Psi(attrs) => write!(f, "Ψ({})", attrs.join(",")),
            CrackOp::Wedge(p) => write!(f, "^({p})"),
            CrackOp::Omega(attrs) => write!(f, "Ω({})", attrs.join(",")),
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PieceNode {
    /// Display label, e.g. `R` for a root or `R[3]` for a derived piece.
    label: String,
    /// Root relation this piece descends from.
    root: String,
    /// Operator that produced this piece (None for roots).
    produced_by: Option<OpId>,
    /// Operator that consumed this piece (None while it is a leaf).
    consumed_by: Option<OpId>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct OpNode {
    op: CrackOp,
    inputs: Vec<PieceId>,
    outputs: Vec<PieceId>,
}

/// The lineage DAG.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LineageGraph {
    pieces: Vec<PieceNode>,
    ops: Vec<OpNode>,
    /// Per-root counter for `R[k]` labels.
    counters: BTreeMap<String, usize>,
    /// Root name -> root piece.
    roots: BTreeMap<String, PieceId>,
}

impl LineageGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an original relation (a lineage root).
    pub fn add_root(&mut self, name: impl Into<String>) -> PieceId {
        let name = name.into();
        let id = PieceId(self.pieces.len());
        self.pieces.push(PieceNode {
            label: name.clone(),
            root: name.clone(),
            produced_by: None,
            consumed_by: None,
        });
        self.counters.insert(name.clone(), 0);
        self.roots.insert(name, id);
        id
    }

    /// The root piece for a relation name.
    pub fn root(&self, name: &str) -> Option<PieceId> {
        self.roots.get(name).copied()
    }

    /// Record an operator application consuming `inputs` (which must all be
    /// leaves) and producing `n_outputs_per_input[i]` pieces from input
    /// `i`. Returns the new piece IDs, grouped per input, labelled
    /// `Root[k]` with per-root counters — matching the paper's Figure 5
    /// numbering.
    ///
    /// # Panics
    /// Panics if an input is not a live leaf (already consumed pieces
    /// cannot be cracked again).
    pub fn apply(
        &mut self,
        op: CrackOp,
        inputs: &[PieceId],
        n_outputs_per_input: &[usize],
    ) -> Vec<Vec<PieceId>> {
        assert_eq!(
            inputs.len(),
            n_outputs_per_input.len(),
            "one output arity per input"
        );
        for &p in inputs {
            assert!(
                self.pieces[p.0].consumed_by.is_none(),
                "piece {} already consumed",
                self.pieces[p.0].label
            );
        }
        let op_id = OpId(self.ops.len());
        let mut all_outputs = Vec::new();
        let mut grouped = Vec::new();
        for (&input, &n) in inputs.iter().zip(n_outputs_per_input) {
            self.pieces[input.0].consumed_by = Some(op_id);
            let root = self.pieces[input.0].root.clone();
            let mut group = Vec::with_capacity(n);
            for _ in 0..n {
                let counter = self.counters.entry(root.clone()).or_insert(0);
                *counter += 1;
                let label = format!("{root}[{counter}]");
                let id = PieceId(self.pieces.len());
                self.pieces.push(PieceNode {
                    label,
                    root: root.clone(),
                    produced_by: Some(op_id),
                    consumed_by: None,
                });
                group.push(id);
                all_outputs.push(id);
            }
            grouped.push(group);
        }
        self.ops.push(OpNode {
            op,
            inputs: inputs.to_vec(),
            outputs: all_outputs,
        });
        grouped
    }

    /// Undo an operator application ("applying the inverse operation to the
    /// nodes"): its outputs must all still be leaves; they are removed from
    /// the leaf set and the inputs become leaves again. Returns `false`
    /// when any output has already been consumed (undo must cascade from
    /// the leaves inward).
    pub fn undo(&mut self, op: OpId) -> bool {
        let outputs = self.ops[op.0].outputs.clone();
        if outputs
            .iter()
            .any(|&p| self.pieces[p.0].consumed_by.is_some())
        {
            return false;
        }
        // Mark outputs as consumed-by-undo (tombstone via self-consumption).
        for &p in &outputs {
            self.pieces[p.0].consumed_by = Some(op);
        }
        let inputs = self.ops[op.0].inputs.clone();
        for &p in &inputs {
            self.pieces[p.0].consumed_by = None;
        }
        true
    }

    /// Display label for a piece.
    pub fn label(&self, id: PieceId) -> &str {
        &self.pieces[id.0].label
    }

    /// The current leaves descending from `root`: exactly the pieces whose
    /// union/surrogate-join reconstructs the original relation.
    pub fn reconstruction_set(&self, root: &str) -> Vec<PieceId> {
        self.pieces
            .iter()
            .enumerate()
            .filter(|(_, n)| n.root == root && n.consumed_by.is_none())
            .map(|(i, _)| PieceId(i))
            .collect()
    }

    /// Human-readable reconstruction expression, e.g.
    /// `R = R[1] ∪ R[3] ∪ R[5] ∪ R[6]`.
    pub fn reconstruction_expr(&self, root: &str) -> String {
        let labels: Vec<&str> = self
            .reconstruction_set(root)
            .into_iter()
            .map(|p| self.label(p))
            .collect();
        format!("{root} = {}", labels.join(" ∪ "))
    }

    /// The operator that produced a piece, if any.
    pub fn producer(&self, id: PieceId) -> Option<(&CrackOp, &[PieceId])> {
        self.pieces[id.0]
            .produced_by
            .map(|op| (&self.ops[op.0].op, self.ops[op.0].inputs.as_slice()))
    }

    /// Number of live (leaf) pieces across all roots.
    pub fn leaf_count(&self) -> usize {
        self.pieces
            .iter()
            .filter(|n| n.consumed_by.is_none())
            .count()
    }

    /// Number of recorded operator applications.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduce the paper's Figure 5 / §3.2 example:
    ///
    /// ```sql
    /// select * from R where R.a < 10;
    /// select * from R, S where R.k = S.k and R.a < 5;
    /// select * from S where S.b > 25;
    /// ```
    fn figure5() -> LineageGraph {
        let mut g = LineageGraph::new();
        let r = g.add_root("R");
        let s = g.add_root("S");
        // Query 1: Ξ(R.a<10) cracks R into R[1] (a<10) and R[2] (a>=10).
        let out = g.apply(CrackOp::Xi("R.a<10".into()), &[r], &[2]);
        let (_r1, r2) = (out[0][0], out[0][1]);
        // Query 2: Ξ(R.a<5) limits search to the piece holding small a;
        // cracks it into R[3] and R[4].
        let out = g.apply(CrackOp::Xi("R.a<5".into()), &[r2], &[2]);
        let (_r3, r4) = (out[0][0], out[0][1]);
        // ^(R[4], S) on k: R[4] -> R[5], R[6]; S -> S[1], S[2].
        let out = g.apply(CrackOp::Wedge("R.k=S.k".into()), &[r4, s], &[2, 2]);
        let (s1, s2) = (out[1][0], out[1][1]);
        // Query 3: Ξ(S.b>25) must inspect both S pieces ("nothing has been
        // derived about attribute b"), cracking each in two.
        g.apply(CrackOp::Xi("S.b>25".into()), &[s1, s2], &[2, 2]);
        g
    }

    #[test]
    fn figure5_reconstruction_sets_match_the_paper() {
        let g = figure5();
        // "R can be reconstructed by taking the union over R[1], R[3],
        // R[5], and R[6]".
        let r_set: Vec<&str> = g
            .reconstruction_set("R")
            .into_iter()
            .map(|p| g.label(p))
            .collect();
        assert_eq!(r_set, vec!["R[1]", "R[3]", "R[5]", "R[6]"]);
        // "and S using S[5], S[6], S[7], and S[8]" — our per-root counters
        // label S's pieces S[1..2] (wedge) then S[3..6] (final Ξ); the
        // paper numbers them globally after the R pieces. Same structure:
        // the four leaves are the Ξ outputs.
        let s_set: Vec<&str> = g
            .reconstruction_set("S")
            .into_iter()
            .map(|p| g.label(p))
            .collect();
        assert_eq!(s_set, vec!["S[3]", "S[4]", "S[5]", "S[6]"]);
    }

    #[test]
    fn reconstruction_expr_is_readable() {
        let g = figure5();
        assert_eq!(g.reconstruction_expr("R"), "R = R[1] ∪ R[3] ∪ R[5] ∪ R[6]");
    }

    #[test]
    fn consumed_pieces_cannot_be_cracked_again() {
        let mut g = LineageGraph::new();
        let r = g.add_root("R");
        g.apply(CrackOp::Xi("a<1".into()), &[r], &[2]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            g.apply(CrackOp::Xi("a<2".into()), &[r], &[2]);
        }));
        assert!(result.is_err(), "root was already consumed");
    }

    #[test]
    fn producer_tracks_the_operator() {
        let mut g = LineageGraph::new();
        let r = g.add_root("R");
        let out = g.apply(CrackOp::Xi("a<10".into()), &[r], &[3]);
        let (op, inputs) = g.producer(out[0][1]).unwrap();
        assert_eq!(op, &CrackOp::Xi("a<10".into()));
        assert_eq!(inputs, &[r]);
        assert!(g.producer(r).is_none());
    }

    #[test]
    fn undo_restores_inputs_as_leaves() {
        let mut g = LineageGraph::new();
        let r = g.add_root("R");
        g.apply(CrackOp::Xi("a<10".into()), &[r], &[2]);
        assert_eq!(g.leaf_count(), 2);
        assert!(g.undo(OpId(0)));
        assert_eq!(g.leaf_count(), 1);
        let set = g.reconstruction_set("R");
        assert_eq!(set, vec![r]);
    }

    #[test]
    fn undo_refuses_when_outputs_were_consumed() {
        let mut g = LineageGraph::new();
        let r = g.add_root("R");
        let out = g.apply(CrackOp::Xi("a<10".into()), &[r], &[2]);
        g.apply(CrackOp::Xi("a<5".into()), &[out[0][0]], &[2]);
        assert!(!g.undo(OpId(0)), "child op still present");
        assert!(g.undo(OpId(1)), "leaf-most op can be undone");
        assert!(g.undo(OpId(0)), "now the first op can go too");
        assert_eq!(g.reconstruction_expr("R"), "R = R");
    }

    #[test]
    fn omega_and_psi_ops_render() {
        assert_eq!(
            CrackOp::Omega(vec!["g".into(), "h".into()]).to_string(),
            "Ω(g,h)"
        );
        assert_eq!(CrackOp::Psi(vec!["a".into()]).to_string(), "Ψ(a)");
        assert_eq!(CrackOp::Xi("x<1".into()).to_string(), "Ξ(x<1)");
        assert_eq!(CrackOp::Wedge("r.k=s.k".into()).to_string(), "^(r.k=s.k)");
    }

    #[test]
    fn alternate_lineage_figure6_interchanged_ops() {
        // Figure 6: the Ξ and ^ of the second query interchanged — wedge
        // first on R[2], then Ξ on the R-side match piece.
        let mut g = LineageGraph::new();
        let r = g.add_root("R");
        let s = g.add_root("S");
        let out = g.apply(CrackOp::Xi("R.a<10".into()), &[r], &[2]);
        let r2 = out[0][1];
        let out = g.apply(CrackOp::Wedge("R.k=S.k".into()), &[r2, s], &[2, 2]);
        let (r3, _r4) = (out[0][0], out[0][1]);
        let (s1, s2) = (out[1][0], out[1][1]);
        g.apply(CrackOp::Xi("R.a<5".into()), &[r3], &[2]);
        g.apply(CrackOp::Xi("S.b>25".into()), &[s1, s2], &[2, 2]);
        // Different graph shape, but both reconstruction sets still tile.
        assert_eq!(g.reconstruction_set("R").len(), 4);
        assert_eq!(g.reconstruction_set("S").len(), 4);
    }

    #[test]
    fn multiple_roots_are_independent() {
        let mut g = LineageGraph::new();
        g.add_root("R");
        g.add_root("S");
        assert_eq!(g.reconstruction_expr("S"), "S = S");
        assert_eq!(g.reconstruction_set("T"), Vec::<PieceId>::new());
        assert_eq!(g.op_count(), 0);
    }
}
