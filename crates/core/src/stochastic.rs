//! Stochastic cracking: robustness against adversarial query sequences.
//!
//! The paper's outlook experiment draws ranges "at random" (§2.2), and
//! under random workloads plain cracking converges fast. Its summary,
//! however, asks for "heuristics or learning algorithms" to keep the
//! scheme healthy in general (§7) — and the best-known failure mode,
//! identified by the follow-on literature (Halim et al., *Stochastic
//! Database Cracking*, VLDB 2012), is the **sequential workload**: if
//! queries sweep the domain in order (`[0,w), [w,2w), ...` — exactly what
//! a batch export or a time-ordered scan produces), every query's upper
//! boundary falls into the one giant not-yet-cracked tail piece. Each
//! query then scans nearly the whole tail: per-query cost stays Θ(N) and
//! the total degenerates to Θ(k·N), the very behaviour cracking was meant
//! to escape.
//!
//! The fix is to *decouple reorganization from the query bounds*: in
//! addition to the exact boundary cracks, cut large pieces at pivots the
//! workload cannot control. This module implements the canonical
//! variants as a [`StochasticPolicy`] wrapped around
//! [`CrackerColumn`]:
//!
//! * **`DD1R`** — *data-driven, one random cut*: before resolving a query
//!   boundary inside a large piece, crack that piece once at a random
//!   element's value. Cheap (one extra partition pass over pieces that
//!   had to be touched anyway) and enough to shrink the tail
//!   geometrically in expectation.
//! * **`DDR`** — *data-driven recursive random*: keep cutting the
//!   sub-piece that still contains the boundary until it is at most
//!   `floor` tuples. Heavier first queries, tighter convergence.
//! * **`DD1C` / `DDC`** — the center-cut counterparts: the pivot is the
//!   median of the piece (computed exactly via quickselect on a scratch
//!   copy). Deterministic balance at a higher per-cut cost.
//!
//! All variants leave the answer computation untouched: the auxiliary
//! cuts only add boundaries to the cracker index, so every invariant of
//! the plain column (tiling, multiset preservation, contiguous answers)
//! is preserved — the property tests below run the same oracle the plain
//! column is tested against.

use crate::column::{CrackerColumn, Selection};
use crate::config::CrackerConfig;
use crate::crack::{crack_two, BoundaryKey};
use crate::pred::RangePred;
use crate::value_trait::CrackValue;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Where auxiliary (non-query-driven) cuts come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StochasticPolicy {
    /// Plain cracking — no auxiliary cuts (the baseline).
    Vanilla,
    /// One random cut per touched large piece (`DD1R`).
    DD1R,
    /// Recursive random cuts until the boundary's piece is ≤ `floor`.
    DDR {
        /// Stop recursing once the enclosing piece is at most this big.
        floor: usize,
    },
    /// One median cut per touched large piece (`DD1C`).
    DD1C,
    /// Recursive median cuts until the boundary's piece is ≤ `floor`
    /// (`DDC`).
    DDC {
        /// Stop recursing once the enclosing piece is at most this big.
        floor: usize,
    },
}

impl StochasticPolicy {
    /// True when the policy adds auxiliary cuts at all.
    pub fn is_auxiliary(&self) -> bool {
        !matches!(self, StochasticPolicy::Vanilla)
    }

    /// Short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            StochasticPolicy::Vanilla => "vanilla",
            StochasticPolicy::DD1R => "dd1r",
            StochasticPolicy::DDR { .. } => "ddr",
            StochasticPolicy::DD1C => "dd1c",
            StochasticPolicy::DDC { .. } => "ddc",
        }
    }
}

/// Counters specific to the stochastic layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StochasticStats {
    /// Auxiliary cuts performed.
    pub auxiliary_cuts: u64,
    /// Tuples touched by auxiliary cuts (each cut scans its piece once).
    pub auxiliary_touched: u64,
}

/// A cracked column whose large pieces are additionally cut at
/// workload-independent pivots.
#[derive(Debug, Clone)]
pub struct StochasticCracker<T> {
    col: CrackerColumn<T>,
    policy: StochasticPolicy,
    rng: SmallRng,
    stats: StochasticStats,
    /// Pieces at or below this size receive no auxiliary cuts. Defaults
    /// to the config's `min_piece_size` scaled up; kept separate so the
    /// cut-off granule and the stochastic floor can be swept
    /// independently.
    aux_threshold: usize,
}

impl<T: CrackValue> StochasticCracker<T> {
    /// Wrap a value vector with the given policy. `seed` makes runs
    /// reproducible.
    pub fn new(vals: Vec<T>, policy: StochasticPolicy, seed: u64) -> Self {
        Self::with_config(vals, CrackerConfig::default(), policy, seed)
    }

    /// Wrap with an explicit cracker configuration.
    pub fn with_config(
        vals: Vec<T>,
        config: CrackerConfig,
        policy: StochasticPolicy,
        seed: u64,
    ) -> Self {
        let aux_threshold = match policy {
            StochasticPolicy::DDR { floor } | StochasticPolicy::DDC { floor } => {
                floor.max(config.min_piece_size)
            }
            _ => config.min_piece_size.max(128),
        };
        StochasticCracker {
            col: CrackerColumn::with_config(vals, config),
            policy,
            rng: SmallRng::seed_from_u64(seed),
            stats: StochasticStats::default(),
            aux_threshold,
        }
    }

    /// The wrapped column (index, values, base statistics).
    pub fn column(&self) -> &CrackerColumn<T> {
        &self.col
    }

    /// The policy in force.
    pub fn policy(&self) -> StochasticPolicy {
        self.policy
    }

    /// Auxiliary-cut counters.
    pub fn stats(&self) -> &StochasticStats {
        &self.stats
    }

    /// Total tuples touched by this column, query-driven and auxiliary
    /// combined — the robustness metric the experiments compare.
    pub fn total_touched(&self) -> u64 {
        self.col.stats().tuples_touched + self.col.stats().edge_scanned
    }

    /// Answer a range predicate. Auxiliary cuts are applied to the pieces
    /// enclosing the query bounds first; the exact boundary cracks then
    /// operate on much smaller pieces.
    pub fn select(&mut self, pred: RangePred<T>) -> Selection {
        if !pred.is_empty_range() && self.policy.is_auxiliary() {
            if let Some(b) = pred.low {
                let key = if b.inclusive {
                    BoundaryKey::lt(b.value)
                } else {
                    BoundaryKey::le(b.value)
                };
                self.auxiliary_cuts(key);
            }
            if let Some(b) = pred.high {
                let key = if b.inclusive {
                    BoundaryKey::le(b.value)
                } else {
                    BoundaryKey::lt(b.value)
                };
                self.auxiliary_cuts(key);
            }
        }
        self.col.select(pred)
    }

    /// Count qualifying tuples.
    pub fn count(&mut self, pred: RangePred<T>) -> usize {
        self.select(pred).count()
    }

    /// OIDs of qualifying tuples (physical order).
    pub fn select_oids(&mut self, pred: RangePred<T>) -> Vec<u32> {
        let sel = self.select(pred);
        self.col.selection_oids(&sel)
    }

    /// Cut the piece(s) enclosing `key` per the policy, stopping when the
    /// enclosing piece is small enough (or the boundary already exists).
    fn auxiliary_cuts(&mut self, key: BoundaryKey<T>) {
        loop {
            if self.col.index().peek(key).is_some() {
                return; // exact boundary already known
            }
            let piece = self.col.index().enclosing_piece(key);
            if piece.len() <= self.aux_threshold {
                return;
            }
            // Pieces refined to sorted order resolve boundaries by binary
            // search with zero moves — an auxiliary repartition would only
            // destroy that order.
            if self.col.sorted_ref().contains(piece.start) {
                return;
            }
            let Some(cut_key) = self.pick_pivot(piece.clone()) else {
                return; // piece is constant-valued; cutting cannot help
            };
            self.cut_at(piece, cut_key);
            match self.policy {
                StochasticPolicy::DD1R | StochasticPolicy::DD1C => return,
                StochasticPolicy::DDR { .. } | StochasticPolicy::DDC { .. } => continue,
                StochasticPolicy::Vanilla => unreachable!("checked by caller"),
            }
        }
    }

    /// Choose the cut boundary for a piece: a random element's value
    /// (DD1R/DDR) or the piece median (DD1C/DDC). Returns `None` when
    /// every element carries the same value (no cut can split it); for a
    /// pivot equal to the piece minimum the boundary switches from `<` to
    /// `≤` so the cut always separates something — this is what makes the
    /// recursive policies terminate.
    fn pick_pivot(&mut self, piece: Range<usize>) -> Option<BoundaryKey<T>> {
        let vals = self.col.values();
        let candidate = match self.policy {
            StochasticPolicy::DD1R | StochasticPolicy::DDR { .. } => {
                vals[self.rng.gen_range(piece.clone())]
            }
            StochasticPolicy::DD1C | StochasticPolicy::DDC { .. } => {
                // Exact median via quickselect on a scratch copy — the
                // "center" pivot of DDC. O(piece) time and space.
                let mut scratch: Vec<T> = vals[piece.clone()].to_vec();
                let mid = scratch.len() / 2;
                let (_, m, _) = scratch.select_nth_unstable(mid);
                *m
            }
            StochasticPolicy::Vanilla => unreachable!("checked by caller"),
        };
        let lt = BoundaryKey::lt(candidate);
        if vals[piece.clone()].iter().any(|&v| lt.before(v)) {
            return Some(lt);
        }
        // `candidate` is the piece minimum: split equals-to-min away
        // instead, unless the piece is constant.
        let le = BoundaryKey::le(candidate);
        if vals[piece].iter().all(|&v| le.before(v)) {
            None
        } else {
            Some(le)
        }
    }

    /// Physically cut `piece` at `key` and record the new boundary.
    fn cut_at(&mut self, piece: Range<usize>, key: BoundaryKey<T>) {
        let (vals, oids, index) = self.col.arrays_mut();
        let mut moved = 0;
        let pos = crack_two(vals, oids, piece.start, piece.end, key, &mut moved);
        debug_assert!(
            pos > piece.start && pos < piece.end,
            "pick_pivot guarantees a separating cut"
        );
        if pos == piece.start || pos == piece.end {
            // Defensive: never record a boundary that creates an empty
            // piece.
            return;
        }
        index.insert(key, pos);
        self.stats.auxiliary_cuts += 1;
        self.stats.auxiliary_touched += piece.len() as u64;
        let s = self.col.stats_mut();
        s.tuples_touched += piece.len() as u64;
        s.tuples_moved += moved;
        s.cracks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Explicit import: both globs above export an `Rng` name.
    use rand::Rng;

    fn oracle(orig: &[i64], pred: &RangePred<i64>) -> Vec<u32> {
        let mut v: Vec<u32> = orig
            .iter()
            .enumerate()
            .filter(|(_, &x)| pred.matches(x))
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    /// A shuffled 0..n permutation (tapestry-like, deterministic).
    fn shuffled(n: usize, seed: u64) -> Vec<i64> {
        let mut v: Vec<i64> = (0..n as i64).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        for i in (1..v.len()).rev() {
            v.swap(i, rng.gen_range(0..=i));
        }
        v
    }

    /// The adversarial sequence: fixed-width windows sweeping left→right.
    fn sequential_windows(n: usize, k: usize) -> Vec<(i64, i64)> {
        let w = (n / k).max(1) as i64;
        (0..k as i64).map(|i| (i * w, (i + 1) * w)).collect()
    }

    const POLICIES: [StochasticPolicy; 5] = [
        StochasticPolicy::Vanilla,
        StochasticPolicy::DD1R,
        StochasticPolicy::DDR { floor: 64 },
        StochasticPolicy::DD1C,
        StochasticPolicy::DDC { floor: 64 },
    ];

    #[test]
    fn every_policy_answers_correctly_on_a_sweep() {
        let orig = shuffled(4_000, 5);
        for policy in POLICIES {
            let mut c = StochasticCracker::new(orig.clone(), policy, 42);
            for (lo, hi) in sequential_windows(4_000, 25) {
                let pred = RangePred::half_open(lo, hi);
                let mut got = c.select_oids(pred);
                got.sort_unstable();
                assert_eq!(got, oracle(&orig, &pred), "{}", policy.label());
                c.column().validate().unwrap();
            }
        }
    }

    #[test]
    fn sequential_workload_ruins_vanilla_but_not_stochastic() {
        let n = 40_000;
        let k = 160;
        let orig = shuffled(n, 9);
        let mut touched = std::collections::BTreeMap::new();
        for policy in [
            StochasticPolicy::Vanilla,
            StochasticPolicy::DD1R,
            StochasticPolicy::DDR { floor: 256 },
        ] {
            let mut c = StochasticCracker::new(orig.clone(), policy, 1);
            for (lo, hi) in sequential_windows(n, k) {
                c.select(RangePred::half_open(lo, hi));
            }
            touched.insert(policy.label(), c.total_touched());
        }
        // Vanilla re-scans the giant tail every query: ~k·N/2 touches.
        // DD1R's random cuts shrink the tail geometrically.
        let vanilla = touched["vanilla"];
        let dd1r = touched["dd1r"];
        let ddr = touched["ddr"];
        assert!(
            vanilla as f64 > 0.25 * (k as f64) * (n as f64) / 2.0,
            "vanilla should degenerate on the sweep (touched {vanilla})"
        );
        // One random cut per query halves-ish the tail: a clear win, but
        // the recursive policy converges much harder.
        assert!(
            (dd1r as f64) < (vanilla as f64) / 2.0,
            "DD1R must beat vanilla ({dd1r} !< {vanilla}/2)"
        );
        assert!(
            (ddr as f64) < (vanilla as f64) / 3.0,
            "DDR must beat vanilla by a wide margin ({ddr} !< {vanilla}/3)"
        );
    }

    #[test]
    fn random_workloads_pay_only_modest_overhead() {
        let n = 20_000;
        let orig = shuffled(n, 13);
        let mut rng = SmallRng::seed_from_u64(77);
        let queries: Vec<(i64, i64)> = (0..60)
            .map(|_| {
                let lo = rng.gen_range(0..n as i64 - 100);
                (lo, lo + rng.gen_range(1..=(n as i64 / 10)))
            })
            .collect();
        let run = |policy| {
            let mut c = StochasticCracker::new(orig.clone(), policy, 3);
            for &(lo, hi) in &queries {
                c.select(RangePred::half_open(lo, hi));
            }
            c.total_touched()
        };
        let vanilla = run(StochasticPolicy::Vanilla);
        let dd1r = run(StochasticPolicy::DD1R);
        // On random workloads the auxiliary cuts must not blow the budget:
        // allow at most 2× the vanilla touches.
        assert!(
            dd1r < vanilla * 2,
            "DD1R overhead on random workloads too high ({dd1r} vs {vanilla})"
        );
    }

    #[test]
    fn auxiliary_cuts_are_counted_and_deterministic() {
        let orig = shuffled(10_000, 21);
        let run = |seed| {
            let mut c = StochasticCracker::new(orig.clone(), StochasticPolicy::DD1R, seed);
            for (lo, hi) in sequential_windows(10_000, 20) {
                c.select(RangePred::half_open(lo, hi));
            }
            (c.stats().auxiliary_cuts, c.column().piece_count())
        };
        let (cuts_a, pieces_a) = run(5);
        let (cuts_b, pieces_b) = run(5);
        assert_eq!(
            (cuts_a, pieces_a),
            (cuts_b, pieces_b),
            "same seed, same run"
        );
        assert!(cuts_a > 0, "the sweep must trigger auxiliary cuts");
        let (cuts_c, _) = run(6);
        // Different seed usually differs; at minimum the run stays valid.
        let _ = cuts_c;
    }

    #[test]
    fn ddc_median_cuts_balance_the_index() {
        let n = 8_192;
        let orig = shuffled(n, 3);
        let mut c = StochasticCracker::new(orig, StochasticPolicy::DDC { floor: 512 }, 0);
        // One query deep in the domain: DDC must have carved the path to
        // it into pieces no larger than ~2× the floor.
        c.select(RangePred::half_open(4_000, 4_100));
        let boundary_piece: Vec<usize> = c
            .column()
            .index()
            .pieces()
            .iter()
            .map(|p| p.len())
            .collect();
        let smallest = boundary_piece.iter().min().copied().unwrap_or(0);
        assert!(
            smallest <= 512,
            "recursive median cuts must reach the floor (smallest {smallest})"
        );
        c.column().validate().unwrap();
    }

    #[test]
    fn constant_columns_are_not_cut_forever() {
        let mut c =
            StochasticCracker::new(vec![7i64; 5_000], StochasticPolicy::DDR { floor: 16 }, 1);
        let sel = c.select(RangePred::between(7, 7));
        assert_eq!(sel.count(), 5_000);
        assert_eq!(
            c.stats().auxiliary_cuts,
            0,
            "a constant piece cannot be split"
        );
        // And the query terminates (this test hanging would be the bug).
    }

    #[test]
    fn empty_ranges_and_empty_columns() {
        let mut c = StochasticCracker::new(Vec::<i64>::new(), StochasticPolicy::DD1R, 1);
        assert_eq!(c.count(RangePred::between(1, 2)), 0);
        let mut c = StochasticCracker::new(shuffled(100, 1), StochasticPolicy::DD1R, 1);
        assert_eq!(c.count(RangePred::between(10, 5)), 0);
        assert_eq!(c.stats().auxiliary_cuts, 0, "empty ranges cut nothing");
    }

    #[test]
    fn one_sided_predicates_trigger_cuts_too() {
        let n = 10_000;
        let mut c = StochasticCracker::new(shuffled(n, 4), StochasticPolicy::DD1R, 2);
        let sel = c.select(RangePred::ge(9_000));
        assert_eq!(sel.count(), 1_000);
        assert!(c.stats().auxiliary_cuts >= 1);
        c.column().validate().unwrap();
    }

    #[test]
    fn sorted_pieces_are_left_alone() {
        // Progressive refinement (sort_below) marks small pieces sorted;
        // auxiliary cuts must not repartition them, or binary search over
        // them would silently return wrong slots.
        let orig = shuffled(2_000, 8);
        let cfg = CrackerConfig::new().with_sort_below(4_000); // sort on first touch
        let mut c = StochasticCracker::with_config(
            orig.clone(),
            cfg,
            StochasticPolicy::DDR { floor: 16 },
            3,
        );
        for (lo, hi) in sequential_windows(2_000, 10) {
            let pred = RangePred::half_open(lo, hi);
            let mut got = c.select_oids(pred);
            got.sort_unstable();
            assert_eq!(got, oracle(&orig, &pred));
            c.column().validate().unwrap();
        }
    }

    proptest! {
        #[test]
        fn prop_stochastic_answers_agree_with_oracle(
            orig in proptest::collection::vec(-100i64..100, 0..400),
            queries in proptest::collection::vec((-120i64..120, -120i64..120), 1..20),
            policy_idx in 0usize..POLICIES.len(),
            seed in 0u64..1000,
        ) {
            let mut c = StochasticCracker::new(orig.clone(), POLICIES[policy_idx], seed);
            for (a, b) in queries {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let pred = RangePred::between(lo, hi);
                let mut got = c.select_oids(pred);
                got.sort_unstable();
                prop_assert_eq!(got, oracle(&orig, &pred));
                c.column().validate().map_err(TestCaseError::fail)?;
            }
        }

        #[test]
        fn prop_multiset_is_preserved_under_auxiliary_cuts(
            orig in proptest::collection::vec(-50i64..50, 1..300),
            queries in proptest::collection::vec((-60i64..60, -60i64..60), 1..12),
        ) {
            let mut c = StochasticCracker::new(
                orig.clone(), StochasticPolicy::DDR { floor: 8 }, 11);
            for (a, b) in queries {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                c.select(RangePred::between(lo, hi));
            }
            let mut pairs: Vec<(u32, i64)> = c.column().oids().iter().copied()
                .zip(c.column().values().iter().copied()).collect();
            pairs.sort_unstable();
            let expected: Vec<(u32, i64)> =
                (0..orig.len() as u32).map(|i| (i, orig[i as usize])).collect();
            prop_assert_eq!(pairs, expected);
        }
    }
}
