//! Ω-cracking (Omega): group-by-driven reorganization.
//!
//! "The cracking operation Ω(γ_grp R) produces a collection {P_i} = σ_{grp
//! = v_i}(R) for each v_i ∈ π_grp R" (§3.1) — an n-way partition with one
//! piece per group value. §3.3: "The Ω cracker clusters the elements into
//! disjoint groups, such that subsequent aggregation and filtering are
//! simplified." §3.4.2 notes it "can be implemented as a variation of the
//! Ξ cracker"; we implement it as a single-pass counting cluster, which is
//! that variation taken to its n-way conclusion.

use crate::join::PairColumn;
use crate::value_trait::CrackValue;
use std::collections::HashMap;
use std::ops::Range;

/// Result of an Ω-crack: one consecutive piece per distinct group value,
/// reported in ascending group-value order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmegaResult<T> {
    /// `(group value, slot range)` pairs, ascending by value.
    pub groups: Vec<(T, Range<usize>)>,
    /// Tuples inspected.
    pub tuples_touched: u64,
    /// Tuples relocated.
    pub tuples_moved: u64,
}

impl<T: CrackValue> OmegaResult<T> {
    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Range for one group value, if present.
    pub fn range_of(&self, value: T) -> Option<Range<usize>> {
        self.groups
            .binary_search_by(|(v, _)| v.cmp(&value))
            .ok()
            .map(|i| self.groups[i].1.clone())
    }
}

/// Ω-crack `col[range]`: cluster tuples so each distinct value occupies a
/// consecutive slot range. Tuple order within a group is stable.
pub fn omega_crack<T: CrackValue>(col: &mut PairColumn<T>, range: Range<usize>) -> OmegaResult<T> {
    let n = range.len();
    let mut tuples_moved = 0u64;

    // Pass 1: count occurrences per group value.
    let mut counts: HashMap<T, usize> = HashMap::new();
    for i in range.clone() {
        *counts.entry(col.values()[i]).or_insert(0) += 1;
    }
    // Assign consecutive target ranges in ascending value order.
    let mut ordered: Vec<(T, usize)> = counts.into_iter().collect();
    ordered.sort_unstable_by_key(|a| a.0);
    let mut groups = Vec::with_capacity(ordered.len());
    let mut cursor = range.start;
    let mut next_slot: HashMap<T, usize> = HashMap::with_capacity(ordered.len());
    for (v, c) in ordered {
        groups.push((v, cursor..cursor + c));
        next_slot.insert(v, cursor);
        cursor += c;
    }

    // Pass 2: stable scatter into a scratch buffer, then write back.
    if n > 0 {
        let mut scratch: Vec<Option<(T, u32)>> = vec![None; n];
        for i in range.clone() {
            let v = col.values()[i];
            let o = col.oids()[i];
            // lint: allow(unwrap) — pass 1 inserted a slot for every value
            let slot = next_slot.get_mut(&v).expect("counted in pass 1");
            scratch[*slot - range.start] = Some((v, o));
            *slot += 1;
        }
        let (vals, oids) = col.arrays_mut_for_omega();
        for (offset, entry) in scratch.into_iter().enumerate() {
            // lint: allow(unwrap) — the scatter writes each slot exactly once
            let (v, o) = entry.expect("every slot is filled by the scatter");
            let i = range.start + offset;
            if vals[i] != v || oids[i] != o {
                tuples_moved += 1;
            }
            vals[i] = v;
            oids[i] = o;
        }
    }

    OmegaResult {
        groups,
        tuples_touched: n as u64,
        tuples_moved,
    }
}

/// Aggregate each group of a previous Ω-crack with `f` (e.g. count, sum) —
/// the "subsequent aggregation \[is\] simplified" pay-off: each group is one
/// contiguous scan.
pub fn aggregate_groups<T: CrackValue, A>(
    col: &PairColumn<T>,
    res: &OmegaResult<T>,
    mut f: impl FnMut(T, &[T], &[u32]) -> A,
) -> Vec<(T, A)> {
    res.groups
        .iter()
        .map(|(v, r)| (*v, f(*v, &col.values()[r.clone()], &col.oids()[r.clone()])))
        .collect()
}

impl<T: CrackValue> PairColumn<T> {
    /// Internal mutable access for the Ω scatter pass.
    pub(crate) fn arrays_mut_for_omega(&mut self) -> (&mut [T], &mut [u32]) {
        self.arrays_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn omega_clusters_each_value_consecutively() {
        let mut c = PairColumn::new(vec![3i64, 1, 2, 3, 1, 1]);
        let res = omega_crack(&mut c, 0..6);
        assert_eq!(res.group_count(), 3);
        assert_eq!(c.values(), &[1, 1, 1, 2, 3, 3]);
        assert_eq!(res.range_of(1), Some(0..3));
        assert_eq!(res.range_of(2), Some(3..4));
        assert_eq!(res.range_of(3), Some(4..6));
        assert_eq!(res.range_of(9), None);
    }

    #[test]
    fn omega_is_stable_within_groups() {
        let mut c = PairColumn::from_pairs(vec![2i64, 1, 2, 1], vec![10, 11, 12, 13]);
        omega_crack(&mut c, 0..4);
        // Group 1 keeps oid order 11, 13; group 2 keeps 10, 12.
        assert_eq!(c.oids(), &[11, 13, 10, 12]);
    }

    #[test]
    fn omega_on_subrange_only() {
        let mut c = PairColumn::new(vec![9i64, 2, 1, 2, 9]);
        let res = omega_crack(&mut c, 1..4);
        assert_eq!(c.values(), &[9, 1, 2, 2, 9]);
        assert_eq!(res.range_of(1), Some(1..2));
        assert_eq!(res.range_of(2), Some(2..4));
    }

    #[test]
    fn aggregation_over_groups() {
        let mut c = PairColumn::new(vec![1i64, 2, 1, 2, 2]);
        let res = omega_crack(&mut c, 0..5);
        let counts = aggregate_groups(&c, &res, |_, vals, _| vals.len());
        assert_eq!(counts, vec![(1, 2), (2, 3)]);
        let sums = aggregate_groups(&c, &res, |_, vals, _| vals.iter().sum::<i64>());
        assert_eq!(sums, vec![(1, 2), (2, 6)]);
    }

    #[test]
    fn omega_of_empty_range() {
        let mut c = PairColumn::new(vec![1i64, 2]);
        let res = omega_crack(&mut c, 1..1);
        assert_eq!(res.group_count(), 0);
        assert_eq!(c.values(), &[1, 2]);
    }

    #[test]
    fn omega_single_group() {
        let mut c = PairColumn::new(vec![7i64; 5]);
        let res = omega_crack(&mut c, 0..5);
        assert_eq!(res.group_count(), 1);
        assert_eq!(res.range_of(7), Some(0..5));
        assert_eq!(res.tuples_moved, 0, "already clustered: nothing moves");
    }

    proptest! {
        #[test]
        fn prop_omega_pieces_are_disjoint_and_complete(
            vals in proptest::collection::vec(0i64..20, 0..150),
        ) {
            let orig = vals.clone();
            let mut c = PairColumn::new(vals);
            let n = c.len();
            let res = omega_crack(&mut c, 0..n);
            // Groups tile the range.
            let covered: usize = res.groups.iter().map(|(_, r)| r.len()).sum();
            prop_assert_eq!(covered, n);
            // Each piece holds exactly its value.
            for (v, r) in &res.groups {
                for i in r.clone() {
                    prop_assert_eq!(c.values()[i], *v);
                }
            }
            // Multiset preserved and oids still track original values.
            for (i, &oid) in c.oids().iter().enumerate() {
                prop_assert_eq!(c.values()[i], orig[oid as usize]);
            }
        }

        #[test]
        fn prop_group_counts_match_oracle(
            vals in proptest::collection::vec(0i64..10, 1..100),
        ) {
            let mut oracle: HashMap<i64, usize> = HashMap::new();
            for &v in &vals { *oracle.entry(v).or_insert(0) += 1; }
            let mut c = PairColumn::new(vals);
            let n = c.len();
            let res = omega_crack(&mut c, 0..n);
            let counts = aggregate_groups(&c, &res, |_, vs, _| vs.len());
            prop_assert_eq!(counts.len(), oracle.len());
            for (v, cnt) in counts {
                prop_assert_eq!(cnt, oracle[&v]);
            }
        }
    }
}
