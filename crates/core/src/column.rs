//! The cracked column: Ξ-cracking selections.
//!
//! A [`CrackerColumn`] is the paper's cracked BAT: a copy of one attribute's
//! values together with the parallel array of surrogate OIDs, continuously
//! reorganized by the range predicates that query it. "During each step we
//! only touch the pieces that should be cracked to solve the query" (§2.2):
//! a select locates (at most two) border pieces through the cracker index,
//! partitions them in place, and then the whole answer is a contiguous slot
//! range — retrieval cost for repeat visitors "of a nearly completely
//! indexed table" (§5.2).
//!
//! Two practical departures from the idealized algorithm, both from the
//! paper's own discussion, are configurable through
//! `CrackerConfig`:
//!
//! * **cut-off granule** (`min_piece_size`): pieces at or below this size
//!   are never cracked; residual filtering scans inside the border piece
//!   and reports matching slots as `edges`.
//! * **piece budget** (`max_pieces` + fusion policy): boundaries are fused
//!   away (index trimming — data stays put) when the index grows too large.

use crate::config::CrackerConfig;
use crate::crack::BoundaryKey;
use crate::index::CrackerIndex;
use crate::kernel::CrackKernel;
use crate::pred::RangePred;
use crate::sorted::SortedPieces;
use crate::stats::CrackStats;
use crate::updates::PendingUpdates;
use crate::value_trait::CrackValue;
use std::ops::Range;

/// Result of a cracked selection.
///
/// `core` is the contiguous cracked slot range; `edges` are matching slots
/// inside uncracked (cut-off) border pieces; `pending_oids` are matching
/// tuples still in the pending-insert staging area; `deleted_hits` counts
/// tuples inside `core` that are pending deletion and must be discounted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Contiguous range of matching slots.
    pub core: Range<usize>,
    /// Matching slots in cut-off border pieces (absolute positions, outside
    /// `core`, already filtered for pending deletes).
    pub edges: Vec<usize>,
    /// OIDs of matching tuples in the pending-insert area.
    pub pending_oids: Vec<u32>,
    /// Matching tuples inside `core` that are pending deletion.
    pub deleted_hits: usize,
}

impl Selection {
    /// An empty selection.
    pub fn empty() -> Self {
        Selection {
            core: 0..0,
            edges: Vec::new(),
            pending_oids: Vec::new(),
            deleted_hits: 0,
        }
    }

    /// Number of qualifying tuples.
    pub fn count(&self) -> usize {
        debug_assert!(
            self.deleted_hits <= self.core.len(),
            "deleted_hits ({}) exceeds the core hit count ({}): \
             the pending-delete overlay only discounts tuples inside core",
            self.deleted_hits,
            self.core.len()
        );
        self.core.len() + self.edges.len() + self.pending_oids.len() - self.deleted_hits
    }

    /// True when nothing qualifies.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// True when the whole answer is one contiguous cracked range (no
    /// cut-off edges, no pending tuples): the ideal cracked answer.
    pub fn is_contiguous(&self) -> bool {
        self.edges.is_empty() && self.pending_oids.is_empty() && self.deleted_hits == 0
    }
}

/// How a boundary was resolved during a select.
enum Resolved {
    /// Exact split position (existing or newly cracked).
    Exact(usize),
    /// The boundary falls inside a cut-off piece spanning this range.
    CutOff(Range<usize>),
}

/// A continuously cracked copy of one column.
#[derive(Debug, Clone)]
pub struct CrackerColumn<T> {
    vals: Vec<T>,
    oids: Vec<u32>,
    index: CrackerIndex<T>,
    config: CrackerConfig,
    /// The kernel the hot loops run, resolved once from `config.kernel`
    /// (the banded dispatcher then re-dispatches per piece size on every
    /// call).
    kernel: CrackKernel,
    stats: CrackStats,
    sorted: SortedPieces,
    pub(crate) pending: PendingUpdates<T>,
    /// Chaos hook: crack countdown after which the column tears its own
    /// state and panics, simulating a kernel dying mid-reorganization.
    /// `None` (the default, and the state after firing) is a no-op.
    panic_after: Option<u32>,
}

impl<T: CrackValue> CrackerColumn<T> {
    /// Build from a value vector; OIDs are assigned densely (`0..n`), the
    /// convention when the column is the tail of a dense-headed BAT.
    pub fn new(vals: Vec<T>) -> Self {
        Self::with_config(vals, CrackerConfig::default())
    }

    /// Build with explicit configuration.
    pub fn with_config(vals: Vec<T>, config: CrackerConfig) -> Self {
        let n = vals.len();
        CrackerColumn {
            vals,
            oids: (0..n as u32).collect(),
            index: CrackerIndex::new(n),
            kernel: config.kernel.resolve(),
            config,
            stats: CrackStats::default(),
            sorted: SortedPieces::new(),
            pending: PendingUpdates::new(),
            panic_after: None,
        }
    }

    /// Build from parallel `(values, oids)` arrays (e.g. an explicit-head
    /// BAT).
    ///
    /// # Panics
    /// Panics if the arrays differ in length.
    pub fn from_pairs(vals: Vec<T>, oids: Vec<u32>, config: CrackerConfig) -> Self {
        assert_eq!(vals.len(), oids.len(), "values and oids must align");
        let n = vals.len();
        CrackerColumn {
            vals,
            oids,
            index: CrackerIndex::new(n),
            kernel: config.kernel.resolve(),
            config,
            stats: CrackStats::default(),
            sorted: SortedPieces::new(),
            pending: PendingUpdates::new(),
            panic_after: None,
        }
    }

    /// Number of tuples in the cracked area (excludes pending inserts).
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when the cracked area is empty.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// The value array in its current physical order.
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// The OID array in its current physical order (parallel to
    /// [`values`](Self::values)).
    pub fn oids(&self) -> &[u32] {
        &self.oids
    }

    /// The cracker index.
    pub fn index(&self) -> &CrackerIndex<T> {
        &self.index
    }

    /// Accumulated cost counters.
    pub fn stats(&self) -> &CrackStats {
        &self.stats
    }

    /// The configuration in force.
    pub fn config(&self) -> &CrackerConfig {
        &self.config
    }

    /// The crack kernel this column's hot loops run (resolved from
    /// `config.kernel` at construction).
    pub fn kernel(&self) -> CrackKernel {
        self.kernel
    }

    /// Adjust the cut-off granule on a live column — the hook the
    /// cracking optimizer ([`crate::policy`]) uses to steer piece
    /// production per query. Existing pieces are untouched; only future
    /// cracks see the new value.
    pub fn set_min_piece_size(&mut self, granule: usize) {
        self.config.min_piece_size = granule.max(1);
    }

    /// Number of pieces currently administered.
    pub fn piece_count(&self) -> usize {
        self.index.piece_count()
    }

    pub(crate) fn stats_mut(&mut self) -> &mut CrackStats {
        &mut self.stats
    }

    pub(crate) fn index_mut(&mut self) -> &mut CrackerIndex<T> {
        &mut self.index
    }

    pub(crate) fn arrays_mut(&mut self) -> (&mut Vec<T>, &mut Vec<u32>, &mut CrackerIndex<T>) {
        (&mut self.vals, &mut self.oids, &mut self.index)
    }

    pub(crate) fn sorted_ref(&self) -> &SortedPieces {
        &self.sorted
    }

    pub(crate) fn sorted_mut(&mut self) -> &mut SortedPieces {
        &mut self.sorted
    }

    /// True when inserts or deletes are staged but not yet merged into
    /// the cracked area. While this holds, the cracked copy's answers can
    /// differ from the base column it was cloned from, so derived fast
    /// paths (e.g. refining a conjunct against base-table values) must
    /// fall back to the full overlay-aware path.
    pub fn has_pending_updates(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Try to answer a range predicate **without mutating anything**:
    /// succeeds only when every needed boundary already exists in the
    /// index (exact boundary hits) and no pending updates are staged.
    /// This is the read-only fast path the concurrent wrapper
    /// ([`crate::concurrent`]) uses to let repeat queries proceed under a
    /// shared lock.
    pub fn try_select_readonly(&self, pred: RangePred<T>) -> Option<Selection> {
        if !self.pending.is_empty() {
            return None;
        }
        if pred.is_empty_range() || self.vals.is_empty() {
            return Some(Selection::empty());
        }
        let start = match pred.low {
            None => 0,
            Some(b) => {
                let key = if b.inclusive {
                    BoundaryKey::lt(b.value)
                } else {
                    BoundaryKey::le(b.value)
                };
                self.index.peek(key)?
            }
        };
        let end = match pred.high {
            None => self.vals.len(),
            Some(b) => {
                let key = if b.inclusive {
                    BoundaryKey::le(b.value)
                } else {
                    BoundaryKey::lt(b.value)
                };
                self.index.peek(key)?
            }
        };
        Some(Selection {
            core: start..end.max(start),
            edges: Vec::new(),
            pending_oids: Vec::new(),
            deleted_hits: 0,
        })
    }

    /// Answer a range predicate, cracking border pieces as a side effect.
    ///
    /// This is the Ξ cracker: afterwards the qualifying tuples occupy the
    /// contiguous `core` range (modulo cut-off edges and pending updates).
    pub fn select(&mut self, pred: RangePred<T>) -> Selection {
        match self.select_with_guard(pred, None) {
            Some(sel) => sel,
            // lint: allow(unwrap) — an ungoverned select has no guard to fail
            None => unreachable!("ungoverned select cannot be abandoned"),
        }
    }

    /// Like [`select`](Self::select), but polling `keep_going` at each
    /// **crack-step boundary** — on entry and between the two boundary
    /// resolutions — and returning `None` once it reports false.
    ///
    /// This is the core's cooperative-cancellation point. The contract on
    /// abandonment: any boundary already resolved stays *fully* cracked
    /// (its piece partitioned and recorded), the rest of the column stays
    /// untouched, so the piece map still satisfies
    /// [`CrackerIndex::check_pieces`] and — because cracking is a
    /// semantic no-op reorganization — every later query returns exactly
    /// what it would have returned anyway. A cancelled query costs its
    /// own answer, never anybody else's.
    pub fn select_guarded(
        &mut self,
        pred: RangePred<T>,
        keep_going: &dyn Fn() -> bool,
    ) -> Option<Selection> {
        self.select_with_guard(pred, Some(keep_going))
    }

    fn select_with_guard(
        &mut self,
        pred: RangePred<T>,
        guard: Option<&dyn Fn() -> bool>,
    ) -> Option<Selection> {
        if let Some(g) = guard {
            if !g() {
                return None;
            }
        }
        self.stats.queries += 1;
        self.index.next_tick();
        if self.pending.should_merge(self.config.merge_threshold) {
            self.merge_pending();
        }
        let mut sel = self.select_cracked(pred, guard)?;
        // Pending updates overlay: scan the staging areas.
        if !self.pending.is_empty() {
            sel.pending_oids = self.pending.matching_inserts(&pred);
            if self.pending.has_deletes() {
                sel.deleted_hits = self
                    .kernel
                    .count_deleted(&self.oids[sel.core.clone()], self.pending.deleted_set());
                sel.edges
                    .retain(|&p| !self.pending.is_deleted(self.oids[p]));
            }
        }
        self.enforce_piece_budget();
        Some(sel)
    }

    /// Count qualifying tuples (the paper's Figure 1(c) operation).
    pub fn count(&mut self, pred: RangePred<T>) -> usize {
        self.select(pred).count()
    }

    /// OIDs of all qualifying tuples, in physical order (core, then edges,
    /// then pending inserts).
    pub fn select_oids(&mut self, pred: RangePred<T>) -> Vec<u32> {
        let sel = self.select(pred);
        self.selection_oids(&sel)
    }

    /// Like [`select_oids`](Self::select_oids), but appending into a
    /// caller-provided buffer so a driver looping over queries allocates
    /// nothing per query.
    pub fn select_oids_into(&mut self, pred: RangePred<T>, out: &mut Vec<u32>) {
        let sel = self.select(pred);
        self.selection_oids_into(&sel, out);
    }

    /// Materialize the OIDs described by a [`Selection`].
    pub fn selection_oids(&self, sel: &Selection) -> Vec<u32> {
        let mut out = Vec::new();
        self.selection_oids_into(sel, &mut out);
        out
    }

    /// Append the OIDs described by a [`Selection`] into a caller-provided
    /// buffer — the zero-allocation sibling of
    /// [`selection_oids`](Self::selection_oids); reuse the buffer across
    /// queries to cut per-query allocations on the hot path.
    pub fn selection_oids_into(&self, sel: &Selection, out: &mut Vec<u32>) {
        out.reserve(sel.count());
        if self.pending.has_deletes() {
            let core = &self.oids[sel.core.clone()];
            self.kernel
                .for_each_live(core, self.pending.deleted_set(), |i| out.push(core[i]));
        } else {
            out.extend_from_slice(&self.oids[sel.core.clone()]);
        }
        out.extend(sel.edges.iter().map(|&p| self.oids[p]));
        out.extend_from_slice(&sel.pending_oids);
    }

    /// Materialize the qualifying `(oid, value)` pairs of a [`Selection`].
    pub fn selection_pairs(&self, sel: &Selection) -> Vec<(u32, T)> {
        let mut out = Vec::new();
        self.copy_selection_into(sel, &mut out);
        out
    }

    /// Append the qualifying `(oid, value)` pairs of a [`Selection`] into a
    /// caller-provided buffer — the zero-allocation result-delivery path
    /// (the buffer is reused across queries by the engines). The common
    /// no-pending-updates case copies the contiguous core directly.
    pub fn copy_selection_into(&self, sel: &Selection, out: &mut Vec<(u32, T)>) {
        out.reserve(sel.count());
        if self.pending.has_deletes() {
            let core_oids = &self.oids[sel.core.clone()];
            let core_vals = &self.vals[sel.core.clone()];
            self.kernel
                .for_each_live(core_oids, self.pending.deleted_set(), |i| {
                    out.push((core_oids[i], core_vals[i]));
                });
        } else {
            out.extend(
                self.oids[sel.core.clone()]
                    .iter()
                    .copied()
                    .zip(self.vals[sel.core.clone()].iter().copied()),
            );
        }
        for &p in &sel.edges {
            out.push((self.oids[p], self.vals[p]));
        }
        for &oid in &sel.pending_oids {
            if let Some(v) = self.pending.insert_value(oid) {
                out.push((oid, v));
            }
        }
    }

    /// The cracked-area part of a select: resolve both bounds, cracking
    /// where needed, and assemble core + edges. `guard` is polled between
    /// the two boundary resolutions (each an atomic crack step); `None`
    /// is returned only on abandonment, never for an empty answer.
    fn select_cracked(
        &mut self,
        pred: RangePred<T>,
        guard: Option<&dyn Fn() -> bool>,
    ) -> Option<Selection> {
        if pred.is_empty_range() || self.vals.is_empty() {
            return Some(Selection::empty());
        }
        let start_key = pred.low.map(|b| {
            if b.inclusive {
                BoundaryKey::lt(b.value)
            } else {
                BoundaryKey::le(b.value)
            }
        });
        let end_key = pred.high.map(|b| {
            if b.inclusive {
                BoundaryKey::le(b.value)
            } else {
                BoundaryKey::lt(b.value)
            }
        });

        // Single-pass crack-in-three: both boundaries are new and land in
        // the same virgin piece.
        if let (Some(k1), Some(k2)) = (start_key, end_key) {
            if self.config.mode == crate::config::CrackMode::ThreeWay
                && self.index.lookup(k1).is_none()
                && self.index.lookup(k2).is_none()
            {
                let piece1 = self.index.enclosing_piece(k1);
                let piece2 = self.index.enclosing_piece(k2);
                if piece1 == piece2
                    && piece1.len() > self.config.min_piece_size
                    && !self.sorted.contains(piece1.start)
                    && (self.config.sort_below == 0 || piece1.len() > self.config.sort_below)
                {
                    self.panic_tick();
                    let (p1, p2) = self.kernel.crack_three(
                        &mut self.vals,
                        &mut self.oids,
                        piece1.start,
                        piece1.end,
                        k1,
                        k2,
                        &mut self.stats.tuples_moved,
                    );
                    self.stats.tuples_touched += piece1.len() as u64;
                    self.stats.cracks += 1;
                    self.index.insert(k1, p1);
                    self.index.insert(k2, p2);
                    return Some(Selection {
                        core: p1..p2,
                        edges: Vec::new(),
                        pending_oids: Vec::new(),
                        deleted_hits: 0,
                    });
                }
            }
        }

        let start = match start_key {
            None => Resolved::Exact(0),
            Some(k) => self.resolve_boundary(k),
        };
        // The crack-step boundary: the start bound is fully resolved (its
        // piece either untouched or completely partitioned and recorded),
        // the end bound not yet started — abandoning here is safe.
        if let Some(g) = guard {
            if !g() {
                return None;
            }
        }
        let end = match end_key {
            None => Resolved::Exact(self.vals.len()),
            Some(k) => self.resolve_boundary(k),
        };

        Some(match (start, end) {
            (Resolved::Exact(s), Resolved::Exact(e)) => Selection {
                core: s..e.max(s),
                edges: Vec::new(),
                pending_oids: Vec::new(),
                deleted_hits: 0,
            },
            (Resolved::CutOff(piece), Resolved::Exact(e)) => {
                let core_start = piece.end.min(e);
                let mut edges = Vec::new();
                self.scan_edges_into(piece.start..piece.end.min(e), &pred, &mut edges);
                Selection {
                    core: core_start..e.max(core_start),
                    edges,
                    pending_oids: Vec::new(),
                    deleted_hits: 0,
                }
            }
            (Resolved::Exact(s), Resolved::CutOff(piece)) => {
                let core_end = piece.start.max(s);
                let mut edges = Vec::new();
                self.scan_edges_into(piece.start.max(s)..piece.end, &pred, &mut edges);
                Selection {
                    core: s..core_end,
                    edges,
                    pending_oids: Vec::new(),
                    deleted_hits: 0,
                }
            }
            (Resolved::CutOff(p1), Resolved::CutOff(p2)) => {
                if p1 == p2 {
                    // Both bounds in the same cut-off piece: scan it once.
                    let mut edges = Vec::new();
                    self.scan_edges_into(p1.clone(), &pred, &mut edges);
                    Selection {
                        core: p1.end..p1.end,
                        edges,
                        pending_oids: Vec::new(),
                        deleted_hits: 0,
                    }
                } else {
                    // One buffer for both border pieces: a single
                    // allocation per query instead of two plus a copy.
                    let mut edges = Vec::new();
                    self.scan_edges_into(p1.clone(), &pred, &mut edges);
                    self.scan_edges_into(p2.clone(), &pred, &mut edges);
                    Selection {
                        core: p1.end..p2.start.max(p1.end),
                        edges,
                        pending_oids: Vec::new(),
                        deleted_hits: 0,
                    }
                }
            }
        })
    }

    /// Find (or create by cracking) the split position for `key`.
    fn resolve_boundary(&mut self, key: BoundaryKey<T>) -> Resolved {
        if let Some(pos) = self.index.lookup(key) {
            return Resolved::Exact(pos);
        }
        let mut piece = self.index.enclosing_piece(key);
        if piece.len() <= self.config.min_piece_size {
            return Resolved::CutOff(piece);
        }
        // Known-sorted piece: split by binary search, zero moves.
        if let Some(pos) = self.resolve_in_sorted(key, piece.clone()) {
            return Resolved::Exact(pos);
        }
        // Auto-refinement: once cracking has whittled a piece below the
        // sort threshold, sort it once and binary-search forever after.
        if self.config.sort_below > 0 && piece.len() <= self.config.sort_below {
            self.sort_piece_range(piece.clone());
            self.stats.cracks += 1;
            piece = self.index.enclosing_piece(key);
            if let Some(pos) = self.resolve_in_sorted(key, piece) {
                return Resolved::Exact(pos);
            }
            unreachable!("piece was just sorted");
        }
        self.panic_tick();
        let pos = self.kernel.crack_two(
            &mut self.vals,
            &mut self.oids,
            piece.start,
            piece.end,
            key,
            &mut self.stats.tuples_moved,
        );
        self.stats.tuples_touched += piece.len() as u64;
        self.stats.cracks += 1;
        self.index.insert(key, pos);
        Resolved::Exact(pos)
    }

    /// Scan a cut-off piece, appending the positions matching `pred` into
    /// a caller-provided buffer (reused across the border pieces of one
    /// query) via the configured scan kernel.
    fn scan_edges_into(&mut self, range: Range<usize>, pred: &RangePred<T>, out: &mut Vec<usize>) {
        self.stats.edge_scanned += range.len() as u64;
        self.kernel.scan_into(&self.vals, range, pred, out);
    }

    /// Verify every internal invariant (index consistency, OID permutation,
    /// multiset preservation is checked by callers that kept the original).
    /// Test/debug helper.
    pub fn validate(&self) -> Result<(), String> {
        self.index.validate(&self.vals)?;
        if self.oids.len() != self.vals.len() {
            return Err("oids and values misaligned".into());
        }
        Ok(())
    }

    /// Like [`select_oids_into`](Self::select_oids_into) over a whole
    /// batch, polling `keep_going` per predicate *and* per crack step.
    /// Returns the number of predicates fully answered — always a prefix
    /// of `preds`; `outs` beyond that prefix are untouched.
    ///
    /// # Panics
    /// Panics if `preds` and `outs` differ in length.
    pub fn select_oids_batch_guarded(
        &mut self,
        preds: &[RangePred<T>],
        outs: &mut [Vec<u32>],
        keep_going: &dyn Fn() -> bool,
    ) -> usize {
        assert_eq!(preds.len(), outs.len(), "one output buffer per predicate");
        for (i, (pred, out)) in preds.iter().zip(outs.iter_mut()).enumerate() {
            match self.select_guarded(*pred, keep_going) {
                Some(sel) => self.selection_oids_into(&sel, out),
                None => return i,
            }
        }
        preds.len()
    }

    /// Validate the piece map in `O(n + p)` and, when it no longer
    /// describes the value array, **discard all crack state** — boundary
    /// index and sorted-piece marks — degrading the column to a single
    /// cold virgin piece. Returns whether a rebuild happened.
    ///
    /// This is the panic-containment repair: a kernel that died
    /// mid-reorganization can leave moves the index does not describe,
    /// but it only ever *permutes* paired `(value, oid)` slots, so the
    /// column's content is intact and forgetting the crack state is
    /// always a correct (merely cold) recovery. Pending updates are
    /// preserved — they live outside the cracked area.
    pub fn heal(&mut self) -> bool {
        if self.index.check_pieces(&self.vals).is_ok() {
            return false;
        }
        self.index = CrackerIndex::new(self.vals.len());
        self.sorted = SortedPieces::new();
        true
    }

    /// Chaos hook: after `after` more cracks, the next crack tears the
    /// column (a paired swap the piece map does not describe) and panics —
    /// the simulated mid-kernel death that [`heal`](Self::heal) and the
    /// concurrent wrappers' containment must recover from. Fires once.
    pub fn arm_panic_on_crack(&mut self, after: u32) {
        self.panic_after = Some(after);
    }

    /// The countdown behind [`arm_panic_on_crack`](Self::arm_panic_on_crack),
    /// polled at every crack site before the kernel runs.
    fn panic_tick(&mut self) {
        let Some(n) = self.panic_after.as_mut() else {
            return;
        };
        if *n > 0 {
            *n -= 1;
            return;
        }
        self.panic_after = None;
        // Tear paired state: swap the first and last (value, oid) slots
        // together. Content (the multiset of pairs) stays intact, but any
        // recorded boundary between them is now a lie — exactly the shape
        // of a crack that moved tuples and died before recording.
        let n = self.vals.len();
        if n >= 2 {
            self.vals.swap(0, n - 1);
            self.oids.swap(0, n - 1);
        }
        panic!("injected panic mid-crack (armed by arm_panic_on_crack)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CrackMode;
    use proptest::prelude::*;

    fn col(vals: Vec<i64>) -> CrackerColumn<i64> {
        CrackerColumn::new(vals)
    }

    #[test]
    fn first_select_cracks_virgin_column_in_three() {
        let mut c = col(vec![13, 16, 4, 9, 2, 12, 7, 1, 19, 3]);
        let sel = c.select(RangePred::between(5, 12));
        assert!(sel.is_contiguous());
        let got: Vec<i64> = sel.core.clone().map(|p| c.values()[p]).collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![7, 9, 12]);
        // One physical crack produced three pieces.
        assert_eq!(c.stats().cracks, 1);
        assert_eq!(c.piece_count(), 3);
        c.validate().unwrap();
    }

    #[test]
    fn repeat_query_touches_nothing() {
        let mut c = col((0..1000).rev().collect());
        c.select(RangePred::between(100, 200));
        let touched_before = c.stats().tuples_touched;
        let sel = c.select(RangePred::between(100, 200));
        assert_eq!(sel.count(), 101);
        assert_eq!(
            c.stats().tuples_touched,
            touched_before,
            "an exact repeat must reuse existing boundaries"
        );
    }

    #[test]
    fn narrowing_sequence_touches_less_and_less() {
        let mut c = col((0..10_000).rev().collect());
        let mut last = u64::MAX;
        for (lo, hi) in [(1000, 9000), (2000, 8000), (3000, 7000), (4000, 6000)] {
            let before = c.stats().tuples_touched;
            let sel = c.select(RangePred::between(lo, hi));
            assert_eq!(sel.count(), (hi - lo + 1) as usize);
            let delta = c.stats().tuples_touched - before;
            assert!(
                delta < last,
                "each narrower query should touch fewer tuples ({delta} !< {last})"
            );
            last = delta;
        }
    }

    #[test]
    fn one_sided_predicates() {
        let mut c = col(vec![5, 3, 8, 1, 9, 7]);
        assert_eq!(c.count(RangePred::lt(5)), 2);
        assert_eq!(c.count(RangePred::le(5)), 3);
        assert_eq!(c.count(RangePred::gt(7)), 2);
        assert_eq!(c.count(RangePred::ge(7)), 3);
        c.validate().unwrap();
    }

    #[test]
    fn point_query_is_a_degenerate_range() {
        let mut c = col(vec![5, 3, 5, 1, 5, 9]);
        let sel = c.select(RangePred::eq(5));
        assert_eq!(sel.count(), 3);
        let vals: Vec<i64> = sel.core.clone().map(|p| c.values()[p]).collect();
        assert_eq!(vals, vec![5, 5, 5]);
    }

    #[test]
    fn empty_range_returns_empty() {
        let mut c = col(vec![1, 2, 3]);
        assert_eq!(c.count(RangePred::between(5, 2)), 0);
        assert_eq!(c.count(RangePred::half_open(2, 2)), 0);
        assert_eq!(c.stats().cracks, 0, "empty ranges must not crack");
    }

    #[test]
    fn empty_column_answers_empty() {
        let mut c = col(vec![]);
        assert_eq!(c.count(RangePred::between(1, 10)), 0);
    }

    #[test]
    fn all_matching_range() {
        let mut c = col(vec![5, 1, 3]);
        let sel = c.select(RangePred::between(0, 10));
        assert_eq!(sel.count(), 3);
        assert_eq!(sel.core, 0..3);
    }

    #[test]
    fn selection_oids_track_original_rows() {
        let orig = vec![30i64, 10, 20, 40];
        let mut c = col(orig.clone());
        let oids = c.select_oids(RangePred::between(15, 35));
        let mut got: Vec<i64> = oids.iter().map(|&o| orig[o as usize]).collect();
        got.sort_unstable();
        assert_eq!(got, vec![20, 30]);
    }

    #[test]
    fn two_way_mode_needs_two_cracks_for_a_range() {
        let mut c = CrackerColumn::with_config(
            (0..100).rev().collect(),
            CrackerConfig::new().with_mode(CrackMode::TwoWay),
        );
        let sel = c.select(RangePred::between(10, 20));
        assert_eq!(sel.count(), 11);
        assert_eq!(c.stats().cracks, 2);
        assert_eq!(c.piece_count(), 3);
        c.validate().unwrap();
    }

    #[test]
    fn cutoff_produces_edge_scans_instead_of_cracks() {
        let mut c = CrackerColumn::with_config(
            (0..100).rev().collect(),
            CrackerConfig::new().with_min_piece_size(1000),
        );
        let sel = c.select(RangePred::between(10, 20));
        assert_eq!(sel.count(), 11);
        assert_eq!(c.stats().cracks, 0, "piece below cut-off: no cracking");
        assert!(!sel.edges.is_empty());
        assert!(sel.core.is_empty());
        assert!(c.stats().edge_scanned >= 100);
    }

    #[test]
    fn cutoff_edges_combine_with_cracked_core() {
        // First crack with default config, then raise the cut-off so the
        // next query's new boundary falls in a piece it may not crack.
        let mut c = col((0..1000).collect());
        c.select(RangePred::between(400, 600));
        let mut cfg = *c.config();
        cfg.min_piece_size = 500;
        c.config = cfg;
        // 450..550 lies inside the cracked middle piece (size 201 < 500).
        let sel = c.select(RangePred::between(450, 550));
        assert_eq!(sel.count(), 101);
        c.validate().unwrap();
    }

    #[test]
    fn stats_accumulate() {
        let mut c = col((0..100).collect());
        c.select(RangePred::between(10, 20));
        c.select(RangePred::between(30, 40));
        let s = c.stats();
        assert_eq!(s.queries, 2);
        assert!(s.cracks >= 2);
        assert!(s.tuples_touched >= 100);
    }

    #[test]
    fn duplicates_heavy_column() {
        let mut c = col(vec![5; 100]);
        assert_eq!(c.count(RangePred::eq(5)), 100);
        assert_eq!(c.count(RangePred::lt(5)), 0);
        assert_eq!(c.count(RangePred::gt(5)), 0);
        c.validate().unwrap();
    }

    #[test]
    fn from_pairs_respects_explicit_oids() {
        let mut c =
            CrackerColumn::from_pairs(vec![10i64, 20, 30], vec![7, 8, 9], CrackerConfig::default());
        let oids = c.select_oids(RangePred::ge(20));
        let mut sorted = oids;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![8, 9]);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn from_pairs_panics_on_misalignment() {
        CrackerColumn::from_pairs(vec![1i64], vec![1, 2], CrackerConfig::default());
    }

    #[test]
    fn selection_pairs_returns_values() {
        let mut c = col(vec![3, 1, 2]);
        let sel = c.select(RangePred::le(2));
        let mut pairs = c.selection_pairs(&sel);
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 1), (2, 2)]);
    }

    /// Oracle: a naive filter over the original data.
    fn oracle(orig: &[i64], pred: &RangePred<i64>) -> Vec<u32> {
        let mut v: Vec<u32> = orig
            .iter()
            .enumerate()
            .filter(|(_, &x)| pred.matches(x))
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn guarded_select_abandons_between_crack_steps_without_tearing() {
        let orig: Vec<i64> = (0..1000).map(|i| (i * 37) % 1000).collect();
        let mut c = col(orig.clone());
        // Pre-crack so the guarded query's two bounds land in different
        // pieces and it takes the two-step (crack-two + crack-two) path.
        c.select(RangePred::between(400, 500));
        let before = c.piece_count();
        // Allow only the entry poll: the guard fails at the crack-step
        // boundary, after the start bound is resolved but before the end.
        let polls = std::cell::Cell::new(0usize);
        let guard = || {
            polls.set(polls.get() + 1);
            polls.get() <= 1
        };
        let pred = RangePred::between(200, 700);
        assert!(c.select_guarded(pred, &guard).is_none(), "must abandon");
        assert_eq!(polls.get(), 2, "entry poll plus one boundary poll");
        // The start boundary was fully cracked and kept; nothing is torn.
        assert!(c.piece_count() > before, "resolved step is not rolled back");
        c.index().check_pieces(c.values()).unwrap();
        c.validate().unwrap();
        // And the abandoned query changed no later observable answer.
        let mut got = c.select_oids(pred);
        got.sort_unstable();
        assert_eq!(got, oracle(&orig, &pred));
    }

    #[test]
    fn heal_rebuilds_a_torn_piece_map_and_preserves_answers() {
        let orig: Vec<i64> = (0..500).map(|i| (i * 13) % 500).collect();
        let mut c = col(orig.clone());
        let pred = RangePred::between(100, 400);
        c.select(pred);
        assert!(!c.heal(), "an intact piece map must not be rebuilt");
        // Tear it: the armed crack swaps a paired slot across recorded
        // boundaries and panics before recording anything.
        c.arm_panic_on_crack(0);
        let torn = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.select(RangePred::between(50, 60))
        }));
        assert!(torn.is_err(), "the armed crack must panic");
        assert!(
            c.index().check_pieces(c.values()).is_err(),
            "the tear must actually violate the piece map"
        );
        assert!(c.heal(), "a torn piece map must be rebuilt");
        c.index().check_pieces(c.values()).unwrap();
        c.validate().unwrap();
        assert_eq!(c.piece_count(), 1, "healed column degraded to cold");
        // Content survived: every answer still matches the oracle.
        for pred in [pred, RangePred::between(50, 60), RangePred::le(10)] {
            let mut got = c.select_oids(pred);
            got.sort_unstable();
            assert_eq!(got, oracle(&orig, &pred));
        }
    }

    proptest! {
        #[test]
        fn prop_arbitrary_query_sequences_agree_with_oracle(
            orig in proptest::collection::vec(-100i64..100, 0..300),
            queries in proptest::collection::vec(
                (-120i64..120, -120i64..120, proptest::bool::ANY, proptest::bool::ANY),
                1..25
            ),
            mode in proptest::bool::ANY,
            cutoff in 1usize..64,
        ) {
            let cfg = CrackerConfig::new()
                .with_mode(if mode { CrackMode::ThreeWay } else { CrackMode::TwoWay })
                .with_min_piece_size(cutoff);
            let mut c = CrackerColumn::with_config(orig.clone(), cfg);
            for (a, b, inc_lo, inc_hi) in queries {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let pred = RangePred::with_bounds(Some((lo, inc_lo)), Some((hi, inc_hi)));
                let mut got = c.select_oids(pred);
                got.sort_unstable();
                prop_assert_eq!(got, oracle(&orig, &pred));
                c.validate().map_err(TestCaseError::fail)?;
            }
        }

        #[test]
        fn prop_one_sided_queries_agree_with_oracle(
            orig in proptest::collection::vec(-50i64..50, 0..200),
            queries in proptest::collection::vec((-60i64..60, 0u8..4), 1..20),
        ) {
            let mut c = CrackerColumn::new(orig.clone());
            for (v, op) in queries {
                let pred = match op {
                    0 => RangePred::lt(v),
                    1 => RangePred::le(v),
                    2 => RangePred::gt(v),
                    _ => RangePred::ge(v),
                };
                let mut got = c.select_oids(pred);
                got.sort_unstable();
                prop_assert_eq!(got, oracle(&orig, &pred));
            }
            c.validate().map_err(TestCaseError::fail)?;
        }

        #[test]
        fn prop_interleaved_deletes_and_selects_agree_with_oracle(
            orig in proptest::collection::vec(-100i64..100, 1..200),
            ops in proptest::collection::vec(
                (proptest::bool::ANY, -120i64..120, -120i64..120, 0usize..400),
                1..40
            ),
            merge_threshold in 1usize..32,
        ) {
            // Interleave staged deletes with cracking selects (which also
            // trigger merges at the configured threshold): every count
            // must match the live-tuple oracle, and Selection::count's
            // deleted_hits bound must hold throughout.
            let cfg = CrackerConfig {
                merge_threshold,
                ..CrackerConfig::default()
            };
            let mut c = CrackerColumn::with_config(orig.clone(), cfg);
            let mut deleted = std::collections::HashSet::new();
            for (is_delete, a, b, pick) in ops {
                if is_delete {
                    let oid = (pick % orig.len()) as u32;
                    let found = c.delete(oid);
                    // A live tuple must be found; a re-delete may still
                    // report true until a merge physically removes it.
                    if !deleted.contains(&oid) {
                        prop_assert!(found);
                    }
                    deleted.insert(oid);
                } else {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let pred = RangePred::between(lo, hi);
                    let sel = c.select(pred);
                    let want = orig
                        .iter()
                        .enumerate()
                        .filter(|(i, &v)| !deleted.contains(&(*i as u32)) && pred.matches(v))
                        .count();
                    prop_assert_eq!(sel.count(), want);
                    prop_assert!(sel.deleted_hits <= sel.core.len());
                }
                c.validate().map_err(TestCaseError::fail)?;
            }
        }

        #[test]
        fn prop_guarded_select_at_any_poll_leaves_valid_state_and_answers(
            orig in proptest::collection::vec(-500i64..500, 2..300),
            queries in proptest::collection::vec((-520i64..520, 1i64..80), 1..12),
            cancel_at in 0usize..40,
        ) {
            // Cancel after an arbitrary number of guard polls, at whatever
            // block/crack-step boundary that lands on; the piece map must
            // stay valid and every answer — before and after — must match
            // the oracle.
            let mut c = CrackerColumn::new(orig.clone());
            let preds: Vec<RangePred<i64>> = queries
                .iter()
                .map(|&(lo, w)| RangePred::between(lo, lo + w))
                .collect();
            let mut outs: Vec<Vec<u32>> = preds.iter().map(|_| Vec::new()).collect();
            let polls = std::cell::Cell::new(0usize);
            let guard = || {
                polls.set(polls.get() + 1);
                polls.get() <= cancel_at
            };
            let done = c.select_oids_batch_guarded(&preds, &mut outs, &guard);
            prop_assert!(done <= preds.len());
            c.index().check_pieces(c.values()).map_err(TestCaseError::fail)?;
            c.validate().map_err(TestCaseError::fail)?;
            let oracle = |pred: &RangePred<i64>| {
                let mut want: Vec<u32> = orig
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| pred.matches(v))
                    .map(|(i, _)| i as u32)
                    .collect();
                want.sort_unstable();
                want
            };
            // Completed prefix answered correctly, remainder untouched.
            for (i, pred) in preds.iter().enumerate() {
                if i < done {
                    let mut got = outs[i].clone();
                    got.sort_unstable();
                    prop_assert_eq!(got, oracle(pred), "completed pred {} wrong", i);
                } else {
                    prop_assert!(outs[i].is_empty(), "abandoned pred {} has output", i);
                }
            }
            // The cancelled work must not alter later observable results.
            for pred in &preds {
                let mut got = c.select_oids(*pred);
                got.sort_unstable();
                prop_assert_eq!(got, oracle(pred));
            }
            c.validate().map_err(TestCaseError::fail)?;
        }

        #[test]
        fn prop_multiset_of_pairs_is_invariant(
            orig in proptest::collection::vec(-50i64..50, 1..200),
            queries in proptest::collection::vec((-60i64..60, -60i64..60), 1..15),
        ) {
            let mut c = CrackerColumn::new(orig.clone());
            for (a, b) in queries {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                c.select(RangePred::between(lo, hi));
            }
            let mut pairs: Vec<(u32, i64)> = c.oids().iter().copied()
                .zip(c.values().iter().copied()).collect();
            pairs.sort_unstable();
            let expected: Vec<(u32, i64)> =
                (0..orig.len() as u32).map(|i| (i, orig[i as usize])).collect();
            prop_assert_eq!(pairs, expected, "cracking must permute, never alter");
        }
    }
}
