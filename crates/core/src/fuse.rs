//! Piece fusion — managing cracker-index growth.
//!
//! "Whatever the choice, the cracker index grows quickly and becomes the
//! target of a resource management challenge. At some point, cracking is
//! completely overshadowed by cracker index maintenance overhead. Fusion of
//! pieces becomes a necessity, but which heuristic works best, with minimal
//! amount of work remains an open issue" (§3.2).
//!
//! Our pieces are physically contiguous slot ranges, so fusing two adjacent
//! pieces is *pure index trimming*: remove the boundary between them and the
//! union re-forms in place — zero tuple movement, the "minimal amount of
//! work" the paper asks for. What remains is the victim-selection heuristic;
//! three candidates are implemented (see
//! [`FusionPolicy`]) and compared by the ablation benchmark.
//!
//! [`FusionPolicy`]: crate::config::FusionPolicy

use crate::column::CrackerColumn;
use crate::config::FusionPolicy;
use crate::crack::BoundaryKey;
use crate::value_trait::CrackValue;

impl<T: CrackValue> CrackerColumn<T> {
    /// Fuse the two pieces adjacent to `key` by removing that boundary.
    /// Returns `true` if the boundary existed. No tuples move.
    ///
    /// Sorted-piece flags are maintained: if *both* halves were sorted, the
    /// union is sorted too (the removed boundary guaranteed every left
    /// value precedes every right value); otherwise the merged piece loses
    /// the flag.
    pub fn fuse_boundary(&mut self, key: BoundaryKey<T>) -> bool {
        let info = match self.index_mut().remove(&key) {
            Some(info) => info,
            None => return false,
        };
        // After removal, the enclosing piece of `key` is the merged piece;
        // its start is the left half's start.
        let left_start = self.index().enclosing_piece(key).start;
        let right_sorted = self.sorted_ref().contains(info.pos);
        let left_sorted = self.sorted_ref().contains(left_start);
        self.sorted_mut().remove(info.pos);
        if !(left_sorted && right_sorted) {
            self.sorted_mut().remove(left_start);
        }
        self.stats_mut().fusions += 1;
        true
    }

    /// Enforce `config.max_pieces` by fusing boundaries until the piece
    /// count is within budget. Called automatically after every select.
    pub fn enforce_piece_budget(&mut self) {
        let max = self.config().max_pieces;
        while self.piece_count() > max {
            let victim = match self.pick_victim() {
                Some(k) => k,
                None => break,
            };
            self.fuse_boundary(victim);
        }
    }

    /// Choose which boundary to sacrifice, per the configured policy.
    fn pick_victim(&self) -> Option<BoundaryKey<T>> {
        let index = self.index();
        if index.boundary_count() == 0 {
            return None;
        }
        let pieces = index.pieces();
        // Boundary i separates pieces[i] and pieces[i+1].
        let bounds: Vec<(BoundaryKey<T>, u64)> = index
            .boundaries()
            .map(|(k, info)| (*k, info.last_used))
            .collect();
        match self.config().fusion {
            FusionPolicy::SmallestPair => bounds
                .iter()
                .enumerate()
                .min_by_key(|(i, _)| pieces[*i].len() + pieces[i + 1].len())
                .map(|(_, (k, _))| *k),
            FusionPolicy::LeastRecentlyUsed => bounds
                .iter()
                .min_by_key(|(_, last_used)| *last_used)
                .map(|(k, _)| *k),
            FusionPolicy::MostBalanced => {
                let global_max = pieces.iter().map(|p| p.len()).max().unwrap_or(0);
                bounds
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, _)| {
                        let merged = pieces[*i].len() + pieces[i + 1].len();
                        // Post-fusion maximum piece size, then merged size
                        // as tie-breaker.
                        (global_max.max(merged), merged)
                    })
                    .map(|(_, (k, _))| *k)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CrackerConfig, FusionPolicy};
    use crate::pred::RangePred;
    use proptest::prelude::*;

    fn cracked_column(max_pieces: usize, policy: FusionPolicy) -> CrackerColumn<i64> {
        let cfg = CrackerConfig::new()
            .with_max_pieces(max_pieces)
            .with_fusion(policy);
        CrackerColumn::with_config((0..1000).rev().collect(), cfg)
    }

    #[test]
    fn budget_is_enforced_after_selects() {
        let mut c = cracked_column(4, FusionPolicy::SmallestPair);
        for i in 0..20 {
            c.select(RangePred::between(i * 40, i * 40 + 25));
            assert!(
                c.piece_count() <= 4,
                "piece budget violated: {} pieces",
                c.piece_count()
            );
        }
        assert!(c.stats().fusions > 0);
        c.validate().unwrap();
    }

    #[test]
    fn answers_stay_correct_under_fusion_pressure() {
        for policy in [
            FusionPolicy::SmallestPair,
            FusionPolicy::LeastRecentlyUsed,
            FusionPolicy::MostBalanced,
        ] {
            let mut c = cracked_column(3, policy);
            for i in 0..15 {
                let lo = i * 60;
                let hi = lo + 30;
                let sel = c.select(RangePred::between(lo, hi));
                let expected = (lo.max(0)..=hi.min(999)).count();
                assert_eq!(sel.count(), expected, "policy {policy:?}, query {i}");
            }
            c.validate().unwrap();
        }
    }

    #[test]
    fn manual_fusion_removes_boundary_without_moving_data() {
        let mut c = CrackerColumn::new((0..100).rev().collect::<Vec<i64>>());
        c.select(RangePred::between(30, 60));
        let vals_before = c.values().to_vec();
        let pieces_before = c.piece_count();
        let key = *c.index().boundaries().next().unwrap().0;
        assert!(c.fuse_boundary(key));
        assert_eq!(c.piece_count(), pieces_before - 1);
        assert_eq!(c.values(), &vals_before[..], "fusion must not move tuples");
        assert!(!c.fuse_boundary(key), "boundary already gone");
        c.validate().unwrap();
    }

    #[test]
    fn lru_policy_keeps_recently_used_boundaries() {
        let cfg = CrackerConfig::new()
            .with_max_pieces(3)
            .with_fusion(FusionPolicy::LeastRecentlyUsed);
        let mut c = CrackerColumn::with_config((0..1000).rev().collect(), cfg);
        // Establish a hot boundary pair by querying it repeatedly.
        for _ in 0..5 {
            c.select(RangePred::between(100, 200));
        }
        // A burst of cold queries forces fusion; the hot boundaries should
        // survive because their recency is refreshed... but only if we keep
        // touching them.
        for i in 0..5 {
            c.select(RangePred::between(500 + i * 50, 520 + i * 50));
            c.select(RangePred::between(100, 200));
        }
        // The hot query must still be answered boundary-exact (no edge
        // scanning, no fresh cracking of a fused piece).
        let touched = c.stats().tuples_touched;
        let sel = c.select(RangePred::between(100, 200));
        assert_eq!(sel.count(), 101);
        assert_eq!(
            c.stats().tuples_touched,
            touched,
            "hot boundaries must have survived LRU fusion"
        );
    }

    #[test]
    fn budget_of_one_degenerates_to_scan_like_behaviour() {
        let mut c = cracked_column(1, FusionPolicy::SmallestPair);
        let sel = c.select(RangePred::between(10, 20));
        assert_eq!(sel.count(), 11);
        // All boundaries fused away again.
        assert_eq!(c.piece_count(), 1);
        c.validate().unwrap();
        // Still correct on the next query.
        assert_eq!(c.count(RangePred::lt(5)), 5);
    }

    proptest! {
        #[test]
        fn prop_fusion_never_breaks_correctness(
            orig in proptest::collection::vec(-60i64..60, 1..200),
            queries in proptest::collection::vec((-70i64..70, -70i64..70), 1..25),
            max_pieces in 1usize..8,
            policy in 0u8..3,
        ) {
            let policy = match policy {
                0 => FusionPolicy::SmallestPair,
                1 => FusionPolicy::LeastRecentlyUsed,
                _ => FusionPolicy::MostBalanced,
            };
            let cfg = CrackerConfig::new()
                .with_max_pieces(max_pieces)
                .with_fusion(policy);
            let mut c = CrackerColumn::with_config(orig.clone(), cfg);
            for (a, b) in queries {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let pred = RangePred::between(lo, hi);
                let mut got = c.select_oids(pred);
                got.sort_unstable();
                let mut want: Vec<u32> = orig.iter().enumerate()
                    .filter(|(_, &v)| pred.matches(v))
                    .map(|(i, _)| i as u32)
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(got, want);
                prop_assert!(c.piece_count() <= max_pieces.max(1));
            }
            c.validate().map_err(TestCaseError::fail)?;
        }
    }
}
