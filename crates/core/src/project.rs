//! Ψ-cracking (Psi): projection-driven vertical fragmentation.
//!
//! "The cracking operation Ψ(π_attr(R)) over an n-ary relation R produces
//! two pieces: P1 = π_attr(R), P2 = π_{attr(R) ∖ attr}(R)" (§3.1). For the
//! loss-less property "we assume that each vertical fragment includes (or
//! is assigned) a unique (i.e., duplicate-free) surrogate (oid), that
//! allows simple reconstruction by means of a natural 1:1-join between the
//! surrogates of both pieces."
//!
//! We operate on relations represented MonetDB-style as aligned BATs (one
//! per attribute, sharing the same surrogate OID space — see
//! [`storage::bat`]). A fragment is simply a subset of the column BATs plus
//! the shared OIDs; reconstruction performs the 1:1 surrogate join.

use std::collections::BTreeMap;
use std::sync::Arc;
use storage::{Atom, Bat, Oid, StorageError, StorageResult};

/// A vertical fragment: a set of named columns over a common OID space.
#[derive(Debug, Clone)]
pub struct VerticalFragment {
    /// Attribute name -> column BAT. All BATs are positionally aligned and
    /// share the surrogate OID space.
    pub columns: BTreeMap<String, Arc<Bat>>,
}

impl VerticalFragment {
    /// Build a fragment, verifying all columns have equal cardinality.
    pub fn new(columns: BTreeMap<String, Arc<Bat>>) -> StorageResult<Self> {
        let mut len: Option<usize> = None;
        for bat in columns.values() {
            match len {
                None => len = Some(bat.len()),
                Some(l) if l != bat.len() => {
                    return Err(StorageError::Misaligned {
                        left: l,
                        right: bat.len(),
                    })
                }
                _ => {}
            }
        }
        Ok(VerticalFragment { columns })
    }

    /// Attribute names, sorted.
    pub fn attrs(&self) -> Vec<&str> {
        self.columns.keys().map(String::as_str).collect()
    }

    /// Cardinality (0 for a fragment with no columns).
    pub fn len(&self) -> usize {
        self.columns.values().next().map_or(0, |b| b.len())
    }

    /// True when the fragment holds no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The tuple (as `attr -> atom`) identified by surrogate `oid`.
    pub fn tuple_by_oid(&self, oid: Oid) -> Option<BTreeMap<String, Atom>> {
        // Positional probe: dense heads resolve directly, explicit heads
        // are searched.
        let mut out = BTreeMap::new();
        for (name, bat) in &self.columns {
            let pos = (0..bat.len()).find(|&p| bat.head().oid_at(p) == oid)?;
            out.insert(name.clone(), bat.atom_at(pos).ok()?);
        }
        Some(out)
    }
}

/// Result of a Ψ-crack: the projected piece and its complement.
#[derive(Debug, Clone)]
pub struct PsiResult {
    /// P1: the columns named in the projection list.
    pub projected: VerticalFragment,
    /// P2: every other column of the relation.
    pub rest: VerticalFragment,
}

/// Ψ-crack `relation` on the projection list `attrs`.
///
/// Unknown attribute names are an error (`UnknownBat`), matching the
/// semantic-analysis stage the paper places the cracker after.
pub fn psi_crack(relation: &VerticalFragment, attrs: &[&str]) -> StorageResult<PsiResult> {
    for a in attrs {
        if !relation.columns.contains_key(*a) {
            return Err(StorageError::UnknownBat((*a).to_owned()));
        }
    }
    let mut projected = BTreeMap::new();
    let mut rest = BTreeMap::new();
    for (name, bat) in &relation.columns {
        if attrs.contains(&name.as_str()) {
            projected.insert(name.clone(), Arc::clone(bat));
        } else {
            rest.insert(name.clone(), Arc::clone(bat));
        }
    }
    Ok(PsiResult {
        projected: VerticalFragment::new(projected)?,
        rest: VerticalFragment::new(rest)?,
    })
}

/// Reconstruct the original relation from the two pieces via the natural
/// 1:1-join on surrogates — the Ψ inverse. Column sets are recombined;
/// alignment is re-verified via OIDs (an `O(n)` check for dense heads, a
/// join for explicit heads).
pub fn psi_reconstruct(p: &PsiResult) -> StorageResult<VerticalFragment> {
    let mut columns = BTreeMap::new();
    for (name, bat) in p.projected.columns.iter().chain(p.rest.columns.iter()) {
        columns.insert(name.clone(), Arc::clone(bat));
    }
    // 1:1-join verification: every OID of one side must appear in the
    // other (when both sides are non-empty).
    if !p.projected.is_empty() && !p.rest.is_empty() {
        // lint: allow(unwrap) — both sides checked non-empty just above
        let left = p.projected.columns.values().next().expect("non-empty");
        let right = p.rest.columns.values().next().expect("non-empty"); // lint: allow(unwrap) — same guard
        if left.len() != right.len() {
            return Err(StorageError::Misaligned {
                left: left.len(),
                right: right.len(),
            });
        }
        let rights: std::collections::HashSet<Oid> =
            (0..right.len()).map(|p| right.head().oid_at(p)).collect();
        for pos in 0..left.len() {
            let oid = left.head().oid_at(pos);
            if !rights.contains(&oid) {
                return Err(StorageError::UnknownBat(format!(
                    "surrogate @{oid} missing from complement fragment"
                )));
            }
        }
    }
    VerticalFragment::new(columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relation() -> VerticalFragment {
        let mut cols = BTreeMap::new();
        cols.insert(
            "k".to_owned(),
            Arc::new(Bat::from_ints("r_k", vec![1, 2, 3])),
        );
        cols.insert(
            "a".to_owned(),
            Arc::new(Bat::from_ints("r_a", vec![10, 20, 30])),
        );
        cols.insert(
            "name".to_owned(),
            Arc::new(Bat::from_strs("r_name", ["x", "y", "z"])),
        );
        VerticalFragment::new(cols).unwrap()
    }

    #[test]
    fn psi_splits_columns_by_projection_list() {
        let r = relation();
        let res = psi_crack(&r, &["a"]).unwrap();
        assert_eq!(res.projected.attrs(), vec!["a"]);
        assert_eq!(res.rest.attrs(), vec!["k", "name"]);
        assert_eq!(res.projected.len(), 3);
        assert_eq!(res.rest.len(), 3);
    }

    #[test]
    fn psi_unknown_attribute_is_an_error() {
        let r = relation();
        assert!(matches!(
            psi_crack(&r, &["nope"]),
            Err(StorageError::UnknownBat(_))
        ));
    }

    #[test]
    fn psi_reconstruct_restores_all_columns() {
        let r = relation();
        let res = psi_crack(&r, &["a", "name"]).unwrap();
        let back = psi_reconstruct(&res).unwrap();
        assert_eq!(back.attrs(), vec!["a", "k", "name"]);
        let t = back.tuple_by_oid(1).unwrap();
        assert_eq!(t["k"], Atom::Int(2));
        assert_eq!(t["a"], Atom::Int(20));
        assert_eq!(t["name"], Atom::from("y"));
    }

    #[test]
    fn psi_of_all_attrs_leaves_empty_rest() {
        let r = relation();
        let res = psi_crack(&r, &["a", "k", "name"]).unwrap();
        assert!(res.rest.is_empty());
        assert_eq!(res.projected.attrs().len(), 3);
        // Reconstruction with an empty complement is still fine.
        let back = psi_reconstruct(&res).unwrap();
        assert_eq!(back.attrs().len(), 3);
    }

    #[test]
    fn misaligned_columns_are_rejected() {
        let mut cols = BTreeMap::new();
        cols.insert("a".to_owned(), Arc::new(Bat::from_ints("a", vec![1])));
        cols.insert("b".to_owned(), Arc::new(Bat::from_ints("b", vec![1, 2])));
        assert!(matches!(
            VerticalFragment::new(cols),
            Err(StorageError::Misaligned { .. })
        ));
    }

    #[test]
    fn reconstruct_detects_missing_surrogates() {
        let mut left = BTreeMap::new();
        left.insert(
            "a".to_owned(),
            Arc::new(
                Bat::with_explicit_head("a", vec![0, 1], storage::TailData::Int(vec![1, 2]))
                    .unwrap(),
            ),
        );
        let mut right = BTreeMap::new();
        right.insert(
            "b".to_owned(),
            Arc::new(
                Bat::with_explicit_head("b", vec![0, 9], storage::TailData::Int(vec![5, 6]))
                    .unwrap(),
            ),
        );
        let res = PsiResult {
            projected: VerticalFragment::new(left).unwrap(),
            rest: VerticalFragment::new(right).unwrap(),
        };
        assert!(psi_reconstruct(&res).is_err());
    }

    #[test]
    fn tuple_by_oid_on_missing_oid() {
        let r = relation();
        assert!(r.tuple_by_oid(99).is_none());
    }
}
