//! A thread-safe cracked column.
//!
//! Cracking turns reads into writes: the first query over a region
//! physically reorganizes it, so a naive shared cracked column would
//! serialize every query. [`SharedCrackerColumn`] recovers read
//! parallelism for the common case the paper's own experiments highlight —
//! "with time progressing the retrieval speed would increase dramatically"
//! because later queries mostly *reuse* existing boundaries:
//!
//! 1. take the shared (read) lock and try
//!    [`CrackerColumn::try_select_readonly`] — succeeds whenever every
//!    needed boundary already exists and no updates are staged;
//! 2. otherwise take the exclusive (write) lock, **retry the read-only
//!    path under it**, and only on a genuine miss run the cracking
//!    [`CrackerColumn::select`].
//!
//! The retry in step 2 is the classic double-checked upgrade: between
//! dropping the read lock and acquiring the write lock, a contending
//! thread may have cracked the very boundaries this query needs. Without
//! the recheck the loser would re-enter `select()` — a full piece scan for
//! an answer that is already one index probe away, plus a spurious
//! `CrackStats::queries` increment. With it, exactly one of N racing
//! threads pays the cracking cost of a cold predicate; the rest reuse the
//! winner's boundaries. (The same protocol, generalized to per-shard
//! latches, is [`crate::sharded::ShardedCrackerColumn`].)
//!
//! The wrapped column inherits its crack kernel (scalar / branch-free /
//! SIMD, or the per-piece-size-band dispatcher — [`crate::kernel`]) from
//! the `CrackerConfig` it is built with, so the single-lock path runs
//! exactly the same hot loops as the plain and sharded paths.
//!
//! The lock itself comes from the [`crate::sync`] facade (lockdep): under
//! `LOCK_ANALYSIS=1` every acquisition here is checked for order
//! inversions, upgrade-while-held, and the batch path's one-read-plus-
//! one-write latch budget. `CONCURRENCY.md` at the repository root
//! documents the full latch hierarchy and which invariants are checked
//! mechanically vs. stress-tested.

use crate::column::{CrackerColumn, Selection};
use crate::config::CrackerConfig;
use crate::pred::RangePred;
use crate::stats::CrackStats;
use crate::sync::{lockdep, LockGroup, RwLock};
use crate::value_trait::CrackValue;

/// Lockdep class of the column-wide latch.
const LATCH_CLASS: &str = "column";

/// A [`CrackerColumn`] behind a read/write lock with a boundary-reuse
/// fast path.
#[derive(Debug)]
pub struct SharedCrackerColumn<T> {
    inner: RwLock<CrackerColumn<T>>,
}

impl<T: CrackValue> SharedCrackerColumn<T> {
    /// Wrap a fresh column over `vals`.
    pub fn new(vals: Vec<T>) -> Self {
        Self::from_column(CrackerColumn::new(vals))
    }

    /// Wrap a fresh column with an explicit configuration.
    pub fn with_config(vals: Vec<T>, config: CrackerConfig) -> Self {
        Self::from_column(CrackerColumn::with_config(vals, config))
    }

    /// Wrap an existing column.
    pub fn from_column(column: CrackerColumn<T>) -> Self {
        SharedCrackerColumn {
            inner: RwLock::with_class(column, LATCH_CLASS, 0, LockGroup::new()),
        }
    }

    /// Run a cracking select with **panic containment**: a kernel dying
    /// mid-reorganization would otherwise leave the shared column torn
    /// for every later query (our locks don't poison). Catch the unwind,
    /// heal the column — validate the piece map in `O(n+p)`, rebuild it
    /// cold if the panic left moves it does not describe — and only then
    /// propagate, so the panicking query still fails loudly but the
    /// column degrades to cold instead of wedging.
    fn select_contained(column: &mut CrackerColumn<T>, pred: RangePred<T>) -> Selection {
        let attempt =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| column.select(pred)));
        match attempt {
            Ok(sel) => sel,
            Err(payload) => {
                column.heal();
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// [`select_contained`](Self::select_contained) for the guarded
    /// (cancellable) path.
    fn select_guarded_contained(
        column: &mut CrackerColumn<T>,
        pred: RangePred<T>,
        keep_going: &dyn Fn() -> bool,
    ) -> Option<Selection> {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            column.select_guarded(pred, keep_going)
        }));
        match attempt {
            Ok(sel) => sel,
            Err(payload) => {
                column.heal();
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Count qualifying tuples. Lock-shared when the boundaries already
    /// exist; lock-exclusive (cracking) otherwise.
    pub fn count(&self, pred: RangePred<T>) -> usize {
        if let Some(sel) = self.inner.read().try_select_readonly(pred) {
            return sel.count();
        }
        let mut guard = self.inner.write();
        // Double-check: a contending thread may have cracked the needed
        // boundaries while we waited for the write lock.
        if let Some(sel) = guard.try_select_readonly(pred) {
            return sel.count();
        }
        Self::select_contained(&mut guard, pred).count()
    }

    /// Qualifying OIDs (unordered), same locking discipline as
    /// [`count`](Self::count).
    pub fn select_oids(&self, pred: RangePred<T>) -> Vec<u32> {
        let mut out = Vec::new();
        self.select_oids_into(pred, &mut out);
        out
    }

    /// Append the qualifying OIDs of `pred` to `out` — the scratch-buffer
    /// twin of [`select_oids`](Self::select_oids). The caller owns (and
    /// reuses) the buffer, so a warm query allocates nothing.
    pub fn select_oids_into(&self, pred: RangePred<T>, out: &mut Vec<u32>) {
        {
            let guard = self.inner.read();
            if let Some(sel) = guard.try_select_readonly(pred) {
                guard.selection_oids_into(&sel, out);
                return;
            }
        }
        let mut guard = self.inner.write();
        // Double-check, as in `count`.
        let sel = match guard.try_select_readonly(pred) {
            Some(sel) => sel,
            None => Self::select_contained(&mut guard, pred),
        };
        guard.selection_oids_into(&sel, out);
    }

    /// Answer a whole batch of predicates, appending the OIDs of
    /// `preds[i]` to `outs[i]`, under **one** lock acquisition for the
    /// whole batch instead of one per predicate.
    ///
    /// The prefix of predicates whose boundaries already exist is answered
    /// under a single read lock; at the first boundary miss the read lock
    /// is dropped and the remainder of the batch runs under a single write
    /// lock (each predicate still double-checks the read-only path there,
    /// so the per-predicate cracking discipline — at most one `select()`
    /// entry per cold predicate — is unchanged).
    pub fn select_oids_batch_into(&self, preds: &[RangePred<T>], outs: &mut [Vec<u32>]) {
        assert_eq!(preds.len(), outs.len(), "one output buffer per predicate");
        // Machine-checked form of the amortization contract above: the
        // whole batch costs at most one read plus one write acquisition
        // of the column latch (no-op unless lock analysis is on).
        let _budget = lockdep::LatchBudget::new(LATCH_CLASS, 2, "batch select amortization");
        let mut done = 0;
        {
            let guard = self.inner.read();
            for (pred, out) in preds.iter().zip(outs.iter_mut()) {
                match guard.try_select_readonly(*pred) {
                    Some(sel) => {
                        guard.selection_oids_into(&sel, out);
                        done += 1;
                    }
                    None => break,
                }
            }
            if done == preds.len() {
                return;
            }
        }
        let mut guard = self.inner.write();
        for (pred, out) in preds[done..].iter().zip(outs[done..].iter_mut()) {
            let sel = match guard.try_select_readonly(*pred) {
                Some(sel) => sel,
                None => Self::select_contained(&mut guard, *pred),
            };
            guard.selection_oids_into(&sel, out);
        }
    }

    /// The cancellable twin of
    /// [`select_oids_batch_into`](Self::select_oids_batch_into):
    /// `keep_going` is polled before every predicate (both the read-only
    /// prefix and the cracking remainder) and at every crack-step
    /// boundary inside a cold select. Returns the number of predicates
    /// fully answered — always a prefix; `outs` beyond it are untouched,
    /// and the column is left with every piece either untouched or fully
    /// cracked (never torn), so later queries are unaffected.
    ///
    /// # Panics
    /// Panics if `preds` and `outs` differ in length.
    pub fn select_oids_batch_guarded(
        &self,
        preds: &[RangePred<T>],
        outs: &mut [Vec<u32>],
        keep_going: &dyn Fn() -> bool,
    ) -> usize {
        assert_eq!(preds.len(), outs.len(), "one output buffer per predicate");
        let _budget = lockdep::LatchBudget::new(LATCH_CLASS, 2, "batch select amortization");
        let mut done = 0;
        {
            let guard = self.inner.read();
            for (pred, out) in preds.iter().zip(outs.iter_mut()) {
                if !keep_going() {
                    return done;
                }
                match guard.try_select_readonly(*pred) {
                    Some(sel) => {
                        guard.selection_oids_into(&sel, out);
                        done += 1;
                    }
                    None => break,
                }
            }
            if done == preds.len() {
                return done;
            }
        }
        let mut guard = self.inner.write();
        for (pred, out) in preds[done..].iter().zip(outs[done..].iter_mut()) {
            let sel = match guard.try_select_readonly(*pred) {
                Some(sel) => sel,
                None => match Self::select_guarded_contained(&mut guard, *pred, keep_going) {
                    Some(sel) => sel,
                    None => return done,
                },
            };
            guard.selection_oids_into(&sel, out);
            done += 1;
        }
        done
    }

    /// Allocating convenience wrapper over
    /// [`select_oids_batch_into`](Self::select_oids_batch_into).
    pub fn select_oids_batch(&self, preds: &[RangePred<T>]) -> Vec<Vec<u32>> {
        let mut outs: Vec<Vec<u32>> = preds.iter().map(|_| Vec::new()).collect();
        self.select_oids_batch_into(preds, &mut outs);
        outs
    }

    /// Run a cracking select unconditionally (exclusive).
    pub fn select(&self, pred: RangePred<T>) -> Selection {
        let mut guard = self.inner.write();
        Self::select_contained(&mut guard, pred)
    }

    /// Chaos hook: arm the wrapped column's panic-on-crack countdown
    /// (see [`CrackerColumn::arm_panic_on_crack`]).
    pub fn arm_panic_on_crack(&self, after: u32) {
        self.inner.write().arm_panic_on_crack(after);
    }

    /// Validate-or-rebuild the piece map (see [`CrackerColumn::heal`]).
    /// Exposed so recovery paths can force a heal; the select paths
    /// already heal automatically when a contained panic unwinds through
    /// them.
    pub fn heal(&self) -> bool {
        self.inner.write().heal()
    }

    /// Stage an insert (exclusive).
    pub fn insert(&self, oid: u32, value: T) {
        self.inner.write().insert(oid, value);
    }

    /// Stage a batch of inserts under a single exclusive latch
    /// acquisition — N staged rows cost one lock round-trip instead of N.
    pub fn insert_batch(&self, rows: &[(u32, T)]) {
        if rows.is_empty() {
            return;
        }
        let mut guard = self.inner.write();
        for &(oid, value) in rows {
            guard.insert(oid, value);
        }
    }

    /// Stage a delete (exclusive). Returns whether the OID was found.
    pub fn delete(&self, oid: u32) -> bool {
        self.inner.write().delete(oid)
    }

    /// Fold staged updates into the store (exclusive).
    pub fn merge_pending(&self) {
        self.inner.write().merge_pending();
    }

    /// Snapshot of the cost counters.
    pub fn stats(&self) -> CrackStats {
        *self.inner.read().stats()
    }

    /// Current number of pieces.
    pub fn piece_count(&self) -> usize {
        self.inner.read().piece_count()
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Validate all invariants (test/debug).
    pub fn validate(&self) -> Result<(), String> {
        self.inner.read().validate()
    }

    /// Run `f` against the wrapped column under the read latch — the
    /// export path for checkpointing (the durability layer snapshots the
    /// piece map and pending overlay through this).
    pub fn read_with<R>(&self, f: impl FnOnce(&CrackerColumn<T>) -> R) -> R {
        f(&self.inner.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(vals: &[i64], pred: &RangePred<i64>) -> usize {
        vals.iter().filter(|&&v| pred.matches(v)).count()
    }

    #[test]
    fn readonly_fast_path_answers_repeat_queries() {
        let col = SharedCrackerColumn::new((0..1000).rev().collect::<Vec<i64>>());
        let pred = RangePred::between(100, 200);
        assert_eq!(col.count(pred), 101); // cracks (write path)
        let cracks_before = col.stats().cracks;
        let queries_before = col.stats().queries;
        assert_eq!(col.count(pred), 101); // read-only fast path
        assert_eq!(col.stats().cracks, cracks_before);
        assert_eq!(
            col.stats().queries,
            queries_before,
            "fast path does not even enter select()"
        );
    }

    #[test]
    fn pending_updates_disable_the_fast_path() {
        let col = SharedCrackerColumn::new((0..100).collect::<Vec<i64>>());
        let pred = RangePred::between(10, 20);
        col.count(pred);
        col.insert(500, 15);
        // Fast path must not be used while an insert is staged.
        assert_eq!(col.count(pred), 12);
    }

    #[test]
    fn concurrent_readers_and_crackers_agree_with_oracle() {
        let vals: Vec<i64> = (0..50_000).map(|i| (i * 31) % 50_000).collect();
        let col = SharedCrackerColumn::new(vals.clone());
        std::thread::scope(|s| {
            for t in 0..8 {
                let col = &col;
                let vals = &vals;
                s.spawn(move || {
                    for q in 0..50 {
                        let lo = ((t * 577 + q * 131) % 49_000) as i64;
                        let pred = RangePred::between(lo, lo + 800);
                        assert_eq!(col.count(pred), oracle(vals, &pred));
                    }
                });
            }
        });
        col.validate().unwrap();
    }

    #[test]
    fn concurrent_updates_and_queries_are_linearizable_at_count_level() {
        // Writers insert values outside the queried band; readers must
        // never see a torn store (counts over the fixed band stay exact).
        let col = SharedCrackerColumn::new((0..10_000).collect::<Vec<i64>>());
        let band = RangePred::between(2_000, 3_000);
        let expected = 1_001;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let col = &col;
                s.spawn(move || {
                    for q in 0..100 {
                        assert_eq!(col.count(band), expected, "query {q}");
                    }
                });
            }
            let col = &col;
            s.spawn(move || {
                for i in 0..500u32 {
                    col.insert(20_000 + i, 50_000 + i as i64);
                }
                col.merge_pending();
            });
        });
        col.validate().unwrap();
        assert_eq!(col.len(), 10_500);
        assert_eq!(col.count(band), expected);
    }

    #[test]
    fn contended_cold_predicate_enters_select_exactly_once() {
        // Regression for the contended-upgrade double-crack: N threads
        // race on the same cold predicate; exactly one may enter the
        // cracking select() (queries += 1), the rest must pick up the
        // winner's boundaries via the double-checked read-only retry
        // under the write lock.
        use std::sync::Barrier;
        let col = SharedCrackerColumn::new((0..100_000).rev().collect::<Vec<i64>>());
        let threads = 8;
        for round in 0..20i64 {
            let lo = round * 4_500;
            let pred = RangePred::between(lo, lo + 1_000);
            let expected = 1_001;
            let before = col.stats().queries;
            let barrier = Barrier::new(threads);
            std::thread::scope(|s| {
                for t in 0..threads {
                    let col = &col;
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        // Exercise both upgrading entry points.
                        if t % 2 == 0 {
                            assert_eq!(col.count(pred), expected);
                        } else {
                            assert_eq!(col.select_oids(pred).len(), expected);
                        }
                    });
                }
            });
            assert_eq!(
                col.stats().queries,
                before + 1,
                "round {round}: a cold predicate must enter select() exactly once \
                 across {threads} racing threads"
            );
        }
        col.validate().unwrap();
    }

    #[test]
    fn batch_select_matches_statement_at_a_time() {
        let vals: Vec<i64> = (0..5_000).map(|i| (i * 17) % 5_000).collect();
        let batch = SharedCrackerColumn::new(vals.clone());
        let single = SharedCrackerColumn::new(vals);
        let preds: Vec<RangePred<i64>> = (0..20)
            .map(|i| RangePred::between(i * 190, i * 190 + 400))
            .collect();
        let got = batch.select_oids_batch(&preds);
        for (pred, mut oids) in preds.iter().zip(got) {
            let mut expect = single.select_oids(*pred);
            oids.sort_unstable();
            expect.sort_unstable();
            assert_eq!(oids, expect, "pred {pred:?}");
        }
        // Same boundaries were created either way.
        assert_eq!(batch.piece_count(), single.piece_count());
        // A warm batch is answered entirely on the read-lock fast path:
        // select() is never re-entered.
        let queries = batch.stats().queries;
        let again = batch.select_oids_batch(&preds);
        assert_eq!(again.len(), preds.len());
        assert_eq!(batch.stats().queries, queries);
        // Scratch variant appends into caller buffers.
        let mut outs: Vec<Vec<u32>> = preds.iter().map(|_| Vec::new()).collect();
        batch.select_oids_batch_into(&preds, &mut outs);
        for (pred, out) in preds.iter().zip(&outs) {
            assert_eq!(out.len(), batch.count(*pred), "pred {pred:?}");
        }
        batch.validate().unwrap();
    }

    #[test]
    fn select_and_oids_work_through_the_wrapper() {
        let col = SharedCrackerColumn::new(vec![5i64, 1, 9, 3]);
        let sel = col.select(RangePred::le(3));
        assert_eq!(sel.count(), 2);
        let mut oids = col.select_oids(RangePred::le(3));
        oids.sort_unstable();
        assert_eq!(oids, vec![1, 3]);
        assert!(col.delete(1));
        assert_eq!(col.count(RangePred::le(3)), 1);
        assert!(!col.is_empty());
        assert_eq!(col.len(), 4, "delete is staged, not yet merged");
        col.merge_pending();
        assert_eq!(col.len(), 3);
    }

    #[test]
    fn a_panicking_crack_is_contained_and_the_column_heals() {
        let vals: Vec<i64> = (0..2000).map(|i| (i * 29) % 2000).collect();
        let col = SharedCrackerColumn::new(vals.clone());
        col.count(RangePred::between(500, 1500)); // crack some boundaries
        col.arm_panic_on_crack(0);
        // The injected panic tears a pair across pieces and unwinds; the
        // wrapper heals the column and re-raises so the query still fails.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            col.count(RangePred::between(100, 200))
        }));
        assert!(r.is_err(), "the panicking query must fail loudly");
        // The lock is parking_lot-backed (no poisoning) and the column
        // already healed: every later query answers from a cold rebuild.
        col.validate().unwrap();
        assert!(!col.heal(), "containment already healed the piece map");
        for pred in [
            RangePred::between(100, 200),
            RangePred::between(500, 1500),
            RangePred::le(50),
        ] {
            assert_eq!(col.count(pred), oracle(&vals, &pred), "pred {pred:?}");
        }
    }

    #[test]
    fn guarded_batch_stops_at_a_block_boundary_and_reports_the_prefix() {
        let vals: Vec<i64> = (0..3000).map(|i| (i * 17) % 3000).collect();
        let col = SharedCrackerColumn::new(vals.clone());
        let preds: Vec<RangePred<i64>> = (0..6)
            .map(|i| RangePred::between(i * 400, i * 400 + 300))
            .collect();
        // Fail the guard once the third predicate has been admitted.
        let polls = std::cell::Cell::new(0usize);
        let guard = || {
            polls.set(polls.get() + 1);
            polls.get() <= 2
        };
        let mut outs: Vec<Vec<u32>> = preds.iter().map(|_| Vec::new()).collect();
        let done = col.select_oids_batch_guarded(&preds, &mut outs, &guard);
        assert!(done < preds.len(), "the batch must be cut short");
        for (i, out) in outs.iter().enumerate() {
            if i < done {
                let mut got = out.clone();
                got.sort_unstable();
                let mut expect: Vec<u32> = vals
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| preds[i].matches(v))
                    .map(|(p, _)| p as u32)
                    .collect();
                expect.sort_unstable();
                assert_eq!(got, expect, "completed pred {i}");
            } else {
                assert!(out.is_empty(), "abandoned pred {i} left no output");
            }
        }
        col.validate().unwrap();
        // The abandoned suffix changed no later observable answer.
        for pred in &preds {
            assert_eq!(col.count(*pred), oracle(&vals, pred));
        }
    }
}
