//! The cracker index — a "decorated interval tree" (§5.2).
//!
//! For each piece the paper's index "keeps track of the (min,max) bounds of
//! the (range) attributes, its size, and its location in the database"
//! (§3.2). Because our cracked pieces are *contiguous* slot ranges of one
//! array, a piece is fully described by its two bounding **boundaries**:
//! an ordered map from [`BoundaryKey`] to split position is the whole
//! index. Piece size falls out of adjacent positions; piece value bounds
//! fall out of adjacent keys; navigation is an `O(log p)` ordered-map
//! lookup.
//!
//! The decoration per boundary is a recency tick, which the LRU fusion
//! policy uses ([`crate::fuse`]).

use crate::crack::BoundaryKey;
use crate::value_trait::CrackValue;
use std::collections::BTreeMap;
use std::ops::Range;

/// Per-boundary decoration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryInfo {
    /// Split position: elements before `pos` are "before" the key.
    pub pos: usize,
    /// Logical timestamp of the last query that used this boundary.
    pub last_used: u64,
}

/// One piece as reported by [`CrackerIndex::pieces`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Piece<T> {
    /// Slot range `[start, end)` of the piece.
    pub start: usize,
    /// End of the slot range (exclusive).
    pub end: usize,
    /// Boundary delimiting the piece from below (None for the first piece).
    pub lower: Option<BoundaryKey<T>>,
    /// Boundary delimiting the piece from above (None for the last piece).
    pub upper: Option<BoundaryKey<T>>,
}

impl<T> Piece<T> {
    /// Number of slots in the piece.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for zero-width pieces.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Ordered map of crack boundaries over a column of `n` slots.
#[derive(Debug, Clone, Default)]
pub struct CrackerIndex<T> {
    bounds: BTreeMap<BoundaryKey<T>, BoundaryInfo>,
    n: usize,
    tick: u64,
}

impl<T: CrackValue> CrackerIndex<T> {
    /// An index over `n` slots with no boundaries: one virgin piece.
    pub fn new(n: usize) -> Self {
        CrackerIndex {
            bounds: BTreeMap::new(),
            n,
            tick: 0,
        }
    }

    /// Number of slots covered.
    pub fn slots(&self) -> usize {
        self.n
    }

    /// Update the slot count (after an update merge changed the column
    /// length). All boundary positions must already be consistent.
    pub fn set_slots(&mut self, n: usize) {
        self.n = n;
    }

    /// Number of boundaries.
    pub fn boundary_count(&self) -> usize {
        self.bounds.len()
    }

    /// Number of pieces (boundaries + 1; a fresh index has one piece).
    pub fn piece_count(&self) -> usize {
        self.bounds.len() + 1
    }

    /// Advance and return the logical clock (one tick per query).
    pub fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Position for `key` if this exact boundary exists. Refreshes its
    /// recency.
    pub fn lookup(&mut self, key: BoundaryKey<T>) -> Option<usize> {
        let tick = self.tick;
        self.bounds.get_mut(&key).map(|info| {
            info.last_used = tick;
            info.pos
        })
    }

    /// Position for `key` without touching recency (read-only probes).
    pub fn peek(&self, key: BoundaryKey<T>) -> Option<usize> {
        self.bounds.get(&key).map(|info| info.pos)
    }

    /// The unbroken slot range within which the boundary `key` would fall:
    /// delimited by the nearest existing boundaries on either side.
    pub fn enclosing_piece(&self, key: BoundaryKey<T>) -> Range<usize> {
        let lo = self
            .bounds
            .range(..key)
            .next_back()
            .map(|(_, info)| info.pos)
            .unwrap_or(0);
        let hi = self
            .bounds
            .range(key..)
            .next()
            .map(|(_, info)| info.pos)
            .unwrap_or(self.n);
        lo..hi
    }

    /// Record a new boundary at `pos`. Panics (debug) if it contradicts an
    /// existing boundary ordering — that would mean cracked data corruption.
    pub fn insert(&mut self, key: BoundaryKey<T>, pos: usize) {
        debug_assert!(pos <= self.n);
        debug_assert!(
            self.enclosing_piece(key).contains(&pos)
                || self.enclosing_piece(key).start == pos
                || self.enclosing_piece(key).end == pos,
            "boundary position must fall inside its enclosing piece"
        );
        let tick = self.tick;
        self.bounds.insert(
            key,
            BoundaryInfo {
                pos,
                last_used: tick,
            },
        );
    }

    /// Set a boundary position unconditionally, bypassing the containment
    /// check — for bulk rebuilds (update merges) where neighbor positions
    /// are rewritten in one sweep and are transiently inconsistent. The
    /// caller must restore full consistency before the next query;
    /// [`CrackerIndex::validate`] checks it in tests.
    pub fn set_position(&mut self, key: BoundaryKey<T>, pos: usize) {
        let tick = self.tick;
        self.bounds
            .entry(key)
            .and_modify(|info| info.pos = pos)
            .or_insert(BoundaryInfo {
                pos,
                last_used: tick,
            });
    }

    /// Remove a boundary (fusing its two adjacent pieces). Returns the
    /// removed info. Physically this is all fusion takes: pieces are
    /// contiguous, so dropping the boundary re-forms the union in place.
    pub fn remove(&mut self, key: &BoundaryKey<T>) -> Option<BoundaryInfo> {
        self.bounds.remove(key)
    }

    /// Iterate boundaries in key order.
    pub fn boundaries(&self) -> impl Iterator<Item = (&BoundaryKey<T>, &BoundaryInfo)> {
        self.bounds.iter()
    }

    /// Enumerate all pieces in slot order.
    pub fn pieces(&self) -> Vec<Piece<T>> {
        let mut out = Vec::with_capacity(self.bounds.len() + 1);
        let mut start = 0usize;
        let mut lower: Option<BoundaryKey<T>> = None;
        for (&key, info) in &self.bounds {
            out.push(Piece {
                start,
                end: info.pos,
                lower,
                upper: Some(key),
            });
            start = info.pos;
            lower = Some(key);
        }
        out.push(Piece {
            start,
            end: self.n,
            lower,
            upper: None,
        });
        out
    }

    /// Rebuild all boundary positions from scratch given the (re-sorted
    /// into pieces) value array — used after an update merge. Positions are
    /// recomputed by counting values before each key.
    pub fn rebuild_positions(&mut self, vals: &[T]) {
        self.n = vals.len();
        let keys: Vec<BoundaryKey<T>> = self.bounds.keys().copied().collect();
        for key in keys {
            let pos = vals.iter().filter(|&&v| key.before(v)).count();
            if let Some(info) = self.bounds.get_mut(&key) {
                info.pos = pos;
            }
        }
    }

    /// Check every index invariant against the actual values. Test/debug
    /// helper; `O(n · p)`.
    ///
    /// Invariants: boundary positions are monotone in key order, each lies
    /// in `0..=n`, and every value respects every boundary (values before
    /// the split satisfy `key.before`, values after do not).
    pub fn validate(&self, vals: &[T]) -> Result<(), String> {
        if vals.len() != self.n {
            return Err(format!(
                "slot count mismatch: index says {}, column has {}",
                self.n,
                vals.len()
            ));
        }
        let mut prev_pos = 0usize;
        for (key, info) in &self.bounds {
            if info.pos < prev_pos {
                return Err(format!(
                    "boundary {key:?} at {} violates monotonicity (prev {prev_pos})",
                    info.pos
                ));
            }
            if info.pos > self.n {
                return Err(format!("boundary {key:?} beyond end: {}", info.pos));
            }
            for (i, &v) in vals.iter().enumerate() {
                let before = key.before(v);
                if i < info.pos && !before {
                    return Err(format!(
                        "value {v:?} at slot {i} should be before boundary {key:?} (pos {})",
                        info.pos
                    ));
                }
                if i >= info.pos && before {
                    return Err(format!(
                        "value {v:?} at slot {i} should be after boundary {key:?} (pos {})",
                        info.pos
                    ));
                }
            }
            prev_pos = info.pos;
        }
        Ok(())
    }
    /// Check every index invariant against the actual values in `O(n + p)`
    /// — the recovery-time counterpart of [`CrackerIndex::validate`].
    ///
    /// Boundary before-sets are nested along key order, so a value that
    /// respects its piece's two *adjacent* boundaries respects every other
    /// boundary by transitivity: checking each slot against only its
    /// enclosing piece's bounds proves the full `O(n · p)` property.
    pub fn check_pieces(&self, vals: &[T]) -> Result<(), String> {
        if vals.len() != self.n {
            return Err(format!(
                "slot count mismatch: index says {}, column has {}",
                self.n,
                vals.len()
            ));
        }
        let mut prev_pos = 0usize;
        for (key, info) in &self.bounds {
            if info.pos < prev_pos {
                return Err(format!(
                    "boundary {key:?} at {} violates monotonicity (prev {prev_pos})",
                    info.pos
                ));
            }
            if info.pos > self.n {
                return Err(format!("boundary {key:?} beyond end: {}", info.pos));
            }
            prev_pos = info.pos;
        }
        for piece in self.pieces() {
            for (i, &v) in vals[piece.start..piece.end].iter().enumerate() {
                if let Some(lower) = piece.lower {
                    if lower.before(v) {
                        return Err(format!(
                            "value {v:?} at slot {} should be after boundary {lower:?}",
                            piece.start + i
                        ));
                    }
                }
                if let Some(upper) = piece.upper {
                    if !upper.before(v) {
                        return Err(format!(
                            "value {v:?} at slot {} should be before boundary {upper:?}",
                            piece.start + i
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_index_is_one_virgin_piece() {
        let idx: CrackerIndex<i64> = CrackerIndex::new(10);
        assert_eq!(idx.piece_count(), 1);
        let pieces = idx.pieces();
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].start, 0);
        assert_eq!(pieces[0].end, 10);
        assert_eq!(pieces[0].lower, None);
        assert_eq!(pieces[0].upper, None);
    }

    #[test]
    fn enclosing_piece_narrows_with_boundaries() {
        let mut idx: CrackerIndex<i64> = CrackerIndex::new(100);
        assert_eq!(idx.enclosing_piece(BoundaryKey::lt(50)), 0..100);
        idx.insert(BoundaryKey::lt(50), 40);
        assert_eq!(idx.enclosing_piece(BoundaryKey::lt(20)), 0..40);
        assert_eq!(idx.enclosing_piece(BoundaryKey::lt(70)), 40..100);
        idx.insert(BoundaryKey::lt(20), 15);
        assert_eq!(idx.enclosing_piece(BoundaryKey::lt(30)), 15..40);
    }

    #[test]
    fn lookup_returns_position_and_touches_recency() {
        let mut idx: CrackerIndex<i64> = CrackerIndex::new(10);
        idx.insert(BoundaryKey::lt(5), 4);
        idx.next_tick();
        idx.next_tick();
        assert_eq!(idx.lookup(BoundaryKey::lt(5)), Some(4));
        let (_, info) = idx.boundaries().next().unwrap();
        assert_eq!(info.last_used, 2);
        assert_eq!(idx.lookup(BoundaryKey::le(5)), None);
    }

    #[test]
    fn lt_and_le_boundaries_coexist_for_same_value() {
        let mut idx: CrackerIndex<i64> = CrackerIndex::new(10);
        idx.insert(BoundaryKey::lt(5), 3);
        idx.insert(BoundaryKey::le(5), 6);
        assert_eq!(idx.peek(BoundaryKey::lt(5)), Some(3));
        assert_eq!(idx.peek(BoundaryKey::le(5)), Some(6));
        // The middle piece holds exactly the values equal to 5.
        let pieces = idx.pieces();
        assert_eq!(pieces.len(), 3);
        assert_eq!(pieces[1].start, 3);
        assert_eq!(pieces[1].end, 6);
    }

    #[test]
    fn pieces_tile_the_whole_range() {
        let mut idx: CrackerIndex<i64> = CrackerIndex::new(50);
        idx.insert(BoundaryKey::lt(10), 12);
        idx.insert(BoundaryKey::lt(30), 33);
        idx.insert(BoundaryKey::lt(20), 25);
        let pieces = idx.pieces();
        assert_eq!(pieces.len(), 4);
        assert_eq!(pieces[0].start, 0);
        for w in pieces.windows(2) {
            assert_eq!(w[0].end, w[1].start, "pieces must tile contiguously");
        }
        assert_eq!(pieces.last().unwrap().end, 50);
        assert_eq!(pieces.iter().map(Piece::len).sum::<usize>(), 50);
    }

    #[test]
    fn remove_fuses_adjacent_pieces() {
        let mut idx: CrackerIndex<i64> = CrackerIndex::new(50);
        idx.insert(BoundaryKey::lt(10), 12);
        idx.insert(BoundaryKey::lt(30), 33);
        assert_eq!(idx.piece_count(), 3);
        assert!(idx.remove(&BoundaryKey::lt(10)).is_some());
        assert_eq!(idx.piece_count(), 2);
        let pieces = idx.pieces();
        assert_eq!(pieces[0].start, 0);
        assert_eq!(pieces[0].end, 33);
        assert!(idx.remove(&BoundaryKey::lt(10)).is_none());
    }

    #[test]
    fn validate_accepts_consistent_state() {
        let vals = vec![1i64, 2, 3, 10, 12, 20, 25];
        let mut idx = CrackerIndex::new(vals.len());
        idx.insert(BoundaryKey::lt(10), 3);
        idx.insert(BoundaryKey::lt(20), 5);
        assert!(idx.validate(&vals).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_position() {
        let vals = vec![1i64, 2, 3, 10, 12];
        let mut idx = CrackerIndex::new(vals.len());
        idx.insert(BoundaryKey::lt(10), 2); // wrong: should be 3
        assert!(idx.validate(&vals).is_err());
    }

    #[test]
    fn validate_rejects_slot_mismatch() {
        let idx: CrackerIndex<i64> = CrackerIndex::new(5);
        assert!(idx.validate(&[1, 2, 3]).is_err());
    }

    #[test]
    fn rebuild_positions_recomputes_after_data_change() {
        let mut idx: CrackerIndex<i64> = CrackerIndex::new(4);
        idx.insert(BoundaryKey::lt(10), 2);
        // Column grew: two more small values arrived (already clustered).
        let vals = vec![1i64, 5, 7, 9, 15, 20];
        idx.rebuild_positions(&vals);
        assert_eq!(idx.slots(), 6);
        assert_eq!(idx.peek(BoundaryKey::lt(10)), Some(4));
        assert!(idx.validate(&vals).is_ok());
    }

    #[test]
    fn piece_len_and_empty() {
        let p: Piece<i64> = Piece {
            start: 3,
            end: 3,
            lower: None,
            upper: None,
        };
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }
}
