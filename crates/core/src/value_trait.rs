//! The value trait cracked columns are generic over.
//!
//! Cracking is a pure comparison-and-swap partitioning algorithm, so any
//! `Copy + Ord` type works. The experiments in the paper use integer
//! tapestry tables; the scientific-database motivation calls for floats,
//! which we support through the total-order wrapper [`OrdF64`].

use std::fmt::Debug;
use std::hash::Hash;

/// Values a [`crate::column::CrackerColumn`] can hold.
///
/// Requirements: cheap to copy (values are swapped in place during
/// cracking), totally ordered (boundary keys live in an ordered map),
/// hashable (the ^ and Ω crackers build hash tables over join/group
/// values), and debuggable (error messages, lineage labels).
pub trait CrackValue: Copy + Ord + Hash + Debug + Send + Sync + 'static {}

impl CrackValue for i64 {}
impl CrackValue for i32 {}
impl CrackValue for u64 {}
impl CrackValue for u32 {}
impl CrackValue for OrdF64 {}

/// An `f64` with the IEEE-754 total order, so floats can be cracked and
/// used as boundary keys. NaN sorts after +∞; -0.0 sorts before +0.0.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// Wrap a float.
    pub fn new(v: f64) -> Self {
        OrdF64(v)
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}

impl Eq for OrdF64 {}

impl Hash for OrdF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Bit-pattern hash, consistent with the total_cmp-based Eq.
        self.0.to_bits().hash(state);
    }
}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrdF64 {
    fn from(v: f64) -> Self {
        OrdF64(v)
    }
}

impl From<OrdF64> for f64 {
    fn from(v: OrdF64) -> Self {
        v.0
    }
}

impl std::fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_total_order() {
        assert!(OrdF64(1.0) < OrdF64(2.0));
        assert!(OrdF64(f64::NEG_INFINITY) < OrdF64(-1.0));
        assert!(OrdF64(f64::INFINITY) < OrdF64(f64::NAN));
        assert!(OrdF64(-0.0) < OrdF64(0.0));
        assert_eq!(OrdF64(f64::NAN), OrdF64(f64::NAN));
    }

    #[test]
    fn ordf64_round_trips() {
        let x = OrdF64::from(3.5);
        assert_eq!(f64::from(x), 3.5);
        assert_eq!(x.get(), 3.5);
        assert_eq!(x.to_string(), "3.5");
    }

    #[test]
    fn sorting_a_vec_of_ordf64_never_panics() {
        let mut v = [OrdF64(2.0), OrdF64(f64::NAN), OrdF64(-1.0), OrdF64(0.0)];
        v.sort();
        assert_eq!(v[0], OrdF64(-1.0));
        assert_eq!(v[3], OrdF64(f64::NAN));
    }
}
