//! Thread-scaling of the concurrent cracker: aggregate throughput of the
//! per-shard-latched [`ShardedCrackerColumn`] versus the single-`RwLock`
//! [`SharedCrackerColumn`] at 1/2/4/8 threads, under the MQS homerun
//! profile and a Zipf-skewed ad-hoc workload.
//!
//! The point under measurement is §4's promise made concurrent: with one
//! global lock every boundary-miss serializes the whole column, while the
//! sharded index lets crackers on disjoint value ranges proceed in
//! parallel — and because the shard splits are equi-depth (sampled), even
//! a Zipf-skewed workload spreads across shards instead of piling onto
//! one.
//!
//! `BENCH_SMOKE=1` shrinks the data and query counts so CI can run this as
//! a smoke test; pass `--json` to record medians (see the bench harness).

use cracker_core::{RangePred, ShardedCrackerColumn, SharedCrackerColumn};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::homerun::homerun_sequence;
use workload::skew::zipf_column;
use workload::{Contraction, Tapestry};

const SHARDS: usize = 64;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

fn n() -> usize {
    if smoke() {
        40_000
    } else {
        400_000
    }
}

fn total_queries() -> usize {
    if smoke() {
        64
    } else {
        512
    }
}

/// Run `preds`, split evenly across `threads`, against `col` (any column
/// answering `count(&self, pred)` through a shared reference).
fn storm<C: Sync>(
    col: &C,
    count: impl Fn(&C, RangePred<i64>) -> usize + Sync,
    preds: &[RangePred<i64>],
    threads: usize,
) {
    std::thread::scope(|s| {
        for chunk in preds.chunks(preds.len().div_ceil(threads)) {
            let count = &count;
            s.spawn(move || {
                for &pred in chunk {
                    criterion::black_box(count(col, pred));
                }
            });
        }
    });
}

/// Zipf-skewed ad-hoc ranges: window origins drawn with the same skew as
/// the data, so the hot region is queried most — the regime where
/// equi-depth shards pay off.
fn zipf_preds(domain: usize, queries: usize) -> Vec<RangePred<i64>> {
    let width = (domain / 64).max(1) as i64;
    zipf_column(queries, domain, 1.0, 0x51D)
        .into_iter()
        .enumerate()
        .map(|(i, lo)| RangePred::half_open(lo, lo + 1 + (i as i64 % width)))
        .collect()
}

/// MQS homerun windows, one zooming sequence per thread offset, fired
/// round-robin so concurrent threads touch different windows.
fn homerun_preds(n: usize, queries: usize) -> Vec<RangePred<i64>> {
    let windows = homerun_sequence(n, 32, 0.05, Contraction::Linear, 7);
    (0..queries)
        .map(|i| windows[i % windows.len()].to_pred())
        .collect()
}

/// Every sample cracks a fresh column (same distribution, new seed): the
/// cold crack storm is the thing under measurement, and replaying one
/// identical buffer would let the branch predictor memorize its outcome
/// sequence across samples (see the ablation bench's kernel sweep).
fn scale(
    c: &mut Criterion,
    group: &str,
    make_vals: impl Fn(u64) -> Vec<i64>,
    preds: &[RangePred<i64>],
) {
    let mut g = c.benchmark_group(group);
    g.sample_size(if smoke() { 3 } else { 10 });
    let ctr = std::cell::Cell::new(0u64);
    let fresh = || {
        let seed = ctr.get();
        ctr.set(seed + 1);
        make_vals(seed)
    };
    for &t in &THREADS {
        g.bench_with_input(BenchmarkId::new("single", t), &t, |b, &t| {
            b.iter_batched(
                || SharedCrackerColumn::new(fresh()),
                |col| storm(&col, SharedCrackerColumn::count, preds, t),
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("sharded", t), &t, |b, &t| {
            b.iter_batched(
                || ShardedCrackerColumn::new(fresh(), SHARDS),
                |col| storm(&col, ShardedCrackerColumn::count, preds, t),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn zipf_scaling(c: &mut Criterion) {
    let preds = zipf_preds(n() / 4, total_queries());
    scale(
        c,
        "sharded_scale_zipf",
        |seed| zipf_column(n(), n() / 4, 1.0, 0xD07 + seed),
        &preds,
    );
}

fn homerun_scaling(c: &mut Criterion) {
    let preds = homerun_preds(n(), total_queries());
    scale(
        c,
        "sharded_scale_homerun",
        |seed| Tapestry::generate(n(), 1, 0xBE7C + seed).column(0).to_vec(),
        &preds,
    );
}

criterion_group!(benches, zipf_scaling, homerun_scaling);
criterion_main!(benches);
