//! Micro-benchmarks of the core claim: per-query cost under cracking
//! versus scanning versus a sorted column, at different points of a query
//! sequence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{CrackEngine, OutputMode, QueryEngine, ScanEngine, SortEngine};
use workload::homerun::homerun_sequence;
use workload::{Contraction, Tapestry};

/// Column size; `BENCH_SMOKE=1` shrinks it so CI can run this bench as a
/// smoke test (with `--json` to record the medians).
fn n() -> usize {
    if std::env::var_os("BENCH_SMOKE").is_some() {
        20_000
    } else {
        200_000
    }
}

fn column() -> Vec<i64> {
    Tapestry::generate(n(), 1, 0xBE7C).column(0).to_vec()
}

/// A fresh shuffled column per sample. Cold-path measurements (a first
/// query, a whole virgin sequence) must never replay one identical
/// buffer: the branch predictor memorizes its outcome sequence across
/// samples and flatters the branchy loops with an accuracy no real cold
/// crack gets (the same fix the ablation bench's kernel sweep carries).
fn fresh_column(counter: &std::cell::Cell<u64>) -> Vec<i64> {
    let seed = 0xBE7C + counter.get();
    counter.set(counter.get() + 1);
    Tapestry::generate(n(), 1, seed).column(0).to_vec()
}

/// First-query cost: the cracking investment vs. a plain scan vs. the
/// full sort.
fn first_query(c: &mut Criterion) {
    let seq = homerun_sequence(n(), 16, 0.05, Contraction::Linear, 1);
    let pred = seq[0].to_pred();
    let mut g = c.benchmark_group("first_query");
    let ctr = std::cell::Cell::new(0u64);
    g.bench_function("scan", |b| {
        b.iter_batched(
            || ScanEngine::new(fresh_column(&ctr)),
            |mut e| e.run(pred, OutputMode::Count),
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("crack", |b| {
        b.iter_batched(
            || CrackEngine::new(fresh_column(&ctr)),
            |mut e| e.run(pred, OutputMode::Count),
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("sort", |b| {
        b.iter_batched(
            || SortEngine::new(fresh_column(&ctr)),
            |mut e| e.run(pred, OutputMode::Count),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Steady-state cost: the same query once the sequence has warmed each
/// engine up — the "nearly completely indexed table" regime of §5.2.
fn warmed_query(c: &mut Criterion) {
    let vals = column();
    let seq = homerun_sequence(n(), 16, 0.05, Contraction::Linear, 1);
    let pred = seq.last().unwrap().to_pred();
    let mut g = c.benchmark_group("warmed_query");
    g.bench_function("scan", |b| {
        let mut e = ScanEngine::new(vals.clone());
        for w in &seq {
            e.run(w.to_pred(), OutputMode::Count);
        }
        b.iter(|| e.run(pred, OutputMode::Count))
    });
    g.bench_function("crack", |b| {
        let mut e = CrackEngine::new(vals.clone());
        for w in &seq {
            e.run(w.to_pred(), OutputMode::Count);
        }
        b.iter(|| e.run(pred, OutputMode::Count))
    });
    g.bench_function("sort", |b| {
        let mut e = SortEngine::new(vals.clone());
        for w in &seq {
            e.run(w.to_pred(), OutputMode::Count);
        }
        b.iter(|| e.run(pred, OutputMode::Count))
    });
    g.finish();
}

/// Whole-sequence cost at several sequence lengths (the Figure 10/11
/// integrand).
fn sequence_total(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequence_total");
    g.sample_size(10);
    for &k in &[8usize, 32] {
        let seq = homerun_sequence(n(), k, 0.05, Contraction::Linear, 2);
        let ctr = std::cell::Cell::new(0u64);
        g.bench_with_input(BenchmarkId::new("crack", k), &seq, |b, seq| {
            b.iter_batched(
                || CrackEngine::new(fresh_column(&ctr)),
                |mut e| {
                    for w in seq {
                        e.run(w.to_pred(), OutputMode::Count);
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("scan", k), &seq, |b, seq| {
            b.iter_batched(
                || ScanEngine::new(fresh_column(&ctr)),
                |mut e| {
                    for w in seq {
                        e.run(w.to_pred(), OutputMode::Count);
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, first_query, warmed_query, sequence_total);
criterion_main!(benches);
