//! Criterion micro-benches over the extension subsystems: stochastic
//! policies under both workload shapes, sideways projection vs OID
//! gather, buffer-pool page access, and the SQL front-end pipeline.

use cracker_core::sideways::CrackerMap;
use cracker_core::stochastic::{StochasticCracker, StochasticPolicy};
use cracker_core::CrackerColumn;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sql::SqlSession;
use storage::{BufferPool, MemDisk, PagedColumn};
use workload::sequential::{adversarial_sequence, Adversary};
use workload::strolling::{strolling_sequence, StrollMode};
use workload::{Contraction, Tapestry, Window};

const N: usize = 200_000;
const K: usize = 64;

fn column() -> Vec<i64> {
    Tapestry::generate(N, 1, 0xE47).column(0).to_vec()
}

/// Stochastic policies, crossed with a random and a sequential workload.
fn stochastic(c: &mut Criterion) {
    let vals = column();
    let workloads: [(&str, Vec<Window>); 2] = [
        (
            "random",
            strolling_sequence(
                N,
                K,
                0.02,
                Contraction::Linear,
                StrollMode::RandomWithReplacement,
                5,
            ),
        ),
        (
            "seq-asc",
            adversarial_sequence(N, K, Adversary::SequentialAsc),
        ),
    ];
    let mut g = c.benchmark_group("ext_stochastic");
    g.sample_size(10);
    for (wl, seq) in &workloads {
        for policy in [
            StochasticPolicy::Vanilla,
            StochasticPolicy::DD1R,
            StochasticPolicy::DDR { floor: 2_048 },
        ] {
            g.bench_with_input(BenchmarkId::new(*wl, policy.label()), seq, |b, seq| {
                b.iter(|| {
                    let mut col = StochasticCracker::new(vals.clone(), policy, 7);
                    for w in seq {
                        col.select(w.to_pred());
                    }
                    col.total_touched()
                })
            });
        }
    }
    g.finish();
}

/// Tuple reconstruction: sideways map vs crack-then-gather-by-OID.
fn sideways(c: &mut Criterion) {
    let a = column();
    let b_col: Vec<i64> = a.iter().map(|v| v * 3).collect();
    let seq = strolling_sequence(
        N,
        K,
        0.02,
        Contraction::Linear,
        StrollMode::RandomWithReplacement,
        9,
    );
    let mut g = c.benchmark_group("ext_sideways");
    g.sample_size(10);
    g.bench_function("oid_gather", |bch| {
        bch.iter(|| {
            let mut col = CrackerColumn::new(a.clone());
            let mut acc = 0i64;
            for w in &seq {
                let sel = col.select(w.to_pred());
                for oid in col.selection_oids(&sel) {
                    acc = acc.wrapping_add(b_col[oid as usize]);
                }
            }
            acc
        })
    });
    g.bench_function("cracker_map", |bch| {
        bch.iter(|| {
            let mut map = CrackerMap::new(a.clone(), b_col.clone());
            let mut acc = 0i64;
            for w in &seq {
                let r = map.select(w.to_pred());
                for &v in map.project(r) {
                    acc = acc.wrapping_add(v);
                }
            }
            acc
        })
    });
    g.finish();
}

/// Paged scans under different pool sizes (hit-ratio sensitivity).
fn paged_scan(c: &mut Criterion) {
    let vals = column();
    let mut g = c.benchmark_group("ext_paged_scan");
    g.sample_size(10);
    for frames in [8usize, 64, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(frames), &frames, |b, &f| {
            let mut pool = BufferPool::new(MemDisk::new(), f);
            let col = PagedColumn::create(&mut pool, &vals).unwrap();
            pool.flush().unwrap();
            b.iter(|| col.count_matching(&mut pool, |v| v % 3 == 0).unwrap())
        });
    }
    g.finish();
}

/// The SQL pipeline end to end: parse + lower + cracked execution.
fn sql_pipeline(c: &mut Criterion) {
    let vals = column();
    let mut g = c.benchmark_group("ext_sql");
    g.sample_size(10);
    g.bench_function("parse_only", |b| {
        b.iter(|| {
            sql::parse(
                "select k, count(*) from r where a >= 10 and a < 500 \
                 or a between 900 and 999 group by k",
            )
            .unwrap()
        })
    });
    g.bench_function("session_select", |b| {
        let mut session = SqlSession::new();
        session
            .load_table("r", vec![("a".into(), vals.clone())])
            .unwrap();
        let mut lo = 0i64;
        b.iter(|| {
            lo = (lo + 97) % (N as i64 - 1_000);
            let sqltext = format!(
                "select count(*) from r where a >= {lo} and a < {}",
                lo + 1_000
            );
            session.execute_one(&sqltext).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, stochastic, sideways, paged_scan, sql_pipeline);
criterion_main!(benches);
