//! Durability-layer costs — the PR-8 checkpoint/redo-log/recovery work
//! measured end to end (protocol in `PERSISTENCE.md`):
//!
//! * `recovery/checkpoint_clean` — rotating an epoch when nothing
//!   changed: every payload's fingerprint matches, so the commit is just
//!   log creation + manifest rename (the incremental fast path).
//! * `recovery/checkpoint_dirty` — an epoch after real work: the cracked
//!   copies' fingerprints changed, so their piece maps re-serialize.
//! * `recovery/log_append` — one redo-logged staged insert at a group
//!   commit interval of 64 (the amortized-fsync configuration).
//! * `recovery/recover` — full recovery: manifest → payloads → piece-map
//!   validation → redo replay.
//! * `recovery/query_warm_recovered` vs `recovery/query_cold` — the
//!   paper-level claim behind the subsystem: a recovered store repeats a
//!   pre-crash query at cracked cost; a cold store pays the full scan.
//!
//! `BENCH_SMOKE=1` shrinks data so CI can run this as a smoke test; pass
//! `--json` to record medians (see the bench harness).

use cracker_core::CrackerConfig;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use engine::{AdaptiveDb, OutputMode, RangeQuery, Table};
use std::path::PathBuf;

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

fn n() -> usize {
    if smoke() {
        20_000
    } else {
        100_000
    }
}

/// A distinct-valued base column (multiplicative shuffle, no RNG dep).
fn base_values(n: usize) -> Vec<i64> {
    (0..n as u64)
        .map(|i| (i.wrapping_mul(2_654_435_761) % n as u64) as i64)
        .collect()
}

/// Scratch directory per bench id, cleared up front.
fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dbcracker-bench-recovery-{name}"));
    let _ = std::fs::remove_dir_all(&p);
    p
}

const HOT: (i64, i64) = (3_000, 3_600);

/// A db whose plain and shared cracked copies are warmed by a spread of
/// selects (so checkpoints carry a real piece map).
fn warm_db(base: &[i64]) -> AdaptiveDb {
    let mut db = AdaptiveDb::new();
    db.register(Table::from_int_columns("t", vec![("v", base.to_vec())]).expect("columns align"))
        .expect("fresh catalog");
    let n = base.len() as i64;
    for k in 0..32 {
        let lo = (k * 977) % (n - 800);
        let q = RangeQuery::new("t", "v", cracker_core::RangePred::half_open(lo, lo + 800));
        db.select(&q, OutputMode::Count).expect("registered");
    }
    let hot = cracker_core::RangePred::half_open(HOT.0, HOT.1);
    db.select(&RangeQuery::new("t", "v", hot), OutputMode::Count)
        .expect("registered");
    db.shared_cracker("t", "v").expect("registered").count(hot);
    db
}

fn checkpoint_benches(c: &mut Criterion) {
    let base = base_values(n());
    let mut g = c.benchmark_group("recovery");
    g.sample_size(if smoke() { 3 } else { 10 });

    let dir = scratch("checkpoint-clean");
    let mut db = warm_db(&base);
    db.attach_durability(&dir, 1).expect("fresh dir");
    g.bench_function("checkpoint_clean", |b| {
        b.iter(|| black_box(db.checkpoint().expect("attached")))
    });
    drop(db);
    std::fs::remove_dir_all(&dir).ok();

    let dir = scratch("checkpoint-dirty");
    let mut db = warm_db(&base);
    db.attach_durability(&dir, 1).expect("fresh dir");
    let mut oid = base.len() as u32;
    g.bench_function("checkpoint_dirty", |b| {
        b.iter(|| {
            // Dirty the overlay and the piece map, then pay the rewrite.
            db.stage_insert("t", "v", oid, (oid % 1_000) as i64)
                .expect("attached");
            oid += 1;
            black_box(db.checkpoint().expect("attached"))
        })
    });
    drop(db);
    std::fs::remove_dir_all(&dir).ok();

    let dir = scratch("log-append");
    let mut db = warm_db(&base);
    db.attach_durability(&dir, 64).expect("fresh dir");
    let mut oid = base.len() as u32;
    g.bench_function("log_append", |b| {
        b.iter(|| {
            db.stage_insert("t", "v", oid, (oid % 1_000) as i64)
                .expect("attached");
            oid += 1;
        })
    });
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
    g.finish();
}

fn recover_benches(c: &mut Criterion) {
    let base = base_values(n());
    let mut g = c.benchmark_group("recovery");
    g.sample_size(if smoke() { 3 } else { 10 });

    // One durable directory with a real piece map plus a redo-log tail.
    let dir = scratch("recover");
    let mut db = warm_db(&base);
    db.attach_durability(&dir, 1).expect("fresh dir");
    for i in 0..64u32 {
        db.stage_insert("t", "v", base.len() as u32 + i, i as i64)
            .expect("attached");
    }
    drop(db);

    g.bench_function("recover", |b| {
        b.iter(|| {
            black_box(AdaptiveDb::recover(&dir, CrackerConfig::default(), 1).expect("durable"))
        })
    });

    let hot = cracker_core::RangePred::half_open(HOT.0, HOT.1);
    let mut rec = AdaptiveDb::recover(&dir, CrackerConfig::default(), 1).expect("durable");
    g.bench_function("query_warm_recovered", |b| {
        b.iter(|| {
            black_box(
                rec.select(&RangeQuery::new("t", "v", hot), OutputMode::Count)
                    .expect("registered"),
            )
        })
    });
    drop(rec);
    std::fs::remove_dir_all(&dir).ok();

    g.bench_function("query_cold", |b| {
        b.iter_batched_ref(
            || {
                let mut db = AdaptiveDb::new();
                db.register(
                    Table::from_int_columns("t", vec![("v", base.clone())]).expect("columns align"),
                )
                .expect("fresh catalog");
                db
            },
            |db| {
                black_box(
                    db.select(&RangeQuery::new("t", "v", hot), OutputMode::Count)
                        .expect("registered"),
                )
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, checkpoint_benches, recover_benches);
criterion_main!(benches);
