//! Sharded vs single-lock under *moving* workloads: the scenario engine's
//! shifting-hot-set and update-heavy mixes replayed concurrently against
//! [`ConcurrentColumn`] in both [`ConcurrencyMode`]s.
//!
//! This is the first time the PR-2 concurrency work meets workloads it
//! wasn't tuned on: a hot set that relocates every `period` queries keeps
//! re-opening cold territory (fresh crack storms instead of settled
//! boundary reuse), and an update-heavy mix interleaves staged
//! inserts/deletes — write-latch traffic — with the reads. Each scenario's
//! op stream is materialized once (seeded, so every mode replays the
//! identical mix) and split across threads.
//!
//! `BENCH_SMOKE=1` shrinks data and op counts so CI can run this as a
//! smoke test; pass `--json` to record medians (see the bench harness).

use cracker_core::{ConcurrencyMode, ConcurrentColumn, CrackerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::scenario::{Op, Scenario, Shift, ShiftingHotSet, UpdateHeavy};
use workload::Mqs;

const SHARDS: usize = 64;
const THREADS: [usize; 2] = [1, 4];

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

fn n() -> usize {
    if smoke() {
        40_000
    } else {
        200_000
    }
}

fn selects() -> usize {
    if smoke() {
        96
    } else {
        512
    }
}

/// Materialize a scenario into its base column and op stream.
fn materialize<S: Scenario>(mut s: S) -> (Vec<i64>, Vec<Op>) {
    let base = s.base().to_vec();
    let ops: Vec<Op> = s.by_ref().collect();
    (base, ops)
}

/// Replay `ops`, split across `threads`, against a latched column. All
/// three op kinds go through `&self` entry points, so readers, crackers,
/// and writers genuinely contend.
fn storm(col: &ConcurrentColumn<i64>, ops: &[Op], threads: usize) {
    std::thread::scope(|s| {
        for chunk in ops.chunks(ops.len().div_ceil(threads)) {
            s.spawn(move || {
                for op in chunk {
                    match *op {
                        Op::Select(w) => {
                            criterion::black_box(col.count(w.to_pred()));
                        }
                        Op::Insert { oid, value } => col.insert(oid, value),
                        Op::Delete { oid } => {
                            // A victim staged by another thread's chunk may
                            // not be visible yet; the miss is part of the
                            // workload, not an error.
                            col.delete(oid);
                        }
                    }
                }
            });
        }
    });
}

fn scale(c: &mut Criterion, group: &str, base: &[i64], ops: &[Op]) {
    let mut g = c.benchmark_group(group);
    g.sample_size(if smoke() { 3 } else { 10 });
    for &t in &THREADS {
        for (label, mode) in [
            ("single", ConcurrencyMode::SingleLock),
            ("sharded", ConcurrencyMode::Sharded { shards: SHARDS }),
        ] {
            g.bench_with_input(BenchmarkId::new(label, t), &t, |b, &t| {
                b.iter_batched(
                    || ConcurrentColumn::build(base.to_vec(), CrackerConfig::default(), mode),
                    |col| storm(&col, ops, t),
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    g.finish();
}

fn shifting_hot_set(c: &mut Criterion) {
    let (base, ops) = materialize(ShiftingHotSet::new(n(), selects(), 16, Shift::Jump, 0x5C0A));
    scale(c, "scenario_mix_shifting", &base, &ops);
}

fn update_heavy(c: &mut Criterion) {
    let mqs = Mqs::paper_default(n(), selects(), 0.02);
    let (base, ops) = materialize(UpdateHeavy::new(mqs, 0.5, 8, 0x5C0B));
    scale(c, "scenario_mix_update_heavy", &base, &ops);
}

criterion_group!(benches, shifting_hot_set, update_heavy);
criterion_main!(benches);
