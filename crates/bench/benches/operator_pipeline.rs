//! Block-at-a-time pipeline vs tuple-at-a-time reference — the PR-10
//! executor rebase measured on the three shapes it targets:
//!
//! * `pipeline_join_chain` — Figure-9-style chains of 2 and 16 equi-joins
//!   over permutation relations, evaluated by [`run_chain_with`] under
//!   both [`ExecMode`]s. The vector leg builds a CSR-shaped join index
//!   (dense key slots, one prefix-summed adjacency arena) and probes the
//!   frontier a block at a time; the tuple leg is the original
//!   `HashMap<i64, Vec<usize>>` per-entry walk.
//! * `pipeline_projection` — a select-then-project plan over a wide
//!   table through [`execute_plan_with`]. The vector tree moves values
//!   lane-wise with `extend_from_slice`; the tuple tree materializes a
//!   `Vec<Atom>` per row and clones per column.
//! * `pipeline_morsel_scan` — a warm, wide selection over a sharded
//!   column: the old delivery (sequential `select_oids`, then one
//!   `Vec<Atom>` row per hit) vs the morsel pool at 8 workers delivering
//!   columnar lanes. On a single-core host the pool adds no parallelism,
//!   so any win here is the block delivery itself; on multi-core hosts
//!   the claimable shards add on top.
//!
//! `BENCH_SMOKE=1` shrinks data sizes so CI can run this as a smoke
//! test; pass `--json` to record medians (see the bench harness).

use cracker_core::{ConcurrencyMode, ConcurrentColumn, CrackerConfig, RangePred};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::chain::{permutation_chain, run_chain_with, ChainStrategy};
use engine::exec::morsel::morsel_select_oids;
use engine::exec::planner::execute_plan_with;
use engine::exec::ExecMode;
use engine::plan::Plan;
use engine::{DbCatalog, Governor, RangeQuery, Table};
use storage::Atom;

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

fn samples() -> usize {
    if smoke() {
        3
    } else {
        20
    }
}

const MODES: [(&str, ExecMode); 2] = [("vector", ExecMode::Vector), ("tuple", ExecMode::Tuple)];

/// Chains of k permutation relations: every step is a 1:1 hash join, so
/// the frontier stays `n` rows deep through all k joins and the measured
/// cost is the per-step build + probe machinery, not result blow-up.
fn join_chain(c: &mut Criterion) {
    let n = if smoke() { 2_000 } else { 20_000 };
    let perm: Vec<i64> = (0..n as i64).map(|i| (i * 11 + 5) % n as i64).collect();
    let mut g = c.benchmark_group("pipeline_join_chain");
    g.sample_size(samples());
    for k in [2usize, 16] {
        let rels = permutation_chain(&perm, k);
        for (label, mode) in MODES {
            g.bench_function(BenchmarkId::new(format!("k{k}"), label), |b| {
                b.iter(|| {
                    let report =
                        run_chain_with(&rels, ChainStrategy::HashChain, mode).expect("hash chain");
                    assert_eq!(report.rows, n, "permutation joins are 1:1");
                    black_box(report.rows)
                })
            });
        }
    }
    g.finish();
}

/// Select-then-project over a wide table: the shape where tuple-at-a-time
/// pays one `Vec<Atom>` allocation plus per-column clones per surviving
/// row, and the block tree pays one lane copy per column per block.
fn projection(c: &mut Criterion) {
    let n = if smoke() { 10_000 } else { 100_000 };
    let cols: Vec<(&str, Vec<i64>)> = (0..8)
        .map(|j| {
            let name: &'static str = ["c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"][j];
            (
                name,
                (0..n as i64)
                    .map(|i| (i * (j as i64 + 3)) % n as i64)
                    .collect(),
            )
        })
        .collect();
    let mut cat = DbCatalog::new();
    cat.register(Table::from_int_columns("w", cols).expect("columns align"))
        .expect("fresh catalog");
    // Keep ~60% of rows: wide enough that delivery, not the filter,
    // dominates.
    let plan = Plan::Project {
        attrs: vec!["c3".into(), "c1".into(), "c6".into()],
        input: Box::new(Plan::Select {
            query: RangeQuery::new("w", "c0", RangePred::lt(n as i64 * 3 / 5)),
            input: Box::new(Plan::Scan { table: "w".into() }),
        }),
    };
    let mut g = c.benchmark_group("pipeline_projection");
    g.sample_size(samples());
    for (label, mode) in MODES {
        g.bench_function(BenchmarkId::new("wide", label), |b| {
            b.iter(|| {
                let rows = execute_plan_with(&plan, &cat, mode).expect("registered");
                black_box(rows.len())
            })
        });
    }
    g.finish();
}

/// Warm wide scan over a sharded column: old tuple delivery (sequential
/// OID walk, one heap row per hit) vs the morsel pool handing back
/// columnar lanes.
fn morsel_scan(c: &mut Criterion) {
    let n = if smoke() { 40_000 } else { 400_000 };
    let vals: Vec<i64> = (0..n as u64)
        .map(|i| (i.wrapping_mul(2_654_435_761) % n as u64) as i64)
        .collect();
    let col = ConcurrentColumn::build(
        vals.clone(),
        CrackerConfig::default(),
        ConcurrencyMode::Sharded { shards: 8 },
    );
    let pred = RangePred::between(n as i64 / 10, n as i64 * 7 / 10);
    // Warm: boundaries exist before timing, so both legs measure answer
    // delivery, not first cracks.
    black_box(col.select_oids(pred));
    let sharded = col.as_sharded().expect("built sharded");
    let governor = Governor::unbounded();

    let mut g = c.benchmark_group("pipeline_morsel_scan");
    g.sample_size(samples());
    g.bench_function(BenchmarkId::new("warm_scan", "single_thread"), |b| {
        b.iter(|| {
            // The pre-PR delivery: one OID vector, then one owned
            // `Vec<Atom>` row per qualifying tuple.
            let oids = col.select_oids(pred);
            let mut rows: Vec<Vec<Atom>> = Vec::with_capacity(oids.len());
            for &oid in &oids {
                rows.push(vec![
                    Atom::Oid(u64::from(oid)),
                    Atom::Int(vals[oid as usize]),
                ]);
            }
            black_box(rows.len())
        })
    });
    g.bench_function(BenchmarkId::new("warm_scan", "morsel8"), |b| {
        b.iter(|| {
            // The block pipeline: morsel pool claims shards, output stays
            // columnar — one OID lane, one value lane.
            let oids = morsel_select_oids(sharded, pred, 8, None, &governor).expect("unbounded");
            let mut lane: Vec<i64> = Vec::with_capacity(oids.len());
            for &oid in &oids {
                lane.push(vals[oid as usize]);
            }
            black_box((oids.len(), lane.len()))
        })
    });
    g.finish();
}

criterion_group!(benches, join_chain, projection, morsel_scan);
criterion_main!(benches);
