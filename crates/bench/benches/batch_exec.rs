//! Batched execution vs statement-at-a-time — the PR-6 executor work
//! measured end to end:
//!
//! * `batch_exec_select` — the same warm, narrow range selects answered
//!   one predicate at a time (per-query latch + per-query OID allocation)
//!   vs through the batch entry points ([`AdaptiveDb::select_batch`] on
//!   the plain cracker, [`ConcurrentColumn::select_oids_batch_into`] on
//!   the latched copies), across all three concurrency modes. The latched
//!   modes run the storm across [`threads`] threads so latch traffic is
//!   real contention, not just instruction count.
//! * `batch_exec_prepared` — the SQL front-end's amortization ladder:
//!   re-parsing the statement text per query, binding a [`Prepared`] plan
//!   per query, and handing all bindings to
//!   [`SqlSession::execute_prepared_many`] so the whole batch rides one
//!   cracked-column pass.
//! * `batch_exec_admission` — reader p95 latency (via `iter_custom`)
//!   while an update-heavy writer session bursts staged inserts/deletes,
//!   with the [`AdmissionGate`] off vs on. The gate's per-session cap
//!   bounds how many writer threads can be mid-burst at once, which is
//!   what keeps the reader tail bounded.
//!
//! `BENCH_SMOKE=1` shrinks data and op counts so CI can run this as a
//! smoke test; pass `--json` to record medians (see the bench harness).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cracker_core::{ConcurrencyMode, ConcurrentColumn, CrackerConfig, RangePred};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use engine::{AdaptiveDb, AdmissionGate, Table};
use sql::SqlSession;

/// Predicates per batch handed to the amortized entry points.
const BATCH: usize = 128;
/// Shards for the sharded mode — small enough that a batch buckets many
/// predicates per shard, so amortization has teeth.
const SHARDS: usize = 8;

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

fn n() -> usize {
    if smoke() {
        40_000
    } else {
        200_000
    }
}

fn queries() -> usize {
    if smoke() {
        128
    } else {
        512
    }
}

fn threads() -> usize {
    if smoke() {
        2
    } else {
        8
    }
}

/// A distinct-valued base column: `i * 2654435761 mod n` is a bijection
/// on `0..n` (the multiplier is coprime to any n here), i.e. a seeded
/// shuffle without pulling in an RNG.
fn base_values(n: usize) -> Vec<i64> {
    (0..n as u64)
        .map(|i| (i.wrapping_mul(2_654_435_761) % n as u64) as i64)
        .collect()
}

/// SplitMix-style generator; deterministic so every mode and API replays
/// the identical predicate stream.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }
}

/// Narrow half-open windows, 7/8 of them inside a hot tenth of the
/// domain. Narrow because batching amortizes the *fixed* per-query costs
/// (latch acquisition, piece lookup, output allocation); point-ish OLTP
/// selects are where those costs dominate the scan itself.
fn windows(n: usize, count: usize, seed: u64) -> Vec<RangePred<i64>> {
    // Narrow point-lookup-style windows: the per-query answer is a few
    // OIDs, so the storm cost is latch acquisition and boundary lookup —
    // exactly the share batching amortizes — not result copying, which
    // both paths pay identically.
    windows_of(n, count, 8, seed)
}

fn windows_of(n: usize, count: usize, width: i64, seed: u64) -> Vec<RangePred<i64>> {
    let mut rng = Lcg(seed);
    (0..count)
        .map(|_| {
            let span = if rng.next().is_multiple_of(8) {
                n as i64
            } else {
                n as i64 / 10
            };
            let lo = (rng.next() % (span - width).max(1) as u64) as i64;
            RangePred::half_open(lo, lo + width)
        })
        .collect()
}

/// A registered single-column table, warmed so every window's boundaries
/// already exist: the timed region then measures execution, not first
/// cracks.
fn warm_db(base: &[i64], preds: &[RangePred<i64>]) -> AdaptiveDb {
    let mut db = AdaptiveDb::new();
    db.register(Table::from_int_columns("t", vec![("v", base.to_vec())]).expect("columns align"))
        .expect("fresh catalog");
    black_box(db.select_batch("t", "v", preds).expect("registered"));
    db
}

/// A warmed latched column under `mode` (same boundaries as [`warm_db`]),
/// carrying a small in-flight update overlay. The staged inserts (well
/// under the merge threshold, one per region of the domain so every
/// shard holds one) put the column in the mixed OLTP state the latched
/// storms are about: a select can no longer be answered read-only, so
/// statement-at-a-time execution takes the *exclusive* latch per query —
/// eight threads convoying on every acquisition — while the batch entry
/// point takes it once per shard per batch.
fn warm_col(
    base: &[i64],
    preds: &[RangePred<i64>],
    mode: ConcurrencyMode,
) -> ConcurrentColumn<i64> {
    let col = ConcurrentColumn::build(base.to_vec(), CrackerConfig::default(), mode);
    black_box(col.select_oids_batch(preds));
    let n = base.len() as i64;
    for k in 0..8 {
        col.insert((base.len() + k) as u32, (2 * k as i64 + 1) * n / 16);
    }
    col
}

/// Rounds each storm thread replays its predicate stream — enough work
/// per thread that the storm measures query execution, not the fixed
/// cost of spawning the threads.
fn rounds() -> usize {
    if smoke() {
        1
    } else {
        8
    }
}

/// Statement-at-a-time storm: every query takes its own latch and
/// allocates its own OID vector.
fn storm_stmt(col: &ConcurrentColumn<i64>, preds: &[RangePred<i64>], threads: usize) {
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..rounds() {
                    for p in preds {
                        black_box(col.select_oids(*p));
                    }
                }
            });
        }
    });
}

/// Batched storm: [`BATCH`]-sized chunks through the amortized entry
/// point, output buffers reused across chunks (the `_into` contract is
/// append, so they are cleared between chunks).
fn storm_batch(col: &ConcurrentColumn<i64>, preds: &[RangePred<i64>], threads: usize) {
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut outs: Vec<Vec<u32>> = vec![Vec::new(); BATCH];
                for _ in 0..rounds() {
                    for chunk in preds.chunks(BATCH) {
                        let outs = &mut outs[..chunk.len()];
                        for out in outs.iter_mut() {
                            out.clear();
                        }
                        col.select_oids_batch_into(chunk, outs);
                        black_box(&outs);
                    }
                }
            });
        }
    });
}

fn batched_vs_stmt(c: &mut Criterion) {
    let base = base_values(n());
    let preds = windows(n(), queries(), 0xBA7C);
    let mut g = c.benchmark_group("batch_exec_select");
    // More samples than the other groups: the storms timeslice 8 threads
    // on however few cores the host has, so individual samples carry
    // scheduler noise the median needs depth to reject.
    g.sample_size(if smoke() { 3 } else { 20 });

    // Plain cracker: single-threaded, through the engine's db entry
    // points (one `select_conjunctive` per statement vs one
    // `select_batch` per chunk).
    g.bench_function(BenchmarkId::new("plain", "stmt"), |b| {
        b.iter_batched_ref(
            || warm_db(&base, &preds),
            |db| {
                for p in &preds {
                    black_box(
                        db.select_conjunctive("t", &[("v", *p)])
                            .expect("registered"),
                    );
                }
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function(BenchmarkId::new("plain", "batch"), |b| {
        b.iter_batched_ref(
            || warm_db(&base, &preds),
            |db| {
                for chunk in preds.chunks(BATCH) {
                    black_box(db.select_batch("t", "v", chunk).expect("registered"));
                }
            },
            BatchSize::LargeInput,
        )
    });

    // Latched copies: the same storm across threads, per-query latching
    // vs per-batch (single-lock) / per-shard-per-batch (sharded).
    for (label, mode) in [
        ("single", ConcurrencyMode::SingleLock),
        ("sharded", ConcurrencyMode::Sharded { shards: SHARDS }),
    ] {
        g.bench_function(BenchmarkId::new(label, "stmt"), |b| {
            b.iter_batched(
                || warm_col(&base, &preds, mode),
                |col| storm_stmt(&col, &preds, threads()),
                BatchSize::LargeInput,
            )
        });
        g.bench_function(BenchmarkId::new(label, "batch"), |b| {
            b.iter_batched(
                || warm_col(&base, &preds, mode),
                |col| storm_batch(&col, &preds, threads()),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// Parameter pairs `[lo, lo + 32)` drawn like [`windows`], as bindings
/// for `select v from t where v >= ? and v < ?`.
fn bindings(n: usize, count: usize, seed: u64) -> Vec<Vec<i64>> {
    let width = 32i64;
    let mut rng = Lcg(seed);
    (0..count)
        .map(|_| {
            let span = if rng.next().is_multiple_of(8) {
                n as i64
            } else {
                n as i64 / 10
            };
            let lo = (rng.next() % (span - width).max(1) as u64) as i64;
            vec![lo, lo + width]
        })
        .collect()
}

fn prepared_exec(c: &mut Criterion) {
    // The prepared group measures parse/lower amortization, so the table
    // can be smaller than the storm benches'.
    let rows = if smoke() { 10_000 } else { 50_000 };
    let runs = if smoke() { 64 } else { 256 };
    let binds = bindings(rows, runs, 0x93ED);
    let sql = "select v from t where v >= ? and v < ?";

    let mut g = c.benchmark_group("batch_exec_prepared");
    g.sample_size(if smoke() { 3 } else { 10 });

    let mut session = SqlSession::new();
    session
        .load_table("t", vec![("v".to_string(), base_values(rows))])
        .expect("fresh session");
    let prepared = session.prepare(sql).expect("two-parameter select");
    // Warm once so all three APIs run over identical cracked state.
    black_box(
        session
            .execute_prepared_many(&prepared, &binds)
            .expect("bindings are pairs"),
    );

    g.bench_function("reparse_per_query", |b| {
        b.iter(|| {
            for w in &binds {
                let text = format!("select v from t where v >= {} and v < {}", w[0], w[1]);
                black_box(session.execute_one(&text).expect("literal select"));
            }
        })
    });
    g.bench_function("prepared_per_query", |b| {
        b.iter(|| {
            for w in &binds {
                black_box(session.execute_prepared(&prepared, w).expect("bound pair"));
            }
        })
    });
    g.bench_function("prepared_batch", |b| {
        b.iter(|| {
            black_box(
                session
                    .execute_prepared_many(&prepared, &binds)
                    .expect("bound pairs"),
            )
        })
    });
    g.finish();
}

/// One admission storm: writer threads (all session 0, so the gate's
/// per-session cap applies to the burst as a whole) hammer staged
/// updates while ungated reader threads time multi-scan reports.
/// Returns the p95 report latency — the bounded-tail claim the gate is
/// for.
fn reader_p95(base: &[i64], wins: &[RangePred<i64>], gated: bool) -> Duration {
    // Far more writer threads than the gate's session cap: ungated, all
    // of them stay runnable and every reader query risks queueing behind
    // the whole fleet's timeslices (and the staged backlog the fleet
    // accumulates); gated, at most `session_cap` are mid-burst while the
    // rest sleep in the gate, so readers keep getting slots.
    let writers = if smoke() { 4 } else { 16 };
    let readers = if smoke() { 2 } else { 4 };
    let burst = if smoke() { 128 } else { 1024 };
    let mut db = AdaptiveDb::new().with_concurrency(ConcurrencyMode::Sharded { shards: SHARDS });
    if gated {
        // Total sized so the per-session cap is what does the bounding.
        db = db.with_admission(AdmissionGate::new(readers + 2, 2));
    }
    db.register(Table::from_int_columns("t", vec![("v", base.to_vec())]).expect("columns align"))
        .expect("fresh catalog");
    let gate: Option<Arc<AdmissionGate>> = db.admission().cloned();
    let col = db.shared_cracker("t", "v").expect("registered");
    let mut scratch = Vec::new();
    for p in wins {
        scratch.clear();
        col.select_oids_into(*p, &mut scratch);
    }
    black_box(scratch.len());

    let stop = AtomicBool::new(false);
    let latencies = Mutex::new(Vec::new());
    let hot = (base.len() / 10).max(1) as i64;
    std::thread::scope(|s| {
        for w in 0..writers {
            let (gate, stop) = (&gate, &stop);
            let col = &*col;
            s.spawn(move || {
                let mut oid = (base.len() + w * 100_000) as u32;
                let mut i = 0i64;
                let mut prev: Vec<u32> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    // One admission covers a run of bursts, as one
                    // admitted request covers a batch of statements: the
                    // gate's wake-everyone handoff is paid per admission,
                    // and cycling it per burst would swamp the very
                    // scheduling pressure being measured with condvar
                    // churn on a single core.
                    let _permit = gate.as_ref().map(|g| g.admit(0));
                    for _ in 0..16 {
                        // One burst: stage a window of inserts in the
                        // readers' hot region and delete the *previous*
                        // window (deleting a just-staged insert would
                        // cancel it out, leaving nothing for readers to
                        // feel). Column size stays stable; the staged
                        // backlog each reader must scan — and, past the
                        // merge threshold, fold in — scales with how many
                        // writers are mid-burst at once.
                        let mut cur = Vec::with_capacity(burst);
                        for _ in 0..burst {
                            col.insert(oid, (i * 7) % hot);
                            cur.push(oid);
                            oid = oid.wrapping_add(1);
                            i += 1;
                        }
                        for dead in prev.drain(..) {
                            col.delete(dead);
                        }
                        prev = cur;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                }
            });
        }
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let latencies = &latencies;
                let col = &*col;
                s.spawn(move || {
                    // Readers run ungated in both configurations — the
                    // gate's job is bounding the hostile writer session,
                    // and identical reader code isolates exactly that
                    // effect in the p95 comparison.
                    //
                    // The timed unit is a *report* of several wide scans,
                    // not a single scan: one scan finishes well inside a
                    // scheduler timeslice, so a per-scan p95 would only
                    // ever see the reader's own cache-warm work. A report
                    // is long enough that straddling a timeslice boundary
                    // — where an ungated writer fleet means queueing
                    // behind every runnable burst before the next scan
                    // proceeds — is the common case rather than a coin
                    // flip at the 95th percentile, so the p95 compares
                    // how *long* the two fleets stall a reader, not how
                    // often one happens to.
                    let scans_per_report = 48;
                    let reports = if smoke() { 8 } else { 32 };
                    let mut local = Vec::with_capacity(reports);
                    let mut stream = wins.iter().cycle().skip(r * 31);
                    for _ in 0..reports {
                        let t = Instant::now();
                        for _ in 0..scans_per_report {
                            let p = stream.next().expect("cycled iterator");
                            black_box(col.select_oids(*p));
                        }
                        local.push(t.elapsed());
                    }
                    latencies
                        .lock()
                        .expect("reader panicked with the lock held")
                        .extend(local);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("reader thread");
        }
        stop.store(true, Ordering::Relaxed);
    });

    let mut all = latencies.into_inner().expect("threads joined");
    all.sort_unstable();
    all[(all.len() * 95 / 100).min(all.len() - 1)]
}

fn admission(c: &mut Criterion) {
    let base = base_values(n());
    let per_reader = if smoke() { 16 } else { 64 };
    // Wide scans (half the domain each): analytical readers whose
    // queries are long enough that a concurrent writer burst visibly
    // lands inside them — the tail the gate exists to bound.
    let wins = windows_of(n(), per_reader, n() as i64 / 2, 0xAD31);
    let mut g = c.benchmark_group("batch_exec_admission");
    g.sample_size(if smoke() { 3 } else { 10 });
    for (label, gated) in [("gate_off", false), ("gate_on", true)] {
        g.bench_function(BenchmarkId::new("reader_p95", label), |b| {
            b.iter_custom(|_| reader_p95(&base, &wins, gated))
        });
    }
    g.finish();
}

criterion_group!(benches, batched_vs_stmt, prepared_exec, admission);
criterion_main!(benches);
