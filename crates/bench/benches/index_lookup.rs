//! Cracker-index scaling: boundary resolution cost as the piece count
//! grows. §3.2 worries that "at some point, cracking is completely
//! overshadowed by cracker index maintenance overhead" — this bench
//! measures where navigation cost actually sits (`O(log p)` ordered-map
//! probes) and what fusion budgets buy.

use cracker_core::{CrackerColumn, RangePred};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::Tapestry;

/// `BENCH_SMOKE=1` shrinks the column so CI can run this as a smoke test.
fn n() -> usize {
    if std::env::var_os("BENCH_SMOKE").is_some() {
        50_000
    } else {
        500_000
    }
}

/// Crack a column into roughly `pieces` pieces with evenly spread queries.
fn cracked_with_pieces(pieces: usize) -> CrackerColumn<i64> {
    let n = n();
    let vals = Tapestry::generate(n, 1, 0x1D).column(0).to_vec();
    let mut col = CrackerColumn::new(vals);
    let queries = pieces / 2;
    for q in 0..queries {
        let lo = (q * n / queries.max(1)) as i64;
        col.select(RangePred::half_open(
            lo,
            lo + (n / (queries.max(1) * 2)) as i64,
        ));
    }
    col
}

fn boundary_reuse(c: &mut Criterion) {
    let n = n();
    let mut g = c.benchmark_group("index_boundary_reuse");
    for &pieces in &[16usize, 256, 2048] {
        let mut col = cracked_with_pieces(pieces);
        // A query whose boundaries already exist: pure index navigation.
        let probe = RangePred::half_open((n / 2) as i64, (n / 2 + n / (pieces.max(2))) as i64);
        col.select(probe);
        g.bench_with_input(
            BenchmarkId::from_parameter(col.piece_count()),
            &probe,
            |b, &probe| b.iter(|| col.select(probe).count()),
        );
    }
    g.finish();
}

fn fresh_boundary_cost(c: &mut Criterion) {
    let n = n();
    // Bounds chosen to miss the evenly spread existing boundaries.
    let fresh_lo = (n as i64 / 3) * 2 + 1;
    let mut g = c.benchmark_group("index_fresh_boundary");
    g.sample_size(20);
    for &pieces in &[16usize, 256, 2048] {
        // Build the cracked template once; clone per iteration.
        let template = cracked_with_pieces(pieces);
        g.bench_with_input(
            BenchmarkId::from_parameter(pieces),
            &template,
            |b, template| {
                b.iter_batched(
                    || template.clone(),
                    |mut col| {
                        col.select(RangePred::half_open(fresh_lo, fresh_lo + 6))
                            .count()
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(benches, boundary_reuse, fresh_boundary_cost);
criterion_main!(benches);
