//! Cracker-index scaling: boundary resolution cost as the piece count
//! grows. §3.2 worries that "at some point, cracking is completely
//! overshadowed by cracker index maintenance overhead" — this bench
//! measures where navigation cost actually sits (`O(log p)` ordered-map
//! probes) and what fusion budgets buy.

use cracker_core::{CrackerColumn, RangePred};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::Tapestry;

const N: usize = 500_000;

/// Crack a column into roughly `pieces` pieces with evenly spread queries.
fn cracked_with_pieces(pieces: usize) -> CrackerColumn<i64> {
    let vals = Tapestry::generate(N, 1, 0x1D).column(0).to_vec();
    let mut col = CrackerColumn::new(vals);
    let queries = pieces / 2;
    for q in 0..queries {
        let lo = (q * N / queries.max(1)) as i64;
        col.select(RangePred::half_open(
            lo,
            lo + (N / (queries.max(1) * 2)) as i64,
        ));
    }
    col
}

fn boundary_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_boundary_reuse");
    for &pieces in &[16usize, 256, 2048] {
        let mut col = cracked_with_pieces(pieces);
        // A query whose boundaries already exist: pure index navigation.
        let probe = RangePred::half_open((N / 2) as i64, (N / 2 + N / (pieces.max(2))) as i64);
        col.select(probe);
        g.bench_with_input(
            BenchmarkId::from_parameter(col.piece_count()),
            &probe,
            |b, &probe| b.iter(|| col.select(probe).count()),
        );
    }
    g.finish();
}

fn fresh_boundary_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_fresh_boundary");
    g.sample_size(20);
    for &pieces in &[16usize, 256, 2048] {
        // Build the cracked template once; clone per iteration.
        let template = cracked_with_pieces(pieces);
        g.bench_with_input(
            BenchmarkId::from_parameter(pieces),
            &template,
            |b, template| {
                b.iter_batched(
                    || template.clone(),
                    |mut col| {
                        // Bounds chosen to miss existing boundaries.
                        col.select(RangePred::half_open(333_331, 333_337)).count()
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(benches, boundary_reuse, fresh_boundary_cost);
criterion_main!(benches);
