//! ^-cracker micro-benchmarks: the semijoin split investment and its
//! pay-off (joining only the matching areas), against a plain hash join.

use cracker_core::join::{join_matched, wedge_crack, PairColumn};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use workload::Tapestry;

/// `BENCH_SMOKE=1` shrinks the operands so CI can run this as a smoke test.
fn n() -> usize {
    if std::env::var_os("BENCH_SMOKE").is_some() {
        20_000
    } else {
        100_000
    }
}

fn operands() -> (Vec<i64>, Vec<i64>) {
    let n = n();
    let t = Tapestry::generate(n, 2, 0x30E);
    // Shift one side so only half the values match.
    let r = t.column(0).to_vec();
    let s: Vec<i64> = t.column(1).iter().map(|v| v + (n / 2) as i64).collect();
    (r, s)
}

/// Plain hash join, touching every tuple of both sides.
fn plain_hash_join(r: &[i64], s: &[i64]) -> usize {
    let mut idx: HashMap<i64, u32> = HashMap::with_capacity(r.len());
    for (i, &v) in r.iter().enumerate() {
        idx.insert(v, i as u32);
    }
    s.iter().filter(|v| idx.contains_key(v)).count()
}

fn wedge_vs_hash(c: &mut Criterion) {
    let (r, s) = operands();
    let mut g = c.benchmark_group("wedge_vs_hash");
    g.sample_size(20);
    g.bench_function("hash_join_full", |b| b.iter(|| plain_hash_join(&r, &s)));
    g.bench_function("wedge_crack_investment", |b| {
        b.iter_batched(
            || (PairColumn::new(r.clone()), PairColumn::new(s.clone())),
            |(mut pr, mut ps)| {
                let rn = pr.len();
                let sn = ps.len();
                wedge_crack(&mut pr, &mut ps, 0..rn, 0..sn)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("join_matched_after_wedge", |b| {
        let mut pr = PairColumn::new(r.clone());
        let mut ps = PairColumn::new(s.clone());
        let rn = pr.len();
        let sn = ps.len();
        let res = wedge_crack(&mut pr, &mut ps, 0..rn, 0..sn);
        b.iter(|| join_matched(&pr, &ps, &res).len())
    });
    g.finish();
}

criterion_group!(benches, wedge_vs_hash);
criterion_main!(benches);
