//! Benchmark-kit throughput: tapestry generation and sequence generation
//! must stay cheap relative to the experiments they drive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::homerun::homerun_sequence;
use workload::strolling::{strolling_sequence, StrollMode};
use workload::{Contraction, Tapestry};

fn tapestry_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("tapestry_gen");
    g.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| Tapestry::generate(n, 2, 7))
        });
    }
    g.finish();
}

fn sequence_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequence_gen");
    g.bench_function("homerun_k128", |b| {
        b.iter(|| homerun_sequence(1_000_000, 128, 0.05, Contraction::Linear, 3))
    });
    g.bench_function("strolling_k128", |b| {
        b.iter(|| {
            strolling_sequence(
                1_000_000,
                128,
                0.05,
                Contraction::Linear,
                StrollMode::Converge,
                3,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, tapestry_gen, sequence_gen);
criterion_main!(benches);
