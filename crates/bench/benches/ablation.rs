//! Ablations over the cracker design knobs: crack-in-three vs. two
//! successive crack-in-twos, the cut-off granule, the piece-budget fusion
//! policies, and the kernel axis — the scalar / branch-free / SIMD
//! family across cold-crack (including a >256k-tuple "large band" shape,
//! the vector kernels' home turf), crack_select-shaped, and
//! scenario_mix-shaped workloads. On hosts without AVX2 the `simd` label
//! measures its documented branch-free fallback.
//!
//! `BENCH_SMOKE=1` shrinks the column and op counts so CI can run this as
//! a smoke test; pass `--json` to record medians as `BENCH_ablation.json`
//! (see the bench harness).

use cracker_core::{
    CrackMode, CrackerColumn, CrackerConfig, FusionPolicy, KernelPolicy, RangePred,
};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use engine::{CrackEngine, OutputMode, QueryEngine};
use workload::scenario::{Op, Scenario, Shift, ShiftingHotSet, UpdateHeavy};
use workload::strolling::{strolling_sequence, StrollMode};
use workload::{Contraction, Mqs, Tapestry};

const K: usize = 64;

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

fn n() -> usize {
    if smoke() {
        20_000
    } else {
        200_000
    }
}

fn column() -> Vec<i64> {
    Tapestry::generate(n(), 1, 0xAB1A).column(0).to_vec()
}

fn sequence() -> Vec<workload::Window> {
    strolling_sequence(n(), K, 0.05, Contraction::Linear, StrollMode::Converge, 5)
}

fn run_sequence(cfg: CrackerConfig, vals: &[i64], seq: &[workload::Window]) {
    let mut e = CrackEngine::with_config(vals.to_vec(), cfg);
    for w in seq {
        e.run(w.to_pred(), OutputMode::Count);
    }
}

const KERNELS: [(&str, KernelPolicy); 3] = [
    ("scalar", KernelPolicy::Scalar),
    ("branchfree", KernelPolicy::BranchFree),
    ("simd", KernelPolicy::Simd),
];

/// Crack-in-three (single pass) vs. two crack-in-twos per range query.
fn crack_mode(c: &mut Criterion) {
    let vals = column();
    let seq = sequence();
    let mut g = c.benchmark_group("ablation_crack_mode");
    g.sample_size(10);
    for (label, mode) in [
        ("three_way", CrackMode::ThreeWay),
        ("two_way", CrackMode::TwoWay),
    ] {
        let cfg = CrackerConfig::new().with_mode(mode);
        g.bench_function(label, |b| b.iter(|| run_sequence(cfg, &vals, &seq)));
    }
    g.finish();
}

/// Cut-off granule sweep: the "disk-blocks" cut-off of §3.4.2. Large
/// cut-offs trade cracking writes for residual edge scans.
fn cutoff(c: &mut Criterion) {
    let vals = column();
    let seq = sequence();
    let mut g = c.benchmark_group("ablation_cutoff");
    g.sample_size(10);
    for &cut in &[1usize, 64, 1024, 16_384] {
        let cfg = CrackerConfig::new().with_min_piece_size(cut);
        g.bench_with_input(BenchmarkId::from_parameter(cut), &cfg, |b, &cfg| {
            b.iter(|| run_sequence(cfg, &vals, &seq))
        });
    }
    g.finish();
}

/// Fusion policies under a tight piece budget: the §3.2 open question.
fn fusion(c: &mut Criterion) {
    let vals = column();
    let seq = sequence();
    let mut g = c.benchmark_group("ablation_fusion");
    g.sample_size(10);
    for (label, policy) in [
        ("smallest_pair", FusionPolicy::SmallestPair),
        ("lru", FusionPolicy::LeastRecentlyUsed),
        ("most_balanced", FusionPolicy::MostBalanced),
    ] {
        let cfg = CrackerConfig::new().with_max_pieces(16).with_fusion(policy);
        g.bench_function(label, |b| b.iter(|| run_sequence(cfg, &vals, &seq)));
    }
    g.finish();
}

/// A fresh shuffled column per sample. Every cold-crack measurement gets
/// data the branch predictor has never seen: replaying one identical
/// buffer lets the predictor memorize the outcome sequence across
/// samples, flattering the scalar kernel with an accuracy no real cold
/// crack gets.
fn fresh_column(counter: &std::cell::Cell<u64>) -> Vec<i64> {
    let seed = 0xAB1A + counter.get();
    counter.set(counter.get() + 1);
    Tapestry::generate(n(), 1, seed).column(0).to_vec()
}

/// The kernel family on a single cold crack-in-three over a virgin
/// random column — the branch-misprediction worst case the predicated
/// DNF kernel targets. The column never shrinks below twice the
/// kernel's three-way predication floor (`THREE_WAY_MIN` in
/// `cracker_core::kernel`): at the plain smoke size the skew guard
/// would route both labels through the scalar sweep and this comparison
/// would carry no kernel signal.
fn kernel_cold_crack(c: &mut Criterion) {
    let n3 = n().max(2 * 32_768);
    let (lo, hi) = (n3 as i64 / 4, 3 * n3 as i64 / 4);
    let mut g = c.benchmark_group("ablation_kernel_cold_crack");
    g.sample_size(20);
    for (label, kernel) in KERNELS {
        let cfg = CrackerConfig::new().with_kernel(kernel);
        let ctr = std::cell::Cell::new(0u64);
        g.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let seed = 0xAB1A + ctr.get();
                    ctr.set(ctr.get() + 1);
                    let vals = Tapestry::generate(n3, 1, seed).column(0).to_vec();
                    CrackerColumn::with_config(vals, cfg)
                },
                |mut col| col.select(RangePred::between(lo, hi)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// The kernel family on a single cold one-sided crack — a pure
/// crack-in-two over a virgin column in the 32k–256k calibration band,
/// the branchless cyclic-Lomuto kernel's home turf (PR 4's acceptance
/// benchmark).
fn kernel_cold_crack_two(c: &mut Criterion) {
    let mid = n() as i64 / 2;
    let mut g = c.benchmark_group("ablation_kernel_cold_crack_two");
    g.sample_size(20);
    for (label, kernel) in KERNELS {
        let cfg = CrackerConfig::new().with_kernel(kernel);
        let ctr = std::cell::Cell::new(0u64);
        g.bench_function(label, |b| {
            b.iter_batched(
                || CrackerColumn::with_config(fresh_column(&ctr), cfg),
                |mut col| col.select(RangePred::ge(mid)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// The kernel family on a cold crack-in-two over a piece in the largest
/// calibration band (>256k tuples; the committed full-size runs use 1M) —
/// the acceptance benchmark for the SIMD kernels: a memory-spanning
/// balanced partition where 4-wide compare + compress-permute lanes beat
/// the one-tuple-per-iteration branch-free rotate.
fn kernel_cold_crack_two_large(c: &mut Criterion) {
    let n_large = if smoke() { 300_000 } else { 1_000_000 };
    let mid = n_large as i64 / 2;
    let mut g = c.benchmark_group("ablation_kernel_cold_crack_two_large");
    g.sample_size(20);
    for (label, kernel) in KERNELS {
        let cfg = CrackerConfig::new().with_kernel(kernel);
        let ctr = std::cell::Cell::new(0u64);
        g.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let seed = 0xB16B + ctr.get();
                    ctr.set(ctr.get() + 1);
                    let vals = Tapestry::generate(n_large, 1, seed).column(0).to_vec();
                    CrackerColumn::with_config(vals, cfg)
                },
                |mut col| col.select(RangePred::ge(mid)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// The kernel family over a full crack_select-shaped query sequence
/// (the strolling MQS profile): cold cracks up front, boundary reuse and
/// ever-smaller pieces toward the tail. Fresh data per sample, same
/// window sequence.
fn kernel_crack_select(c: &mut Criterion) {
    let seq = sequence();
    let mut g = c.benchmark_group("ablation_kernel_crack_select");
    g.sample_size(10);
    for (label, kernel) in KERNELS {
        let cfg = CrackerConfig::new().with_kernel(kernel);
        let ctr = std::cell::Cell::new(0u64);
        g.bench_function(label, |b| {
            b.iter_batched(
                || fresh_column(&ctr),
                |vals| run_sequence(cfg, &vals, &seq),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// The kernel family under scenario_mix shapes: a shifting hot set
/// (fresh crack storms every relocation) and an update-heavy mix (overlay
/// filtering and merges in the loop). Replayed single-threaded against a
/// plain column, with the OID buffer reused across ops via
/// `select_oids_into` so the kernels — not the allocator — dominate.
fn kernel_scenario_mix(c: &mut Criterion) {
    let selects = if smoke() { 96 } else { 512 };
    let shifting = |seed: u64| {
        materialize(ShiftingHotSet::new(
            n(),
            selects,
            16,
            Shift::Drift {
                step: n() as i64 / 8,
            },
            seed,
        ))
    };
    let updates = |seed: u64| {
        materialize(UpdateHeavy::new(
            Mqs::paper_default(n(), selects, 0.05),
            3.0,
            8,
            seed,
        ))
    };
    type Shape = (Vec<i64>, Vec<Op>);
    let shapes: [(&str, &dyn Fn(u64) -> Shape); 2] =
        [("shifting", &shifting), ("update_heavy", &updates)];
    let mut g = c.benchmark_group("ablation_kernel_scenario_mix");
    g.sample_size(10);
    for (shape, make) in shapes {
        for (label, kernel) in KERNELS {
            let cfg = CrackerConfig::new().with_kernel(kernel);
            let ctr = std::cell::Cell::new(0u64);
            g.bench_function(format!("{shape}/{label}"), |b| {
                b.iter_batched(
                    || {
                        // A fresh seeded scenario per sample (see
                        // `fresh_column` for why).
                        let seed = 0xC1D2 + ctr.get();
                        ctr.set(ctr.get() + 1);
                        let (base, ops) = make(seed);
                        (CrackerColumn::with_config(base, cfg), ops)
                    },
                    |(mut col, ops)| {
                        let mut scratch: Vec<u32> = Vec::new();
                        for op in ops {
                            match op {
                                Op::Select(w) => {
                                    scratch.clear();
                                    col.select_oids_into(w.to_pred(), &mut scratch);
                                    criterion::black_box(scratch.len());
                                }
                                Op::Insert { oid, value } => col.insert(oid, value),
                                Op::Delete { oid } => {
                                    col.delete(oid);
                                }
                            }
                        }
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    g.finish();
}

/// Materialize a scenario into its base column and op stream (seeded, so
/// every kernel replays the identical mix).
fn materialize<S: Scenario>(mut s: S) -> (Vec<i64>, Vec<Op>) {
    let base = s.base().to_vec();
    let ops: Vec<Op> = s.by_ref().collect();
    (base, ops)
}

criterion_group!(
    benches,
    crack_mode,
    cutoff,
    fusion,
    kernel_cold_crack,
    kernel_cold_crack_two,
    kernel_cold_crack_two_large,
    kernel_crack_select,
    kernel_scenario_mix
);
criterion_main!(benches);
