//! Ablations over the cracker design knobs DESIGN.md calls out:
//! crack-in-three vs. two successive crack-in-twos, the cut-off granule,
//! and the piece-budget fusion policies.

use cracker_core::{CrackMode, CrackerConfig, FusionPolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{CrackEngine, OutputMode, QueryEngine};
use workload::strolling::{strolling_sequence, StrollMode};
use workload::{Contraction, Tapestry};

const N: usize = 200_000;
const K: usize = 64;

fn column() -> Vec<i64> {
    Tapestry::generate(N, 1, 0xAB1A).column(0).to_vec()
}

fn sequence() -> Vec<workload::Window> {
    strolling_sequence(N, K, 0.05, Contraction::Linear, StrollMode::Converge, 5)
}

fn run_sequence(cfg: CrackerConfig, vals: &[i64], seq: &[workload::Window]) {
    let mut e = CrackEngine::with_config(vals.to_vec(), cfg);
    for w in seq {
        e.run(w.to_pred(), OutputMode::Count);
    }
}

/// Crack-in-three (single pass) vs. two crack-in-twos per range query.
fn crack_mode(c: &mut Criterion) {
    let vals = column();
    let seq = sequence();
    let mut g = c.benchmark_group("ablation_crack_mode");
    g.sample_size(10);
    for (label, mode) in [
        ("three_way", CrackMode::ThreeWay),
        ("two_way", CrackMode::TwoWay),
    ] {
        let cfg = CrackerConfig::new().with_mode(mode);
        g.bench_function(label, |b| b.iter(|| run_sequence(cfg, &vals, &seq)));
    }
    g.finish();
}

/// Cut-off granule sweep: the "disk-blocks" cut-off of §3.4.2. Large
/// cut-offs trade cracking writes for residual edge scans.
fn cutoff(c: &mut Criterion) {
    let vals = column();
    let seq = sequence();
    let mut g = c.benchmark_group("ablation_cutoff");
    g.sample_size(10);
    for &cut in &[1usize, 64, 1024, 16_384] {
        let cfg = CrackerConfig::new().with_min_piece_size(cut);
        g.bench_with_input(BenchmarkId::from_parameter(cut), &cfg, |b, &cfg| {
            b.iter(|| run_sequence(cfg, &vals, &seq))
        });
    }
    g.finish();
}

/// Fusion policies under a tight piece budget: the §3.2 open question.
fn fusion(c: &mut Criterion) {
    let vals = column();
    let seq = sequence();
    let mut g = c.benchmark_group("ablation_fusion");
    g.sample_size(10);
    for (label, policy) in [
        ("smallest_pair", FusionPolicy::SmallestPair),
        ("lru", FusionPolicy::LeastRecentlyUsed),
        ("most_balanced", FusionPolicy::MostBalanced),
    ] {
        let cfg = CrackerConfig::new().with_max_pieces(16).with_fusion(policy);
        g.bench_function(label, |b| b.iter(|| run_sequence(cfg, &vals, &seq)));
    }
    g.finish();
}

criterion_group!(benches, crack_mode, cutoff, fusion);
criterion_main!(benches);
