#![warn(missing_docs)]
//! # bench — figure regeneration and micro-benchmarks
//!
//! One binary per figure of the paper's evaluation (run with
//! `cargo run -p bench --release --bin figN_...`), plus Criterion
//! micro-benchmarks (`cargo bench`). Shared output helpers live here.

pub mod report;

use std::fmt::Write as _;

/// Render one gnuplot-ready data block: a header comment, then one line
/// per x-value with all series columns.
pub fn data_block(title: &str, x_label: &str, series: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let names: Vec<&str> = series.iter().map(|(n, _)| n.as_str()).collect();
    let _ = writeln!(out, "# {x_label}\t{}", names.join("\t"));
    let len = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    for i in 0..len {
        let _ = write!(out, "{}", i + 1);
        for (_, v) in series {
            match v.get(i) {
                Some(y) => {
                    let _ = write!(out, "\t{y:.6}");
                }
                None => {
                    let _ = write!(out, "\t-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Format a duration in seconds with millisecond precision.
pub fn secs(d: std::time::Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_block_layout() {
        let block = data_block(
            "Figure X",
            "step",
            &[("a".into(), vec![1.0, 2.0]), ("b".into(), vec![0.5])],
        );
        let lines: Vec<&str> = block.lines().collect();
        assert_eq!(lines[0], "# Figure X");
        assert_eq!(lines[1], "# step\ta\tb");
        assert_eq!(lines[2], "1\t1.000000\t0.500000");
        assert_eq!(lines[3], "2\t2.000000\t-");
    }

    #[test]
    fn secs_converts() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), 1.5);
    }
}
