//! Shared parsing for the `BENCH_<name>.json` reports the criterion
//! shim's `--json` mode writes — consumed by the `bench_diff` regression
//! gate and the `bench_trend` markdown renderer.

use serde::Deserialize;

/// One `BENCH_<name>.json` document.
#[derive(Debug, Deserialize)]
pub struct Report {
    /// Bench binary name.
    pub bench: String,
    /// Per-benchmark medians, in execution order.
    pub results: Vec<Entry>,
}

/// One benchmark's record.
#[derive(Debug, Deserialize)]
pub struct Entry {
    /// `group/function/param` identifier.
    pub id: String,
    /// Median wall time in nanoseconds.
    pub median_ns: u64,
    /// Samples the median was taken over.
    pub samples: u64,
}

impl Report {
    /// The median for one benchmark id, if present.
    pub fn median(&self, id: &str) -> Option<u64> {
        self.results
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.median_ns)
    }
}

/// Parse a report file, with a readable message on failure.
pub fn load(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Every `BENCH_*.json` in a directory, sorted by file name.
pub fn load_dir(dir: &str) -> Result<Vec<(String, Report)>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot list {dir}: {e}"))?;
    let mut paths: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no BENCH_*.json files in {dir}"));
    }
    paths
        .into_iter()
        .map(|n| load(&format!("{dir}/{n}")).map(|r| (n, r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
      "bench": "demo",
      "results": [
        { "id": "g/a", "median_ns": 100, "samples": 10 },
        { "id": "g/b", "median_ns": 250, "samples": 10 }
      ]
    }"#;

    #[test]
    fn parses_and_indexes() {
        let r: Report = serde_json::from_str(DOC).unwrap();
        assert_eq!(r.bench, "demo");
        assert_eq!(r.median("g/a"), Some(100));
        assert_eq!(r.median("g/c"), None);
        assert_eq!(r.results[1].samples, 10);
    }

    #[test]
    fn load_reports_readable_errors() {
        let err = load("/nonexistent/BENCH_x.json").unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
        let err = load_dir("/nonexistent").unwrap_err();
        assert!(err.contains("cannot list"), "{err}");
    }
}
