//! **Extension experiment** — "What are the effects of updates on the
//! scheme proposed?" (§2.2, left open by the paper).
//!
//! Two sweeps:
//!
//! 1. *volatility*, in the §2.2 granule model: per-step I/O overhead of a
//!    converged cracked store as a function of how many granules are
//!    replaced between queries;
//! 2. *merge threshold*, at the engine level: total wall-clock of a mixed
//!    update+query stream as a function of how long updates are allowed
//!    to sit in the pending areas before being merged.

use bench::secs;
use cracker_core::{CrackerColumn, CrackerConfig, RangePred};
use sim::GranuleSim;
use std::time::Instant;
use workload::Tapestry;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);

    // Sweep 1: volatility vs. steady-state overhead (granule model).
    println!("# Sweep 1 — volatility vs. steady-state cracking I/O (N={n}, sigma=5%)");
    println!("# updates/step\tmean per-step IO (granules, steps 10..40)");
    for &updates in &[0usize, 10, 100, 1_000, 10_000] {
        let mut total = 0u64;
        let runs = 5;
        for seed in 0..runs {
            let mut s = GranuleSim::new(n, 0.05, seed).with_volatility(updates);
            total += s.run(40).iter().skip(10).map(|c| c.io()).sum::<u64>();
        }
        let mean = total as f64 / (30.0 * runs as f64);
        println!("{updates}\t{mean:.1}");
    }

    // Sweep 2: merge threshold vs. total time (engine level).
    let tapestry = Tapestry::generate(n, 1, 0xE07);
    let queries = 200;
    let updates_per_query = 50;
    println!("\n# Sweep 2 — merge threshold vs. total time");
    println!("# ({queries} queries, {updates_per_query} staged inserts between each)");
    println!("# merge_threshold\ttotal(s)\tmerges\tfinal pieces");
    for &threshold in &[100usize, 1_000, 10_000, usize::MAX] {
        let cfg = CrackerConfig::new().with_merge_threshold(threshold);
        let mut col = CrackerColumn::with_config(tapestry.column(0).to_vec(), cfg);
        let mut next_oid = n as u32;
        let start = Instant::now();
        for q in 0..queries {
            for u in 0..updates_per_query {
                col.insert(next_oid, ((q * 977 + u * 31) % n) as i64);
                next_oid += 1;
            }
            let lo = ((q * 4_813) % (n - n / 20)) as i64;
            col.select(RangePred::half_open(lo, lo + (n / 20) as i64));
        }
        let label = if threshold == usize::MAX {
            "never".to_string()
        } else {
            threshold.to_string()
        };
        println!(
            "{label}\t{:.4}\t{}\t{}",
            secs(start.elapsed()),
            col.stats().merges,
            col.piece_count()
        );
    }
    println!("# Shape checks: higher volatility raises steady-state I/O (pieces keep");
    println!("# degrading). Small merge thresholds pay for constant O(N) rewrites;");
    println!("# 'never' wins only while the pending area stays small relative to N —");
    println!("# every select scans the whole staging area, so its cost grows linearly");
    println!("# with session length (rerun with more queries to see the crossover).");
}
