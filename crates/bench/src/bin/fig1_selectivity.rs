//! **Figure 1** — response time vs. selectivity for the three basic
//! operations: (a) materialize into a temporary table, (b) print/ship to
//! the front-end, (c) count qualifying tuples. 1M-row, 2-column tapestry
//! table, range queries `low ≤ A < high` of varying selectivity.
//!
//! Substitution note (see DESIGN.md): the paper ran MySQL, PostgreSQL,
//! SQLite and MonetDB out of the box. Here one physical scan engine
//! produces the counters, and the per-system [`EngineProfile`]s replay
//! them into modeled response times calibrated to the cost ranges the
//! paper reports — preserving the ordering and the linear-in-selectivity
//! shape. The `measured` column is this library's own wall clock.

use bench::{data_block, secs};
use cracker_core::RangePred;
use engine::{EngineProfile, OutputMode, QueryEngine, ScanEngine};
use workload::Tapestry;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let tapestry = Tapestry::generate(n, 2, 0xF161);
    let mut scan = ScanEngine::new(tapestry.column(0).to_vec());
    let selectivities: Vec<u32> = (0..=100).step_by(10).map(|s| s.max(1)).collect();
    let profiles = EngineProfile::all();

    for mode in [
        OutputMode::Materialize,
        OutputMode::Stream,
        OutputMode::Count,
    ] {
        let mut series: Vec<(String, Vec<f64>)> = profiles
            .iter()
            .map(|p| (p.name.clone(), Vec::new()))
            .collect();
        series.push(("measured(scan)".into(), Vec::new()));
        println!("# selectivity%\tresponse(s) per system");
        for &sel in &selectivities {
            let width = (n as i64 * sel as i64) / 100;
            let pred = RangePred::half_open(1, 1 + width.max(1));
            let stats = scan.run(pred, mode);
            for (i, p) in profiles.iter().enumerate() {
                series[i].1.push(secs(p.modeled_time(&stats, mode)));
            }
            let k = series.len() - 1;
            series[k].1.push(secs(stats.elapsed));
        }
        let panel = match mode {
            OutputMode::Materialize => "(a) materialize into temporary table",
            OutputMode::Stream => "(b) deliver to front-end",
            OutputMode::Count => "(c) count only",
        };
        println!(
            "{}",
            data_block(
                &format!("Figure 1{panel} — N={n}, selectivity steps {selectivities:?}%"),
                "step(selectivity index)",
                &series,
            )
        );
    }
    println!("# Shape checks: per system materialize > print > count; MonetDB lowest;");
    println!("# materialization linear in selected fragment size.");
}
