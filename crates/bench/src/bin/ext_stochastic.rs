//! **Extension experiment** — stochastic cracking under adversarial
//! workloads.
//!
//! The paper's §2.2 outlook draws query ranges at random, where plain
//! cracking converges after "a handful of queries". This experiment
//! shows what happens when the workload is *not* random — a sequential
//! sweep, a zoom, an alternating pattern — and how the stochastic
//! policies (auxiliary random/median cuts, per Halim et al. VLDB 2012)
//! restore the convergence, answering the paper's §7 call for
//! "heuristics or learning algorithms" that keep the scheme healthy.
//!
//! Output: for every (pattern × policy) pair, the cumulative tuples
//! touched, tuples moved, auxiliary cuts, final piece count, and total
//! wall-clock. The shape to look for: under `seq-asc`, `vanilla` touches
//! ~k·N/2 tuples while the stochastic policies stay near the random-
//! workload cost; under `random`, all policies are within a small factor
//! of each other (the insurance is cheap).

use bench::secs;
use cracker_core::stochastic::{StochasticCracker, StochasticPolicy};
use cracker_core::RangePred;
use std::time::Instant;
use workload::sequential::{adversarial_sequence, Adversary};
use workload::strolling::{strolling_sequence, StrollMode};
use workload::{Contraction, Tapestry, Window};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let k = 256;
    let tapestry = Tapestry::generate(n, 1, 0x5E9);

    let patterns: Vec<(&str, Vec<Window>)> = vec![
        (
            "random",
            strolling_sequence(
                n,
                k,
                0.01,
                Contraction::Linear,
                StrollMode::RandomWithReplacement,
                0xAB,
            ),
        ),
        (
            "seq-asc",
            adversarial_sequence(n, k, Adversary::SequentialAsc),
        ),
        (
            "seq-desc",
            adversarial_sequence(n, k, Adversary::SequentialDesc),
        ),
        ("zoom-in", adversarial_sequence(n, k, Adversary::ZoomIn)),
        (
            "zoom-out-alt",
            adversarial_sequence(n, k, Adversary::ZoomOutAlt),
        ),
        (
            "periodic",
            adversarial_sequence(n, k, Adversary::Periodic { round_len: 32 }),
        ),
    ];
    let policies = [
        StochasticPolicy::Vanilla,
        StochasticPolicy::DD1R,
        StochasticPolicy::DDR { floor: 4_096 },
        StochasticPolicy::DD1C,
        StochasticPolicy::DDC { floor: 4_096 },
    ];

    println!("# Stochastic cracking vs adversarial workloads (N={n}, k={k})");
    println!("# pattern\tpolicy\ttouched\tmoved\taux_cuts\tpieces\ttotal(s)");
    for (pattern, windows) in &patterns {
        let mut vanilla_touched = None;
        for policy in policies {
            let mut col = StochasticCracker::new(tapestry.column(0).to_vec(), policy, 7);
            let start = Instant::now();
            for w in windows {
                col.select(RangePred::half_open(w.lo, w.hi));
            }
            let elapsed = secs(start.elapsed());
            let touched = col.total_touched();
            if policy == StochasticPolicy::Vanilla {
                vanilla_touched = Some(touched);
            }
            println!(
                "{pattern}\t{}\t{touched}\t{}\t{}\t{}\t{elapsed:.4}",
                policy.label(),
                col.column().stats().tuples_moved,
                col.stats().auxiliary_cuts,
                col.column().piece_count()
            );
            col.column().validate().expect("invariants hold");
        }
        if let Some(v) = vanilla_touched {
            println!("# {pattern}: vanilla touched {v} — stochastic rows above should be well below it on the sweeps");
        }
    }
    println!("# Shape checks:");
    println!("#  * seq-asc / seq-desc: vanilla ≈ k·N/2 touched; DD1R/DDR a small fraction of it.");
    println!("#  * random: every policy within ~2x of vanilla (the insurance is cheap).");
    println!("#  * periodic: vanilla recovers after the first round; all policies converge.");
}
