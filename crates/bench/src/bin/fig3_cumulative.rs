//! **Figure 3** — "Cummulative cost of cracking versus scans": accumulated
//! read+write cost relative to scanning (baseline 1.0), plus the
//! sort-upfront alternative discussed in §2.2 for context.

use bench::data_block;
use sim::series::{fig3_series_avg, paper_selectivities, sort_cumulative_series};
use sim::SCAN_BASELINE;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let steps = 20;
    let runs = 25;
    let mut series: Vec<(String, Vec<f64>)> = paper_selectivities()
        .iter()
        .map(|&sigma| {
            (
                format!("{:.0}%", sigma * 100.0),
                fig3_series_avg(n, sigma, steps, runs),
            )
        })
        .collect();
    series.push(("scan-baseline".into(), vec![SCAN_BASELINE; steps]));
    series.push((
        "sort-upfront(5%)".into(),
        sort_cumulative_series(n, 0.05, steps),
    ));
    println!(
        "{}",
        data_block(
            &format!(
                "Figure 3 — cumulative cracking cost relative to scans (N={n}, {runs} runs avg)"
            ),
            "sequence length",
            &series,
        )
    );
    // Report the break-even step per selectivity.
    println!("# break-even (first step with ratio < 1.0):");
    for (name, s) in &series[..paper_selectivities().len()] {
        let be = s
            .iter()
            .position(|&v| v < SCAN_BASELINE)
            .map(|i| (i + 1).to_string())
            .unwrap_or_else(|| ">20".into());
        println!("#   sigma {name}: step {be}");
    }
    println!("# Shape check: break-even within a handful of queries (paper: 'already");
    println!("# after a handful of queries').");
}
