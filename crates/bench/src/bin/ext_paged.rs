//! **Extension experiment** — cracking at disk-block granularity.
//!
//! Figure 1's large-table observation is that response time "becomes
//! linear in the number of disk IOs". This experiment reruns the paper's
//! homerun sequence on a *paged* column behind a buffer pool and counts
//! exactly that: pages read from the (simulated) disk per query, for
//!
//! * **scan** — a full sequential scan per query (the `nocrack` regime);
//! * **crack** — a [`PagedCracker`] with the §3.4.2 disk-block cut-off.
//!
//! Three pool sizes show the memory-pressure spectrum: at 10% of the
//! table the scan re-reads nearly everything every query while the
//! cracked column's footprint collapses to the blocks overlapping the
//! answer; at 100% both run hot after the first pass, and the cracked
//! store still wins on *tuples* touched.

use cracker_core::PagedCracker;
use storage::{BufferPool, MemDisk, PagedColumn, DEFAULT_PAGE_SIZE};
use workload::homerun::homerun_sequence;
use workload::{Contraction, Tapestry};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let k = 16;
    let tapestry = Tapestry::generate(n, 1, 0xD15C);
    let vals = tapestry.column(0).to_vec();
    let seq = homerun_sequence(n, k, 0.02, Contraction::Linear, 0xBEEF);
    let pages_total = n.div_ceil(storage::page::page_capacity(DEFAULT_PAGE_SIZE));

    println!(
        "# Paged cracking: disk reads per query (N={n}, {pages_total} pages, homerun k={k} to 2%)"
    );
    println!("# pool_frames\tmethod\tstep\treads\twrites\tresult");

    for pool_frac in [0.1, 0.5, 1.0] {
        let frames = ((pages_total as f64 * pool_frac) as usize).max(2);

        // Scan baseline.
        {
            let mut pool = BufferPool::new(MemDisk::new(), frames);
            let col = PagedColumn::create(&mut pool, &vals).unwrap();
            pool.flush().unwrap();
            for (i, w) in seq.iter().enumerate() {
                let before = pool.io_stats();
                let pred = w.to_pred();
                let hits = col.count_matching(&mut pool, |v| pred.matches(v)).unwrap();
                let io = pool.io_stats();
                println!(
                    "{frames}\tscan\t{}\t{}\t{}\t{hits}",
                    i + 1,
                    io.reads - before.reads,
                    io.writes - before.writes
                );
            }
        }

        // Cracked paged column.
        {
            let mut pool = BufferPool::new(MemDisk::new(), frames);
            let mut cracker = PagedCracker::create(&mut pool, &vals).unwrap();
            pool.flush().unwrap();
            for (i, w) in seq.iter().enumerate() {
                let before = pool.io_stats();
                let hits = cracker.count(&mut pool, w.to_pred()).unwrap();
                let io = pool.io_stats();
                println!(
                    "{frames}\tcrack\t{}\t{}\t{}\t{hits}",
                    i + 1,
                    io.reads - before.reads,
                    io.writes - before.writes
                );
            }
        }
    }
    println!("# Shape checks: scan reads ~all pages every step at small pools;");
    println!("# crack pays a heavy first step (full partition incl. write-backs),");
    println!("# then reads only the blocks overlapping the shrinking answer.");

    // A compact verdict the EXPERIMENTS log can quote: a long 1%-
    // selectivity strolling sequence at the smallest pool, where the
    // answer footprint (a few blocks) dwarfs the scan footprint (all of
    // them).
    let k_long = 64;
    let stroll = workload::strolling::strolling_sequence(
        n,
        k_long,
        0.01,
        Contraction::Linear,
        workload::strolling::StrollMode::RandomWithReplacement,
        0xCAFE,
    );
    let frames = (pages_total / 10).max(2);
    let mut pool = BufferPool::new(MemDisk::new(), frames);
    let col = PagedColumn::create(&mut pool, &vals).unwrap();
    pool.flush().unwrap();
    let scan_start = pool.io_stats().reads;
    for w in &stroll {
        let pred = w.to_pred();
        col.count_matching(&mut pool, |v| pred.matches(v)).unwrap();
    }
    let scan_reads = pool.io_stats().reads - scan_start;

    let mut pool = BufferPool::new(MemDisk::new(), frames);
    let mut cracker = PagedCracker::create(&mut pool, &vals).unwrap();
    pool.flush().unwrap();
    let crack_start = pool.io_stats().reads;
    for w in &stroll {
        cracker.count(&mut pool, w.to_pred()).unwrap();
    }
    let crack_reads = pool.io_stats().reads - crack_start;
    println!(
        "# verdict: pool=10%, {k_long} strolling queries @1% — scan {scan_reads} reads vs \
         crack {crack_reads} reads (ratio {:.2}x)",
        scan_reads as f64 / crack_reads.max(1) as f64
    );
}
