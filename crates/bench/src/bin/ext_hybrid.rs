//! **Extension experiment** — progressive refinement (`sort_below`):
//! the hybrid between pure cracking and the §2.2 sort-upfront
//! alternative. Pieces whittled below a threshold are sorted once; all
//! later boundaries inside them resolve by binary search with zero tuple
//! movement.
//!
//! The sweep reports total time and total tuples moved for a long
//! strolling sequence under different thresholds (0 = pure cracking).

use bench::secs;
use cracker_core::{CrackerColumn, CrackerConfig, RangePred};
use std::time::Instant;
use workload::strolling::{strolling_sequence, StrollMode};
use workload::{Contraction, Tapestry};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let k = 512;
    let tapestry = Tapestry::generate(n, 1, 0xB1D);
    let seq = strolling_sequence(
        n,
        k,
        0.01,
        Contraction::Linear,
        StrollMode::RandomWithReplacement,
        0xE,
    );

    println!("# Hybrid cracking: sort_below sweep (N={n}, k={k} strolling queries @1%)");
    println!("# sort_below\ttotal(s)\ttuples_moved\tsorted pieces\ttotal pieces");
    for &threshold in &[0usize, 128, 1_024, 8_192, 65_536] {
        let cfg = CrackerConfig::new().with_sort_below(threshold);
        let mut col = CrackerColumn::with_config(tapestry.column(0).to_vec(), cfg);
        let start = Instant::now();
        for w in &seq {
            col.select(RangePred::half_open(w.lo, w.hi));
        }
        println!(
            "{threshold}\t{:.4}\t{}\t{}\t{}",
            secs(start.elapsed()),
            col.stats().tuples_moved,
            col.sorted_piece_count(),
            col.piece_count()
        );
        col.validate().expect("invariants hold");
    }
    println!("# Shape checks: moderate thresholds cut tuple movement on long sequences");
    println!("# (sorted pieces absorb later boundaries for free) at the cost of the");
    println!("# one-off sorts; threshold 0 is pure paper-style cracking.");
}
