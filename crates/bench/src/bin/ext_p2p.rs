//! **Extension experiment** — self-organization in a P2P overlay (§7).
//!
//! A tapestry table is range-striped over `M` peers. Each peer's clients
//! have an affinity region *owned by somebody else* at the start (the
//! worst static placement). Queries crack the border pieces of their
//! owners; hot pieces migrate to their dominant consumer.
//!
//! Output: per-round remote hops, transferred tuples, migrations, and
//! the locality ratio (fraction of answers served locally), with
//! migration on vs off. Shape: with migration the overlay converges to
//! locality ≈ 1.0 within a few rounds and remote traffic collapses;
//! without it, every round pays the same remote cost forever.

use p2p::{Network, NodeId, P2pConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use workload::Tapestry;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let nodes = 8;
    let rounds = 32;
    let queries_per_round = 16;
    let tapestry = Tapestry::generate(n, 1, 0x9EE9);
    // Tapestry values are a permutation of 1..=N.
    let values = tapestry.column(0).to_vec();

    println!(
        "# P2P self-organization: {nodes} nodes, N={n}, {rounds} rounds x {queries_per_round} queries, \
         affinity = next node's stripe"
    );
    println!("# migration\tround\thops\ttransferred\tmigrations\tlocality");

    for (label, migrate_after) in [("off", 0u32), ("on", 3)] {
        let mut net = Network::new(
            nodes,
            &values,
            1,
            n as i64 + 1,
            P2pConfig {
                migrate_after,
                max_pieces_per_node: 512,
            },
        );
        let stripe = (n as i64 + nodes as i64 - 1) / nodes as i64;
        let mut rng = SmallRng::seed_from_u64(0x0DD);
        for round in 1..=rounds {
            let (mut hops, mut transferred, mut migrations) = (0u64, 0u64, 0u64);
            let (mut local, mut result) = (0u64, 0u64);
            for _ in 0..queries_per_round {
                let node = rng.gen_range(0..nodes);
                // This node's clients care about the NEXT node's stripe.
                let target = (node + 1) % nodes;
                let base = 1 + target as i64 * stripe;
                // Clients revisit a small set of hot windows (quantized
                // offsets), as real drill-down sessions do.
                let width = (stripe / 8).max(1);
                let slot = rng.gen_range(0..8i64);
                let lo = base + slot * width;
                let t = net.query(NodeId(node), lo, lo + width);
                hops += t.hops;
                transferred += t.transferred;
                migrations += t.migrations;
                local += t.local;
                result += t.result;
            }
            let locality = if result == 0 {
                1.0
            } else {
                local as f64 / result as f64
            };
            println!("{label}\t{round}\t{hops}\t{transferred}\t{migrations}\t{locality:.3}");
        }
        net.validate().expect("overlay invariants hold");
        let s = net.stats();
        println!(
            "# migration={label}: totals — hops {} transferred {} migrations {} \
             (moved {} tuples) cracks {} fusions {}",
            s.hops, s.transferred, s.migrations, s.migrated_tuples, s.cracks, s.fusions
        );
    }
    println!("# Shape checks: with migration on, locality climbs toward 1.0 and");
    println!("# per-round transfers collapse after the first few rounds; with it");
    println!("# off, remote traffic stays flat forever.");
}
