//! **Figure 11** — "Random converge experiment": strolling sequences
//! converging to a 5% target, up to 128 steps, comparing `nocrack` (full
//! scans), `sort` (sort the table upfront, then binary search) and
//! `crack`.

use bench::{data_block, secs};
use engine::{CrackEngine, OutputMode, QueryEngine, ScanEngine, SortEngine};
use workload::strolling::{strolling_sequence, StrollMode};
use workload::{Contraction, Tapestry};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let k = 128;
    let sigma = 0.05;
    let tapestry = Tapestry::generate(n, 2, 0xF1611);
    let column = tapestry.column(0);
    let seq = strolling_sequence(
        n,
        k,
        sigma,
        Contraction::Linear,
        StrollMode::Converge,
        0xCAFE,
    );

    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for label in ["nocrack", "sort", "crack"] {
        let mut scan;
        let mut sort;
        let mut crack;
        let e: &mut dyn QueryEngine = match label {
            "nocrack" => {
                scan = ScanEngine::new(column.to_vec());
                &mut scan
            }
            "sort" => {
                sort = SortEngine::new(column.to_vec());
                &mut sort
            }
            _ => {
                crack = CrackEngine::new(column.to_vec());
                &mut crack
            }
        };
        let mut cum = 0.0;
        let mut out = Vec::with_capacity(k);
        for w in &seq {
            let stats = e.run(w.to_pred(), OutputMode::Stream);
            cum += secs(stats.elapsed);
            out.push(cum);
        }
        series.push((label.to_string(), out));
    }
    println!(
        "{}",
        data_block(
            &format!(
                "Figure 11 — k-step strolling converge to {:.0}%, N={n}, cumulative time (s)",
                sigma * 100.0
            ),
            "query-sequence length",
            &series,
        )
    );
    // Crossover summary: where sort's upfront investment pays off against
    // cracking ("investment in an index becomes profitable ... when the
    // query sequence exceeds 100 steps").
    let crack_cum = &series[2].1;
    let sort_cum = &series[1].1;
    let crossover = (0..k).find(|&i| sort_cum[i] < crack_cum[i]);
    println!(
        "# sort-beats-crack crossover: {}",
        crossover
            .map(|i| format!("step {}", i + 1))
            .unwrap_or_else(|| format!("none within {k} steps"))
    );
    println!("# Shape checks: crack beats nocrack throughout; sort pays a large first-step");
    println!("# investment and only overtakes cracking deep into the sequence (if at all).");
}
