//! Stitch committed `BENCH_<name>.json` baselines — and optionally a
//! fresh run — into one markdown trend table: the ROADMAP's per-PR trend
//! report, rendered per CI run and uploaded as an artifact so the bench
//! trajectory is readable without downloading raw JSON.
//!
//! ```text
//! bench_trend <baseline-dir> [<current-dir>] [-o <out.md>]
//! ```
//!
//! One section per bench file, one row per benchmark id with the
//! baseline median. With a `<current-dir>`, each row also shows the
//! current median and a relative-to-baseline column (`current ÷
//! baseline`, so `0.50×` halved and `2.00×` doubled); ids present on one
//! side only render a `–` in the missing column, mirroring
//! `bench_diff`'s drift reporting. Without `-o` the table goes to
//! stdout.

use bench::report::{load_dir, Report};
use std::fmt::Write as _;

fn die(msg: &str) -> ! {
    eprintln!("bench_trend: {msg}");
    eprintln!("usage: bench_trend <baseline-dir> [<current-dir>] [-o <out.md>]");
    std::process::exit(2);
}

/// Render the trend table for parsed baseline (and optional current)
/// report sets.
fn render(baselines: &[(String, Report)], currents: Option<&[(String, Report)]>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Bench trend\n");
    let _ = writeln!(
        out,
        "Median wall time per benchmark, from the committed `BENCH_*.json` baselines{}.\n",
        if currents.is_some() {
            " against this run"
        } else {
            ""
        }
    );
    for (file, base) in baselines {
        let current = currents.and_then(|c| c.iter().find(|(f, _)| f == file).map(|(_, r)| r));
        let _ = writeln!(out, "## {}\n", base.bench);
        if current.is_some() {
            let _ = writeln!(
                out,
                "| benchmark | baseline ns | current ns | vs baseline |"
            );
            let _ = writeln!(out, "|---|---:|---:|---:|");
        } else {
            let _ = writeln!(out, "| benchmark | median ns |");
            let _ = writeln!(out, "|---|---:|");
        }
        for e in &base.results {
            match current {
                None => {
                    let _ = writeln!(out, "| {} | {} |", e.id, e.median_ns);
                }
                Some(cur) => match cur.median(&e.id) {
                    Some(now) if e.median_ns > 0 => {
                        let _ = writeln!(
                            out,
                            "| {} | {} | {} | {:.2}× |",
                            e.id,
                            e.median_ns,
                            now,
                            now as f64 / e.median_ns as f64
                        );
                    }
                    Some(now) => {
                        let _ = writeln!(out, "| {} | {} | {} | – |", e.id, e.median_ns, now);
                    }
                    None => {
                        let _ = writeln!(out, "| {} | {} | – | – |", e.id, e.median_ns);
                    }
                },
            }
        }
        // Ids only the fresh run has (drift): list them so a new
        // benchmark shows up in the artifact the PR that added it.
        if let Some(cur) = current {
            for e in &cur.results {
                if base.median(&e.id).is_none() {
                    let _ = writeln!(out, "| {} | – | {} | – |", e.id, e.median_ns);
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dirs = Vec::new();
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--out" => {
                i += 1;
                out_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("-o needs a path")),
                );
            }
            d => dirs.push(d.to_string()),
        }
        i += 1;
    }
    let (baseline_dir, current_dir) = match dirs.as_slice() {
        [b] => (b.clone(), None),
        [b, c] => (b.clone(), Some(c.clone())),
        _ => die("expected one or two report directories"),
    };
    let baselines = load_dir(&baseline_dir).unwrap_or_else(|e| die(&e));
    let currents = current_dir.map(|d| load_dir(&d).unwrap_or_else(|e| die(&e)));
    let table = render(&baselines, currents.as_deref());
    match out_path {
        None => print!("{table}"),
        Some(p) => {
            std::fs::write(&p, &table).unwrap_or_else(|e| die(&format!("cannot write {p}: {e}")));
            eprintln!("bench_trend: wrote {p}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(bench: &str, rows: &[(&str, u64)]) -> Report {
        let results: String = rows
            .iter()
            .map(|(id, ns)| format!(r#"{{ "id": "{id}", "median_ns": {ns}, "samples": 5 }}"#))
            .collect::<Vec<_>>()
            .join(",");
        serde_json::from_str(&format!(
            r#"{{ "bench": "{bench}", "results": [{results}] }}"#
        ))
        .unwrap()
    }

    #[test]
    fn renders_baseline_only_table() {
        let b = vec![("BENCH_x.json".to_string(), report("x", &[("g/a", 100)]))];
        let md = render(&b, None);
        assert!(md.contains("## x"));
        assert!(md.contains("| g/a | 100 |"));
        assert!(!md.contains("vs baseline"));
    }

    #[test]
    fn renders_relative_column_and_drift() {
        let b = vec![(
            "BENCH_x.json".to_string(),
            report("x", &[("g/a", 100), ("g/gone", 70)]),
        )];
        let c = vec![(
            "BENCH_x.json".to_string(),
            report("x", &[("g/a", 150), ("g/new", 40)]),
        )];
        let md = render(&b, Some(&c));
        assert!(md.contains("| g/a | 100 | 150 | 1.50× |"));
        assert!(md.contains("| g/gone | 70 | – | – |"));
        assert!(md.contains("| g/new | – | 40 | – |"));
    }
}
