//! Compare two `BENCH_<name>.json` reports (as written by the bench
//! harness's `--json` mode) and exit nonzero when any benchmark's median
//! regressed by more than the threshold.
//!
//! ```text
//! bench_diff <baseline.json> <current.json> [--threshold <pct>]
//! ```
//!
//! The threshold defaults to 25 (percent), the ROADMAP's regression bar
//! for like-for-like runs on one machine. Cross-machine comparisons (CI
//! runners vs the laptop that committed a baseline) should pass a looser
//! `--threshold`, since absolute nanoseconds move with the hardware.
//!
//! # Benchmark-set drift
//!
//! Benchmark sets drift as benches grow new shapes (a new kernel label,
//! a new band) or retire old ones. The diff handles that explicitly
//! instead of silently comparing only the intersection: ids present on
//! one side only are listed as `NEW` / `GONE` rows and summarized by
//! name at the end, while the exit code reflects **only regressions in
//! the shared set**. Nothing overlapping at all means the two files
//! describe different benches and the comparison is vacuous — that is
//! still an error.

use bench::report::{load, Report};

fn die(msg: &str) -> ! {
    eprintln!("bench_diff: {msg}");
    eprintln!("usage: bench_diff <baseline.json> <current.json> [--threshold <pct>]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 25.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--threshold needs a number"));
            }
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        die("expected exactly two report paths");
    };
    let baseline: Report = load(baseline_path).unwrap_or_else(|e| die(&e));
    let current: Report = load(current_path).unwrap_or_else(|e| die(&e));
    if baseline.bench != current.bench {
        eprintln!(
            "bench_diff: warning: comparing different benches ({} vs {})",
            baseline.bench, current.bench
        );
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    let mut removed: Vec<&str> = Vec::new();
    let mut added: Vec<&str> = Vec::new();
    println!(
        "{:<52} {:>12} {:>12} {:>9}",
        "benchmark", "baseline ns", "current ns", "delta"
    );
    for old in &baseline.results {
        let Some(new) = current.results.iter().find(|e| e.id == old.id) else {
            println!(
                "{:<52} {:>12} {:>12} {:>9}",
                old.id, old.median_ns, "-", "GONE"
            );
            removed.push(&old.id);
            continue;
        };
        compared += 1;
        let delta_pct = if old.median_ns == 0 {
            0.0
        } else {
            (new.median_ns as f64 - old.median_ns as f64) / old.median_ns as f64 * 100.0
        };
        let flag = if delta_pct > threshold {
            regressions += 1;
            "  REGRESSED"
        } else {
            ""
        };
        println!(
            "{:<52} {:>12} {:>12} {:>+8.1}%{flag}",
            old.id, old.median_ns, new.median_ns, delta_pct
        );
    }
    for new in &current.results {
        if !baseline.results.iter().any(|e| e.id == new.id) {
            println!(
                "{:<52} {:>12} {:>12} {:>9}",
                new.id, "-", new.median_ns, "NEW"
            );
            added.push(&new.id);
        }
    }

    if !added.is_empty() || !removed.is_empty() {
        eprintln!(
            "bench_diff: benchmark-set drift: {} added, {} removed (informational; \
             only shared-set regressions fail the diff)",
            added.len(),
            removed.len()
        );
        if !added.is_empty() {
            eprintln!("bench_diff:   added:   {}", added.join(", "));
        }
        if !removed.is_empty() {
            eprintln!("bench_diff:   removed: {}", removed.join(", "));
        }
    }
    if compared == 0 {
        die("no benchmark ids overlap between the two reports");
    }
    if regressions > 0 {
        eprintln!(
            "bench_diff: {regressions} of {compared} shared benchmarks regressed by more than \
             {threshold}%"
        );
        std::process::exit(1);
    }
    println!("bench_diff: {compared} shared benchmarks within {threshold}% of baseline");
}
