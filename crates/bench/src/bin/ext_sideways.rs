//! **Extension experiment** — sideways cracking vs OID reconstruction.
//!
//! §3.1's Ψ cracker reconstructs vertical fragments "by means of a
//! natural 1:1-join between the surrogates". After Ξ-cracking the
//! selection column that join degenerates to one random access per
//! qualifying tuple: the OIDs of a cracked answer are scattered, so
//! projecting a second attribute walks the whole base column in random
//! order. Sideways cracker maps keep the projected attribute physically
//! aligned with the cracked selection attribute instead, making the
//! projection a contiguous copy.
//!
//! The experiment runs the same strolling query sequence two ways —
//! `select B where A in [lo,hi)` — and reports per-phase wall-clock:
//!
//! * **oid-fetch**: `CrackerColumn` on A, then `B[oid]` gathers;
//! * **sideways**: one `CrackerMap` A→B.
//!
//! Shape: both converge (cracking works either way), but the projection
//! phase of oid-fetch stays proportional to the answer size *with random
//! access*, while sideways pays sequential copies — the gap widens with
//! table size (cache misses) and selectivity.

use bench::secs;
use cracker_core::sideways::CrackerMap;
use cracker_core::CrackerColumn;
use std::time::Instant;
use workload::strolling::{strolling_sequence, StrollMode};
use workload::{Contraction, Tapestry};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let k = 256;
    let sigma = 0.02;
    let tapestry = Tapestry::generate(n, 2, 0x51DE);
    let a = tapestry.column(0).to_vec();
    let b = tapestry.column(1).to_vec();
    let seq = strolling_sequence(
        n,
        k,
        sigma,
        Contraction::Linear,
        StrollMode::RandomWithReplacement,
        0xF00,
    );

    println!("# Sideways cracking: select B where A in [lo,hi) (N={n}, k={k}, sigma={sigma})");
    println!("# method\tselect(s)\tproject(s)\ttotal(s)\tprojected\tchecksum");

    // Method 1: crack A, gather B by OID (the Ψ surrogate join).
    {
        let mut col = CrackerColumn::new(a.clone());
        let (mut t_sel, mut t_proj) = (0.0f64, 0.0f64);
        let mut projected = 0u64;
        let mut checksum = 0i64;
        for w in &seq {
            let s0 = Instant::now();
            let sel = col.select(w.to_pred());
            t_sel += secs(s0.elapsed());
            let p0 = Instant::now();
            // One random access per qualifying tuple.
            for &oid in &col.selection_oids(&sel) {
                checksum = checksum.wrapping_add(b[oid as usize]);
                projected += 1;
            }
            t_proj += secs(p0.elapsed());
        }
        println!(
            "oid-fetch\t{t_sel:.4}\t{t_proj:.4}\t{:.4}\t{projected}\t{checksum}",
            t_sel + t_proj
        );
    }

    // Method 2: one sideways map A→B; projection is a contiguous slice.
    {
        let mut map = CrackerMap::new(a, b);
        let (mut t_sel, mut t_proj) = (0.0f64, 0.0f64);
        let mut projected = 0u64;
        let mut checksum = 0i64;
        for w in &seq {
            let s0 = Instant::now();
            let r = map.select(w.to_pred());
            t_sel += secs(s0.elapsed());
            let p0 = Instant::now();
            for &v in map.project(r) {
                checksum = checksum.wrapping_add(v);
                projected += 1;
            }
            t_proj += secs(p0.elapsed());
        }
        println!(
            "sideways\t{t_sel:.4}\t{t_proj:.4}\t{:.4}\t{projected}\t{checksum}",
            t_sel + t_proj
        );
        map.validate().expect("invariants hold");
    }

    println!("# Shape checks: identical projected counts and checksums (same answers);");
    println!("# sideways' project phase beats oid-fetch (contiguous copy vs random gather),");
    println!("# its select phase pays the extra swaps of the wider map.");
}
