//! **Figure 9** — "Linear join experiment": response time of k-way linear
//! join chains, k up to 128, over a table of random integer pairs.
//!
//! The paper observed three regimes: MonetDB handles long chains
//! efficiently (linear, binary-table engine); traditional engines' join
//! optimizers "quickly reach their limitations and fall back to a default
//! solution — an expensive nested-loop join"; or they break outright,
//! "running out of optimizer resource space".
//!
//! Substitution note (DESIGN.md): all three regimes run on this library's
//! own executor — a hash-join chain (the MonetDB-like line), a budgeted
//! optimizer that degrades to nested loops beyond 12 joins (the
//! traditional line) and errors out beyond 96 (the breaking line). N is
//! reduced from the paper's 1M so the quadratic nested-loop regime
//! finishes; the *shape* (linear vs. explosive growth, the breaking
//! point) is the reproduced result.

use bench::secs;
use engine::chain::{permutation_chain, run_chain, ChainStrategy};
use workload::Tapestry;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let tapestry = Tapestry::generate(n, 1, 0xF169);
    // Map values 1..=N to 0..N so the permutation composes with identity
    // sources.
    let perm: Vec<i64> = tapestry.column(0).iter().map(|v| v - 1).collect();
    let ks = [2usize, 4, 8, 16, 32, 64, 96, 128];

    println!("# Figure 9 — k-way linear join, N={n} random integer pairs");
    println!("# k\thash-chain(s)\toptimizer(s)\toptimizer regime");
    for &k in &ks {
        let rels = permutation_chain(&perm, k);
        let hash = run_chain(&rels, ChainStrategy::HashChain).expect("hash chain never breaks");
        let opt = run_chain(
            &rels,
            ChainStrategy::Optimizer {
                plan_budget: 12,
                fail_cap: 96,
            },
        );
        match opt {
            Ok(r) => {
                let regime = if r.comparisons > 0 {
                    "nested-loop fallback"
                } else {
                    "hash plan"
                };
                println!(
                    "{k}\t{:.4}\t{:.4}\t{regime} (plan states {})",
                    secs(hash.elapsed),
                    secs(r.elapsed),
                    r.plan_states
                );
            }
            Err(e) => {
                println!("{k}\t{:.4}\t-\tBROKEN: {e}", secs(hash.elapsed));
            }
        }
    }
    println!("# Shape checks: hash chain grows linearly in k; the traditional profile");
    println!("# explodes once it falls back to nested loops and breaks past the cap —");
    println!("# the paper's three observed regimes.");
}
