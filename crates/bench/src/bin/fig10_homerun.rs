//! **Figure 10** — "Homerun experiment": total response time of linear
//! homerun sequences of up to 128 steps, target selectivities 5%, 45% and
//! 75%, with cracking (`crack`) and without (`nocrack`).

use bench::{data_block, secs};
use engine::{CrackEngine, OutputMode, QueryEngine, ScanEngine};
use workload::homerun::homerun_sequence;
use workload::{Contraction, Tapestry};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let k = 128;
    let sigmas = [0.05, 0.45, 0.75];
    let tapestry = Tapestry::generate(n, 2, 0xF1610);
    let column = tapestry.column(0);

    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for &sigma in &sigmas {
        let seq = homerun_sequence(
            n,
            k,
            sigma,
            Contraction::Linear,
            0xBEEF + (sigma * 100.0) as u64,
        );
        for (label, cracked) in [("nocrack", false), ("crack", true)] {
            let mut scan;
            let mut crack;
            let e: &mut dyn QueryEngine = if cracked {
                crack = CrackEngine::new(column.to_vec());
                &mut crack
            } else {
                scan = ScanEngine::new(column.to_vec());
                &mut scan
            };
            let mut cum = 0.0;
            let mut out = Vec::with_capacity(k);
            for w in &seq {
                let stats = e.run(w.to_pred(), OutputMode::Stream);
                cum += secs(stats.elapsed);
                out.push(cum);
            }
            series.push((format!("{label} {:.0}%", sigma * 100.0), out));
        }
    }
    println!(
        "{}",
        data_block(
            &format!("Figure 10 — k-way homeruns, N={n}, cumulative response time (s)"),
            "query-sequence length",
            &series,
        )
    );
    // Final-ratio summary (the paper reports "a total reduction ... of a
    // factor 4" for the cracked homeruns).
    println!("# total-time ratios nocrack/crack at k={k}:");
    for (i, &sigma) in sigmas.iter().enumerate() {
        let nocrack = series[2 * i].1.last().unwrap();
        let crack = series[2 * i + 1].1.last().unwrap();
        println!("#   sigma {:.0}%: {:.2}x", sigma * 100.0, nocrack / crack);
    }
    println!("# Shape checks: crack lines flatten after a few steps (adaptive behaviour);");
    println!("# nocrack grows linearly; cracking wins by a clear factor at k=128.");
}
