//! **Extension ablation** — the §3.3 cracking optimizer.
//!
//! "It is as yet unclear, if this optimizer should work towards the
//! smallest pieces or try to retain large chunks" — so we measure. A
//! long strolling sequence runs under every [`CrackPolicy`]; the output
//! reports the two costs the policy trades against each other:
//!
//! * **work** — tuples touched by cracking plus tuples scanned inside
//!   retained chunks (the per-query evaluation cost);
//! * **index** — the number of pieces administered (the §3.2 resource
//!   management burden the optimizer exists to control).
//!
//! Shape: `always` minimizes work and maximizes pieces; `never` is the
//! flat scan baseline; the paper's `many-then-chunks` strategy lands in
//! between, capping the index while staying near `always`' work — the
//! quantified answer to the paper's open question.

use bench::secs;
use cracker_core::{CrackPolicy, PolicyCracker, RangePred};
use std::time::Instant;
use workload::strolling::{strolling_sequence, StrollMode};
use workload::{Contraction, Tapestry};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let k = 1024;
    let tapestry = Tapestry::generate(n, 1, 0xAB1A);
    let seq = strolling_sequence(
        n,
        k,
        0.005,
        Contraction::Linear,
        StrollMode::RandomWithReplacement,
        0x11,
    );

    let policies = [
        CrackPolicy::Always,
        CrackPolicy::Never,
        CrackPolicy::FixedGranule { granule: 1_024 },
        CrackPolicy::ManyThenChunks {
            switch_at_pieces: 128,
            late_granule: n / 256,
        },
        CrackPolicy::PieceBudget { max_pieces: 128 },
    ];

    println!("# Cracking-optimizer ablation (N={n}, k={k} strolling queries @0.5%)");
    println!("# policy\ttouched\tedge_scanned\tmoved\tpieces\ttotal(s)\tlast_quarter(s)");
    for policy in policies {
        let mut col = PolicyCracker::new(tapestry.column(0).to_vec(), policy);
        let start = Instant::now();
        let mut last_quarter = 0.0;
        for (i, w) in seq.iter().enumerate() {
            let q0 = Instant::now();
            col.select(RangePred::half_open(w.lo, w.hi));
            if i >= k * 3 / 4 {
                last_quarter += secs(q0.elapsed());
            }
        }
        let total = secs(start.elapsed());
        let s = col.column().stats();
        println!(
            "{}\t{}\t{}\t{}\t{}\t{total:.4}\t{last_quarter:.4}",
            policy.label(),
            s.tuples_touched,
            s.edge_scanned,
            s.tuples_moved,
            col.column().piece_count()
        );
        col.column().validate().expect("invariants hold");
    }
    println!("# Shape checks: `always` = least work / most pieces; `never` = k full scans;");
    println!("# `many-then-chunks` and `piece-budget` cap the index near their thresholds");
    println!("# while the steady-state (last-quarter) cost stays close to `always`.");
}
