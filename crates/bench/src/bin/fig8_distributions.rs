//! **Figure 8** — "Selectivity distribution (σ = 0.2, k = 20)": the
//! linear, exponential and logarithmic contraction curves plus the target
//! selectivity line.

use bench::data_block;
use workload::Contraction;

fn main() {
    let k = 20;
    let sigma = 0.2;
    let mut series: Vec<(String, Vec<f64>)> = Contraction::all()
        .iter()
        .map(|c| (format!("{} contraction", c.name()), c.series(k, sigma)))
        .collect();
    series.push(("target selectivity".into(), vec![sigma; k]));
    println!(
        "{}",
        data_block(
            &format!("Figure 8 — selectivity distribution functions (sigma={sigma}, k={k})"),
            "step",
            &series,
        )
    );
    println!("# Shape checks: all curves fall from ~1.0 to sigma; exponential contracts");
    println!("# early, logarithmic late, linear at constant rate.");
}
