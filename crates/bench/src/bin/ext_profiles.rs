//! **Extension experiment** — cracking benefit across the full MQS
//! profile space (§4): homerun, hiking and all three strolling modes, on
//! uniform and skewed tapestry columns.
//!
//! The paper evaluates homeruns (Fig. 10) and strolling converge
//! (Fig. 11); this binary fills in the rest of the benchmark kit's
//! dimensions and answers its own question "what kind of application
//! scenarios would benefit from the cracking approach?" in one table.

use bench::secs;
use engine::{CrackEngine, OutputMode, QueryEngine, ScanEngine};
use workload::skew::power_remap;
use workload::strolling::StrollMode;
use workload::{Contraction, Mqs, Profile, Tapestry};

fn run_profile(column: &[i64], mqs: &Mqs, seed: u64) -> (f64, f64, u64, u64) {
    let seq = mqs.sequence(seed);
    let mut scan = ScanEngine::new(column.to_vec());
    let mut crack = CrackEngine::new(column.to_vec());
    let (mut t_scan, mut t_crack) = (0.0, 0.0);
    let (mut io_scan, mut io_crack) = (0u64, 0u64);
    for w in &seq {
        let a = scan.run(w.to_pred(), OutputMode::Stream);
        let b = crack.run(w.to_pred(), OutputMode::Stream);
        assert_eq!(a.result_count, b.result_count, "engines must agree");
        t_scan += secs(a.elapsed);
        t_crack += secs(b.elapsed);
        io_scan += a.tuple_io();
        io_crack += b.tuple_io();
    }
    (t_scan, t_crack, io_scan, io_crack)
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let k = 64;
    let sigma = 0.05;
    let tapestry = Tapestry::generate(n, 1, 0xABCD);
    let uniform = tapestry.column(0).to_vec();
    let skewed = power_remap(&uniform, 2.5);

    let profiles: Vec<(&str, Profile)> = vec![
        ("homerun", Profile::Homerun),
        ("hiking", Profile::Hiking),
        (
            "strolling/converge",
            Profile::Strolling(StrollMode::Converge),
        ),
        (
            "strolling/random+repl",
            Profile::Strolling(StrollMode::RandomWithReplacement),
        ),
        (
            "strolling/random-repl",
            Profile::Strolling(StrollMode::RandomWithoutReplacement),
        ),
    ];

    println!("# Cracking benefit across MQS profiles (N={n}, k={k}, sigma={sigma})");
    println!("# profile\tdata\tscan(s)\tcrack(s)\tspeedup\tio ratio");
    for (label, profile) in &profiles {
        for (data_label, column) in [("uniform", &uniform), ("skewed", &skewed)] {
            let mqs = Mqs {
                alpha: 1,
                n,
                k,
                sigma,
                rho: Contraction::Linear,
                delta: Contraction::Linear,
                profile: *profile,
            };
            let (ts, tc, ios, ioc) = run_profile(column, &mqs, 0xAB);
            println!(
                "{label}\t{data_label}\t{ts:.4}\t{tc:.4}\t{:.2}x\t{:.2}x",
                ts / tc.max(1e-9),
                ios as f64 / ioc.max(1) as f64
            );
        }
    }
    println!("# Shape checks: every profile benefits (speedup > 1); focused profiles");
    println!("# (homerun, hiking) benefit most — their queries keep revisiting the");
    println!("# same region, exactly the paper's thesis about zooming workloads.");
}
