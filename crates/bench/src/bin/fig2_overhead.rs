//! **Figure 2** — "Cracking overhead": fractional write overhead per
//! sequence step, for selectivities 1%–80%, uniform random ranges, up to
//! 20 steps. Averaged over independent query streams.

use bench::data_block;
use sim::series::{fig2_series_avg, paper_selectivities};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let steps = 20;
    let runs = 25;
    let series: Vec<(String, Vec<f64>)> = paper_selectivities()
        .iter()
        .map(|&sigma| {
            (
                format!("{:.0}%", sigma * 100.0),
                fig2_series_avg(n, sigma, steps, runs),
            )
        })
        .collect();
    println!(
        "{}",
        data_block(
            &format!(
                "Figure 2 — cracking write overhead per step (N={n} granules, {runs} runs avg)"
            ),
            "sequence step",
            &series,
        )
    );
    println!("# Shape checks: step-1 overhead ~ (1 - sigma) — low selectivity rewrites");
    println!("# nearly the whole store; all curves decay with the sequence step.");
}
