//! **§5.1 experiment** — "Crackers in an SQL environment": compare
//! cracking implemented *above* a black-box SQL engine (fragment tables
//! maintained by `SELECT INTO`, full copies, catalog churn) against
//! cracking *inside* the kernel, over the same homerun sequence.
//!
//! The paper's worked example: on MySQL a 5%-selectivity query cost ~0.5s
//! delivered to the GUI, +1.5s to store it in a temporary table, and the
//! full crack raised the total to ~10s — "an investment ... hard to turn
//! into a profit". The MySQL cost profile replays our counters into that
//! regime; the kernel cracker's counters show why §5.2 moves the scheme
//! into MonetDB instead.

use bench::secs;
use engine::{CrackEngine, EngineProfile, OutputMode, QueryEngine, ScanEngine, SqlLevelCracker};
use workload::homerun::homerun_sequence;
use workload::{Contraction, Tapestry};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let k = 32;
    let tapestry = Tapestry::generate(n, 2, 0x5011);
    let column = tapestry.column(0);
    let seq = homerun_sequence(n, k, 0.05, Contraction::Linear, 0x51);
    let mysql = EngineProfile::mysql();
    let monet = EngineProfile::monetdb();

    println!("# SQL-level vs kernel cracking vs plain scans, N={n}, {k}-step homerun @5%");
    println!("# engine\ttotal tuple IO\ttables created\tmeasured(s)\tmodeled(s)");
    for label in ["scan", "sql-crack", "crack"] {
        let mut scan;
        let mut sql;
        let mut kernel;
        let (e, profile): (&mut dyn QueryEngine, &EngineProfile) = match label {
            "scan" => {
                scan = ScanEngine::new(column.to_vec());
                (&mut scan, &mysql)
            }
            "sql-crack" => {
                sql = SqlLevelCracker::new(column.to_vec());
                (&mut sql, &mysql)
            }
            _ => {
                kernel = CrackEngine::new(column.to_vec());
                (&mut kernel, &monet)
            }
        };
        let mut io = 0u64;
        let mut tables = 0u64;
        let mut measured = 0.0;
        let mut modeled = 0.0;
        for w in &seq {
            let s = e.run(w.to_pred(), OutputMode::Stream);
            io += s.tuple_io();
            tables += s.tables_created;
            measured += secs(s.elapsed);
            modeled += secs(profile.modeled_time(&s, OutputMode::Stream));
        }
        println!("{label}\t{io}\t{tables}\t{measured:.4}\t{modeled:.2}");
    }
    println!("# Shape checks (the paper's §5.1 conclusion): SQL-level cracking pays");
    println!("# multiple scans plus a fresh table per piece — its modeled time exceeds");
    println!("# even plain scanning, while kernel cracking beats both. 'It does not");
    println!("# seem prudent to implement a cracker scheme within the current");
    println!("# offerings. Unless one is willing to change the inner-most algorithms.'");
}
