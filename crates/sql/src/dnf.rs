//! Normalization of WHERE clauses to disjunctive normal form.
//!
//! §3.1: "Without loss of generality, we assume that a query is in
//! disjunctive normal form" — this module makes that assumption true.
//! The boolean expression tree is rewritten in three steps:
//!
//! 1. **atomization** — every comparison becomes a [`NormLit`]: a range
//!    predicate over one column, an equi-join literal between two columns,
//!    or a constant;
//! 2. **negation pushdown** — `NOT` is eliminated by negating comparison
//!    operators (`≠` and `NOT BETWEEN` split into two-range disjunctions);
//! 3. **distribution** — `AND` is distributed over `OR`, with a term cap
//!    guarding against the exponential blowup the paper's introduction
//!    warns would hit "the catalog of pieces and their role in query plan
//!    generation".

use crate::ast::{CmpOp, ColumnRef, Expr, Operand};
use crate::error::{SqlError, SqlResult};
use cracker_core::RangePred;

/// Upper bound on the number of DNF terms one WHERE clause may expand to.
pub const MAX_DNF_TERMS: usize = 64;

/// A normalized literal: the atoms DNF terms are conjunctions of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NormLit {
    /// A range predicate over one column — a Ξ-cracking handle.
    Range {
        /// The filtered column.
        col: ColumnRef,
        /// The (possibly one-sided) range.
        pred: RangePred<i64>,
    },
    /// An equality between two columns — a ^-cracking handle.
    Join {
        /// Left column.
        left: ColumnRef,
        /// Right column.
        right: ColumnRef,
    },
    /// A range comparison against a positional parameter (`?`). The
    /// concrete [`RangePred`] is produced at bind time by a prepared
    /// statement; until then the literal carries the comparison shape.
    /// `op` is never [`CmpOp::Ne`] — like [`cmp_lit`], `≠` splits into a
    /// two-range disjunction during normalization.
    ParamRange {
        /// The filtered column.
        col: ColumnRef,
        /// Comparison operator (column on the left).
        op: CmpOp,
        /// Zero-based parameter index.
        param: usize,
    },
    /// A constant truth value (from literal-literal comparisons).
    Const(bool),
}

/// Internal NNF tree: negation already eliminated.
enum Nnf {
    And(Vec<Nnf>),
    Or(Vec<Nnf>),
    Lit(NormLit),
}

/// Normalize a WHERE expression to DNF: a disjunction of conjunctions of
/// [`NormLit`]s. Constant-`true` literals are dropped; terms containing a
/// constant `false` are dropped entirely; an empty outer vector therefore
/// means *unsatisfiable*, and a term with an empty literal vector means
/// *always true*.
pub fn to_dnf(expr: &Expr) -> SqlResult<Vec<Vec<NormLit>>> {
    let nnf = normalize(expr, false)?;
    let mut terms = distribute(&nnf)?;
    // Constant folding per term.
    let mut out = Vec::new();
    'terms: for term in terms.drain(..) {
        let mut lits = Vec::new();
        for lit in term {
            match lit {
                NormLit::Const(false) => continue 'terms,
                NormLit::Const(true) => {}
                other => lits.push(other),
            }
        }
        out.push(lits);
    }
    Ok(out)
}

/// Rewrite into NNF, resolving `negate` (the parity of enclosing NOTs).
fn normalize(expr: &Expr, negate: bool) -> SqlResult<Nnf> {
    match expr {
        Expr::Not(inner) => normalize(inner, !negate),
        Expr::And(l, r) => {
            let l = normalize(l, negate)?;
            let r = normalize(r, negate)?;
            // De Morgan: NOT(a AND b) = NOT a OR NOT b.
            Ok(if negate {
                Nnf::Or(vec![l, r])
            } else {
                Nnf::And(vec![l, r])
            })
        }
        Expr::Or(l, r) => {
            let l = normalize(l, negate)?;
            let r = normalize(r, negate)?;
            Ok(if negate {
                Nnf::And(vec![l, r])
            } else {
                Nnf::Or(vec![l, r])
            })
        }
        Expr::Between {
            col,
            low,
            high,
            negated,
            ..
        } => {
            let exclude = *negated != negate; // XOR: effective negation
            if exclude {
                // NOT BETWEEN: v < low OR v > high.
                Ok(Nnf::Or(vec![
                    Nnf::Lit(NormLit::Range {
                        col: col.clone(),
                        pred: RangePred::lt(*low),
                    }),
                    Nnf::Lit(NormLit::Range {
                        col: col.clone(),
                        pred: RangePred::gt(*high),
                    }),
                ]))
            } else {
                Ok(Nnf::Lit(NormLit::Range {
                    col: col.clone(),
                    pred: RangePred::between(*low, *high),
                }))
            }
        }
        Expr::Cmp {
            left,
            op,
            right,
            span,
        } => {
            let op = if negate { op.negated() } else { *op };
            match (left, right) {
                // Constant comparison: fold.
                (Operand::Literal(l), Operand::Literal(r)) => {
                    Ok(Nnf::Lit(NormLit::Const(op.eval(*l, *r))))
                }
                // column op literal.
                (Operand::Column(c), Operand::Literal(v)) => cmp_lit(c, op, *v),
                // literal op column: mirror.
                (Operand::Literal(v), Operand::Column(c)) => cmp_lit(c, op.mirrored(), *v),
                // column op column: only equality (a join handle).
                (Operand::Column(a), Operand::Column(b)) => {
                    if op == CmpOp::Eq {
                        Ok(Nnf::Lit(NormLit::Join {
                            left: a.clone(),
                            right: b.clone(),
                        }))
                    } else {
                        Err(SqlError::unsupported(
                            format!(
                                "column-to-column comparison {} — only equi-joins \
                                 follow the paper's join paths",
                                cmp_text(op)
                            ),
                            *span,
                        ))
                    }
                }
                // column op parameter: a bind-time range handle.
                (Operand::Column(c), Operand::Param { idx }) => cmp_param(c, op, *idx),
                // parameter op column: mirror.
                (Operand::Param { idx }, Operand::Column(c)) => cmp_param(c, op.mirrored(), *idx),
                // Parameters only compare against columns: a literal or
                // parameter on the other side has no cracking handle.
                (Operand::Param { .. }, _) | (_, Operand::Param { .. }) => {
                    Err(SqlError::unsupported(
                        "a parameter placeholder must be compared against a column",
                        *span,
                    ))
                }
            }
        }
    }
}

fn cmp_text(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Eq => "=",
        CmpOp::Ne => "<>",
        CmpOp::Ge => ">=",
        CmpOp::Gt => ">",
    }
}

/// A `column op literal` atom. `≠` splits into a two-range disjunction so
/// everything downstream is a pure range.
fn cmp_lit(col: &ColumnRef, op: CmpOp, v: i64) -> SqlResult<Nnf> {
    let pred = match op {
        CmpOp::Lt => RangePred::lt(v),
        CmpOp::Le => RangePred::le(v),
        CmpOp::Eq => RangePred::eq(v),
        CmpOp::Ge => RangePred::ge(v),
        CmpOp::Gt => RangePred::gt(v),
        CmpOp::Ne => {
            return Ok(Nnf::Or(vec![
                Nnf::Lit(NormLit::Range {
                    col: col.clone(),
                    pred: RangePred::lt(v),
                }),
                Nnf::Lit(NormLit::Range {
                    col: col.clone(),
                    pred: RangePred::gt(v),
                }),
            ]))
        }
    };
    Ok(Nnf::Lit(NormLit::Range {
        col: col.clone(),
        pred,
    }))
}

/// A `column op ?` atom. Like [`cmp_lit`], `≠` splits into a two-range
/// disjunction so bound terms stay pure ranges.
fn cmp_param(col: &ColumnRef, op: CmpOp, param: usize) -> SqlResult<Nnf> {
    if op == CmpOp::Ne {
        return Ok(Nnf::Or(vec![
            Nnf::Lit(NormLit::ParamRange {
                col: col.clone(),
                op: CmpOp::Lt,
                param,
            }),
            Nnf::Lit(NormLit::ParamRange {
                col: col.clone(),
                op: CmpOp::Gt,
                param,
            }),
        ]));
    }
    Ok(Nnf::Lit(NormLit::ParamRange {
        col: col.clone(),
        op,
        param,
    }))
}

/// Distribute AND over OR, producing the DNF term list.
fn distribute(nnf: &Nnf) -> SqlResult<Vec<Vec<NormLit>>> {
    match nnf {
        Nnf::Lit(l) => Ok(vec![vec![l.clone()]]),
        Nnf::Or(children) => {
            let mut out = Vec::new();
            for c in children {
                out.extend(distribute(c)?);
                if out.len() > MAX_DNF_TERMS {
                    return Err(SqlError::DnfExplosion {
                        terms: out.len(),
                        cap: MAX_DNF_TERMS,
                    });
                }
            }
            Ok(out)
        }
        Nnf::And(children) => {
            let mut acc: Vec<Vec<NormLit>> = vec![Vec::new()];
            for c in children {
                let terms = distribute(c)?;
                let mut next = Vec::with_capacity(acc.len() * terms.len());
                for a in &acc {
                    for t in &terms {
                        let mut merged = a.clone();
                        merged.extend(t.iter().cloned());
                        next.push(merged);
                        if next.len() > MAX_DNF_TERMS {
                            return Err(SqlError::DnfExplosion {
                                terms: next.len(),
                                cap: MAX_DNF_TERMS,
                            });
                        }
                    }
                }
                acc = next;
            }
            Ok(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse_one;

    /// Parse a WHERE clause and normalize it.
    fn dnf(where_clause: &str) -> SqlResult<Vec<Vec<NormLit>>> {
        let sql = format!("select * from r, s where {where_clause}");
        match parse_one(&sql).unwrap() {
            Statement::Select(s) => to_dnf(&s.filter.unwrap()),
            other => panic!("{other:?}"),
        }
    }

    /// Evaluate a DNF against a single-column binding (tests use column
    /// `a` only).
    fn eval_a(terms: &[Vec<NormLit>], v: i64) -> bool {
        terms.iter().any(|t| {
            t.iter().all(|l| match l {
                NormLit::Range { pred, .. } => pred.matches(v),
                NormLit::Const(b) => *b,
                NormLit::Join { .. } => panic!("no joins in this test"),
                NormLit::ParamRange { .. } => panic!("no parameters in this test"),
            })
        })
    }

    #[test]
    fn a_plain_conjunction_is_one_term() {
        let terms = dnf("a >= 3 and a < 9").unwrap();
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].len(), 2);
    }

    #[test]
    fn or_produces_two_terms() {
        let terms = dnf("a < 3 or a > 9").unwrap();
        assert_eq!(terms.len(), 2);
    }

    #[test]
    fn and_distributes_over_or() {
        // (a<1 OR a>9) AND (a<2 OR a>8) → 4 terms.
        let terms = dnf("(a < 1 or a > 9) and (a < 2 or a > 8)").unwrap();
        assert_eq!(terms.len(), 4);
    }

    #[test]
    fn not_pushes_into_comparisons() {
        let terms = dnf("not a < 5").unwrap();
        assert_eq!(terms.len(), 1);
        match &terms[0][0] {
            NormLit::Range { col, pred } => {
                assert_eq!(col.column, "a");
                assert_eq!(*pred, RangePred::ge(5));
            }
            other => panic!("{other:?}"),
        }
    }

    /// Strip spans so structurally equal DNFs from different source texts
    /// compare equal.
    fn shape(terms: &[Vec<NormLit>]) -> Vec<Vec<(String, RangePred<i64>)>> {
        terms
            .iter()
            .map(|t| {
                t.iter()
                    .map(|l| match l {
                        NormLit::Range { col, pred } => (col.column.clone(), *pred),
                        other => panic!("range literals only, got {other:?}"),
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn double_negation_cancels() {
        let a = dnf("not not a < 5").unwrap();
        let b = dnf("a < 5").unwrap();
        assert_eq!(shape(&a), shape(&b));
    }

    #[test]
    fn de_morgan_on_conjunctions() {
        // NOT(a<3 AND a>1) = a>=3 OR a<=1.
        let terms = dnf("not (a < 3 and a > 1)").unwrap();
        assert_eq!(terms.len(), 2);
        for v in -5..10 {
            assert_eq!(eval_a(&terms, v), !(v < 3 && v > 1), "v={v}");
        }
    }

    #[test]
    fn ne_splits_into_two_ranges() {
        let terms = dnf("a <> 5").unwrap();
        assert_eq!(terms.len(), 2);
        for v in 0..10 {
            assert_eq!(eval_a(&terms, v), v != 5);
        }
    }

    #[test]
    fn not_ne_is_eq() {
        let terms = dnf("not a <> 5").unwrap();
        assert_eq!(terms.len(), 1);
        for v in 0..10 {
            assert_eq!(eval_a(&terms, v), v == 5);
        }
    }

    #[test]
    fn between_and_its_negation() {
        let terms = dnf("a between 3 and 7").unwrap();
        assert_eq!(terms.len(), 1);
        let neg = dnf("a not between 3 and 7").unwrap();
        assert_eq!(neg.len(), 2);
        let notnot = dnf("not (a not between 3 and 7)").unwrap();
        for v in 0..10 {
            assert_eq!(eval_a(&terms, v), (3..=7).contains(&v));
            assert_eq!(eval_a(&neg, v), !(3..=7).contains(&v));
            assert_eq!(eval_a(&notnot, v), (3..=7).contains(&v));
        }
    }

    #[test]
    fn constant_comparisons_fold() {
        // Always-true conjunct disappears.
        let terms = dnf("a < 5 and 1 < 2").unwrap();
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].len(), 1);
        // Always-false conjunct kills its term.
        let terms = dnf("a < 5 and 2 < 1").unwrap();
        assert!(terms.is_empty(), "unsatisfiable clause has no terms");
        // A lone tautology yields one empty (always-true) term.
        let terms = dnf("1 < 2").unwrap();
        assert_eq!(terms, vec![vec![]]);
    }

    #[test]
    fn literal_on_left_mirrors() {
        let a = dnf("5 < a").unwrap();
        let b = dnf("a > 5").unwrap();
        // Same predicate, possibly different spans; compare the preds.
        match (&a[0][0], &b[0][0]) {
            (NormLit::Range { pred: pa, .. }, NormLit::Range { pred: pb, .. }) => {
                assert_eq!(pa, pb)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equi_join_becomes_a_join_literal() {
        let terms = dnf("r.k = s.k and r.a < 5").unwrap();
        assert_eq!(terms.len(), 1);
        assert!(terms[0].iter().any(|l| matches!(l, NormLit::Join { .. })));
    }

    #[test]
    fn non_equi_column_comparison_is_unsupported() {
        let err = dnf("r.k < s.k").unwrap_err();
        assert!(matches!(err, SqlError::Unsupported { .. }));
        // ... and so is a negated equi-join (it normalizes to ≠).
        let err = dnf("not r.k = s.k").unwrap_err();
        assert!(matches!(err, SqlError::Unsupported { .. }));
    }

    #[test]
    fn parameters_normalize_like_literals() {
        // `? <= a` mirrors to `a >= ?`; NOT flips the operator.
        let terms = dnf("not ? <= a").unwrap();
        assert_eq!(terms.len(), 1);
        match &terms[0][0] {
            NormLit::ParamRange { col, op, param } => {
                assert_eq!(col.column, "a");
                assert_eq!(*op, CmpOp::Lt);
                assert_eq!(*param, 0);
            }
            other => panic!("{other:?}"),
        }
        // `a <> ?` splits into two parameter ranges, like `a <> 5` does.
        let terms = dnf("a <> ?").unwrap();
        assert_eq!(terms.len(), 2);
        assert!(terms.iter().flatten().all(|l| matches!(
            l,
            NormLit::ParamRange {
                op: CmpOp::Lt | CmpOp::Gt,
                ..
            }
        )));
        // `NOT a <> ?` folds back to equality.
        let terms = dnf("not a <> ?").unwrap();
        assert_eq!(terms.len(), 1);
        assert!(matches!(
            &terms[0][0],
            NormLit::ParamRange { op: CmpOp::Eq, .. }
        ));
    }

    #[test]
    fn parameters_against_non_columns_are_unsupported() {
        for clause in ["? < 5", "5 < ?", "? = ?"] {
            let err = dnf(clause).unwrap_err();
            assert!(matches!(err, SqlError::Unsupported { .. }), "{clause}");
        }
    }

    #[test]
    fn term_explosion_is_capped() {
        // Each conjunct doubles the term count: 2^7 = 128 > 64.
        let clause = (0..7)
            .map(|i| format!("(a < {i} or a > {})", 100 - i))
            .collect::<Vec<_>>()
            .join(" and ");
        let err = dnf(&clause).unwrap_err();
        assert!(matches!(err, SqlError::DnfExplosion { .. }));
    }

    proptest::proptest! {
        /// DNF must preserve the truth table of the original expression.
        #[test]
        fn prop_dnf_is_equivalence_preserving(
            ops in proptest::collection::vec((0u8..6, -10i64..10), 1..5),
            connectives in proptest::collection::vec(0u8..3, 0..4),
            probe in -12i64..12,
        ) {
            // Build a random clause over column `a`.
            let mut clause = String::new();
            for (i, (op, v)) in ops.iter().enumerate() {
                if i > 0 {
                    let c = connectives.get(i - 1).copied().unwrap_or(0);
                    clause.push_str(match c { 0 => " and ", 1 => " or ", _ => " and not " });
                }
                let sym = match op { 0 => "<", 1 => "<=", 2 => "=", 3 => "<>", 4 => ">=", _ => ">" };
                clause.push_str(&format!("a {sym} {v}"));
            }
            let sql = format!("select * from r where {clause}");
            let stmt = parse_one(&sql).unwrap();
            let expr = match stmt {
                Statement::Select(s) => s.filter.unwrap(),
                _ => unreachable!(),
            };
            let terms = to_dnf(&expr).unwrap();
            proptest::prop_assert_eq!(eval_a(&terms, probe), eval_expr(&expr, probe));
        }
    }

    /// Reference evaluator over the raw AST.
    fn eval_expr(e: &Expr, v: i64) -> bool {
        match e {
            Expr::And(l, r) => eval_expr(l, v) && eval_expr(r, v),
            Expr::Or(l, r) => eval_expr(l, v) || eval_expr(r, v),
            Expr::Not(i) => !eval_expr(i, v),
            Expr::Between {
                low, high, negated, ..
            } => (*low..=*high).contains(&v) != *negated,
            Expr::Cmp {
                left, op, right, ..
            } => {
                let l = match left {
                    Operand::Literal(x) => *x,
                    Operand::Column(_) => v,
                    Operand::Param { .. } => unreachable!("no parameters generated"),
                };
                let r = match right {
                    Operand::Literal(x) => *x,
                    Operand::Column(_) => v,
                    Operand::Param { .. } => unreachable!("no parameters generated"),
                };
                op.eval(l, r)
            }
        }
    }
}
