//! Tokenizer for the SQL fragment of §3.1.
//!
//! The fragment is deliberately small — the paper normalizes every query to
//! `π γ σ (R1 ⋈ ... ⋈ Rm)` with simple range predicates — so the lexer
//! covers the statements the benchmark kit and the experiments issue:
//! `SELECT`, `INSERT INTO ... SELECT` (the materialization of Figure 1a),
//! `INSERT ... VALUES`, `CREATE TABLE`, and `DROP TABLE`.
//!
//! Unquoted identifiers fold to lowercase, as in the SQL standard; keywords
//! are case-insensitive. `--` starts a comment running to end of line.

use crate::error::{Span, SqlError, SqlResult};
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // Keywords.
    /// `SELECT`
    Select,
    /// `FROM`
    From,
    /// `WHERE`
    Where,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT`
    Not,
    /// `BETWEEN`
    Between,
    /// `GROUP`
    Group,
    /// `BY`
    By,
    /// `ORDER`
    Order,
    /// `LIMIT`
    Limit,
    /// `INSERT`
    Insert,
    /// `INTO`
    Into,
    /// `VALUES`
    Values,
    /// `CREATE`
    Create,
    /// `TABLE`
    Table,
    /// `DROP`
    Drop,
    /// `DELETE`
    Delete,
    /// `INTEGER` / `INT`
    Integer,
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `AS`
    As,
    // Values.
    /// An identifier, folded to lowercase.
    Ident(String),
    /// An integer literal (unsigned here; the parser applies unary minus).
    Int(i64),
    // Punctuation and operators.
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `-` (unary minus on literals)
    Minus,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `?` — a positional parameter placeholder (prepared statements).
    Param,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier {s:?}"),
            Tok::Int(v) => write!(f, "integer {v}"),
            other => {
                let s = match other {
                    Tok::Select => "SELECT",
                    Tok::From => "FROM",
                    Tok::Where => "WHERE",
                    Tok::And => "AND",
                    Tok::Or => "OR",
                    Tok::Not => "NOT",
                    Tok::Between => "BETWEEN",
                    Tok::Group => "GROUP",
                    Tok::By => "BY",
                    Tok::Order => "ORDER",
                    Tok::Limit => "LIMIT",
                    Tok::Insert => "INSERT",
                    Tok::Into => "INTO",
                    Tok::Values => "VALUES",
                    Tok::Create => "CREATE",
                    Tok::Table => "TABLE",
                    Tok::Drop => "DROP",
                    Tok::Delete => "DELETE",
                    Tok::Integer => "INTEGER",
                    Tok::Count => "COUNT",
                    Tok::Sum => "SUM",
                    Tok::Min => "MIN",
                    Tok::Max => "MAX",
                    Tok::As => "AS",
                    Tok::Star => "*",
                    Tok::Comma => ",",
                    Tok::Dot => ".",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::Semi => ";",
                    Tok::Minus => "-",
                    Tok::Eq => "=",
                    Tok::Ne => "<>",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::Param => "?",
                    Tok::Ident(_) | Tok::Int(_) => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind (and value, for identifiers and literals).
    pub tok: Tok,
    /// Source location.
    pub span: Span,
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "select" => Tok::Select,
        "from" => Tok::From,
        "where" => Tok::Where,
        "and" => Tok::And,
        "or" => Tok::Or,
        "not" => Tok::Not,
        "between" => Tok::Between,
        "group" => Tok::Group,
        "by" => Tok::By,
        "order" => Tok::Order,
        "limit" => Tok::Limit,
        "insert" => Tok::Insert,
        "into" => Tok::Into,
        "values" => Tok::Values,
        "create" => Tok::Create,
        "table" => Tok::Table,
        "drop" => Tok::Drop,
        "delete" => Tok::Delete,
        "integer" | "int" => Tok::Integer,
        "count" => Tok::Count,
        "sum" => Tok::Sum,
        "min" => Tok::Min,
        "max" => Tok::Max,
        "as" => Tok::As,
        _ => return None,
    })
}

/// Tokenize a complete source text.
pub fn lex(src: &str) -> SqlResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        // Whitespace.
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // `--` comment to end of line.
        if b == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifier or keyword.
        if b.is_ascii_alphabetic() || b == b'_' {
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = src[start..i].to_ascii_lowercase();
            let span = Span::new(start, i);
            let tok = keyword(&word).unwrap_or(Tok::Ident(word));
            out.push(Token { tok, span });
            continue;
        }
        // Integer literal.
        if b.is_ascii_digit() {
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let span = Span::new(start, i);
            let text = &src[start..i];
            let v: i64 = text.parse().map_err(|_| {
                SqlError::syntax(format!("integer literal {text} overflows i64"), span)
            })?;
            out.push(Token {
                tok: Tok::Int(v),
                span,
            });
            continue;
        }
        // Operators and punctuation.
        let two = |a: u8| bytes.get(i + 1) == Some(&a);
        let (tok, len) = match b {
            b'*' => (Tok::Star, 1),
            b',' => (Tok::Comma, 1),
            b'.' => (Tok::Dot, 1),
            b'(' => (Tok::LParen, 1),
            b')' => (Tok::RParen, 1),
            b';' => (Tok::Semi, 1),
            b'-' => (Tok::Minus, 1),
            b'?' => (Tok::Param, 1),
            b'=' => (Tok::Eq, 1),
            b'<' if two(b'=') => (Tok::Le, 2),
            b'<' if two(b'>') => (Tok::Ne, 2),
            b'<' => (Tok::Lt, 1),
            b'>' if two(b'=') => (Tok::Ge, 2),
            b'>' => (Tok::Gt, 1),
            b'!' if two(b'=') => (Tok::Ne, 2),
            _ => {
                return Err(SqlError::syntax(
                    format!(
                        "unexpected character {:?}",
                        src[start..]
                            .chars()
                            .next()
                            .unwrap_or(char::REPLACEMENT_CHARACTER)
                    ),
                    Span::new(start, start + 1),
                ))
            }
        };
        out.push(Token {
            tok,
            span: Span::new(start, start + len),
        });
        i += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("SELECT select SeLeCt"),
            vec![Tok::Select, Tok::Select, Tok::Select]
        );
    }

    #[test]
    fn identifiers_fold_to_lowercase() {
        assert_eq!(
            kinds("MyTable my_col2"),
            vec![Tok::Ident("mytable".into()), Tok::Ident("my_col2".into())]
        );
    }

    #[test]
    fn the_papers_example_query_lexes() {
        let toks = kinds("select * from R where R.a <10 and R.a >= 5;");
        assert_eq!(
            toks,
            vec![
                Tok::Select,
                Tok::Star,
                Tok::From,
                Tok::Ident("r".into()),
                Tok::Where,
                Tok::Ident("r".into()),
                Tok::Dot,
                Tok::Ident("a".into()),
                Tok::Lt,
                Tok::Int(10),
                Tok::And,
                Tok::Ident("r".into()),
                Tok::Dot,
                Tok::Ident("a".into()),
                Tok::Ge,
                Tok::Int(5),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("<= >= <> != < > ="),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::Ne,
                Tok::Ne,
                Tok::Lt,
                Tok::Gt,
                Tok::Eq
            ]
        );
    }

    #[test]
    fn parameter_placeholders_lex() {
        assert_eq!(
            kinds("a >= ? and a < ?"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ge,
                Tok::Param,
                Tok::And,
                Tok::Ident("a".into()),
                Tok::Lt,
                Tok::Param,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("select -- the projection\n *"),
            vec![Tok::Select, Tok::Star]
        );
        // A comment at end of input without trailing newline.
        assert_eq!(kinds("select --tail"), vec![Tok::Select]);
    }

    #[test]
    fn minus_is_its_own_token_but_double_minus_is_comment() {
        assert_eq!(kinds("- 5"), vec![Tok::Minus, Tok::Int(5)]);
        assert_eq!(kinds("--5"), vec![]);
    }

    #[test]
    fn spans_cover_the_source_fragments() {
        let src = "select count(*)";
        let toks = lex(src).unwrap();
        assert_eq!(toks[0].span.fragment(src), "select");
        assert_eq!(toks[1].span.fragment(src), "count");
        assert_eq!(toks[2].span.fragment(src), "(");
        assert_eq!(toks[3].span.fragment(src), "*");
    }

    #[test]
    fn overflowing_literal_is_an_error() {
        let err = lex("select 99999999999999999999").unwrap_err();
        assert!(matches!(err, SqlError::Syntax { .. }));
        assert!(err.to_string().contains("overflows"));
    }

    #[test]
    fn unexpected_character_is_an_error_with_span() {
        let err = lex("select @").unwrap_err();
        assert_eq!(err.span(), Some(Span::new(7, 8)));
    }

    #[test]
    fn int_and_integer_are_the_same_keyword() {
        assert_eq!(kinds("int integer"), vec![Tok::Integer, Tok::Integer]);
    }

    #[test]
    fn empty_and_whitespace_only_inputs() {
        assert_eq!(kinds(""), vec![]);
        assert_eq!(kinds("  \n\t "), vec![]);
    }
}
