//! Lowering: resolved, normalized statements → the engine's query terms.
//!
//! This stage sits exactly where the paper puts the cracker component —
//! "between the semantic analyzer and the query optimizer" (§3). It
//! resolves column references against the catalog, intersects the range
//! literals of each DNF term into one tight [`RangePred`] per column (the
//! Ξ handles), turns column-equality literals into join steps (the ^
//! handles), and carries the grouping (the Ω handle) and projection (the
//! Ψ handle) through to [`engine::query::QueryTerm`].

use crate::ast::{CmpOp, ColumnRef, Expr, Operand, ProjItem, Projection, SelectStmt};
use crate::dnf::{to_dnf, NormLit};
use crate::error::{Span, SqlError, SqlResult};
use cracker_core::pred::Bound;
use cracker_core::RangePred;
use engine::query::{AggFunc, JoinStep, QueryTerm, RangeQuery};
use engine::DbCatalog;
use std::collections::BTreeMap;

/// Schema information the resolver needs. Implemented for
/// [`engine::DbCatalog`]; tests implement it over plain maps.
pub trait SchemaProvider {
    /// Does a table with this name exist?
    fn has_table(&self, table: &str) -> bool;
    /// Does `table` have a column `column`?
    fn has_column(&self, table: &str, column: &str) -> bool;
}

impl SchemaProvider for DbCatalog {
    fn has_table(&self, table: &str) -> bool {
        self.table(table).is_ok()
    }

    fn has_column(&self, table: &str, column: &str) -> bool {
        self.table(table)
            .map(|t| t.schema().position(column).is_some())
            .unwrap_or(false)
    }
}

/// A fully resolved column: `(table, column)`.
pub type Resolved = (String, String);

/// The lowered form of one SELECT: everything the executor needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredSelect {
    /// One [`QueryTerm`] per DNF term. Empty means the WHERE clause is
    /// unsatisfiable (the answer is empty without touching the store).
    pub terms: Vec<QueryTerm>,
    /// Resolved projection: output labels plus, for plain columns, the
    /// resolved source.
    pub outputs: Vec<OutputCol>,
    /// Resolved GROUP BY column, if any.
    pub group_by: Option<Resolved>,
    /// FROM tables in source order.
    pub tables: Vec<String>,
    /// Unbound parameter slots: where each `?` placeholder lands once a
    /// value is supplied. Empty after [`LoweredSelect::bind`].
    pub slots: Vec<ParamSlot>,
    /// Number of `?` placeholders the source statement contains. Counted
    /// from the raw WHERE clause, so it stays authoritative even when
    /// constant folding drops the DNF term a placeholder appeared in.
    pub param_count: usize,
}

/// One unbound `?` placeholder of a lowered SELECT: which term and column
/// it constrains, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSlot {
    /// Index into [`LoweredSelect::terms`].
    pub term: usize,
    /// The constrained column.
    pub target: Resolved,
    /// Comparison operator (column on the left; never [`CmpOp::Ne`] —
    /// normalization splits `≠` into two slots).
    pub op: CmpOp,
    /// Zero-based parameter index into the bound value list.
    pub param: usize,
}

/// The concrete range a comparison operator binds to at value `v`.
fn pred_for(op: CmpOp, v: i64) -> RangePred<i64> {
    match op {
        CmpOp::Lt => RangePred::lt(v),
        CmpOp::Le => RangePred::le(v),
        CmpOp::Eq => RangePred::eq(v),
        CmpOp::Ge => RangePred::ge(v),
        CmpOp::Gt => RangePred::gt(v),
        CmpOp::Ne => unreachable!("normalization splits ≠ into < and >"),
    }
}

/// Count the `?` placeholders of a WHERE clause (max index + 1).
fn count_params(expr: &Expr) -> usize {
    fn walk(e: &Expr, max: &mut Option<usize>) {
        match e {
            Expr::And(l, r) | Expr::Or(l, r) => {
                walk(l, max);
                walk(r, max);
            }
            Expr::Not(i) => walk(i, max),
            Expr::Between { .. } => {}
            Expr::Cmp { left, right, .. } => {
                for o in [left, right] {
                    if let Operand::Param { idx } = o {
                        *max = Some(max.map_or(*idx, |m| m.max(*idx)));
                    }
                }
            }
        }
    }
    let mut max = None;
    walk(expr, &mut max);
    max.map_or(0, |m| m + 1)
}

impl LoweredSelect {
    /// Bind parameter values, producing a fully concrete plan: each slot's
    /// comparison is intersected into its term's selection predicate (the
    /// same per-column folding literal conjuncts get). The receiver is the
    /// reusable prepared form — parse, normalize and resolve once, bind
    /// and execute many times.
    pub fn bind(&self, params: &[i64]) -> SqlResult<LoweredSelect> {
        self.check_param_count(params)?;
        let mut bound = self.clone();
        for slot in &self.slots {
            let pred = pred_for(slot.op, params[slot.param]);
            let sel = bound.terms[slot.term]
                .selections
                .iter_mut()
                .find(|s| s.table == slot.target.0 && s.attr == slot.target.1)
                // lint: allow(unwrap) — bind() seeded one selection per slot
                .expect("lowering seeds a selection for every parameter slot");
            sel.pred = intersect(sel.pred, pred);
        }
        bound.slots.clear();
        bound.param_count = 0;
        Ok(bound)
    }

    /// [`bind`](Self::bind) specialized for the prepared-batch shape (one
    /// term, one selection): returns just the bound predicate of
    /// `terms[0].selections[0]`, skipping the per-binding plan clone a
    /// full `bind` pays. Callers must have checked the shape; indexing
    /// panics otherwise.
    pub(crate) fn bind_single_pred(&self, params: &[i64]) -> SqlResult<RangePred<i64>> {
        self.check_param_count(params)?;
        let mut pred = self.terms[0].selections[0].pred;
        for slot in &self.slots {
            pred = intersect(pred, pred_for(slot.op, params[slot.param]));
        }
        Ok(pred)
    }

    fn check_param_count(&self, params: &[i64]) -> SqlResult<()> {
        if params.len() != self.param_count {
            return Err(SqlError::semantic(
                format!(
                    "statement takes {} parameter(s) but {} value(s) were bound",
                    self.param_count,
                    params.len()
                ),
                Span::default(),
            ));
        }
        Ok(())
    }
}

/// One output column of a lowered SELECT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputCol {
    /// A stored column.
    Column {
        /// Output label.
        label: String,
        /// Resolved source.
        source: Resolved,
    },
    /// An aggregate over the (grouped or whole) selection.
    Aggregate {
        /// Output label.
        label: String,
        /// Aggregate function.
        func: AggFunc,
        /// Resolved argument; `None` for `COUNT(*)`.
        arg: Option<Resolved>,
    },
}

impl OutputCol {
    /// The output label.
    pub fn label(&self) -> &str {
        match self {
            OutputCol::Column { label, .. } | OutputCol::Aggregate { label, .. } => label,
        }
    }
}

/// Resolve a column reference against the FROM tables.
fn resolve(
    col: &ColumnRef,
    tables: &[(String, Span)],
    schema: &dyn SchemaProvider,
) -> SqlResult<Resolved> {
    if let Some(t) = &col.table {
        if !tables.iter().any(|(n, _)| n == t) {
            return Err(SqlError::semantic(
                format!("table {t:?} is not in the FROM clause"),
                col.span,
            ));
        }
        if !schema.has_column(t, &col.column) {
            return Err(SqlError::semantic(
                format!("table {t:?} has no column {:?}", col.column),
                col.span,
            ));
        }
        return Ok((t.clone(), col.column.clone()));
    }
    let mut owners = tables
        .iter()
        .filter(|(n, _)| schema.has_column(n, &col.column))
        .map(|(n, _)| n.clone());
    match (owners.next(), owners.next()) {
        (Some(t), None) => Ok((t, col.column.clone())),
        (Some(a), Some(b)) => Err(SqlError::semantic(
            format!(
                "column {:?} is ambiguous: it exists in both {a:?} and {b:?}",
                col.column
            ),
            col.span,
        )),
        (None, _) => Err(SqlError::semantic(
            format!("no FROM table has a column {:?}", col.column),
            col.span,
        )),
    }
}

/// Intersect two range predicates over the same column into the tightest
/// combined range (`a AND b`).
pub fn intersect(a: RangePred<i64>, b: RangePred<i64>) -> RangePred<i64> {
    fn tighter_low(x: Option<Bound<i64>>, y: Option<Bound<i64>>) -> Option<Bound<i64>> {
        match (x, y) {
            (None, b) => b,
            (a, None) => a,
            (Some(a), Some(b)) => Some(if a.value > b.value {
                a
            } else if b.value > a.value {
                b
            } else {
                // Same value: exclusive is tighter for a lower bound.
                Bound {
                    value: a.value,
                    inclusive: a.inclusive && b.inclusive,
                }
            }),
        }
    }
    fn tighter_high(x: Option<Bound<i64>>, y: Option<Bound<i64>>) -> Option<Bound<i64>> {
        match (x, y) {
            (None, b) => b,
            (a, None) => a,
            (Some(a), Some(b)) => Some(if a.value < b.value {
                a
            } else if b.value < a.value {
                b
            } else {
                Bound {
                    value: a.value,
                    inclusive: a.inclusive && b.inclusive,
                }
            }),
        }
    }
    RangePred {
        low: tighter_low(a.low, b.low),
        high: tighter_high(a.high, b.high),
    }
}

/// Lower a parsed SELECT against a schema.
pub fn lower_select(stmt: &SelectStmt, schema: &dyn SchemaProvider) -> SqlResult<LoweredSelect> {
    // FROM tables must exist.
    for (name, span) in &stmt.tables {
        if !schema.has_table(name) {
            return Err(SqlError::semantic(format!("unknown table {name:?}"), *span));
        }
    }

    // GROUP BY: the engine's Ω cracker groups on one attribute.
    let group_by = match stmt.group_by.len() {
        0 => None,
        1 => Some(resolve(&stmt.group_by[0], &stmt.tables, schema)?),
        n => {
            return Err(SqlError::unsupported(
                format!("GROUP BY over {n} columns (the Ω cracker groups on one)"),
                stmt.group_by[1].span,
            ))
        }
    };

    // Projection.
    let outputs = lower_projection(stmt, schema, group_by.as_ref())?;

    // WHERE → DNF → one QueryTerm per DNF term.
    let dnf_terms = match &stmt.filter {
        None => vec![Vec::new()], // one always-true term
        Some(expr) => to_dnf(expr)?,
    };
    let mut terms = Vec::with_capacity(dnf_terms.len());
    let mut slots = Vec::new();
    for (idx, lits) in dnf_terms.iter().enumerate() {
        terms.push(lower_term(
            stmt,
            schema,
            lits,
            group_by.as_ref(),
            &outputs,
            idx,
            &mut slots,
        )?);
    }

    Ok(LoweredSelect {
        terms,
        outputs,
        group_by,
        tables: stmt.tables.iter().map(|(n, _)| n.clone()).collect(),
        slots,
        param_count: stmt.filter.as_ref().map_or(0, count_params),
    })
}

fn lower_projection(
    stmt: &SelectStmt,
    schema: &dyn SchemaProvider,
    group_by: Option<&Resolved>,
) -> SqlResult<Vec<OutputCol>> {
    let items = match &stmt.projection {
        Projection::Star => {
            if group_by.is_some() {
                return Err(SqlError::semantic(
                    "SELECT * cannot be combined with GROUP BY",
                    stmt.tables[0].1,
                ));
            }
            return Ok(Vec::new()); // empty = "*", resolved by the executor
        }
        Projection::Items(items) => items,
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            ProjItem::Column(c) => {
                let source = resolve(c, &stmt.tables, schema)?;
                if let Some(g) = group_by {
                    if g != &source {
                        return Err(SqlError::semantic(
                            format!(
                                "column {:?} must appear in GROUP BY or inside an aggregate",
                                c.column
                            ),
                            c.span,
                        ));
                    }
                }
                out.push(OutputCol::Column {
                    label: item.label(),
                    source,
                });
            }
            ProjItem::Aggregate { func, arg, span } => {
                let arg = match arg {
                    Some(c) => Some(resolve(c, &stmt.tables, schema)?),
                    None => None,
                };
                if arg.is_none() && *func != AggFunc::Count {
                    return Err(SqlError::syntax("only COUNT accepts *", *span));
                }
                out.push(OutputCol::Aggregate {
                    label: item.label(),
                    func: *func,
                    arg,
                });
            }
        }
    }
    Ok(out)
}

fn lower_term(
    stmt: &SelectStmt,
    schema: &dyn SchemaProvider,
    lits: &[NormLit],
    group_by: Option<&Resolved>,
    outputs: &[OutputCol],
    term_idx: usize,
    slots: &mut Vec<ParamSlot>,
) -> SqlResult<QueryTerm> {
    // Fold range literals into one predicate per resolved column.
    let mut ranges: BTreeMap<Resolved, RangePred<i64>> = BTreeMap::new();
    let mut joins = Vec::new();
    for lit in lits {
        match lit {
            NormLit::Range { col, pred } => {
                let key = resolve(col, &stmt.tables, schema)?;
                let entry = ranges
                    .entry(key)
                    .or_insert(RangePred::with_bounds(None, None));
                *entry = intersect(*entry, *pred);
            }
            NormLit::ParamRange { col, op, param } => {
                // Seed an unbounded selection for the column so bind()
                // has a predicate to tighten, and record the slot.
                let key = resolve(col, &stmt.tables, schema)?;
                ranges
                    .entry(key.clone())
                    .or_insert(RangePred::with_bounds(None, None));
                slots.push(ParamSlot {
                    term: term_idx,
                    target: key,
                    op: *op,
                    param: *param,
                });
            }
            NormLit::Join { left, right } => {
                let l = resolve(left, &stmt.tables, schema)?;
                let r = resolve(right, &stmt.tables, schema)?;
                if l.0 == r.0 {
                    return Err(SqlError::unsupported(
                        format!(
                            "intra-table equality {}.{} = {}.{} is not a range predicate",
                            l.0, l.1, r.0, r.1
                        ),
                        left.span.merge(right.span),
                    ));
                }
                joins.push(JoinStep {
                    left: l.0,
                    left_attr: l.1,
                    right: r.0,
                    right_attr: r.1,
                });
            }
            NormLit::Const(_) => unreachable!("to_dnf folds constants"),
        }
    }

    // Every FROM table beyond the first must be reachable through a join
    // step — the paper assumes "the (natural-) join sequence is a
    // join-path through the database schema" (§3.1).
    if stmt.tables.len() > 1 {
        let mut reached: Vec<&str> = vec![&stmt.tables[0].0];
        let mut progress = true;
        while progress {
            progress = false;
            for j in &joins {
                let l_in = reached.contains(&j.left.as_str());
                let r_in = reached.contains(&j.right.as_str());
                if l_in != r_in {
                    reached.push(if l_in { &j.right } else { &j.left });
                    progress = true;
                }
            }
        }
        if let Some((orphan, span)) = stmt
            .tables
            .iter()
            .find(|(n, _)| !reached.contains(&n.as_str()))
        {
            return Err(SqlError::unsupported(
                format!(
                    "table {orphan:?} is not connected by a join path \
                     (cartesian products are not supported)"
                ),
                *span,
            ));
        }
    }

    let selections = ranges
        .into_iter()
        .map(|((table, attr), pred)| RangeQuery::new(table, attr, pred))
        .collect();

    let projection = outputs
        .iter()
        .filter_map(|o| match o {
            OutputCol::Column { source, .. } => Some(source.1.clone()),
            OutputCol::Aggregate { .. } => None,
        })
        .collect();

    let term_group = group_by.map(|(_, col)| {
        // Pair the grouping with the first aggregate output (the engine's
        // group shape); the executor computes the rest itself.
        let agg = outputs.iter().find_map(|o| match o {
            OutputCol::Aggregate { func, arg, .. } => {
                Some((*func, arg.as_ref().map(|(_, c)| c.clone())))
            }
            OutputCol::Column { .. } => None,
        });
        let (func, agg_col) = agg.unwrap_or((AggFunc::Count, None));
        (col.clone(), func, agg_col)
    });

    Ok(QueryTerm {
        projection,
        group_by: term_group,
        selections,
        joins,
        tables: stmt.tables.iter().map(|(n, _)| n.clone()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse_one;
    use std::collections::BTreeMap as Map;

    struct TestSchema(Map<&'static str, Vec<&'static str>>);

    impl SchemaProvider for TestSchema {
        fn has_table(&self, table: &str) -> bool {
            self.0.contains_key(table)
        }
        fn has_column(&self, table: &str, column: &str) -> bool {
            self.0.get(table).is_some_and(|cols| cols.contains(&column))
        }
    }

    fn schema() -> TestSchema {
        let mut m = Map::new();
        m.insert("r", vec!["k", "a", "b"]);
        m.insert("s", vec!["k", "b"]);
        TestSchema(m)
    }

    fn lower(sql: &str) -> SqlResult<LoweredSelect> {
        match parse_one(sql).unwrap() {
            Statement::Select(s) => lower_select(&s, &schema()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn single_table_conjunction_folds_to_one_pred_per_column() {
        let l = lower("select * from r where a >= 3 and a < 9 and k = 5").unwrap();
        assert_eq!(l.terms.len(), 1);
        let t = &l.terms[0];
        assert_eq!(t.selections.len(), 2, "a-bounds folded, k separate");
        let a_sel = t.selections.iter().find(|s| s.attr == "a").unwrap();
        assert_eq!(a_sel.pred, RangePred::half_open(3, 9));
        let k_sel = t.selections.iter().find(|s| s.attr == "k").unwrap();
        assert_eq!(k_sel.pred, RangePred::eq(5));
    }

    #[test]
    fn unqualified_columns_resolve_through_from_tables() {
        let l = lower("select a from r where b < 3 and r.k = 1").unwrap();
        let t = &l.terms[0];
        assert!(t.selections.iter().all(|s| s.table == "r"));
    }

    #[test]
    fn ambiguous_column_is_an_error() {
        // `b` exists in both r and s.
        let err = lower("select * from r, s where r.k = s.k and b < 3").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        assert!(lower("select * from zzz")
            .unwrap_err()
            .to_string()
            .contains("unknown table"));
        assert!(lower("select * from r where zzz < 3")
            .unwrap_err()
            .to_string()
            .contains("no FROM table"));
        assert!(lower("select * from r where s.k < 3")
            .unwrap_err()
            .to_string()
            .contains("not in the FROM clause"));
        assert!(lower("select * from r where r.zzz < 3")
            .unwrap_err()
            .to_string()
            .contains("no column"));
    }

    #[test]
    fn the_papers_join_query_lowers_to_a_join_step() {
        let l = lower("select * from r, s where r.k = s.k and r.a < 5").unwrap();
        let t = &l.terms[0];
        assert_eq!(t.joins.len(), 1);
        assert_eq!(t.joins[0].left, "r");
        assert_eq!(t.joins[0].right, "s");
        assert_eq!(t.selections.len(), 1);
        // 1 Ξ + 1 ^ opportunity.
        assert_eq!(t.cracker_opportunities(), 2);
    }

    #[test]
    fn disconnected_from_tables_are_rejected() {
        let err = lower("select * from r, s where r.a < 5").unwrap_err();
        assert!(err.to_string().contains("cartesian"));
    }

    #[test]
    fn or_produces_parallel_terms() {
        let l = lower("select * from r where a < 3 or a > 9").unwrap();
        assert_eq!(l.terms.len(), 2);
        assert!(l.terms.iter().all(|t| t.selections.len() == 1));
    }

    #[test]
    fn unsatisfiable_where_lowers_to_zero_terms() {
        let l = lower("select * from r where a < 3 and 1 > 2").unwrap();
        assert!(l.terms.is_empty());
    }

    #[test]
    fn contradictory_ranges_survive_lowering_as_empty_preds() {
        // a < 3 AND a > 9 folds to an empty range; the executor answers it
        // without touching the store.
        let l = lower("select * from r where a < 3 and a > 9").unwrap();
        assert_eq!(l.terms.len(), 1);
        assert!(l.terms[0].selections[0].pred.is_empty_range());
    }

    #[test]
    fn group_by_with_aggregates() {
        let l = lower("select k, count(*), sum(a) from r group by k").unwrap();
        assert_eq!(l.group_by, Some(("r".into(), "k".into())));
        assert_eq!(l.outputs.len(), 3);
        assert_eq!(l.outputs[1].label(), "count(*)");
        let t = &l.terms[0];
        assert_eq!(
            t.group_by,
            Some(("k".into(), AggFunc::Count, None)),
            "first aggregate rides on the term"
        );
    }

    #[test]
    fn group_by_rejects_ungrouped_columns_and_star() {
        let err = lower("select a from r group by k").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"));
        let err = lower("select * from r group by k").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"));
        let err = lower("select k from r group by k, a").unwrap_err();
        assert!(matches!(err, SqlError::Unsupported { .. }));
    }

    #[test]
    fn sum_star_is_rejected() {
        // Parses as SUM(col) only; SUM(*) is a syntax error at the parser,
        // confirm the guard in lowering too via COUNT-only rule.
        let err = crate::parser::parse("select sum(*) from r").unwrap_err();
        assert!(matches!(err, SqlError::Syntax { .. }));
    }

    #[test]
    fn intersect_picks_tightest_bounds() {
        let a = RangePred::ge(3);
        let b = RangePred::lt(9);
        assert_eq!(intersect(a, b), RangePred::half_open(3, 9));
        // Same value, mixed inclusivity: exclusive wins.
        let c = intersect(RangePred::ge(3), RangePred::gt(3));
        assert_eq!(c, RangePred::gt(3));
        let d = intersect(RangePred::le(9), RangePred::lt(9));
        assert_eq!(d, RangePred::lt(9));
        // Unbounded sides pass through.
        let e = intersect(RangePred::with_bounds(None, None), RangePred::eq(5));
        assert_eq!(e, RangePred::eq(5));
    }

    proptest::proptest! {
        /// intersect(a, b) must match exactly where both match.
        #[test]
        fn prop_intersection_is_logical_and(
            al in proptest::option::of((-20i64..20, proptest::bool::ANY)),
            ah in proptest::option::of((-20i64..20, proptest::bool::ANY)),
            bl in proptest::option::of((-20i64..20, proptest::bool::ANY)),
            bh in proptest::option::of((-20i64..20, proptest::bool::ANY)),
            probe in -25i64..25,
        ) {
            let a = RangePred::with_bounds(al, ah);
            let b = RangePred::with_bounds(bl, bh);
            let c = intersect(a, b);
            proptest::prop_assert_eq!(
                c.matches(probe),
                a.matches(probe) && b.matches(probe)
            );
        }
    }

    #[test]
    fn parameters_lower_to_slots_and_bind_to_tight_ranges() {
        let l = lower("select * from r where a >= ? and a < ?").unwrap();
        assert_eq!(l.param_count, 2);
        assert_eq!(l.slots.len(), 2);
        // Unbound: one seeded (unbounded) selection on `a`.
        assert_eq!(l.terms[0].selections.len(), 1);
        let bound = l.bind(&[3, 9]).unwrap();
        assert_eq!(bound.param_count, 0);
        assert!(bound.slots.is_empty());
        assert_eq!(
            bound.terms[0].selections[0].pred,
            RangePred::half_open(3, 9)
        );
        // The prepared form is reusable: a second bind starts fresh.
        let again = l.bind(&[5, 7]).unwrap();
        assert_eq!(
            again.terms[0].selections[0].pred,
            RangePred::half_open(5, 7)
        );
        // Arity is checked.
        assert!(l.bind(&[3]).is_err());
        assert!(l.bind(&[3, 9, 1]).is_err());
    }

    #[test]
    fn bind_single_pred_agrees_with_full_bind() {
        for (src, params) in [
            ("select * from r where a >= ? and a < ?", vec![3i64, 9]),
            ("select * from r where a >= 3 and a < ?", vec![9]),
            ("select * from r where a >= 3 and a < ?", vec![2]),
        ] {
            let l = lower(src).unwrap();
            let full = l.bind(&params).unwrap().terms[0].selections[0].pred;
            assert_eq!(l.bind_single_pred(&params).unwrap(), full, "{src}");
        }
        let l = lower("select * from r where a < ?").unwrap();
        assert!(l.bind_single_pred(&[]).is_err(), "arity is checked");
    }

    #[test]
    fn parameters_fold_with_literal_conjuncts() {
        let l = lower("select * from r where a >= 3 and a < ?").unwrap();
        let bound = l.bind(&[9]).unwrap();
        assert_eq!(
            bound.terms[0].selections[0].pred,
            RangePred::half_open(3, 9)
        );
        // Binding tighter than the literal keeps the tighter bound.
        let bound = l.bind(&[2]).unwrap();
        assert!(bound.terms[0].selections[0].pred.is_empty_range());
    }

    #[test]
    fn ne_parameter_binds_both_disjuncts() {
        let l = lower("select * from r where a <> ?").unwrap();
        assert_eq!(l.param_count, 1);
        assert_eq!(l.terms.len(), 2);
        let bound = l.bind(&[5]).unwrap();
        let preds: Vec<_> = bound.terms.iter().map(|t| t.selections[0].pred).collect();
        assert!(preds.contains(&RangePred::lt(5)));
        assert!(preds.contains(&RangePred::gt(5)));
    }

    #[test]
    fn param_count_survives_constant_folding() {
        // The `1 > 2` conjunct kills the whole term, dropping the slot —
        // but binding still demands the declared parameter.
        let l = lower("select * from r where a < ? and 1 > 2").unwrap();
        assert!(l.terms.is_empty());
        assert!(l.slots.is_empty());
        assert_eq!(l.param_count, 1);
        assert!(l.bind(&[]).is_err());
        assert!(l.bind(&[5]).unwrap().terms.is_empty());
    }

    #[test]
    fn projection_of_term_carries_column_names() {
        let l = lower("select a, k from r where a < 5").unwrap();
        assert_eq!(
            l.terms[0].projection,
            vec!["a".to_string(), "k".to_string()]
        );
        assert_eq!(l.outputs.len(), 2);
    }
}
