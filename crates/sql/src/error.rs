//! SQL front-end errors, with source spans.
//!
//! Every error produced while lexing, parsing, normalizing or lowering a
//! statement carries the byte span of the offending fragment, so the REPL
//! (and tests) can point at the exact place in the input.

use engine::EngineError;
use std::fmt;

/// Result alias for SQL front-end operations.
pub type SqlResult<T> = Result<T, SqlError>;

/// A half-open byte range into the SQL source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte of the fragment.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both inputs.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Slice the covered fragment out of the source text (clamped).
    pub fn fragment<'a>(&self, src: &'a str) -> &'a str {
        let start = self.start.min(src.len());
        let end = self.end.clamp(start, src.len());
        &src[start..end]
    }
}

/// Errors raised by the SQL front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The input could not be tokenized or parsed.
    Syntax {
        /// What went wrong.
        msg: String,
        /// Where in the input.
        span: Span,
    },
    /// The statement parsed but refers to something that does not exist or
    /// is ambiguous (unknown table/column, arity mismatch, ...).
    Semantic {
        /// What went wrong.
        msg: String,
        /// Where in the input.
        span: Span,
    },
    /// The statement is valid SQL but outside the fragment the cracker
    /// engine evaluates (§3.1 restricts predicates to simple ranges and
    /// join paths).
    Unsupported {
        /// What is not supported, and usually what to use instead.
        msg: String,
        /// Where in the input.
        span: Span,
    },
    /// Normalizing the WHERE clause to disjunctive normal form exceeded
    /// the term budget — the "explosion in the search space" the paper
    /// warns about (§1).
    DnfExplosion {
        /// Terms the expansion would have produced.
        terms: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The engine rejected the lowered query.
    Engine(EngineError),
}

impl SqlError {
    /// Shorthand for a syntax error.
    pub fn syntax(msg: impl Into<String>, span: Span) -> Self {
        SqlError::Syntax {
            msg: msg.into(),
            span,
        }
    }

    /// Shorthand for a semantic error.
    pub fn semantic(msg: impl Into<String>, span: Span) -> Self {
        SqlError::Semantic {
            msg: msg.into(),
            span,
        }
    }

    /// Shorthand for an unsupported-fragment error.
    pub fn unsupported(msg: impl Into<String>, span: Span) -> Self {
        SqlError::Unsupported {
            msg: msg.into(),
            span,
        }
    }

    /// The span of the offending fragment, if the error has one.
    pub fn span(&self) -> Option<Span> {
        match self {
            SqlError::Syntax { span, .. }
            | SqlError::Semantic { span, .. }
            | SqlError::Unsupported { span, .. } => Some(*span),
            SqlError::DnfExplosion { .. } | SqlError::Engine(_) => None,
        }
    }

    /// Render the error with a caret line pointing into `src` — the REPL's
    /// diagnostic format.
    ///
    /// ```text
    /// error: expected FROM
    ///   select * form r
    ///            ^^^^
    /// ```
    pub fn render(&self, src: &str) -> String {
        let mut out = format!("error: {self}");
        if let Some(span) = self.span() {
            // Find the line containing the span start.
            let line_start = src[..span.start.min(src.len())]
                .rfind('\n')
                .map_or(0, |p| p + 1);
            let line_end = src[line_start..]
                .find('\n')
                .map_or(src.len(), |p| line_start + p);
            let line = &src[line_start..line_end];
            let col = span.start.saturating_sub(line_start);
            let width = span.end.clamp(span.start + 1, line_end.max(span.start + 1)) - span.start;
            out.push_str("\n  ");
            out.push_str(line);
            out.push_str("\n  ");
            out.push_str(&" ".repeat(col));
            out.push_str(&"^".repeat(width.max(1)));
        }
        out
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Syntax { msg, .. } => write!(f, "syntax error: {msg}"),
            SqlError::Semantic { msg, .. } => write!(f, "{msg}"),
            SqlError::Unsupported { msg, .. } => write!(f, "unsupported: {msg}"),
            SqlError::DnfExplosion { terms, cap } => write!(
                f,
                "WHERE clause expands to {terms} DNF terms, over the cap of {cap}"
            ),
            SqlError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for SqlError {
    fn from(e: EngineError) -> Self {
        SqlError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_and_fragment() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(Span::new(6, 8).fragment("select *"), " *");
        // Out-of-range spans clamp instead of panicking.
        assert_eq!(Span::new(90, 95).fragment("short"), "");
    }

    #[test]
    fn render_points_at_the_fragment() {
        let src = "select * form r";
        let err = SqlError::syntax("expected FROM", Span::new(9, 13));
        let rendered = err.render(src);
        assert!(rendered.contains("error: syntax error: expected FROM"));
        assert!(rendered.contains("select * form r"));
        assert!(rendered
            .lines()
            .last()
            .unwrap()
            .trim_end()
            .ends_with("^^^^"));
    }

    #[test]
    fn render_handles_multiline_sources() {
        let src = "select *\nfrom r\nwhere x << 3";
        let err = SqlError::syntax("unexpected <", Span::new(24, 26));
        let rendered = err.render(src);
        assert!(rendered.contains("where x << 3"));
        assert!(!rendered.contains("select *\nfrom"));
    }

    #[test]
    fn engine_errors_convert_and_chain() {
        let e: SqlError = EngineError::UnknownTable("r".into()).into();
        assert!(matches!(e, SqlError::Engine(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.span().is_none());
    }

    #[test]
    fn display_messages() {
        assert_eq!(
            SqlError::DnfExplosion {
                terms: 128,
                cap: 64
            }
            .to_string(),
            "WHERE clause expands to 128 DNF terms, over the cap of 64"
        );
        assert_eq!(
            SqlError::unsupported("aliases", Span::default()).to_string(),
            "unsupported: aliases"
        );
    }
}
